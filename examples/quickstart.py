"""Quickstart: build an ACORN index and run hybrid queries.

Run with::

    python examples/quickstart.py

Builds an ACORN-γ index over a small synthetic product catalog (vector
embedding + price + category), then answers hybrid queries combining
similarity with structured filters — including predicates never seen at
construction time, which is exactly ACORN's point.
"""

import numpy as np

from repro import (
    AcornIndex,
    AcornParams,
    And,
    AttributeTable,
    Between,
    Equals,
    HybridSearcher,
)


def main() -> None:
    rng = np.random.default_rng(0)
    n, dim = 2000, 32

    # A toy catalog: embeddings cluster by product line; price and
    # category are structured attributes.
    lines = rng.integers(0, 8, size=n)
    centers = rng.standard_normal((8, dim)).astype(np.float32)
    vectors = centers[lines] + 0.6 * rng.standard_normal((n, dim)).astype(
        np.float32
    )
    table = AttributeTable(n)
    table.add_float_column("price", rng.uniform(5.0, 500.0, size=n).round(2))
    table.add_string_column(
        "category",
        [["tshirt", "hoodie", "jacket", "hat"][c] for c in rng.integers(0, 4, size=n)],
    )

    # Build once.  gamma = 8 serves predicates down to ~12.5% selectivity
    # before the router falls back to exact pre-filtering.
    params = AcornParams(m=16, gamma=8, m_beta=32, ef_construction=40)
    print(f"building ACORN-gamma over {n} products "
          f"(M={params.m}, gamma={params.gamma}, M_beta={params.m_beta})...")
    index = AcornIndex.build(vectors, table, params=params, seed=0)
    searcher = HybridSearcher(index)

    # A reference product to search "more like this" from.
    query = vectors[17]
    print(f"\nreference product: id=17 "
          f"({table.row(17)['category']}, ${table.row(17)['price']})")

    scenarios = {
        "similar t-shirts": Equals("category", "tshirt"),
        "similar items under $50": Between("price", 0.0, 50.0),
        "similar cheap t-shirts": And(
            Equals("category", "tshirt"), Between("price", 0.0, 80.0)
        ),
    }
    for title, predicate in scenarios.items():
        result = searcher.search(query, predicate, k=5, ef_search=48)
        route = (
            "pre-filter" if searcher.last_decision.used_prefilter else "graph"
        )
        print(f"\n{title}  "
              f"[selectivity={searcher.last_decision.estimated_selectivity:.3f},"
              f" routed to {route}]")
        for node, dist in zip(result.ids, result.distances):
            row = table.row(int(node))
            print(f"  #{node:>4}  dist={dist:8.2f}  "
                  f"{row['category']:>7}  ${row['price']:>7}")


if __name__ == "__main__":
    main()
