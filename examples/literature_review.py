"""Literature review over a TripClick-like corpus.

Run with::

    python examples/literature_review.py

The paper's motivating example (§1): a researcher searches passages with
natural-language queries plus filters on clinical areas and publication
dates.  This example builds one ACORN-γ index over a synthetic medical
corpus and serves three realistic review queries — by area list, by date
range, and by a conjunction of both — comparing ACORN against exact
pre-filtering for quality and cost.
"""


from repro import AcornIndex, AcornParams, And, Between, ContainsAny, HybridSearcher
from repro.baselines import PreFilterSearcher
from repro.datasets import make_tripclick_like


def main() -> None:
    print("generating TripClick-like corpus (passages + clinical areas + "
          "publication years)...")
    dataset = make_tripclick_like(n=3000, dim=64, n_queries=10,
                                  workload="areas", seed=2)
    table = dataset.table

    params = AcornParams(m=16, gamma=8, m_beta=32, ef_construction=40)
    print(f"building ACORN-gamma (M={params.m}, gamma={params.gamma})...")
    index = AcornIndex.build(dataset.vectors, table, params=params, seed=0)
    searcher = HybridSearcher(index)
    exact = PreFilterSearcher(dataset.vectors, table)

    # A "query passage" the researcher wants related work for.
    query = dataset.queries[0].vector

    reviews = {
        "cardiology or oncology literature": ContainsAny(
            "areas", ["cardiology", "oncology"]
        ),
        "work published 2010-2020": Between("year", 2010, 2020),
        "recent surgical literature": And(
            ContainsAny("areas", ["surgery"]), Between("year", 2005, 2020)
        ),
    }

    for title, predicate in reviews.items():
        result = searcher.search(query, predicate, k=8, ef_search=64)
        truth = exact.search(query, predicate, k=8)
        overlap = len(set(result.ids.tolist()) & set(truth.ids.tolist()))
        print(f"\n--- {title} ---")
        print(f"selectivity {searcher.last_decision.estimated_selectivity:.3f}"
              f" | ACORN {result.distance_computations} distance comps vs"
              f" exact scan {truth.distance_computations}"
              f" | agreement {overlap}/8")
        for node in result.ids[:4]:
            row = table.row(int(node))
            areas = ", ".join(row["areas"])
            print(f"  passage #{node:>4}  [{row['year']}]  areas: {areas}")


if __name__ == "__main__":
    main()
