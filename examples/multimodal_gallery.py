"""Multi-modal image gallery search over a LAION-like collection.

Run with::

    python examples/multimodal_gallery.py

Reproduces the paper's Figure 6 scenario: the same query image retrieves
very different results depending on the structured filter — a keyword
the image's own neighborhood shares (positive correlation), a generic
keyword (no correlation), or a keyword whose images live far away
(negative correlation).  Also demonstrates regex filtering over captions
— the predicate type no specialized index supports — and measures the
workload correlation C(D, Q) for each regime.
"""

import numpy as np

from repro import AcornIndex, AcornParams, ContainsAny, RegexMatch
from repro.datasets import make_laion_like, query_correlation


def main() -> None:
    print("generating LAION-like gallery (CLIP-ish embeddings + captions "
          "+ keyword lists)...")
    dataset = make_laion_like(n=3000, dim=64, n_queries=20,
                              workload="no-cor", seed=3)
    table = dataset.table

    params = AcornParams(m=16, gamma=10, m_beta=32, ef_construction=40)
    print(f"building ACORN-gamma (M={params.m}, gamma={params.gamma})...")
    index = AcornIndex.build(dataset.vectors, table, params=params, seed=0)

    # Pick a query image and inspect its own keywords.
    query_id = 123
    query = dataset.vectors[query_id]
    own_keywords = table.row(query_id)["keywords"]
    print(f"\nquery image #{query_id}: caption={table.row(query_id)['caption']!r}")

    # The three correlation regimes of Figure 6 / Figure 10.
    far_keyword = _farthest_keyword(dataset, query)
    filters = {
        f"positively correlated filter {own_keywords[1]!r}": ContainsAny(
            "keywords", [own_keywords[1]]
        ),
        "uncorrelated generic filter 'colorful'": ContainsAny(
            "keywords", ["colorful"]
        ),
        f"negatively correlated filter {far_keyword!r}": ContainsAny(
            "keywords", [far_keyword]
        ),
        r"regex filter r'\b(ocean|forest)\b'": RegexMatch(
            "caption", r"\b(ocean|forest)\b"
        ),
    }
    for title, predicate in filters.items():
        result = index.search(query, predicate, k=5, ef_search=64)
        print(f"\n--- {title} ---")
        print(f"    {result.distance_computations} distance computations")
        for node, dist in zip(result.ids, result.distances):
            print(f"  image #{int(node):>4}  dist={dist:7.1f}  "
                  f"{table.row(int(node))['caption']}")

    print("\nmeasured workload correlation C(D,Q):")
    for workload in ("pos-cor", "no-cor", "neg-cor"):
        ds = make_laion_like(n=1500, dim=64, n_queries=30, workload=workload,
                             seed=3)
        c = query_correlation(ds, n_resamples=5, seed=0)
        print(f"  {workload:>8}: C = {c:+8.2f}")


def _farthest_keyword(dataset, query: np.ndarray) -> str:
    """The geometric keyword whose anchor is farthest from the query."""
    from repro.datasets.laion import GEOMETRIC_KEYWORDS

    anchors = dataset.extras["keyword_anchors"]
    dists = ((anchors - query) ** 2).sum(axis=1)
    return GEOMETRIC_KEYWORDS[int(np.argmax(dists))]


if __name__ == "__main__":
    main()
