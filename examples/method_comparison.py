"""Compare every hybrid-search method on one dataset.

Run with::

    python examples/method_comparison.py

A miniature of the paper's evaluation loop: generate an LCPS benchmark,
build ACORN-γ, ACORN-1, the oracle partitions and all baselines over it,
sweep each method's recall-QPS curve, and print the comparison table —
including distance computations, the hardware-independent cost measure
the paper's Table 3 uses.
"""

from repro import AcornIndex, AcornOneIndex, AcornParams, Equals
from repro.baselines import (
    FilteredVamanaIndex,
    IvfFlatIndex,
    NhqIndex,
    OraclePartitionIndex,
    PostFilterSearcher,
    PreFilterSearcher,
    StitchedVamanaIndex,
)
from repro.datasets import make_sift1m_like
from repro.eval import SweepRunner, render_sweeps
from repro.hnsw import HnswIndex
from repro.utils.timer import Timer


def main() -> None:
    print("generating SIFT1M-like benchmark (equality predicates, "
          "cardinality 12)...")
    dataset = make_sift1m_like(n=2500, dim=48, n_queries=80, seed=0)
    label_column = dataset.extras["label_column"]

    methods = {}
    with Timer() as t:
        acorn = AcornIndex.build(
            dataset.vectors, dataset.table,
            params=AcornParams(m=12, gamma=12, m_beta=24, ef_construction=40),
            seed=0,
        )
    print(f"ACORN-gamma built in {t.elapsed:.1f}s")
    methods["ACORN-gamma"] = acorn

    with Timer() as t:
        methods["ACORN-1"] = AcornOneIndex.build(
            dataset.vectors, dataset.table, m=24, ef_construction=40, seed=0
        )
    print(f"ACORN-1 built in {t.elapsed:.1f}s")

    hnsw = HnswIndex.build(dataset.vectors, m=16, ef_construction=48, seed=0)
    methods["HNSW post-filter"] = PostFilterSearcher(hnsw, dataset.table)
    methods["pre-filter"] = PreFilterSearcher(dataset.vectors, dataset.table)
    methods["oracle partition"] = OraclePartitionIndex(
        dataset.vectors, dataset.table,
        [Equals(label_column, v) for v in range(1, 13)],
        m=16, ef_construction=48, seed=0,
    )
    methods["FilteredVamana"] = FilteredVamanaIndex(
        dataset.vectors, dataset.table, label_column, r=24, l=48, seed=0
    )
    methods["StitchedVamana"] = StitchedVamanaIndex(
        dataset.vectors, dataset.table, label_column, seed=0
    )
    methods["NHQ"] = NhqIndex(dataset.vectors, dataset.table, label_column)
    methods["IVF-Flat"] = IvfFlatIndex(dataset.vectors, dataset.table, seed=0)

    print("\nsweeping recall-QPS curves (k=10)...")
    runner = SweepRunner(dataset, k=10)
    sweeps = [
        runner.sweep(name, method, efforts=(10, 40, 160))
        for name, method in methods.items()
    ]
    print()
    print(render_sweeps(sweeps, recall_target=0.9))
    print("\nNote: wall-clock QPS in pure Python favors vectorized scans; "
          "the dist@0.9 column is the paper's hardware-independent "
          "comparison (Table 3).")


if __name__ == "__main__":
    main()
