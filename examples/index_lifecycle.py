"""Operating an ACORN index over its lifecycle.

Run with::

    python examples/index_lifecycle.py

What a production deployment does beyond one-shot search: suggest
parameters from a workload sample, build, persist to disk, reload in a
"fresh process", keep inserting, tombstone deletions, and inspect the
index — exercising `suggest_params`, `save_index`/`load_index`,
`mark_deleted`, `stats()`, and the router's EXPLAIN.
"""

import tempfile
from pathlib import Path

from repro import AcornIndex, HybridSearcher, load_index, save_index
from repro.core.tuning import suggest_params_from_predicates
from repro.datasets import make_tripclick_like
from repro.predicates import Between, ContainsAny


def main() -> None:
    dataset = make_tripclick_like(n=2000, dim=48, n_queries=10,
                                  workload="areas", seed=2)
    table = dataset.table

    # 1. Choose parameters from a workload sample (paper §5.2's γ rule).
    sample_predicates = [q.predicate for q in dataset.queries]
    params = suggest_params_from_predicates(
        table, sample_predicates, m=16, target_percentile=10.0, seed=0
    )
    print(f"suggested parameters: M={params.m}, gamma={params.gamma} "
          f"(s_min={params.s_min:.3f}), M_beta={params.m_beta}")

    # 2. Build and inspect.
    index = AcornIndex.build(dataset.vectors, table, params=params, seed=0)
    stats = index.stats()
    print(f"built: {stats['num_vectors']} vectors, {stats['levels']} levels, "
          f"{stats['nbytes'] / 1e6:.2f} MB, "
          f"level-0 degree {stats['avg_out_degree'][0]:.1f}")

    # 3. Persist and reload (a fresh process would do exactly this).
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "corpus.npz"
        save_index(index, path)
        print(f"saved to {path.name} ({path.stat().st_size / 1e6:.2f} MB "
              "compressed)")
        index = load_index(path)
        print("reloaded; graph intact:", index.graph.max_level + 1, "levels")

    searcher = HybridSearcher(index)
    query = dataset.queries[0].vector

    # 4. EXPLAIN before running.
    for predicate in (
        ContainsAny("areas", ["cardiology"]),
        ContainsAny("areas", ["dermatology"]) & Between("year", 1950, 1960),
    ):
        plan = searcher.explain(predicate)
        print(f"\nEXPLAIN {predicate!r}\n  -> route={plan.route}, "
              f"s={plan.estimated_selectivity:.4f}, "
              f"est. cost={plan.estimated_distance_computations:.0f} "
              "distance comps")
        result = searcher.search(query, predicate, k=5)
        print(f"  ran: {len(result)} results, "
              f"{result.distance_computations} actual distance comps")

    # 5. Tombstone the top result and show it disappears.
    predicate = ContainsAny("areas", ["cardiology"])
    before = searcher.search(query, predicate, k=3)
    victim = int(before.ids[0])
    index.mark_deleted(victim)
    after = searcher.search(query, predicate, k=3)
    print(f"\ndeleted passage #{victim}: "
          f"{'gone' if victim not in after.ids else 'STILL PRESENT'} "
          f"from results ({index.num_deleted} tombstones)")


if __name__ == "__main__":
    main()
