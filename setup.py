"""Setup shim for environments whose pip cannot build PEP-660 editable
wheels offline (no `wheel` package available). `pip install -e .` falls
back to this via `python setup.py develop`."""
from setuptools import setup

setup()
