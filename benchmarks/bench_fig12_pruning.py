"""Figure 12: pruning-strategy comparison on SIFT1M-like data.

The paper compares three level-0 pruning rules applied to ACORN-γ's
candidate lists — ACORN's predicate-agnostic rule at several Mβ values,
FilteredDiskANN's metadata-aware RNG rule, and HNSW's metadata-blind RNG
rule — on four axes: TTI (a), level-0 space footprint (b), candidate
edges pruned per node (c), and hybrid search performance at a fixed
operating point (d).

The paper's (d) is "recall at 20,000 QPS"; wall-clock QPS is not
meaningful in pure Python (DESIGN.md §3), so we report recall at a fixed
search effort together with its distance-computation cost — the same
hardware-independent operating point.

Shape claims:

- ACORN pruning at small Mβ cuts TTI and level-0 degree vs no pruning
  while keeping recall close,
- HNSW's blind pruning degrades hybrid recall well below ACORN's,
- metadata-aware RNG pruning preserves recall but keeps a larger
  footprint than aggressive ACORN pruning (small Mβ).
"""

import numpy as np
import pytest

from repro.core import AcornIndex, AcornParams
from repro.datasets import make_sift1m_like
from repro.eval import SweepRunner
from repro.eval.reporting import render_table
from repro.utils.timer import Timer

import os

M, GAMMA = 12, 8
FIXED_EFFORT = 48


def scaled(base: int) -> int:
    return max(200, int(base * float(os.environ.get("REPRO_SCALE", "1"))))


@pytest.fixture(scope="module")
def pruning_results():
    dataset = make_sift1m_like(n=scaled(2500), dim=48, n_queries=80, seed=4)
    labels = np.asarray(dataset.table.column("label"))
    variants = {}
    for m_beta in (M // 2, M, 2 * M, 4 * M):
        variants[f"ACORN Mb={m_beta}"] = AcornParams(
            m=M, gamma=GAMMA, m_beta=m_beta, ef_construction=40
        )
    variants["no pruning"] = AcornParams(
        m=M, gamma=GAMMA, m_beta=M * GAMMA, ef_construction=40, pruning="none"
    )
    variants["RNG metadata-aware"] = AcornParams(
        m=M, gamma=GAMMA, m_beta=2 * M, ef_construction=40,
        pruning="rng-metadata",
    )
    variants["RNG blind (HNSW)"] = AcornParams(
        m=M, gamma=GAMMA, m_beta=2 * M, ef_construction=40,
        pruning="rng-blind",
    )

    results = {}
    runner = SweepRunner(dataset, k=10)
    for name, params in variants.items():
        with Timer() as t:
            index = AcornIndex.build(
                dataset.vectors, dataset.table, params=params, seed=0,
                labels=labels,
            )
        point = runner.run_point(index, FIXED_EFFORT)
        results[name] = {
            "tti": t.elapsed,
            "deg0": index.graph.average_out_degree(0),
            "pruned_per_node": index.pruning_stats.dropped_per_node,
            "recall": point.recall,
            "ncomp": point.mean_distance_computations,
        }
    return results


def test_fig12_pruning_comparison(pruning_results, benchmark, report):
    def render():
        rows = [
            (
                name,
                r["tti"],
                r["deg0"],
                r["pruned_per_node"],
                r["recall"],
                r["ncomp"],
            )
            for name, r in pruning_results.items()
        ]
        return render_table(
            ["strategy", "TTI (s)", "avg deg L0", "pruned/node",
             f"recall@ef{FIXED_EFFORT}", "dist comps"],
            rows,
            title=(
                "=== Figure 12: pruning strategies on SIFT1M-like "
                f"(M={M}, gamma={GAMMA}) ==="
            ),
        )

    report(benchmark.pedantic(render, rounds=1, iterations=1))

    res = pruning_results
    aggressive = res[f"ACORN Mb={M}"]
    unpruned = res["no pruning"]
    blind = res["RNG blind (HNSW)"]
    aware = res["RNG metadata-aware"]

    # (a)+(b): aggressive ACORN pruning shrinks footprint vs no pruning.
    assert aggressive["deg0"] < unpruned["deg0"]
    # (c): it prunes many candidates per node; no-pruning prunes none.
    assert aggressive["pruned_per_node"] > 0
    assert unpruned["pruned_per_node"] == 0
    # (d): recall survives ACORN pruning...
    assert aggressive["recall"] >= unpruned["recall"] - 0.08
    # ...but not HNSW's metadata-blind pruning.
    assert blind["recall"] < aggressive["recall"] - 0.05, (
        "blind RNG pruning should visibly degrade hybrid recall: "
        f"blind={blind['recall']:.3f} acorn={aggressive['recall']:.3f}"
    )
    # Metadata-aware RNG pruning keeps recall but a larger footprint
    # than aggressive ACORN pruning.
    assert aware["recall"] >= aggressive["recall"] - 0.1
    assert aware["deg0"] >= aggressive["deg0"] * 0.8

    # Mβ insensitivity (paper §7.2): recall varies little across Mβ.
    recalls = [res[f"ACORN Mb={mb}"]["recall"] for mb in (M // 2, M, 2 * M, 4 * M)]
    assert max(recalls) - min(recalls) < 0.15
