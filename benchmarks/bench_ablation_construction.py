"""Ablation: truncated-M vs full-list construction traversal.

§5.2's metadata-agnostic construction lookup reads only the first M
entries of each (M·γ-wide) neighbor list while collecting candidates,
"to avoid unnecessary distance computations and TTI slowdowns", arguing
M edges already keep the graph navigable.  Verify the claim: full-list
traversal must cost clearly more TTI while buying little or no recall.
"""

import os

import pytest

from repro.core import AcornIndex, AcornParams
from repro.datasets import make_sift1m_like
from repro.eval import SweepRunner
from repro.eval.reporting import render_table
from repro.utils.timer import Timer

FIXED_EFFORT = 48


def scaled(base: int) -> int:
    return max(200, int(base * float(os.environ.get("REPRO_SCALE", "1"))))


@pytest.fixture(scope="module")
def construction_results():
    dataset = make_sift1m_like(n=scaled(2000), dim=48, n_queries=80, seed=9)
    runner = SweepRunner(dataset, k=10)
    results = {}
    for name, truncate in (("truncated-M (paper)", True),
                           ("full-list", False)):
        params = AcornParams(m=12, gamma=8, m_beta=24, ef_construction=40,
                             truncate_construction=truncate)
        with Timer() as t:
            index = AcornIndex.build(dataset.vectors, dataset.table,
                                     params=params, seed=0)
        point = runner.run_point(index, FIXED_EFFORT)
        results[name] = {
            "tti": t.elapsed,
            "recall": point.recall,
            "ncomp": point.mean_distance_computations,
        }
    return results


def test_ablation_construction_truncation(construction_results, benchmark,
                                          report):
    def render():
        rows = [
            (name, r["tti"], r["recall"], r["ncomp"])
            for name, r in construction_results.items()
        ]
        return render_table(
            ["construction lookup", "TTI (s)", f"recall@ef{FIXED_EFFORT}",
             "dist comps"],
            rows,
            title="=== Ablation: construction-time neighbor-list "
                  "truncation (SIFT1M-like) ===",
        )

    report(benchmark.pedantic(render, rounds=1, iterations=1))

    truncated = construction_results["truncated-M (paper)"]
    full = construction_results["full-list"]
    assert truncated["tti"] < full["tti"], (
        "truncated construction must be cheaper"
    )
    assert truncated["recall"] >= full["recall"] - 0.08, (
        "truncation should cost little recall"
    )
