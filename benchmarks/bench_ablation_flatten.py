"""Ablation: ACORN's preserved hierarchy vs Qdrant-style flattening.

§8 contrasts ACORN with Qdrant's filtrable-HNSW proposal, which
densifies by directly raising HNSW's M — inadvertently changing the
level constant m_L = 1/ln(M) and flattening the hierarchy, which Malkov
et al. showed degrades search.  ACORN instead keeps m_L tied to the
*search* degree M while expanding lists to M·γ.

Build both variants at identical M/γ/Mβ and compare: the flattened
index must have fewer levels, and the hierarchical index should match
or beat it on the recall-per-distance-computation front.
"""

import os

import pytest

from repro.core import AcornIndex, AcornParams
from repro.datasets import make_sift1m_like
from repro.eval import SweepRunner
from repro.eval.reporting import render_table

FIXED_EFFORT = 48


def scaled(base: int) -> int:
    return max(200, int(base * float(os.environ.get("REPRO_SCALE", "1"))))


@pytest.fixture(scope="module")
def flatten_results():
    dataset = make_sift1m_like(n=scaled(2500), dim=48, n_queries=80, seed=10)
    runner = SweepRunner(dataset, k=10)
    results = {}
    for name, flatten in (("hierarchical (ACORN)", False),
                          ("flattened (Qdrant-style)", True)):
        params = AcornParams(m=12, gamma=8, m_beta=24, ef_construction=40,
                             flatten_levels=flatten)
        index = AcornIndex.build(dataset.vectors, dataset.table,
                                 params=params, seed=0)
        point = runner.run_point(index, FIXED_EFFORT)
        results[name] = {
            "levels": index.graph.max_level + 1,
            "recall": point.recall,
            "ncomp": point.mean_distance_computations,
        }
    return results


def test_ablation_flattening(flatten_results, benchmark, report):
    def render():
        rows = [
            (name, r["levels"], r["recall"], r["ncomp"])
            for name, r in flatten_results.items()
        ]
        return render_table(
            ["variant", "# levels", f"recall@ef{FIXED_EFFORT}", "dist comps"],
            rows,
            title="=== Ablation: hierarchy preservation vs Qdrant-style "
                  "flattening (SIFT1M-like) ===",
        )

    report(benchmark.pedantic(render, rounds=1, iterations=1))

    hier = flatten_results["hierarchical (ACORN)"]
    flat = flatten_results["flattened (Qdrant-style)"]
    assert flat["levels"] < hier["levels"], (
        "flattening must reduce the level count"
    )
    # The hierarchical variant should not lose on recall-per-cost:
    # equal-or-better recall, or the same recall at lower cost.
    assert (
        hier["recall"] >= flat["recall"] - 0.02
    ), f"hierarchical {hier['recall']:.3f} vs flattened {flat['recall']:.3f}"
