"""Figure 11: search performance as the dataset size scales (LAION-25M).

The paper shows the gap between ACORN and the baselines *growing* with
dataset size (1M → 25M).  We sweep n over an order of magnitude (scaled
to laptop sizes): ACORN's distance-computation cost at 0.9 recall grows
~logarithmically while pre-filtering grows linearly, so the
cost ratio pre/ACORN must increase with n; post-filtering's recall
ceiling must not improve with scale.
"""

import pytest

from repro.baselines import PostFilterSearcher, PreFilterSearcher
from repro.core import AcornIndex, AcornOneIndex, AcornParams
from repro.datasets import make_laion_like
from repro.eval import SweepRunner
from repro.eval.reporting import render_table
from repro.hnsw import HnswIndex

import os

SIZES = (1000, 2000, 4000)


def scaled(base: int) -> int:
    return max(200, int(base * float(os.environ.get("REPRO_SCALE", "1"))))


@pytest.fixture(scope="module")
def scale_results():
    params = AcornParams(m=12, gamma=10, m_beta=24, ef_construction=40)
    results = {}
    for size in SIZES:
        n = scaled(size)
        dataset = make_laion_like(
            n=n, dim=64, n_queries=60, workload="no-cor", seed=11
        )
        acorn = AcornIndex.build(dataset.vectors, dataset.table,
                                 params=params, seed=0)
        acorn_one = AcornOneIndex.build(
            dataset.vectors, dataset.table, m=24, ef_construction=40, seed=0
        )
        hnsw = HnswIndex.build(dataset.vectors, m=16, ef_construction=48,
                               seed=0)
        runner = SweepRunner(dataset, k=10)
        results[n] = {
            "ACORN-gamma": runner.sweep(
                "ACORN-gamma", acorn, efforts=(10, 20, 40, 80, 160, 320)
            ),
            "ACORN-1": runner.sweep(
                "ACORN-1", acorn_one, efforts=(10, 20, 40, 80, 160, 320)
            ),
            "HNSW post-filter": runner.sweep(
                "HNSW post-filter",
                PostFilterSearcher(hnsw, dataset.table, max_oversearch=0.5),
                efforts=(10, 20, 40, 80, 160, 320),
            ),
            "pre-filter": runner.sweep(
                "pre-filter",
                PreFilterSearcher(dataset.vectors, dataset.table),
                efforts=(20,),
            ),
        }
    return results


def test_fig11_scaling(scale_results, benchmark, report):
    def render():
        rows = []
        for n, sweeps in scale_results.items():
            for name, sweep in sweeps.items():
                cost = sweep.distance_computations_at_recall(0.9)
                qps = sweep.qps_at_recall(0.9)
                rows.append(
                    (
                        n,
                        name,
                        sweep.max_recall(),
                        cost if cost is not None else "n/a",
                        qps if qps is not None else "n/a",
                    )
                )
        return render_table(
            ["n", "method", "max recall", "dist@0.9", "QPS@0.9"],
            rows,
            title="=== Figure 11: LAION-like no-cor, dataset-size sweep ===",
        )

    report(benchmark.pedantic(render, rounds=1, iterations=1))

    sizes = sorted(scale_results)
    ratios = []
    for n in sizes:
        sweeps = scale_results[n]
        acorn_cost = sweeps["ACORN-gamma"].distance_computations_at_recall(0.9)
        pre_cost = sweeps["pre-filter"].distance_computations_at_recall(0.9)
        assert acorn_cost is not None, f"ACORN must reach 0.9 recall at n={n}"
        ratios.append(pre_cost / acorn_cost)
    assert ratios[-1] > ratios[0], (
        "the pre-filter/ACORN cost gap must grow with dataset size: "
        f"{ratios}"
    )
    # ACORN cost grows sublinearly: quadrupling n must not quadruple cost.
    first = scale_results[sizes[0]]["ACORN-gamma"]
    last = scale_results[sizes[-1]]["ACORN-gamma"]
    growth = (
        last.distance_computations_at_recall(0.9)
        / first.distance_computations_at_recall(0.9)
    )
    assert growth < (sizes[-1] / sizes[0]) * 0.9
