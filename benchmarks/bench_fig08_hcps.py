"""Figure 8: Recall@10 vs QPS on the HCPS datasets (TripClick, LAION-1M).

The specialized indices (FilteredDiskANN, NHQ) cannot serve these
workloads — contains/between/regex operators over predicate sets with
cardinality > 10^8 — so, as in the paper, only ACORN-γ, ACORN-1,
pre-filtering and HNSW post-filtering are compared.  Shape claims:

- ACORN-γ reaches >= 0.9 recall on both datasets,
- post-filtering fails to reach high recall or is far costlier,
- pre-filtering has perfect recall but costs ~ s·n distance comps.
"""

import numpy as np
import pytest

from repro.eval.plots import ascii_curves
from repro.eval.reporting import render_curve, render_sweeps


def _fig08_assertions(sweeps, dataset, suite):
    acorn = sweeps["ACORN-gamma"]
    pre = sweeps["pre-filter"]

    assert acorn.max_recall() >= 0.9

    acorn_cost = acorn.distance_computations_at_recall(0.9)
    assert acorn_cost is not None
    # Pre-filtering: perfect recall, linear cost ≈ mean selectivity · n.
    assert pre.max_recall() == pytest.approx(1.0)
    expected_scan = dataset.selectivities().mean() * dataset.num_vectors
    assert pre.points[0].mean_distance_computations == pytest.approx(
        expected_scan, rel=0.05
    )
    assert acorn_cost < expected_scan

    # Post-filtering's deficit concentrates on the lower-selectivity
    # half of the workload (its K/s over-search explodes there, which is
    # where the paper's 30-50x gap comes from; at high selectivity it is
    # competitive — exactly Figure 9's crossover).  Compare there.
    from repro.baselines import PostFilterSearcher
    from repro.eval import SweepRunner

    selectivities = dataset.selectivities()
    hard_half = [
        i for i, s in enumerate(selectivities)
        if s <= float(np.median(selectivities))
    ]
    hard = dataset.subset_queries(hard_half)
    runner = SweepRunner(hard, k=10)
    acorn_hard = runner.sweep(
        "ACORN-gamma", suite.acorn_gamma, efforts=(20, 80, 320)
    )
    post_hard = runner.sweep(
        "HNSW post-filter",
        PostFilterSearcher(suite.hnsw, dataset.table, max_oversearch=0.5),
        efforts=(20, 80, 320),
    )
    acorn_hard_cost = acorn_hard.distance_computations_at_recall(0.9)
    post_hard_cost = post_hard.distance_computations_at_recall(0.9)
    assert acorn_hard_cost is not None
    if post_hard_cost is not None:
        assert acorn_hard_cost < post_hard_cost, (
            "ACORN must beat post-filtering on the low-selectivity half: "
            f"{acorn_hard_cost:.0f} vs {post_hard_cost:.0f}"
        )


@pytest.mark.parametrize("which", ["tripclick", "laion"])
def test_fig08_hcps_recall_qps(which, tripclick_sweeps, laion_sweeps,
                               tripclick_suite, laion_suite, benchmark,
                               report):
    sweeps = tripclick_sweeps if which == "tripclick" else laion_sweeps
    suite = tripclick_suite if which == "tripclick" else laion_suite

    def render():
        blocks = [
            f"=== Figure 8 ({which}): Recall@10 vs QPS — "
            f"{suite.dataset.name}, n={suite.dataset.num_vectors}, "
            f"d={suite.dataset.dim}, "
            f"avg selectivity={suite.dataset.selectivities().mean():.3f} ===",
            "(FilteredDiskANN / NHQ / Milvus regex: not applicable — "
            "predicate set unsupported, as in the paper)",
        ]
        for sweep in sweeps.values():
            blocks.append(render_curve(sweep))
        blocks.append(render_sweeps(list(sweeps.values()), recall_target=0.9))
        blocks.append(
            ascii_curves(
                list(sweeps.values()), y_metric="dist",
                title="recall vs distance computations (log y)",
            )
        )
        return "\n\n".join(blocks)

    report(benchmark.pedantic(render, rounds=1, iterations=1))
    _fig08_assertions(sweeps, suite.dataset, suite)
