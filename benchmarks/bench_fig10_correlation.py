"""Figure 10: QPS-recall across query-correlation regimes (LAION-1M).

The paper's three LAION workloads share one base dataset and differ only
in how filter keywords relate to the query point: positively correlated,
uncorrelated, negatively correlated.  One ACORN index serves all three
(the workloads share base vectors/attributes by construction — same
generator seed).  Shape claims:

- the measured C(D,Q) signs match the workload names,
- ACORN-γ is robust: >= 0.9 recall in every regime,
- post-filtering degrades as correlation decreases and is worst under
  negative correlation,
- pre-filtering is unaffected by correlation (cost tracks selectivity).
"""

import numpy as np
import pytest

from repro.baselines import PostFilterSearcher, PreFilterSearcher
from repro.datasets import make_laion_like, query_correlation
from repro.eval import SweepRunner
from repro.eval.reporting import render_table

WORKLOADS = ("pos-cor", "no-cor", "neg-cor")


@pytest.fixture(scope="module")
def correlation_datasets(laion_suite):
    base = laion_suite.dataset
    datasets = {"no-cor": base}
    for workload in ("pos-cor", "neg-cor"):
        datasets[workload] = make_laion_like(
            n=base.num_vectors, dim=base.dim, n_queries=len(base.queries),
            workload=workload, seed=3,
        )
        np.testing.assert_array_equal(
            datasets[workload].vectors, base.vectors,
            err_msg="correlation workloads must share one base dataset",
        )
    return datasets


def test_fig10_correlation_sweep(laion_suite, correlation_datasets, benchmark,
                                 report):
    suite = laion_suite

    def run():
        rows = []
        results = {}
        for workload in WORKLOADS:
            dataset = correlation_datasets[workload]
            c_value = query_correlation(dataset, n_resamples=5,
                                        max_queries=40, seed=0)
            post = PostFilterSearcher(suite.hnsw, dataset.table,
                                      max_oversearch=0.5)
            pre = PreFilterSearcher(dataset.vectors, dataset.table)
            runner = SweepRunner(dataset, k=10)
            sweeps = {
                "ACORN-gamma": runner.sweep(
                    "ACORN-gamma", suite.acorn_gamma, efforts=(20, 80, 320)
                ),
                "ACORN-1": runner.sweep(
                    "ACORN-1", suite.acorn_one, efforts=(20, 80, 320)
                ),
                "HNSW post-filter": runner.sweep(
                    "HNSW post-filter", post, efforts=(20, 80, 320)
                ),
                "pre-filter": runner.sweep("pre-filter", pre, efforts=(20,)),
            }
            results[workload] = (c_value, sweeps)
            for name, sweep in sweeps.items():
                cost = sweep.distance_computations_at_recall(0.9)
                rows.append(
                    (
                        workload,
                        f"{c_value:+.1f}",
                        name,
                        sweep.max_recall(),
                        cost if cost is not None else "n/a",
                    )
                )
        table = render_table(
            ["workload", "C(D,Q)", "method", "max recall", "dist@0.9"],
            rows,
            title=(
                "=== Figure 10: LAION-like correlation workloads "
                f"(n={suite.dataset.num_vectors}) ==="
            ),
        )
        return table, results

    table, results = benchmark.pedantic(run, rounds=1, iterations=1)
    report(table)

    c_pos, _ = results["pos-cor"]
    c_no, _ = results["no-cor"]
    c_neg, _ = results["neg-cor"]
    assert c_pos > 0 and c_neg < 0 and c_neg < c_no < c_pos

    for workload in WORKLOADS:
        _, sweeps = results[workload]
        assert sweeps["ACORN-gamma"].max_recall() >= 0.9, (
            f"ACORN-gamma must be robust under {workload}"
        )

    # Post-filtering is weakest under negative correlation.
    _, neg_sweeps = results["neg-cor"]
    _, pos_sweeps = results["pos-cor"]
    assert (
        neg_sweeps["HNSW post-filter"].max_recall()
        <= pos_sweeps["HNSW post-filter"].max_recall() + 1e-9
    )
    neg_gap = (
        neg_sweeps["ACORN-gamma"].max_recall()
        - neg_sweeps["HNSW post-filter"].max_recall()
    )
    assert neg_gap >= 0
