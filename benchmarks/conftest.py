"""Shared benchmark fixtures: scaled datasets and prebuilt method suites.

Every figure/table benchmark draws from the session-scoped fixtures
here so each index is built exactly once per run.  Scale is controlled
by the ``REPRO_SCALE`` environment variable (default 1.0): dataset
sizes multiply by it, so ``REPRO_SCALE=4 pytest benchmarks/`` runs the
same experiments at 4x the default point counts.

Construction wall-times (TTI, Table 4) are recorded as the fixtures
build, so the table benchmarks report real measurements without
rebuilding anything.
"""

from __future__ import annotations

import os

import pytest

from repro.baselines import (
    FilteredVamanaIndex,
    IvfFlatIndex,
    NhqIndex,
    OraclePartitionIndex,
    PostFilterSearcher,
    PreFilterSearcher,
    StitchedVamanaIndex,
)
from repro.core import AcornIndex, AcornOneIndex, AcornParams
from repro.datasets import (
    make_laion_like,
    make_paper_like,
    make_sift1m_like,
    make_tripclick_like,
)
from repro.hnsw import HnswIndex
from repro.predicates import Equals
from repro.utils.timer import Timer

SCALE = float(os.environ.get("REPRO_SCALE", "1"))

# Paper-vs-here parameter notes: the paper uses M=32 (TripClick: 128),
# efc=40 (TripClick: 200), gamma = 12 / 30 / 80 per dataset.  At our
# reduced n we keep gamma tied to 1/s_min per dataset (the paper's
# rule) but moderate it where the paper's value reflects a selectivity
# tail our scaled workload doesn't reach.
EFFORTS = (10, 20, 40, 80, 160, 320)
K = 10


def scaled(base: int) -> int:
    """Scale a dataset size by REPRO_SCALE."""
    return max(200, int(base * SCALE))


@pytest.fixture(scope="session")
def _results_file():
    """Accumulates every experiment table for one benchmark session."""
    results_dir = os.path.join(os.path.dirname(__file__), "results")
    os.makedirs(results_dir, exist_ok=True)
    path = os.path.join(results_dir, "latest.txt")
    with open(path, "w") as handle:
        yield handle


@pytest.fixture(scope="session")
def report(pytestconfig, _results_file):
    """Emit a rendered experiment table.

    pytest captures output at the file-descriptor level, so tables are
    printed through the capture manager's disabled context (visible in
    the terminal) and also appended to ``benchmarks/results/latest.txt``
    so redirected runs keep them.
    """
    capture_manager = pytestconfig.pluginmanager.getplugin("capturemanager")

    def _report(text: str) -> None:
        _results_file.write("\n" + text + "\n")
        _results_file.flush()
        with capture_manager.global_and_fixture_disabled():
            print("\n" + text + "\n", flush=True)

    return _report


class MethodSuite:
    """A dataset plus every benchmarked method built over it."""

    def __init__(self, dataset, acorn_params: AcornParams, hnsw_m: int = 16,
                 hnsw_efc: int = 48, seed: int = 0, lcps: bool = False):
        self.dataset = dataset
        self.params = acorn_params
        self.tti: dict[str, float] = {}
        self.methods: dict[str, object] = {}

        with Timer() as t:
            self.acorn_gamma = AcornIndex.build(
                dataset.vectors, dataset.table, params=acorn_params, seed=seed
            )
        self.tti["ACORN-gamma"] = t.elapsed
        self.methods["ACORN-gamma"] = self.acorn_gamma

        with Timer() as t:
            # ACORN-1's search-time 2-hop expansion needs the paper's
            # larger-M regime (the paper runs both variants at M=32) to
            # keep sparse predicate subgraphs connected; the γ index
            # runs at a reduced M to keep its M·γ construction cost
            # laptop-scale.
            self.acorn_one = AcornOneIndex.build(
                dataset.vectors, dataset.table, m=2 * acorn_params.m,
                ef_construction=acorn_params.ef_construction, seed=seed,
            )
        self.tti["ACORN-1"] = t.elapsed
        self.methods["ACORN-1"] = self.acorn_one

        with Timer() as t:
            self.hnsw = HnswIndex.build(
                dataset.vectors, m=hnsw_m, ef_construction=hnsw_efc, seed=seed
            )
        self.tti["HNSW"] = t.elapsed
        self.methods["HNSW post-filter"] = PostFilterSearcher(
            self.hnsw, dataset.table, max_oversearch=0.5
        )

        self.prefilter = PreFilterSearcher(dataset.vectors, dataset.table)
        self.tti["Flat (pre-filter)"] = 0.0
        self.methods["pre-filter"] = self.prefilter

        self.oracle = None
        if lcps:
            label_column = dataset.extras["label_column"]
            n_labels = dataset.extras["n_labels"]
            predicates = [
                Equals(label_column, value) for value in range(1, n_labels + 1)
            ]
            with Timer() as t:
                self.oracle = OraclePartitionIndex(
                    dataset.vectors, dataset.table, predicates,
                    m=hnsw_m, ef_construction=hnsw_efc, seed=seed,
                )
            self.tti["Oracle partitions"] = t.elapsed
            self.methods["oracle partition"] = self.oracle

            with Timer() as t:
                self.filtered_vamana = FilteredVamanaIndex(
                    dataset.vectors, dataset.table, label_column,
                    r=24, l=48, seed=seed,
                )
            self.tti["FilteredVamana"] = t.elapsed
            self.methods["FilteredVamana"] = self.filtered_vamana

            with Timer() as t:
                self.stitched_vamana = StitchedVamanaIndex(
                    dataset.vectors, dataset.table, label_column,
                    r_small=16, l_small=40, r_stitched=32, seed=seed,
                )
            self.tti["StitchedVamana"] = t.elapsed
            self.methods["StitchedVamana"] = self.stitched_vamana

            with Timer() as t:
                self.nhq = NhqIndex(
                    dataset.vectors, dataset.table, label_column, degree=24
                )
            self.tti["NHQ"] = t.elapsed
            self.methods["NHQ"] = self.nhq

            with Timer() as t:
                self.ivf = IvfFlatIndex(dataset.vectors, dataset.table,
                                        seed=seed)
            self.tti["Milvus IVF-Flat"] = t.elapsed
            self.methods["IVF-Flat"] = self.ivf


@pytest.fixture(scope="session")
def sift_suite():
    dataset = make_sift1m_like(
        n=scaled(4000), dim=48, n_queries=100, seed=0
    )
    # gamma = 12 = 1/s_min for the 12-label equality workload (paper).
    return MethodSuite(
        dataset,
        AcornParams(m=12, gamma=12, m_beta=24, ef_construction=40),
        hnsw_m=16,
        lcps=True,
    )


@pytest.fixture(scope="session")
def paper_suite():
    dataset = make_paper_like(
        n=scaled(4000), dim=72, n_queries=100, seed=1
    )
    return MethodSuite(
        dataset,
        AcornParams(m=12, gamma=12, m_beta=24, ef_construction=40),
        hnsw_m=16,
        lcps=True,
    )


@pytest.fixture(scope="session")
def tripclick_suite():
    dataset = make_tripclick_like(
        n=scaled(3000), dim=96, n_queries=100, workload="areas", seed=2
    )
    # The paper's gamma=80 serves a selectivity tail down to 1/80; our
    # scaled areas workload bottoms out near s~0.1, so gamma=10.
    return MethodSuite(
        dataset,
        AcornParams(m=12, gamma=10, m_beta=24, ef_construction=40),
        hnsw_m=16,
    )


@pytest.fixture(scope="session")
def tripclick_dates():
    return make_tripclick_like(
        n=scaled(3000), dim=96, n_queries=150, workload="dates", seed=2
    )


@pytest.fixture(scope="session")
def laion_suite():
    dataset = make_laion_like(
        n=scaled(3000), dim=64, n_queries=100, workload="no-cor", seed=3
    )
    # gamma = 16 -> s_min ~ 0.063, below the neg-cor workload's 0.069
    # average selectivity (the paper's LAION gamma=30 plays the same
    # role relative to its 0.056 floor).
    return MethodSuite(
        dataset,
        AcornParams(m=12, gamma=16, m_beta=24, ef_construction=40),
        hnsw_m=16,
    )


@pytest.fixture(scope="session")
def all_suites(sift_suite, paper_suite, tripclick_suite, laion_suite):
    return {
        "Sift1M-like": sift_suite,
        "Paper-like": paper_suite,
        "TripClick-like": tripclick_suite,
        "LAION-1M-like": laion_suite,
    }


def run_suite_sweeps(suite: MethodSuite, efforts=EFFORTS, k: int = K):
    """Recall-QPS sweeps for every method in a suite (cached by callers)."""
    from repro.eval import SweepRunner

    runner = SweepRunner(suite.dataset, k=k)
    return {
        name: runner.sweep(name, method, efforts=efforts)
        for name, method in suite.methods.items()
    }


@pytest.fixture(scope="session")
def sift_sweeps(sift_suite):
    return run_suite_sweeps(sift_suite)


@pytest.fixture(scope="session")
def paper_sweeps(paper_suite):
    return run_suite_sweeps(paper_suite)


@pytest.fixture(scope="session")
def tripclick_sweeps(tripclick_suite):
    return run_suite_sweeps(tripclick_suite)


@pytest.fixture(scope="session")
def laion_sweeps(laion_suite):
    return run_suite_sweeps(laion_suite)
