"""Table 3: distance computations to reach 0.8 recall (SIFT1M, Paper).

The paper's hardware-independent efficiency comparison: the oracle
partition needs the fewest distance computations, ACORN-γ comes next
(its KNN-ish levels lack the oracle's RNG pruning), ACORN-1 trails
ACORN-γ, and HNSW post-filtering is the least efficient (it wastes
distance computations on nodes failing the predicate).
"""


from repro.eval.reporting import render_table

ROWS = ("oracle partition", "ACORN-gamma", "ACORN-1", "HNSW post-filter")


def test_table3_distance_computations(sift_sweeps, paper_sweeps, benchmark,
                                      report):
    def run():
        costs = {}
        for dataset_name, sweeps in (("SIFT1M-like", sift_sweeps),
                                     ("Paper-like", paper_sweeps)):
            per_method = {}
            for method in ROWS:
                per_method[method] = sweeps[method].distance_computations_at_recall(0.8)
            costs[dataset_name] = per_method
        oracle = {name: c["oracle partition"] for name, c in costs.items()}
        rows = []
        for method in ROWS:
            row = [method]
            for dataset_name in costs:
                cost = costs[dataset_name][method]
                if cost is None:
                    row.append("n/a")
                else:
                    pct = 100.0 * (cost / oracle[dataset_name] - 1.0)
                    row.append(f"{cost:.1f} ({pct:+.1f}%)")
            rows.append(row)
        table = render_table(
            ["method", "SIFT1M-like", "Paper-like"],
            rows,
            title="=== Table 3: # distance computations to reach 0.8 "
                  "recall (vs oracle) ===",
        )
        return table, costs

    table, costs = benchmark.pedantic(run, rounds=1, iterations=1)
    report(table)

    for dataset_name, per_method in costs.items():
        oracle = per_method["oracle partition"]
        acorn = per_method["ACORN-gamma"]
        post = per_method["HNSW post-filter"]
        assert oracle is not None and acorn is not None
        assert oracle <= acorn, f"{dataset_name}: oracle must be cheapest"
        if post is not None:
            assert post > acorn, (
                f"{dataset_name}: post-filtering must cost more than ACORN"
            )
