"""Figure 7: Recall@10 vs QPS on the LCPS datasets (SIFT1M, Paper).

Reproduces the paper's headline LCPS comparison: ACORN-γ vs ACORN-1,
the oracle partition upper bound, pre-/post-filtering, both
FilteredDiskANN algorithms, NHQ, and IVF-Flat, each swept over its
search-effort knob.  Shape claims checked:

- ACORN-γ reaches high recall (>= 0.9),
- ACORN-γ beats post-filtering at the 0.9-recall operating point,
- ACORN-1 approximates ACORN-γ (reaches high recall, somewhat slower),
- the oracle partition is the efficiency upper bound.
"""

import pytest

from repro.eval.plots import ascii_curves
from repro.eval.reporting import render_curve, render_sweeps


def _fig07_assertions(sweeps):
    acorn = sweeps["ACORN-gamma"]
    acorn_one = sweeps["ACORN-1"]
    post = sweeps["HNSW post-filter"]
    oracle = sweeps["oracle partition"]

    assert acorn.max_recall() >= 0.9, "ACORN-gamma must reach 0.9 recall"
    assert acorn_one.max_recall() >= 0.85, "ACORN-1 approximates ACORN-gamma"

    acorn_cost = acorn.distance_computations_at_recall(0.8)
    post_cost = post.distance_computations_at_recall(0.8)
    assert acorn_cost is not None
    if post_cost is not None:
        assert acorn_cost < post_cost, (
            "ACORN-gamma should need fewer distance computations than "
            "post-filtering at 0.8 recall"
        )

    oracle_cost = oracle.distance_computations_at_recall(0.8)
    assert oracle_cost is not None
    assert oracle_cost <= acorn_cost, (
        "the oracle partition is the efficiency upper bound"
    )


@pytest.mark.parametrize("which", ["sift", "paper"])
def test_fig07_lcps_recall_qps(which, sift_sweeps, paper_sweeps, sift_suite,
                               paper_suite, benchmark, report):
    sweeps = sift_sweeps if which == "sift" else paper_sweeps
    suite = sift_suite if which == "sift" else paper_suite

    def render():
        blocks = [
            f"=== Figure 7 ({which}): Recall@10 vs QPS — "
            f"{suite.dataset.name}, n={suite.dataset.num_vectors}, "
            f"d={suite.dataset.dim} ==="
        ]
        for sweep in sweeps.values():
            blocks.append(render_curve(sweep))
        blocks.append(render_sweeps(list(sweeps.values()), recall_target=0.9))
        blocks.append(
            ascii_curves(
                list(sweeps.values()), y_metric="dist",
                title="recall vs distance computations (log y)",
            )
        )
        return "\n\n".join(blocks)

    report(benchmark.pedantic(render, rounds=1, iterations=1))
    _fig07_assertions(sweeps)
