"""Ablation: the ACORN framework on a flat vs hierarchical substrate.

§5 positions predicate-subgraph traversal as a framework applicable to
"a variety of graph-based ANN indices".  Verify that concretely: the
same M·γ expansion + Mβ compression + filtered search on a single-level
(NSG/Vamana-style) graph must still answer hybrid queries at high
recall, with the hierarchy's benefit visible as routing efficiency.
"""

import os

import pytest

from repro.core import AcornIndex, AcornParams
from repro.core.flat import FlatAcornIndex
from repro.datasets import make_sift1m_like
from repro.eval import SweepRunner
from repro.eval.reporting import render_table
from repro.utils.timer import Timer

FIXED_EFFORT = 48


def scaled(base: int) -> int:
    return max(200, int(base * float(os.environ.get("REPRO_SCALE", "1"))))


@pytest.fixture(scope="module")
def substrate_results():
    dataset = make_sift1m_like(n=scaled(2500), dim=48, n_queries=80, seed=13)
    params = AcornParams(m=12, gamma=8, m_beta=24, ef_construction=40)
    runner = SweepRunner(dataset, k=10)
    results = {}
    for name, cls in (("hierarchical (HNSW substrate)", AcornIndex),
                      ("flat (NSG/Vamana substrate)", FlatAcornIndex)):
        with Timer() as t:
            index = cls.build(dataset.vectors, dataset.table, params=params,
                              seed=0)
        point = runner.run_point(index, FIXED_EFFORT)
        results[name] = {
            "tti": t.elapsed,
            "levels": index.graph.max_level + 1,
            "nbytes": index.nbytes(),
            "recall": point.recall,
            "ncomp": point.mean_distance_computations,
        }
    return results


def test_ablation_substrate(substrate_results, benchmark, report):
    def render():
        rows = [
            (name, r["levels"], r["tti"], r["nbytes"] / 1e6, r["recall"],
             r["ncomp"])
            for name, r in substrate_results.items()
        ]
        return render_table(
            ["substrate", "# levels", "TTI (s)", "index MB",
             f"recall@ef{FIXED_EFFORT}", "dist comps"],
            rows,
            title="=== Ablation: ACORN framework across graph substrates "
                  "(SIFT1M-like) ===",
        )

    report(benchmark.pedantic(render, rounds=1, iterations=1))

    hier = substrate_results["hierarchical (HNSW substrate)"]
    flat = substrate_results["flat (NSG/Vamana substrate)"]
    assert flat["levels"] == 1
    assert flat["recall"] >= 0.9, (
        "the framework must work on a flat substrate"
    )
    assert hier["recall"] >= 0.9
    # The flat index carries no gamma-expanded upper levels.
    assert flat["nbytes"] <= hier["nbytes"]
