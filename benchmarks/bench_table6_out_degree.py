"""Table 6: ACORN-γ average out-degree per level.

Confirms the compression works: the (compressed) level 0 stores far
shorter lists than the uncompressed upper levels, which may grow up to
M·γ; the top levels are small and sparsely populated.
"""

from repro.eval.reporting import render_table


def test_table6_average_out_degree(all_suites, benchmark, report):
    def run():
        degrees = {
            name: suite.acorn_gamma.out_degree_by_level()
            for name, suite in all_suites.items()
        }
        max_levels = max(len(d) for d in degrees.values())
        rows = []
        for level in range(max_levels):
            row = [f"Level {level}" + (" (compressed)" if level == 0 else "")]
            for name in degrees:
                row.append(degrees[name].get(level, "NA"))
            rows.append(row)
        params_row = ["M*gamma"]
        beta_row = ["M_beta"]
        for suite in all_suites.values():
            params_row.append(suite.params.max_degree)
            beta_row.append(suite.params.m_beta)
        rows.extend([params_row, beta_row])
        table = render_table(
            ["", *degrees.keys()],
            rows,
            title="=== Table 6: ACORN-gamma average out-degree per level ===",
        )
        return table, degrees

    table, degrees = benchmark.pedantic(run, rounds=1, iterations=1)
    report(table)

    for name, suite in all_suites.items():
        per_level = degrees[name]
        budget = suite.params.max_degree
        # Level 0 is compressed well below the upper levels' expansion.
        assert per_level[0] < per_level[1], (
            f"{name}: level 0 ({per_level[0]:.1f}) should be compressed "
            f"below level 1 ({per_level[1]:.1f})"
        )
        # Upper levels never exceed the M*gamma budget.
        for level, degree in per_level.items():
            if level >= 1:
                assert degree <= budget + 1e-9
