"""The Milvus family: IVF-Flat, IVF-SQ8, IVF-PQ, HNSW post-filter.

The paper tests four Milvus algorithms and, finding their hybrid-search
performance similar, plots only the Pareto-optimal one (§7.2).  This
bench runs all four on the SIFT1M-like benchmark, reports each curve,
and identifies the Pareto choice — the row the paper's Figure 7 would
have shown.
"""

import os

import pytest

from repro.baselines import (
    IvfFlatIndex,
    IvfPqIndex,
    IvfSq8Index,
    PostFilterSearcher,
)
from repro.datasets import make_sift1m_like
from repro.eval import SweepRunner
from repro.eval.reporting import render_sweeps
from repro.hnsw import HnswIndex


def scaled(base: int) -> int:
    return max(200, int(base * float(os.environ.get("REPRO_SCALE", "1"))))


@pytest.fixture(scope="module")
def milvus_sweeps():
    dataset = make_sift1m_like(n=scaled(3000), dim=48, n_queries=80, seed=14)
    hnsw = HnswIndex.build(dataset.vectors, m=16, ef_construction=48, seed=0)
    methods = {
        "Milvus IVF-Flat": IvfFlatIndex(dataset.vectors, dataset.table,
                                        seed=0),
        "Milvus IVF-SQ8": IvfSq8Index(dataset.vectors, dataset.table, seed=0),
        "Milvus IVF-PQ": IvfPqIndex(dataset.vectors, dataset.table,
                                    n_subspaces=8, n_centroids=64, seed=0),
        "Milvus HNSW (post-filter)": PostFilterSearcher(
            hnsw, dataset.table, max_oversearch=0.5
        ),
    }
    runner = SweepRunner(dataset, k=10)
    return {
        name: runner.sweep(name, method, efforts=(10, 40, 160, 640))
        for name, method in methods.items()
    }


def test_milvus_family(milvus_sweeps, benchmark, report):
    def render():
        summary = render_sweeps(list(milvus_sweeps.values()),
                                recall_target=0.9)
        reaching = {
            name: sweep.qps_at_recall(0.9)
            for name, sweep in milvus_sweeps.items()
            if sweep.qps_at_recall(0.9) is not None
        }
        pareto = max(reaching, key=reaching.get) if reaching else "none"
        return (
            "=== Milvus family on SIFT1M-like (the paper plots only the "
            "Pareto-optimal config) ===\n\n"
            + summary
            + f"\n\nPareto-optimal at 0.9 recall: {pareto}"
        )

    report(benchmark.pedantic(render, rounds=1, iterations=1))

    # At least two configs must reach 0.9 recall, and the exact-storage
    # IVF must match or beat the quantized ones on accuracy.
    reaching = [
        name for name, sweep in milvus_sweeps.items()
        if sweep.max_recall() >= 0.9
    ]
    assert len(reaching) >= 2
    flat = milvus_sweeps["Milvus IVF-Flat"].max_recall()
    assert flat >= milvus_sweeps["Milvus IVF-SQ8"].max_recall() - 0.02
    assert flat >= milvus_sweeps["Milvus IVF-PQ"].max_recall() - 0.02
