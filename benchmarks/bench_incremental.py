"""Production concern: incremental insertion and deletion.

ACORN's construction is incremental by design (one insert at a time,
like HNSW), so a deployed index must keep its recall as data streams in
and as entities are tombstoned.  Not a paper figure — a durability
check a downstream adopter needs:

- recall on the original workload holds after growing the index 25%,
- new points are immediately findable,
- tombstoning 5% of the corpus removes those points from results
  without collapsing recall on the survivors.
"""

import os

import numpy as np
import pytest

from repro.core import AcornIndex, AcornParams
from repro.datasets import make_laion_like
from repro.datasets.ground_truth import filtered_knn
from repro.eval.metrics import recall_at_k
from repro.eval.reporting import render_table
from repro.utils.timer import Timer


def scaled(base: int) -> int:
    return max(200, int(base * float(os.environ.get("REPRO_SCALE", "1"))))


@pytest.fixture(scope="module")
def incremental_results():
    full = make_laion_like(n=scaled(2500), dim=48, n_queries=60,
                           workload="no-cor", seed=12)
    n_initial = int(full.num_vectors * 0.8)

    params = AcornParams(m=12, gamma=12, m_beta=24, ef_construction=40)
    index = AcornIndex(full.dim, full.table, params=params, seed=0)
    with Timer() as initial_build:
        for vector in full.vectors[:n_initial]:
            index.add(vector)

    def measure_recall():
        compiled = full.compiled_predicates()
        live = np.ones(full.num_vectors, dtype=bool)
        live[list(index._deleted)] = False
        live[len(index):] = False
        gt = filtered_knn(
            full.vectors,
            [q.vector for q in full.queries],
            [c.mask & live for c in compiled],
            k=10,
        )
        recalls = [
            recall_at_k(
                index.search(q.vector, c, 10, ef_search=64).ids, truth, 10
            )
            for q, c, truth in zip(full.queries, compiled, gt)
        ]
        return float(np.mean(recalls))

    recall_initial = measure_recall()

    with Timer() as grow:
        for vector in full.vectors[n_initial:]:
            index.add(vector)
    recall_grown = measure_recall()

    # New points findable by identity lookups.
    gen = np.random.default_rng(0)
    probes = gen.choice(
        np.arange(n_initial, full.num_vectors), size=20, replace=False
    )
    from repro.predicates import TruePredicate

    found = sum(
        int(index.search(full.vectors[p], TruePredicate(), 1,
                         ef_search=32).ids[0] == p)
        for p in probes
    )

    victims = gen.choice(full.num_vectors, size=full.num_vectors // 20,
                         replace=False)
    for victim in victims:
        index.mark_deleted(int(victim))
    recall_after_delete = measure_recall()
    deleted_leaks = 0
    for q, c in zip(full.queries[:30], full.compiled_predicates()[:30]):
        result = index.search(q.vector, c, 10, ef_search=64)
        deleted_leaks += sum(int(index.is_deleted(int(i))) for i in result.ids)

    return {
        "n_initial": n_initial,
        "n_final": full.num_vectors,
        "initial_build_s": initial_build.elapsed,
        "grow_s": grow.elapsed,
        "recall_initial": recall_initial,
        "recall_grown": recall_grown,
        "new_points_found": found,
        "recall_after_delete": recall_after_delete,
        "deleted_leaks": deleted_leaks,
    }


def test_incremental_inserts_and_deletes(incremental_results, benchmark,
                                         report):
    res = incremental_results

    def render():
        rows = [
            ("initial build", f"{res['n_initial']} pts",
             res["initial_build_s"], res["recall_initial"]),
            ("after +25% inserts", f"{res['n_final']} pts", res["grow_s"],
             res["recall_grown"]),
            ("after 5% deletes", f"{res['n_final']} pts", "-",
             res["recall_after_delete"]),
        ]
        return render_table(
            ["phase", "size", "time (s)", "recall@10 (ef=64)"],
            rows,
            title="=== Incremental maintenance: streaming inserts + "
                  "tombstone deletes (LAION-like) ===",
        )

    report(benchmark.pedantic(render, rounds=1, iterations=1))

    assert res["recall_initial"] > 0.9
    assert res["recall_grown"] > 0.9, "recall must survive streaming growth"
    assert res["new_points_found"] >= 18, "new points must be findable"
    assert res["recall_after_delete"] > 0.85
    assert res["deleted_leaks"] == 0, "tombstoned points must never surface"
