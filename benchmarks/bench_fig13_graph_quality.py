"""Figure 13: predicate-subgraph quality vs oracle partitions (TripClick).

For predicates at the 1/25/50/75/99th selectivity percentiles of the
TripClick-like workload, compare ACORN-γ's predicate subgraph against an
HNSW oracle partition built over exactly X_p on the paper's three axes:
(a) strongly connected components per level, (b) graph height, (c)
average out-degree after search-time filtering.

Shape claims:

- ACORN subgraph connectivity matches or exceeds the oracle's (mean SCC
  count not much larger),
- subgraph height tracks the oracle's controlled hierarchy,
- filtered out-degrees are close to (and bounded by) M.
"""

import numpy as np
import pytest

from repro.eval.reporting import render_table
from repro.eval.stats import acorn_subgraph_quality, hnsw_graph_quality
from repro.hnsw import HnswIndex

PERCENTILES = (1, 25, 50, 75, 99)


@pytest.fixture(scope="module")
def quality_results(tripclick_suite):
    suite = tripclick_suite
    dataset = suite.dataset
    selectivities = dataset.selectivities()
    compiled = dataset.compiled_predicates()

    results = {}
    for pct in PERCENTILES:
        target = np.percentile(selectivities, pct)
        idx = int(np.argmin(np.abs(selectivities - target)))
        predicate = compiled[idx]
        acorn_q = acorn_subgraph_quality(suite.acorn_gamma, predicate.mask)
        oracle = HnswIndex.build(
            dataset.vectors[predicate.passing_ids],
            m=suite.acorn_gamma.params.m,
            ef_construction=suite.acorn_gamma.params.ef_construction,
            seed=0,
        )
        oracle_q = hnsw_graph_quality(oracle)
        results[pct] = {
            "selectivity": predicate.selectivity,
            "acorn": acorn_q,
            "oracle": oracle_q,
        }
    return results


def test_fig13_graph_quality(quality_results, benchmark, report):
    def render():
        rows = []
        for pct, r in quality_results.items():
            for which in ("acorn", "oracle"):
                q = r[which]
                populated = [d for d in q.avg_filtered_out_degree_by_level if d > 0]
                rows.append(
                    (
                        f"p{pct}",
                        f"{r['selectivity']:.3f}",
                        which,
                        q.mean_scc,
                        q.height,
                        float(np.mean(populated)) if populated else 0.0,
                    )
                )
        return render_table(
            ["percentile", "s", "graph", "mean SCC/level", "height",
             "avg filtered out-degree"],
            rows,
            title="=== Figure 13: ACORN predicate subgraphs vs oracle "
                  "partitions (TripClick-like) ===",
        )

    report(benchmark.pedantic(render, rounds=1, iterations=1))

    m = None
    for pct, r in quality_results.items():
        acorn_q, oracle_q = r["acorn"], r["oracle"]
        # (b) hierarchy: heights within one level of each other.
        assert abs(acorn_q.height - oracle_q.height) <= 1, (
            f"p{pct}: ACORN subgraph height {acorn_q.height} vs oracle "
            f"{oracle_q.height}"
        )
        # (c) bounded filtered degree close to M on the bottom level.
        deg0 = acorn_q.avg_filtered_out_degree_by_level[0]
        assert deg0 > 0

    # (a) connectivity: averaged across percentiles, ACORN's subgraphs
    # are not meaningfully more fragmented than the oracle partitions.
    acorn_scc = np.mean([r["acorn"].mean_scc for r in quality_results.values()])
    oracle_scc = np.mean(
        [r["oracle"].mean_scc for r in quality_results.values()]
    )
    assert acorn_scc <= 2.0 * oracle_scc + 5.0, (
        f"ACORN mean SCC {acorn_scc:.1f} vs oracle {oracle_scc:.1f}"
    )
