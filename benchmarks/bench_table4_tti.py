"""Table 4: time-to-index (seconds) for every method and dataset.

Construction wall-times are recorded while the shared benchmark suites
build (see conftest.MethodSuite).  Shape claims from the paper:

- ACORN-1 builds faster than ACORN-γ (the paper reports 9-53× lower
  TTI; the exact factor depends on γ and scale),
- ACORN-γ's TTI exceeds plain HNSW's (its M·γ candidate expansion),
- the specialized indices' TTI is of the same order as ACORN-γ's.
"""

from repro.eval.reporting import render_table

METHOD_ORDER = (
    "ACORN-gamma",
    "ACORN-1",
    "HNSW",
    "Flat (pre-filter)",
    "Oracle partitions",
    "FilteredVamana",
    "StitchedVamana",
    "NHQ",
    "Milvus IVF-Flat",
)


def test_table4_time_to_index(all_suites, benchmark, report):
    def render():
        rows = []
        for method in METHOD_ORDER:
            row = [method]
            for suite in all_suites.values():
                row.append(suite.tti.get(method, "NA"))
            rows.append(row)
        return render_table(
            ["method", *all_suites.keys()],
            rows,
            title="=== Table 4: TTI (s) — NA where the method cannot "
                  "serve the dataset's predicates ===",
        )

    report(benchmark.pedantic(render, rounds=1, iterations=1))

    for name, suite in all_suites.items():
        assert suite.tti["ACORN-1"] < suite.tti["ACORN-gamma"], (
            f"{name}: ACORN-1 must build faster than ACORN-gamma"
        )
        # The paper's bound: ACORN-gamma's TTI is at most ~11x HNSW's.
        # (The strict direction HNSW < ACORN-gamma does not always hold
        # here: our Python HNSW pays per-candidate RNG-heuristic loops
        # that the heuristic-free ACORN construction avoids, whereas in
        # the paper's C++ both are distance-computation-bound.)
        assert suite.tti["ACORN-gamma"] < 12 * suite.tti["HNSW"], (
            f"{name}: ACORN-gamma TTI should stay within the paper's "
            "~11x-of-HNSW bound"
        )
