"""Table 5: index size (vectors + index payload) per method and dataset.

Sizes follow the paper's methodology: total footprint of vector storage
plus the index structure.  Shape claims:

- the flat index (pre-filtering) is the floor,
- ACORN-γ is modestly larger than HNSW (the paper reports <= 1.3x),
- ACORN-1 is between HNSW and ACORN-γ.
"""

from repro.eval.reporting import render_table

MB = 1024 * 1024


def test_table5_index_size(all_suites, benchmark, report):
    def run():
        sizes = {}
        for name, suite in all_suites.items():
            per_method = {
                "ACORN-gamma": suite.acorn_gamma.nbytes(),
                "ACORN-1": suite.acorn_one.nbytes(),
                "HNSW": suite.hnsw.nbytes(),
                "Flat index": suite.prefilter.nbytes(),
            }
            if suite.oracle is not None:
                per_method["Oracle partitions"] = suite.oracle.nbytes()
                per_method["FilteredVamana"] = suite.filtered_vamana.nbytes()
                per_method["StitchedVamana"] = suite.stitched_vamana.nbytes()
            sizes[name] = per_method
        methods = ["ACORN-gamma", "ACORN-1", "HNSW", "Flat index",
                   "Oracle partitions", "FilteredVamana", "StitchedVamana"]
        rows = []
        for method in methods:
            row = [method]
            for name in sizes:
                value = sizes[name].get(method)
                row.append(f"{value / MB:.2f}" if value is not None else "NA")
            rows.append(row)
        table = render_table(
            ["method", *sizes.keys()],
            rows,
            title="=== Table 5: index size (MB), vectors + structure ===",
        )
        return table, sizes

    table, sizes = benchmark.pedantic(run, rounds=1, iterations=1)
    report(table)

    for name, per_method in sizes.items():
        flat = per_method["Flat index"]
        assert per_method["HNSW"] > flat
        assert per_method["ACORN-gamma"] > per_method["HNSW"]
        assert per_method["ACORN-1"] <= per_method["ACORN-gamma"]
        # The paper: ACORN-gamma <= ~1.3x HNSW and < 2x the flat index
        # (compression keeps the expansion affordable).  Allow slack for
        # the reduced-M regime.
        assert per_method["ACORN-gamma"] < 2.5 * flat
