"""Figure 9: QPS-recall across predicate-selectivity percentiles.

The paper buckets TripClick date-filter queries by predicate selectivity
(1st/25th/50th/75th/99th percentile) and traces one recall-QPS figure
per bucket.  Shape claims:

- ACORN-γ reaches high recall in every bucket,
- at the lowest-selectivity bucket pre-filtering is competitive (its
  scan is tiny), while post-filtering is at its worst,
- at high selectivity the pre-filter scan cost dominates while ACORN
  stays sublinear.
"""

import numpy as np
import pytest

from repro.baselines import PostFilterSearcher, PreFilterSearcher
from repro.eval import SweepRunner
from repro.eval.reporting import render_table

PERCENTILES = (1, 25, 50, 75, 99)
BUCKET = 20  # queries per percentile bucket


def _bucket_indices(selectivities, percentile, size):
    """Indices of the `size` queries nearest a selectivity percentile."""
    target = np.percentile(selectivities, percentile)
    return np.argsort(np.abs(selectivities - target))[:size].tolist()


def test_fig09_selectivity_sweep(tripclick_suite, tripclick_dates, benchmark,
                                 report):
    suite = tripclick_suite
    dataset = tripclick_dates
    selectivities = dataset.selectivities()
    post = PostFilterSearcher(suite.hnsw, dataset.table, max_oversearch=0.5)
    pre = PreFilterSearcher(dataset.vectors, dataset.table)
    methods = {
        "ACORN-gamma": suite.acorn_gamma,
        "ACORN-1": suite.acorn_one,
        "HNSW post-filter": post,
        "pre-filter": pre,
    }

    def run():
        rows = []
        results = {}
        for pct in PERCENTILES:
            bucket = dataset.subset_queries(
                _bucket_indices(selectivities, pct, BUCKET)
            )
            runner = SweepRunner(bucket, k=10)
            sweeps = {
                name: runner.sweep(name, method, efforts=(20, 80, 320))
                for name, method in methods.items()
            }
            results[pct] = sweeps
            for name, sweep in sweeps.items():
                cost = sweep.distance_computations_at_recall(0.9)
                rows.append(
                    (
                        f"p{pct}",
                        f"{bucket.selectivities().mean():.3f}",
                        name,
                        sweep.max_recall(),
                        cost if cost is not None else "n/a",
                    )
                )
        table = render_table(
            ["percentile", "avg s", "method", "max recall", "dist@0.9"],
            rows,
            title=(
                "=== Figure 9: TripClick-like date filters by selectivity "
                f"percentile (n={dataset.num_vectors}) ==="
            ),
        )
        return table, results

    table, results = benchmark.pedantic(run, rounds=1, iterations=1)
    report(table)

    for pct, sweeps in results.items():
        assert sweeps["ACORN-gamma"].max_recall() >= 0.85, (
            f"ACORN-gamma should reach high recall at percentile {pct}"
        )
        assert sweeps["pre-filter"].max_recall() == pytest.approx(1.0)

    # Pre-filtering's cost grows linearly with selectivity: at the top
    # bucket it must exceed ACORN-gamma's; at the bottom bucket it is
    # competitive (within a small factor).
    top = results[99]
    acorn_cost = top["ACORN-gamma"].distance_computations_at_recall(0.9)
    pre_cost = top["pre-filter"].distance_computations_at_recall(0.9)
    assert acorn_cost is not None and acorn_cost < pre_cost

    low = results[1]
    low_pre = low["pre-filter"].distance_computations_at_recall(0.9)
    low_acorn = low["ACORN-gamma"].distance_computations_at_recall(0.9)
    if low_acorn is not None:
        assert low_pre < 5 * max(low_acorn, 1.0), (
            "pre-filtering should be competitive at the lowest selectivity"
        )
