"""Ablation: fixed vs random search entry point.

§6.3.1 argues ACORN's *fixed* entry point is effective because the
γ-densified upper levels are (near-)fully connected, routing any query
to its predicate subgraph's entry regardless of correlation.  Compare
against restarting each query from a random node: the fixed entry
should be no worse, even on the negatively-correlated workload where a
random start is most likely to help by luck.
"""

import os

import numpy as np
import pytest

from repro.core import AcornIndex, AcornParams
from repro.datasets import make_laion_like
from repro.eval.metrics import recall_at_k
from repro.eval.reporting import render_table

FIXED_EFFORT = 64


def scaled(base: int) -> int:
    return max(200, int(base * float(os.environ.get("REPRO_SCALE", "1"))))


@pytest.fixture(scope="module")
def entry_results():
    results = {}
    for workload in ("no-cor", "neg-cor"):
        dataset = make_laion_like(n=scaled(2000), dim=48, n_queries=60,
                                  workload=workload, seed=8)
        params = AcornParams(m=12, gamma=10, m_beta=24, ef_construction=40)
        index = AcornIndex.build(dataset.vectors, dataset.table,
                                 params=params, seed=0)
        gt = dataset.ground_truth(10)
        compiled = dataset.compiled_predicates()
        rng = np.random.default_rng(0)

        per_strategy = {}
        for strategy in ("fixed", "random"):
            recalls, ncomps = [], []
            for query, predicate, truth in zip(dataset.queries, compiled, gt):
                entry = (
                    None
                    if strategy == "fixed"
                    else int(rng.integers(0, len(index)))
                )
                result = index.search(
                    query.vector, predicate, 10, ef_search=FIXED_EFFORT,
                    entry_point=entry,
                )
                recalls.append(recall_at_k(result.ids, truth, 10))
                ncomps.append(result.distance_computations)
            per_strategy[strategy] = (
                float(np.mean(recalls)),
                float(np.mean(ncomps)),
            )
        results[workload] = per_strategy
    return results


def test_ablation_entry_point(entry_results, benchmark, report):
    def render():
        rows = []
        for workload, per_strategy in entry_results.items():
            for strategy, (recall, ncomp) in per_strategy.items():
                rows.append((workload, strategy, recall, ncomp))
        return render_table(
            ["workload", "entry point", f"recall@ef{FIXED_EFFORT}",
             "dist comps"],
            rows,
            title="=== Ablation: fixed vs random search entry point "
                  "(LAION-like) ===",
        )

    report(benchmark.pedantic(render, rounds=1, iterations=1))

    for workload, per_strategy in entry_results.items():
        fixed_recall, _ = per_strategy["fixed"]
        random_recall, _ = per_strategy["random"]
        assert fixed_recall >= random_recall - 0.05, (
            f"{workload}: the fixed entry point should be no worse than "
            f"random restarts (fixed={fixed_recall:.3f}, "
            f"random={random_recall:.3f})"
        )
