"""Ablation: the neighbor-expansion factor γ.

§6.3 predicts the probability of an under-degree or disconnected
predicate subgraph decays exponentially in γ, and §5.2 prescribes
γ = 1/s_min.  Sweep γ at fixed M/Mβ/efc on a SIFT-like workload
(s ≈ 1/12) and verify:

- recall at a fixed operating point improves with γ and saturates
  around γ ≈ 1/s,
- TTI and index size grow with γ (the cost side of the trade),
- the search-time filtered degree grows toward M as γ·s·M passes M.
"""

import os

import pytest

from repro.core import AcornIndex, AcornParams
from repro.datasets import make_sift1m_like
from repro.eval import SweepRunner
from repro.eval.reporting import render_table
from repro.utils.timer import Timer

GAMMAS = (1, 2, 4, 8, 12, 16)
M = 12
FIXED_EFFORT = 48


def scaled(base: int) -> int:
    return max(200, int(base * float(os.environ.get("REPRO_SCALE", "1"))))


@pytest.fixture(scope="module")
def gamma_results():
    dataset = make_sift1m_like(n=scaled(2500), dim=48, n_queries=80, seed=6)
    runner = SweepRunner(dataset, k=10)
    results = {}
    for gamma in GAMMAS:
        params = AcornParams(m=M, gamma=gamma,
                             m_beta=min(2 * M, M * gamma),
                             ef_construction=40)
        with Timer() as t:
            index = AcornIndex.build(dataset.vectors, dataset.table,
                                     params=params, seed=0)
        point = runner.run_point(index, FIXED_EFFORT)
        results[gamma] = {
            "tti": t.elapsed,
            "nbytes": index.nbytes(),
            "recall": point.recall,
            "ncomp": point.mean_distance_computations,
        }
    return results


def test_ablation_gamma(gamma_results, benchmark, report):
    def render():
        rows = [
            (g, r["tti"], r["nbytes"] / 1e6, r["recall"], r["ncomp"])
            for g, r in gamma_results.items()
        ]
        return render_table(
            ["gamma", "TTI (s)", "index MB", f"recall@ef{FIXED_EFFORT}",
             "dist comps"],
            rows,
            title=(
                "=== Ablation: gamma sweep on SIFT1M-like "
                f"(M={M}, s ~ 1/12; paper prescribes gamma = 1/s_min) ==="
            ),
        )

    report(benchmark.pedantic(render, rounds=1, iterations=1))

    res = gamma_results
    # Recall improves substantially from gamma=1 to the prescribed
    # gamma ~ 1/s, then saturates.
    assert res[12]["recall"] > res[1]["recall"] + 0.05
    assert res[16]["recall"] >= res[12]["recall"] - 0.05
    # Costs grow with gamma.
    assert res[12]["nbytes"] > res[1]["nbytes"]
    assert res[12]["tti"] > res[1]["tti"]
