"""Tests for JSON experiment records."""

import json

import pytest

from repro.eval.export import load_results, save_results, sweeps_to_record
from repro.eval.runner import MethodSweep, SweepPoint


@pytest.fixture
def sweeps():
    return [
        MethodSweep(
            method="acorn",
            points=[
                SweepPoint(10, 0.9, 1000.0, 200.0, 0.001, 0.0009, 0.0015),
                SweepPoint(40, 0.99, 400.0, 320.0, 0.0025, 0.002, 0.004),
            ],
        ),
        MethodSweep(
            method="pre",
            points=[SweepPoint(10, 1.0, 20000.0, 300.0, 5e-05, 4e-05, 8e-05)],
        ),
    ]


class TestRecord:
    def test_structure(self, sweeps):
        record = sweeps_to_record("fig7-sift", sweeps, {"n": 4000})
        assert record["experiment"] == "fig7-sift"
        assert record["metadata"]["n"] == 4000
        assert len(record["methods"]) == 2
        assert record["methods"][0]["points"][0]["recall"] == 0.9

    def test_json_serializable(self, sweeps):
        json.dumps(sweeps_to_record("x", sweeps))


class TestRoundtrip:
    def test_save_load(self, sweeps, tmp_path):
        path = tmp_path / "run.json"
        save_results(path, "fig8-laion", sweeps, {"seed": 3})
        name, restored, metadata = load_results(path)
        assert name == "fig8-laion"
        assert metadata == {"seed": 3}
        assert len(restored) == 2
        for a, b in zip(restored, sweeps):
            assert a.method == b.method
            assert a.points == b.points

    def test_lookups_survive(self, sweeps, tmp_path):
        path = tmp_path / "run.json"
        save_results(path, "x", sweeps)
        _, restored, _ = load_results(path)
        assert restored[0].qps_at_recall(0.9) == 1000.0

    def test_schema_version_checked(self, sweeps, tmp_path):
        path = tmp_path / "run.json"
        save_results(path, "x", sweeps)
        record = json.loads(path.read_text())
        record["schema_version"] = 99
        path.write_text(json.dumps(record))
        with pytest.raises(ValueError, match="schema"):
            load_results(path)
