"""Unit tests for recall metrics."""

import numpy as np
import pytest

from repro.eval.metrics import mean_recall_at_k, recall_at_k


class TestRecallAtK:
    def test_perfect(self):
        assert recall_at_k(np.array([1, 2, 3]), np.array([1, 2, 3]), 3) == 1.0

    def test_partial(self):
        assert recall_at_k(np.array([1, 9, 8]), np.array([1, 2, 3]), 3) == (
            pytest.approx(1 / 3)
        )

    def test_order_irrelevant(self):
        assert recall_at_k(np.array([3, 1, 2]), np.array([1, 2, 3]), 3) == 1.0

    def test_truncated_ground_truth_scores_against_available(self):
        # 2 passing entities, k=10: retrieving both = perfect recall.
        assert recall_at_k(np.array([5, 6]), np.array([5, 6]), 10) == 1.0

    def test_empty_ground_truth_is_perfect(self):
        assert recall_at_k(np.array([]), np.array([]), 5) == 1.0

    def test_empty_retrieval_nonempty_truth(self):
        assert recall_at_k(np.array([]), np.array([1, 2]), 5) == 0.0

    def test_extra_retrieved_beyond_k_ignored_in_truth(self):
        # ground truth longer than k is clipped to k.
        got = recall_at_k(np.array([1, 2]), np.array([1, 2, 3, 4]), 2)
        assert got == 1.0

    def test_rejects_bad_k(self):
        with pytest.raises(ValueError):
            recall_at_k(np.array([1]), np.array([1]), 0)


class TestMeanRecall:
    def test_mean(self):
        got = mean_recall_at_k(
            [np.array([1]), np.array([9])],
            [np.array([1]), np.array([2])],
            k=1,
        )
        assert got == pytest.approx(0.5)

    def test_length_mismatch(self):
        with pytest.raises(ValueError, match="ground truths"):
            mean_recall_at_k([np.array([1])], [], k=1)

    def test_empty_workload(self):
        with pytest.raises(ValueError, match="empty"):
            mean_recall_at_k([], [], k=1)
