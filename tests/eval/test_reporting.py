"""Unit tests for text table rendering."""

from repro.eval.reporting import render_curve, render_sweeps, render_table
from repro.eval.runner import MethodSweep, SweepPoint


class TestRenderTable:
    def test_alignment_and_headers(self):
        out = render_table(["name", "value"], [["alpha", 1.5], ["b", 20.0]])
        lines = out.splitlines()
        assert lines[0].startswith("name")
        assert "alpha" in lines[2]

    def test_title(self):
        out = render_table(["x"], [[1]], title="hello")
        assert out.splitlines()[0] == "hello"

    def test_empty_rows(self):
        out = render_table(["a", "b"], [])
        assert "a" in out

    def test_large_numbers_thousand_separated(self):
        out = render_table(["n"], [[1234567.0]])
        assert "1,234,567" in out


class TestRenderSweeps:
    def _sweep(self, name, recall):
        return MethodSweep(
            method=name,
            points=[SweepPoint(10, recall, 100.0, 50.0, 0.01)],
        )

    def test_curve_contains_points(self):
        out = render_curve(self._sweep("acorn", 0.95))
        assert "acorn" in out
        assert "0.950" in out

    def test_summary_marks_unreachable(self):
        out = render_sweeps([self._sweep("weak", 0.5)], recall_target=0.9)
        assert "n/a" in out

    def test_summary_includes_reached(self):
        out = render_sweeps([self._sweep("strong", 0.95)], recall_target=0.9)
        assert "strong" in out and "100" in out


class TestFormattingEdgeCases:
    def test_negative_floats(self):
        out = render_table(["x"], [[-12.5], [-0.001]])
        assert "-12.5" in out

    def test_zero_formats_plainly(self):
        out = render_table(["x"], [[0.0]])
        assert "0" in out.splitlines()[-1]

    def test_mixed_types_aligned(self):
        out = render_table(["a", "b"], [["name", 1.5], ["longer-name", 12000.0]])
        lines = out.splitlines()
        assert len(lines[2]) <= len(lines[3]) + 14
