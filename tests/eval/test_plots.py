"""Tests for the ASCII curve renderer."""

import pytest

from repro.eval.plots import ascii_curves
from repro.eval.runner import MethodSweep, SweepPoint


def _sweep(name, points):
    return MethodSweep(
        method=name,
        points=[SweepPoint(e, r, q, d, 0.001) for e, r, q, d in points],
    )


@pytest.fixture
def sweeps():
    return [
        _sweep("fast", [(10, 0.5, 5000, 50), (40, 0.9, 1000, 200)]),
        _sweep("slow", [(10, 0.7, 200, 400), (40, 0.99, 50, 900)]),
    ]


class TestAsciiCurves:
    def test_contains_markers_and_legend(self, sweeps):
        out = ascii_curves(sweeps)
        assert "o fast" in out
        assert "x slow" in out
        assert "recall@K" in out

    def test_title(self, sweeps):
        out = ascii_curves(sweeps, title="Figure 7")
        assert out.splitlines()[0] == "Figure 7"

    def test_dist_metric(self, sweeps):
        out = ascii_curves(sweeps, y_metric="dist")
        assert "dist comps" in out

    def test_dimensions(self, sweeps):
        out = ascii_curves(sweeps, width=40, height=10)
        body = [l for l in out.splitlines() if l.rstrip().endswith("|")]
        assert len(body) == 10
        assert all(len(l.split("|")[1]) == 40 for l in body)

    def test_axis_extremes_labelled(self, sweeps):
        out = ascii_curves(sweeps)
        assert "0.50" in out and "0.99" in out

    def test_single_point_curve(self):
        out = ascii_curves([_sweep("p", [(10, 0.9, 100, 10)])])
        assert "o p" in out

    def test_validation(self, sweeps):
        with pytest.raises(ValueError, match="at least one"):
            ascii_curves([])
        with pytest.raises(ValueError, match="y_metric"):
            ascii_curves(sweeps, y_metric="latency")
