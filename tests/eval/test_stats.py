"""Unit tests for graph-quality statistics (Figure 13 machinery)."""

import numpy as np
import pytest

from repro.eval.stats import (
    acorn_subgraph_quality,
    hnsw_graph_quality,
    strongly_connected_components,
)
from repro.predicates import Equals


class TestScc:
    def test_single_cycle(self):
        adjacency = {0: [1], 1: [2], 2: [0]}
        components = strongly_connected_components(adjacency)
        assert len(components) == 1
        assert components[0] == {0, 1, 2}

    def test_chain_is_n_components(self):
        adjacency = {0: [1], 1: [2], 2: []}
        assert len(strongly_connected_components(adjacency)) == 3

    def test_two_cycles_bridge(self):
        adjacency = {0: [1], 1: [0, 2], 2: [3], 3: [2]}
        components = strongly_connected_components(adjacency)
        assert len(components) == 2
        assert {0, 1} in components and {2, 3} in components

    def test_empty_graph(self):
        assert strongly_connected_components({}) == []

    def test_isolated_nodes(self):
        adjacency = {0: [], 1: [], 2: []}
        assert len(strongly_connected_components(adjacency)) == 3

    def test_matches_networkx_on_random_graphs(self):
        networkx = pytest.importorskip("networkx")
        gen = np.random.default_rng(0)
        for trial in range(5):
            n = 40
            g = networkx.gnp_random_graph(
                n, 0.08, seed=int(gen.integers(1e6)), directed=True
            )
            adjacency = {v: list(g.successors(v)) for v in g.nodes}
            ours = len(strongly_connected_components(adjacency))
            theirs = len(list(networkx.strongly_connected_components(g)))
            assert ours == theirs


class TestSubgraphQuality:
    def test_acorn_full_mask_counts_everything(self, acorn_index):
        mask = np.ones(len(acorn_index), dtype=bool)
        quality = acorn_subgraph_quality(acorn_index, mask)
        assert quality.height == acorn_index.graph.max_level
        assert len(quality.scc_per_level) == acorn_index.graph.max_level + 1

    def test_acorn_predicate_subgraph_smaller_height(self, acorn_index):
        compiled = Equals("label", 0).compile(acorn_index.table)
        quality = acorn_subgraph_quality(acorn_index, compiled.mask)
        full = acorn_subgraph_quality(
            acorn_index, np.ones(len(acorn_index), dtype=bool)
        )
        assert quality.height <= full.height

    def test_out_degree_capped_at_m(self, acorn_index):
        mask = np.ones(len(acorn_index), dtype=bool)
        quality = acorn_subgraph_quality(acorn_index, mask)
        assert all(
            deg <= acorn_index.params.m
            for deg in quality.avg_filtered_out_degree_by_level
        )

    def test_empty_mask(self, acorn_index):
        quality = acorn_subgraph_quality(
            acorn_index, np.zeros(len(acorn_index), dtype=bool)
        )
        assert quality.height == 0
        assert all(c == 0 for c in quality.scc_per_level)

    def test_hnsw_quality(self, hnsw_index):
        quality = hnsw_graph_quality(hnsw_index)
        assert quality.height == hnsw_index.graph.max_level
        assert quality.avg_filtered_out_degree_by_level[0] > 0

    def test_mean_scc(self, hnsw_index):
        quality = hnsw_graph_quality(hnsw_index)
        assert quality.mean_scc >= 1.0


class TestPercentileSummary:
    """The empty-sample contract the serving layer leans on: an
    all-shed load window summarizes to count=0 with None statistics,
    never NaNs or fake zeros."""

    def test_empty_sample_is_all_none(self):
        from dataclasses import asdict

        from repro.eval.stats import percentile_summary

        summary = percentile_summary([])
        assert asdict(summary) == {
            "count": 0, "mean": None, "p50": None, "p95": None,
            "p99": None, "min": None, "max": None,
        }

    def test_empty_sample_accepts_generators(self):
        from repro.eval.stats import percentile_summary

        assert percentile_summary(x for x in ()).count == 0

    def test_nonempty_sample_stays_numeric(self):
        from dataclasses import asdict

        from repro.eval.stats import percentile_summary

        summary = percentile_summary([2.0, 4.0])
        assert summary.count == 2
        assert summary.mean == pytest.approx(3.0)
        assert summary.p50 == pytest.approx(3.0)
        assert summary.min == 2.0 and summary.max == 4.0
        assert all(v is not None for v in asdict(summary).values())
