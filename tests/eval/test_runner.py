"""Unit tests for the recall-QPS sweep runner."""

import pytest

from repro.baselines import PreFilterSearcher
from repro.eval.runner import MethodSweep, SweepPoint, SweepRunner


@pytest.fixture(scope="module")
def runner(sift_tiny):
    return SweepRunner(sift_tiny, k=10)


class TestSweepRunner:
    def test_prefilter_sweep_is_perfect_recall(self, runner, sift_tiny):
        searcher = PreFilterSearcher(sift_tiny.vectors, sift_tiny.table)
        sweep = runner.sweep("pre-filter", searcher, efforts=[10, 20])
        assert all(p.recall == pytest.approx(1.0) for p in sweep.points)

    def test_point_fields_populated(self, runner, sift_tiny):
        searcher = PreFilterSearcher(sift_tiny.vectors, sift_tiny.table)
        point = runner.run_point(searcher, effort=10)
        assert point.qps > 0
        assert point.mean_distance_computations > 0
        assert point.mean_latency_s > 0
        assert point.effort == 10

    def test_acorn_sweep_recall_rises_with_effort(self, sift_tiny):
        from repro.core import AcornIndex, AcornParams

        index = AcornIndex.build(
            sift_tiny.vectors, sift_tiny.table,
            params=AcornParams(m=8, gamma=12, m_beta=16, ef_construction=32),
            seed=0,
        )
        runner = SweepRunner(sift_tiny, k=10)
        sweep = runner.sweep("acorn", index, efforts=[4, 64])
        assert sweep.points[-1].recall >= sweep.points[0].recall


class TestMethodSweep:
    @pytest.fixture
    def sweep(self):
        return MethodSweep(
            method="m",
            points=[
                SweepPoint(10, 0.5, 900.0, 100.0, 0.001),
                SweepPoint(20, 0.92, 500.0, 220.0, 0.002),
                SweepPoint(40, 0.97, 250.0, 450.0, 0.004),
            ],
        )

    def test_qps_at_recall_picks_best_eligible(self, sweep):
        assert sweep.qps_at_recall(0.9) == 500.0

    def test_qps_at_recall_unreachable(self, sweep):
        assert sweep.qps_at_recall(0.99) is None

    def test_distance_computations_at_recall(self, sweep):
        assert sweep.distance_computations_at_recall(0.9) == 220.0

    def test_max_recall(self, sweep):
        assert sweep.max_recall() == 0.97


class TestCsvExport:
    def test_to_csv_roundtrip_fields(self):
        sweep = MethodSweep(
            method="m",
            points=[SweepPoint(10, 0.5, 900.0, 100.0, 0.001, 0.0009, 0.002)],
        )
        csv = sweep.to_csv()
        lines = csv.splitlines()
        assert lines[0].startswith("method,effort,recall")
        assert lines[1].startswith("m,10,0.500000,900.000,100.00")

    def test_one_row_per_point(self):
        sweep = MethodSweep(
            method="x",
            points=[
                SweepPoint(10, 0.5, 1.0, 1.0, 0.1),
                SweepPoint(20, 0.6, 2.0, 2.0, 0.2),
            ],
        )
        assert len(sweep.to_csv().splitlines()) == 3
