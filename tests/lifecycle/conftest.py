"""Shared fixtures for the streaming-lifecycle suites.

Everything here runs in the exhaustive regime (``M * gamma >= n``,
``ef_search`` larger than any live set), where graph search over the
passing rows is exact — so "lifecycle equals the rebuild-from-scratch
oracle" is an equality theorem, not a recall statistic.
"""

import numpy as np
import pytest

from repro.attributes.table import AttributeTable
from repro.core.params import AcornParams

PARAMS = AcornParams(m=8, gamma=8, m_beta=16, ef_construction=48)
DIM = 8
EF_EXHAUSTIVE = 512


def make_world(seed: int, n: int):
    """Initial dataset: random vectors + an int attribute column."""
    rng = np.random.default_rng(seed)
    vectors = rng.standard_normal((n, DIM)).astype(np.float32)
    table = AttributeTable(n)
    table.add_int_column("v", rng.integers(0, 4, size=n))
    return vectors, table, rng


class RebuildOracle:
    """The naive competitor: full history, rebuilt from scratch.

    Keeps every ``(external_id, vector, row)`` ever inserted plus the
    tombstone set, and answers queries by brute force over the live
    set — the semantics the lifecycle index must match exactly at
    every epoch.
    """

    def __init__(self, vectors, table):
        self.vectors = [np.asarray(v, dtype=np.float32)
                        for v in np.asarray(vectors)]
        self.rows = [table.row(i) for i in range(len(table))]
        self.deleted = set()

    def insert(self, vector, row):
        self.vectors.append(np.asarray(vector, dtype=np.float32))
        self.rows.append(dict(row))
        return len(self.vectors) - 1

    def delete(self, external_id):
        if external_id in self.deleted:
            return False
        self.deleted.add(int(external_id))
        return True

    def live_ids(self):
        return np.asarray(
            [i for i in range(len(self.vectors)) if i not in self.deleted],
            dtype=np.int64,
        )

    def live_table(self):
        live = self.live_ids()
        table = AttributeTable(live.shape[0])
        table.add_int_column(
            "v", np.asarray([self.rows[i]["v"] for i in live.tolist()])
        )
        return live, table

    def topk(self, query, predicate, k):
        """Exact ``[(distance, id), ...]`` over live, passing entities."""
        live, table = self.live_table()
        if live.shape[0] == 0:
            return []
        mask = np.asarray(predicate.mask(table), dtype=bool)
        passing = live[mask]
        if passing.shape[0] == 0:
            return []
        mat = np.stack([self.vectors[i] for i in passing.tolist()])
        q = np.asarray(query, dtype=np.float32)
        dists = np.sum((mat - q[None, :]) ** 2, axis=1)
        order = np.lexsort((passing, dists))[:k]
        return [(float(dists[i]), int(passing[i])) for i in order.tolist()]

    def topk_ids(self, query, predicate, k):
        return [e for _, e in self.topk(query, predicate, k)]


def apply_ops(lifecycle, oracle, ops):
    """Replay one op tape against both sides, asserting id agreement."""
    for op in ops:
        if op[0] == "insert":
            got = lifecycle.insert(op[1], op[2])
            want = oracle.insert(op[1], op[2])
            assert got == want, f"id drift: lifecycle {got}, oracle {want}"
        else:
            got = lifecycle.delete(op[1])
            want = oracle.delete(op[1])
            assert got == want


def assert_matches_oracle(lifecycle, oracle, queries, predicates, k=5):
    """Every query's lifecycle ids equal the brute-force oracle's."""
    for q in queries:
        for pred in predicates:
            res = lifecycle.search(q, pred, k, ef_search=EF_EXHAUSTIVE)
            want = oracle.topk_ids(q, pred, k)
            assert res.ids.tolist() == want, (
                f"lifecycle {res.ids.tolist()} != oracle {want} "
                f"at epoch {res.epoch}"
            )


@pytest.fixture
def small_world():
    return make_world(seed=11, n=32)
