"""Golden + corruption tests for the WAL journal and epoch manifest.

The journal's line format and the manifest's key set are wire formats:
other tooling (and future versions of this code) parse them, so their
shape is pinned here.  Every corruption test asserts the error message
names the broken file (and line, for journal records) — the
operator-first contract shared with the shard manifest loader.
"""

import json

import numpy as np
import pytest

from repro.lifecycle import (
    DeltaJournal,
    JournalError,
    LifecycleConfig,
    LifecycleIndex,
    LifecycleLoadError,
    load_lifecycle,
    save_lifecycle,
)
from repro.predicates import TruePredicate

from tests.lifecycle.conftest import (
    DIM,
    EF_EXHAUSTIVE,
    PARAMS,
    make_world,
)

pytestmark = pytest.mark.lifecycle

MANIFEST_KEYS = {
    "format", "format_version", "epoch", "next_external_id",
    "n_base", "n_delta", "tombstones", "files", "checksums",
}


def make_saved(tmp_path, seed=91, n=16, n_writes=6):
    vectors, table, rng = make_world(seed, n)
    lc = LifecycleIndex.build(vectors, table, params=PARAMS, seed=0)
    for i in range(n_writes):
        lc.insert(rng.standard_normal(DIM).astype(np.float32),
                  {"v": i % 4})
    lc.delete(0)
    lc.delete(n + 1)
    root = save_lifecycle(lc, tmp_path / "archive")
    return lc, root, rng


class TestJournalGolden:
    def test_record_shapes(self):
        rec = DeltaJournal.insert_record(
            0, 7, np.array([1.0, 2.0], dtype=np.float32),
            {"v": np.int64(3)},
        )
        assert rec == {
            "op": "insert", "seq": 0, "external_id": 7,
            "vector": [1.0, 2.0], "row": {"v": 3},
        }
        assert DeltaJournal.delete_record(4, 9) == {
            "op": "delete", "seq": 4, "external_id": 9,
        }

    def test_line_format_pinned(self, tmp_path):
        journal = DeltaJournal(tmp_path / "j.jsonl")
        journal.append(DeltaJournal.delete_record(0, 3))
        line = (tmp_path / "j.jsonl").read_text().strip()
        wrapper = json.loads(line)
        assert set(wrapper) == {"crc", "data"}
        assert len(wrapper["crc"]) == 12
        # canonical encoding: sorted keys, no spaces
        assert line.startswith('{"crc":"')
        assert journal.replay() == [
            {"op": "delete", "seq": 0, "external_id": 3}
        ]

    def test_roundtrip_many(self, tmp_path):
        journal = DeltaJournal(tmp_path / "j.jsonl")
        records = [
            DeltaJournal.insert_record(
                i, 10 + i, np.arange(3, dtype=np.float32) + i, {"v": i}
            )
            for i in range(5)
        ]
        journal.append_many(records)
        assert journal.replay() == records
        assert len(journal) == 5


class TestJournalCorruption:
    def _write_one(self, tmp_path):
        journal = DeltaJournal(tmp_path / "j.jsonl")
        journal.append(DeltaJournal.delete_record(0, 3))
        journal.append(DeltaJournal.delete_record(1, 4))
        return journal

    def test_missing_file_named(self, tmp_path):
        with pytest.raises(JournalError, match="j.jsonl.*missing"):
            DeltaJournal(tmp_path / "j.jsonl").replay()

    def test_torn_line_names_file_and_line(self, tmp_path):
        journal = self._write_one(tmp_path)
        raw = journal.path.read_text().splitlines()
        journal.path.write_text(raw[0] + "\n" + raw[1][: len(raw[1]) // 2])
        with pytest.raises(JournalError, match=r"j\.jsonl: line 2:"):
            journal.replay()

    def test_flipped_payload_fails_crc(self, tmp_path):
        journal = self._write_one(tmp_path)
        text = journal.path.read_text().replace(
            '"external_id":4', '"external_id":5'
        )
        journal.path.write_text(text)
        with pytest.raises(
            JournalError, match=r"line 2: checksum mismatch"
        ):
            journal.replay()

    def test_dropped_record_breaks_sequence(self, tmp_path):
        journal = self._write_one(tmp_path)
        raw = journal.path.read_text().splitlines()
        journal.path.write_text(raw[1] + "\n")
        with pytest.raises(JournalError, match=r"line 1: sequence break"):
            journal.replay()


class TestManifestGolden:
    def test_manifest_keys_and_files(self, tmp_path):
        _, root, _ = make_saved(tmp_path)
        manifest = json.loads((root / "manifest.json").read_text())
        assert set(manifest) == MANIFEST_KEYS
        assert manifest["format"] == "repro-lifecycle-epoch"
        assert manifest["format_version"] == 1
        assert manifest["files"] == [
            "base.npz", "base_ids.npz", "delta.jsonl"
        ]
        assert set(manifest["checksums"]) == set(manifest["files"])
        for name in manifest["files"]:
            assert (root / name).exists()

    def test_roundtrip_preserves_search_and_state(self, tmp_path):
        lc, root, rng = make_saved(tmp_path)
        restored = load_lifecycle(
            root, config=LifecycleConfig(), clock=lc.clock
        )
        assert restored.current_epoch == lc.current_epoch
        assert restored.next_external_id == lc.next_external_id
        assert np.array_equal(restored.live_ids(), lc.live_ids())
        for _ in range(3):
            q = rng.standard_normal(DIM).astype(np.float32)
            a = lc.search(q, TruePredicate(), 5, ef_search=EF_EXHAUSTIVE)
            b = restored.search(q, TruePredicate(), 5,
                                ef_search=EF_EXHAUSTIVE)
            assert a.ids.tolist() == b.ids.tolist()
            assert a.distances.tolist() == b.distances.tolist()

    def test_restored_lifecycle_keeps_writing(self, tmp_path):
        lc, root, rng = make_saved(tmp_path)
        restored = load_lifecycle(root)
        new_id = restored.insert(
            rng.standard_normal(DIM).astype(np.float32), {"v": 0}
        )
        assert new_id == lc.next_external_id
        restored.compact(seed=0)
        assert restored.delta_size() == 0


class TestManifestCorruption:
    def test_missing_manifest_named(self, tmp_path):
        with pytest.raises(LifecycleLoadError, match="manifest.json"):
            load_lifecycle(tmp_path / "nope")

    def test_missing_piece_named(self, tmp_path):
        _, root, _ = make_saved(tmp_path)
        (root / "base_ids.npz").unlink()
        with pytest.raises(LifecycleLoadError, match="base_ids.npz"):
            load_lifecycle(root)

    def test_corrupt_base_named(self, tmp_path):
        _, root, _ = make_saved(tmp_path)
        payload = bytearray((root / "base.npz").read_bytes())
        payload[len(payload) // 2] ^= 0xFF
        (root / "base.npz").write_bytes(bytes(payload))
        with pytest.raises(
            LifecycleLoadError, match=r"checksum mismatch for .*base\.npz"
        ):
            load_lifecycle(root)

    def test_corrupt_journal_line_named(self, tmp_path):
        _, root, _ = make_saved(tmp_path)
        journal_path = root / "delta.jsonl"
        lines = journal_path.read_text().splitlines()
        lines[0] = lines[0].replace('"op":"insert"', '"op":"INSERT"')
        journal_path.write_text("\n".join(lines) + "\n")
        # manifest checksum catches the edit first and names the file
        with pytest.raises(
            LifecycleLoadError, match=r"delta\.jsonl"
        ):
            load_lifecycle(root)

    def test_wrong_version_refused(self, tmp_path):
        _, root, _ = make_saved(tmp_path)
        manifest = json.loads((root / "manifest.json").read_text())
        manifest["format_version"] = 99
        (root / "manifest.json").write_text(json.dumps(manifest))
        with pytest.raises(LifecycleLoadError, match="format_version"):
            load_lifecycle(root)
