"""Chaos: kill the compactor mid-merge, respawn it, verify no damage.

A compaction that dies at any stage (after the cut, during the build,
right before install) must leave the lifecycle exactly as it was:
readers keep the old epoch and still answer with full fidelity
(recall ceiling 1.0 — results equal the brute-force oracle), no
partially-installed epoch is ever visible, and a respawned compactor
completes the merge the crash abandoned.
"""

import numpy as np
import pytest

from repro.lifecycle import (
    COMPACTION_STAGES,
    BackgroundCompactor,
    CompactorFaultPlan,
    CompactorKilled,
    LifecycleConfig,
    LifecycleIndex,
)
from repro.predicates import TruePredicate
from repro.utils.clock import FakeClock

from tests.lifecycle.conftest import (
    DIM,
    EF_EXHAUSTIVE,
    PARAMS,
    RebuildOracle,
    apply_ops,
    assert_matches_oracle,
    make_world,
)
from tests.lifecycle.test_equivalence_harness import (
    graph_fingerprint,
    ops_tape,
)

pytestmark = pytest.mark.lifecycle


def make_mutated(seed=71, n=20, n_ops=14):
    vectors, table, rng = make_world(seed, n)
    lc = LifecycleIndex.build(vectors, table, params=PARAMS, seed=0)
    oracle = RebuildOracle(vectors, table)
    apply_ops(lc, oracle, ops_tape(rng, n, n_ops))
    return lc, oracle, rng


class TestKillAtEveryStage:
    @pytest.mark.parametrize("stage", COMPACTION_STAGES)
    def test_crash_leaves_old_epoch_fully_intact(self, stage):
        lc, oracle, rng = make_mutated()
        queries = rng.standard_normal((2, DIM)).astype(np.float32)
        epoch_before = lc.current_epoch
        base_before = graph_fingerprint(lc._base)
        live_before = lc.live_ids()

        def kill(reached):
            if reached == stage:
                raise CompactorKilled(f"injected kill at {reached}")

        with pytest.raises(CompactorKilled):
            lc.compact(seed=0, on_stage=kill)

        # No partial epoch: the published snapshot is the old one (for
        # a pre-install kill) or at most re-published over identical
        # state; either way readers see exactly the old live set and
        # exact results (recall ceiling 1.0 against the oracle).
        assert graph_fingerprint(lc._base) == base_before
        assert np.array_equal(lc.live_ids(), live_before)
        assert lc.current_epoch >= epoch_before
        assert_matches_oracle(lc, oracle, queries,
                              [TruePredicate()])

        # Respawn: the retry re-merges everything the crash abandoned.
        report = lc.compact(seed=0)
        assert report.n_live == live_before.shape[0]
        assert lc.delta_size() == 0
        assert np.array_equal(lc.live_ids(), live_before)
        assert_matches_oracle(lc, oracle, queries, [TruePredicate()])

    def test_crash_equals_never_started(self):
        """A killed compaction then retry == a single clean compaction.

        The graph after crash+retry must be byte-identical to the graph
        a never-crashed twin produces — the cut/seal bookkeeping leaves
        no residue in the builder input.
        """
        lc_a, _, _ = make_mutated(seed=73)
        lc_b, _, _ = make_mutated(seed=73)

        def kill(reached):
            if reached == "build":
                raise CompactorKilled("injected")

        with pytest.raises(CompactorKilled):
            lc_a.compact(seed=5, on_stage=kill)
        lc_a.compact(seed=5)
        lc_b.compact(seed=5)
        assert graph_fingerprint(lc_a._base) == graph_fingerprint(lc_b._base)
        assert np.array_equal(lc_a.live_ids(), lc_b.live_ids())


class TestSeededBackgroundChaos:
    def test_seeded_kills_then_recovery(self):
        """A seeded fault plan kills some attempts; ticks in between
        keep answering exactly; the survivors finish the merges."""
        vectors, table, rng = make_world(79, 24)
        clock = FakeClock()
        lc = LifecycleIndex.build(
            vectors, table, params=PARAMS, seed=0,
            config=LifecycleConfig(
                compact_min_delta=4, compact_delta_fraction=0.05,
            ),
            clock=clock,
        )
        oracle = RebuildOracle(vectors, table)
        plan = CompactorFaultPlan.seeded(seed=13, n_kills=2)
        compactor = BackgroundCompactor(
            lc, interval_s=0.1, fault_plan=plan, clock=clock
        )
        queries = rng.standard_normal((2, DIM)).astype(np.float32)
        for op in ops_tape(rng, 24, 40):
            apply_ops(lc, oracle, [op])
            clock.advance(0.05)
            compactor.tick()
            assert_matches_oracle(lc, oracle, queries, [TruePredicate()])
        assert compactor.crashes >= 1, "fault plan never fired"
        # Drain: past the fault plan's kill window, a few more ticks
        # must complete the pending merge.
        for _ in range(8):
            clock.advance(0.2)
            compactor.tick()
        assert compactor.compactions >= 1
        assert_matches_oracle(lc, oracle, queries, [TruePredicate()])
        stats = compactor.stats()
        assert stats["crashes"] == compactor.crashes
        assert stats["attempts"] >= stats["crashes"] + stats["compactions"]

    def test_fault_plan_seeding_is_deterministic(self):
        a = CompactorFaultPlan.seeded(seed=3, n_kills=3)
        b = CompactorFaultPlan.seeded(seed=3, n_kills=3)
        assert a.kill_attempts == b.kill_attempts
        assert all(s in COMPACTION_STAGES
                   for s in a.kill_attempts.values())

    def test_reader_holding_snapshot_across_crash(self):
        lc, oracle, rng = make_mutated(seed=83)
        q = rng.standard_normal(DIM).astype(np.float32)
        snap = lc.acquire_read_snapshot()
        want_ids = snap.search(
            q, TruePredicate(), 5, ef_search=EF_EXHAUSTIVE
        ).ids.tolist()

        def kill(reached):
            if reached == "install":
                raise CompactorKilled("injected at install")

        with pytest.raises(CompactorKilled):
            lc.compact(seed=0, on_stage=kill)
        got = snap.search(q, TruePredicate(), 5, ef_search=EF_EXHAUSTIVE)
        assert got.ids.tolist() == want_ids
        lc.release_read_snapshot(snap)


class TestCompactionContention:
    """Losing the compaction admission race is a no-op, not a failure.

    ``should_compact()`` drops the lock before ``compact()`` reacquires
    it, so two concurrent tickers can both see the policy fire; the
    loser must quietly yield instead of propagating a RuntimeError out
    of whatever host drove the tick (e.g. an applied write's
    ``AcornService.submit_write``)."""

    def test_compact_raises_typed_in_progress_error(self):
        from repro.lifecycle import CompactionInProgress

        lc, _, _ = make_mutated(seed=89)
        lc._compacting = True
        try:
            with pytest.raises(CompactionInProgress):
                lc.compact(seed=0)
        finally:
            lc._compacting = False
        # still a RuntimeError for callers catching the old contract
        assert issubclass(CompactionInProgress, RuntimeError)

    def _eager_lifecycle(self, seed):
        vectors, table, rng = make_world(seed, 20)
        lc = LifecycleIndex.build(
            vectors, table, params=PARAMS, seed=0,
            config=LifecycleConfig(compact_min_delta=1),
        )
        apply_ops(lc, RebuildOracle(vectors, table), ops_tape(rng, 20, 10))
        assert lc.should_compact()
        return lc

    def test_tick_yields_when_losing_the_race(self):
        lc = self._eager_lifecycle(seed=91)
        compactor = BackgroundCompactor(lc)

        def racy_should_compact():
            # the moment between this ticker's policy check and its
            # compact() call, a concurrent compaction claims the merge
            lc._compacting = True
            return True

        lc.should_compact = racy_should_compact
        try:
            assert compactor.tick() is None
        finally:
            lc._compacting = False
            del lc.should_compact
        # nothing ran: no crash counted, and the attempt index driving
        # the seeded fault schedule was handed back
        assert compactor.attempts == 0
        assert compactor.crashes == 0
        assert compactor.compactions == 0
        # with the contention gone, the same compactor completes
        report = compactor.tick()
        assert report is not None
        assert compactor.compactions == 1

    def test_maybe_compact_yields_when_losing_the_race(self):
        lc = self._eager_lifecycle(seed=97)

        def racy_should_compact():
            lc._compacting = True
            return True

        lc.should_compact = racy_should_compact
        try:
            assert lc.maybe_compact(seed=0) is None
        finally:
            lc._compacting = False
            del lc.should_compact
        assert lc.maybe_compact(seed=0) is not None
