"""Sharded lifecycles: scatter-gather equivalence and hot-shard splits.

The sharded composition must be invisible to readers: global-id
results equal the brute-force oracle over all live entities, before
and after per-shard compactions and median splits of the hottest
attribute range.
"""

import numpy as np
import pytest

from repro.attributes.table import AttributeTable
from repro.lifecycle import LifecycleConfig, ShardedLifecycleIndex
from repro.predicates import Between, TruePredicate

from tests.lifecycle.conftest import DIM, EF_EXHAUSTIVE, PARAMS

pytestmark = pytest.mark.lifecycle


def make_sharded_world(seed: int, n: int, n_shards: int = 3):
    rng = np.random.default_rng(seed)
    vectors = rng.standard_normal((n, DIM)).astype(np.float32)
    table = AttributeTable(n)
    table.add_int_column("r", rng.integers(0, 100, size=n))
    table.add_int_column("v", rng.integers(0, 4, size=n))
    sharded = ShardedLifecycleIndex.build(
        vectors, table, route_key="r", n_shards=n_shards,
        params=PARAMS, seed=0, config=LifecycleConfig(),
    )
    return sharded, vectors, table, rng


class GlobalOracle:
    """Brute force over every live (global id, vector, row)."""

    def __init__(self, vectors, table):
        self.entries = {
            i: (np.asarray(vectors[i], dtype=np.float32), table.row(i))
            for i in range(len(table))
        }
        self.deleted = set()
        self.next_id = len(table)

    def insert(self, vector, row):
        self.entries[self.next_id] = (
            np.asarray(vector, dtype=np.float32), dict(row)
        )
        self.next_id += 1
        return self.next_id - 1

    def delete(self, global_id):
        if global_id in self.deleted or global_id not in self.entries:
            return False
        self.deleted.add(global_id)
        return True

    def live_ids(self):
        return np.asarray(
            sorted(g for g in self.entries if g not in self.deleted),
            dtype=np.int64,
        )

    def topk_ids(self, query, predicate, k):
        live = self.live_ids().tolist()
        if not live:
            return []
        table = AttributeTable(len(live))
        table.add_int_column(
            "r", np.asarray([self.entries[g][1]["r"] for g in live])
        )
        table.add_int_column(
            "v", np.asarray([self.entries[g][1]["v"] for g in live])
        )
        mask = np.asarray(predicate.mask(table), dtype=bool)
        passing = np.asarray(live, dtype=np.int64)[mask]
        if passing.shape[0] == 0:
            return []
        mat = np.stack([self.entries[g][0] for g in passing.tolist()])
        q = np.asarray(query, dtype=np.float32)
        dists = np.sum((mat - q[None, :]) ** 2, axis=1)
        order = np.lexsort((passing, dists))[:k]
        return [int(passing[i]) for i in order.tolist()]


PREDICATES = [TruePredicate(), Between("v", 1, 2), Between("r", 10, 60)]


def assert_sharded_matches(sharded, oracle, queries, k=5):
    for q in queries:
        for pred in PREDICATES:
            got = sharded.search(q, pred, k, ef_search=EF_EXHAUSTIVE)
            want = oracle.topk_ids(q, pred, k)
            assert got.ids.tolist() == want
    assert np.array_equal(sharded.live_global_ids(), oracle.live_ids())


def seeded_mutations(sharded, oracle, rng, n_ops, hot_range=None):
    for _ in range(n_ops):
        if rng.random() < 0.3 and oracle.next_id > 0:
            target = int(rng.integers(0, oracle.next_id))
            assert sharded.delete(target) == oracle.delete(target)
        else:
            if hot_range is not None:
                key = int(rng.integers(*hot_range))
            else:
                key = int(rng.integers(0, 100))
            vec = rng.standard_normal(DIM).astype(np.float32)
            row = {"r": key, "v": int(rng.integers(0, 4))}
            assert sharded.insert(vec, row) == oracle.insert(vec, row)


class TestScatterGatherEquivalence:
    def test_matches_oracle_through_mutations_and_compaction(self):
        sharded, vectors, table, rng = make_sharded_world(5, 30)
        oracle = GlobalOracle(vectors, table)
        queries = rng.standard_normal((3, DIM)).astype(np.float32)
        assert_sharded_matches(sharded, oracle, queries)
        seeded_mutations(sharded, oracle, rng, 25)
        assert_sharded_matches(sharded, oracle, queries)
        sharded.compact_all(seed=0)
        assert_sharded_matches(sharded, oracle, queries)

    def test_epoch_telemetry_sums_shards(self):
        sharded, vectors, table, rng = make_sharded_world(7, 20)
        q = rng.standard_normal(DIM).astype(np.float32)
        res = sharded.search(q, TruePredicate(), 5,
                             ef_search=EF_EXHAUSTIVE)
        want = sum(s.current_epoch for s in sharded.shards)
        assert res.epoch == want


class TestHotShardSplit:
    def test_split_preserves_reads_and_global_ids(self):
        sharded, vectors, table, rng = make_sharded_world(11, 24)
        oracle = GlobalOracle(vectors, table)
        queries = rng.standard_normal((3, DIM)).astype(np.float32)
        # Hammer one attribute range so a single shard heats up.
        seeded_mutations(sharded, oracle, rng, 30, hot_range=(0, 30))
        n_before = sharded.n_shards
        report = sharded.maybe_split(
            max_live=max(sharded.shard_live_counts()) - 1, seed=0
        )
        assert report is not None
        assert sharded.n_shards == n_before + 1
        assert report["left_live"] + report["right_live"] >= 2
        assert sharded.splits == 1
        assert_sharded_matches(sharded, oracle, queries)

    def test_split_then_more_mutations_stay_consistent(self):
        sharded, vectors, table, rng = make_sharded_world(13, 24)
        oracle = GlobalOracle(vectors, table)
        queries = rng.standard_normal((2, DIM)).astype(np.float32)
        seeded_mutations(sharded, oracle, rng, 25, hot_range=(40, 80))
        sharded.maybe_split(
            max_live=max(sharded.shard_live_counts()) - 1, seed=0
        )
        # Writes keep routing correctly across the rewritten table,
        # including deletes of ids the split physically dropped.
        seeded_mutations(sharded, oracle, rng, 25)
        assert_sharded_matches(sharded, oracle, queries)
        sharded.compact_all(seed=0)
        assert_sharded_matches(sharded, oracle, queries)

    def test_no_split_when_cold(self):
        sharded, _, _, _ = make_sharded_world(17, 18)
        assert sharded.maybe_split(max_live=10_000) is None
        assert sharded.splits == 0

    def test_stats_shape(self):
        sharded, _, _, _ = make_sharded_world(19, 18)
        stats = sharded.stats()
        assert stats["n_shards"] == sharded.n_shards
        assert len(stats["shard_live"]) == sharded.n_shards
        assert stats["live"] == sum(stats["shard_live"])
        assert len(stats["shards"]) == sharded.n_shards


class TestGlobalTieBreakContract:
    """Equal distances straddling a shard's k cut must resolve exactly
    as the global (distance, global_id) lexsort the oracle uses.

    This works because each shard's local→global id mapping is strictly
    increasing (enforced by ``_check_monotone_rev``), so the k
    survivors a shard picks on local-id ties are exactly the k it
    would pick on global-id ties — a shard can never drop a tie member
    the global top-k needs.
    """

    def _tied_world(self, n=18, n_shards=3):
        rng = np.random.default_rng(41)
        # every entity shares one vector: all distances tie, so the
        # entire selection is decided by id tie-breaking alone
        base_vec = rng.standard_normal(DIM).astype(np.float32)
        vectors = np.tile(base_vec, (n, 1))
        table = AttributeTable(n)
        table.add_int_column("r", np.arange(n) * 5)  # spread over shards
        table.add_int_column("v", np.zeros(n, dtype=np.int64))
        sharded = ShardedLifecycleIndex.build(
            vectors, table, route_key="r", n_shards=n_shards,
            params=PARAMS, seed=0, config=LifecycleConfig(),
        )
        return sharded, vectors, table, base_vec, rng

    def test_all_tied_distances_select_smallest_global_ids(self):
        sharded, vectors, table, q, _ = self._tied_world()
        oracle = GlobalOracle(vectors, table)
        for k in (1, 4, 5, 7, 18):
            got = sharded.search(q, TruePredicate(), k,
                                 ef_search=EF_EXHAUSTIVE)
            assert got.ids.tolist() == oracle.topk_ids(q, TruePredicate(), k)
            assert got.ids.tolist() == list(range(min(k, 18)))

    def test_ties_across_mutations_and_compaction(self):
        sharded, vectors, table, q, rng = self._tied_world()
        oracle = GlobalOracle(vectors, table)
        # delete low globals so the tie-group membership shifts, then
        # insert more duplicates of the same vector into every range
        for g in (0, 2, 4, 7):
            assert sharded.delete(g) == oracle.delete(g)
        for r in (1, 31, 61):
            row = {"r": r, "v": 0}
            assert sharded.insert(q, row) == oracle.insert(q, row)
        for k in (3, 5, 8):
            got = sharded.search(q, TruePredicate(), k,
                                 ef_search=EF_EXHAUSTIVE)
            assert got.ids.tolist() == oracle.topk_ids(q, TruePredicate(), k)
        sharded.compact_all(seed=0)
        for k in (3, 5, 8):
            got = sharded.search(q, TruePredicate(), k,
                                 ef_search=EF_EXHAUSTIVE)
            assert got.ids.tolist() == oracle.topk_ids(q, TruePredicate(), k)

    def test_monotone_rev_tripwire_fires_on_corrupt_mapping(self):
        from repro.lifecycle.sharded import _check_monotone_rev

        _check_monotone_rev({0: 3, 1: 7, 2: 9}, "ok")  # strictly increasing
        with pytest.raises(RuntimeError, match="strictly increasing"):
            _check_monotone_rev({0: 7, 1: 3}, "corrupt")
        with pytest.raises(RuntimeError, match="tie-break"):
            _check_monotone_rev({0: 3, 1: 3}, "duplicate")
