"""Serving write path: admission-gated mutations + compactor ticking.

``submit_write`` shares the read path's admission gate (so a tenant
cannot starve readers with mutations) but applies synchronously to the
lifecycle delta and keeps its own ledger — the read-side ``summary()``
accounting stays exactly what the serving bench validator pins.
"""

import asyncio

import numpy as np
import pytest

from repro.lifecycle import (
    BackgroundCompactor,
    LifecycleConfig,
    LifecycleIndex,
)
from repro.predicates import TruePredicate
from repro.serving import (
    REJECT_CLOSED,
    REJECT_TENANT_QUOTA,
    AcornService,
    ServingConfig,
    TenantQuota,
    WriteResponse,
)
from repro.utils.clock import FakeClock

from tests.lifecycle.conftest import DIM, PARAMS, make_world

pytestmark = pytest.mark.lifecycle


def run(coro):
    return asyncio.new_event_loop().run_until_complete(coro)


def make_lifecycle_service(clock=None, compactor=False, **config_kwargs):
    vectors, table, rng = make_world(seed=23, n=24)
    clock = clock or FakeClock()
    lc = LifecycleIndex.build(
        vectors, table, params=PARAMS, seed=0,
        config=LifecycleConfig(compact_min_delta=4,
                               compact_delta_fraction=0.05),
        clock=clock,
    )
    comp = (BackgroundCompactor(lc, interval_s=0.5, clock=clock)
            if compactor else None)
    service = AcornService(
        lc,
        ServingConfig(max_batch=4, latency_budget_ms=5.0,
                      **config_kwargs),
        clock=clock,
        compactor=comp,
    )
    return service, lc, comp, clock, rng


class TestSubmitWrite:
    def test_insert_and_delete_apply(self):
        service, lc, _, _, rng = make_lifecycle_service()

        async def drive():
            w = await service.submit_write(
                "insert",
                vector=rng.standard_normal(DIM).astype(np.float32),
                row={"v": 1},
            )
            assert isinstance(w, WriteResponse)
            assert w.ok and w.applied and not w.rejected
            assert w.external_id == 24  # first id after the base
            assert w.epoch == lc.current_epoch
            d = await service.submit_write("delete",
                                           external_id=w.external_id)
            assert d.ok and d.applied
            d2 = await service.submit_write("delete",
                                            external_id=w.external_id)
            assert d2.ok and not d2.applied  # idempotent double delete
            await service.aclose()

        run(drive())
        assert lc.is_deleted(24)
        summary = service.write_summary()
        assert summary["offered"] == 3
        assert summary["applied"] == 3
        assert summary["rejected"] == 0
        assert summary["inserts"] == 1
        assert summary["deletes"] == 2

    def test_writes_share_admission_gate(self):
        service, _, _, _, rng = make_lifecycle_service(
            quotas={"greedy": TenantQuota(rate_qps=0.001, burst=1.0,
                                          max_queue=4)},
        )

        async def drive():
            first = await service.submit_write(
                "insert", tenant_id="greedy",
                vector=rng.standard_normal(DIM).astype(np.float32),
                row={"v": 0},
            )
            assert first.ok  # burst token
            second = await service.submit_write(
                "insert", tenant_id="greedy",
                vector=rng.standard_normal(DIM).astype(np.float32),
                row={"v": 0},
            )
            assert second.rejected
            assert second.reason == REJECT_TENANT_QUOTA
            assert second.external_id == -1
            await service.aclose()

        run(drive())
        assert service.write_counters["rejected"] == 1
        assert ("greedy", REJECT_TENANT_QUOTA) in service.admission_log
        # the read ledger never saw these writes
        assert service.summary()["offered"] == 0

    def test_write_rejections_stay_off_tenant_read_ledger(self):
        """A shed write bills tenant.writes_rejected, never the shared
        `rejected` counter — per-tenant read accounting (admitted +
        rejected == reads offered, admitted == ok + degraded) must
        keep reconciling in summary() under mixed read/write load."""
        service, _, _, clock, rng = make_lifecycle_service(
            quotas={"greedy": TenantQuota(rate_qps=0.001, burst=2.0,
                                          max_queue=4)},
        )

        async def drive():
            q = rng.standard_normal(DIM).astype(np.float32)
            read = asyncio.ensure_future(
                service.submit(q, TruePredicate(), tenant_id="greedy")
            )
            await asyncio.sleep(0)  # let the read take its burst token
            await service.drain()
            r = await read
            assert r.ok  # first burst token goes to the read
            w = await service.submit_write(
                "insert", tenant_id="greedy",
                vector=rng.standard_normal(DIM).astype(np.float32),
                row={"v": 0},
            )
            assert w.ok  # second burst token
            w2 = await service.submit_write(
                "insert", tenant_id="greedy",
                vector=rng.standard_normal(DIM).astype(np.float32),
                row={"v": 0},
            )
            assert w2.rejected
            await service.aclose()

        run(drive())
        tenant = service.summary()["tenants"]["greedy"]
        assert tenant["writes_rejected"] == 1
        assert tenant["rejected"] == 0  # read side untouched
        assert tenant["admitted"] == 1
        assert tenant["admitted"] + tenant["rejected"] == 1  # == reads offered
        assert tenant["ok"] + tenant["degraded"] == tenant["admitted"]
        # the service-level write ledger still records the shed write
        assert service.write_counters["rejected"] == 1

    def test_closed_service_rejects_writes(self):
        service, _, _, _, rng = make_lifecycle_service()

        async def drive():
            await service.aclose()
            w = await service.submit_write(
                "insert",
                vector=rng.standard_normal(DIM).astype(np.float32),
                row={"v": 0},
            )
            assert w.rejected and w.reason == REJECT_CLOSED

        run(drive())

    def test_malformed_writes_raise(self):
        service, _, _, _, rng = make_lifecycle_service()

        async def drive():
            with pytest.raises(ValueError, match="unknown write op"):
                await service.submit_write("upsert")
            with pytest.raises(ValueError, match="insert requires"):
                await service.submit_write("insert")
            with pytest.raises(ValueError, match="delete requires"):
                await service.submit_write("delete")
            await service.aclose()

        run(drive())

    def test_non_lifecycle_searcher_rejected_loudly(self, tmp_path):
        from repro.core import AcornIndex

        vectors, table, rng = make_world(seed=29, n=16)
        index = AcornIndex.build(vectors, table, params=PARAMS, seed=0)
        service = AcornService(index, ServingConfig(), clock=FakeClock())

        async def drive():
            with pytest.raises(TypeError, match="insert/delete"):
                await service.submit_write(
                    "insert",
                    vector=rng.standard_normal(DIM).astype(np.float32),
                    row={"v": 0},
                )
            await service.aclose()

        run(drive())


class TestCompactorTicking:
    def test_writes_and_polls_drive_compaction(self):
        service, lc, comp, clock, rng = make_lifecycle_service(
            compactor=True
        )

        async def drive():
            for i in range(12):
                w = await service.submit_write(
                    "insert",
                    vector=rng.standard_normal(DIM).astype(np.float32),
                    row={"v": i % 4},
                )
                assert w.ok
                clock.advance(0.1)
            await service.aclose()

        run(drive())
        assert comp.compactions >= 1
        assert lc.delta_size() < 12
        summary = service.write_summary()
        assert summary["compactor_ticks"] >= 12
        assert summary["compactor"]["compactions"] == comp.compactions
        assert summary["epoch"] == lc.current_epoch

    def test_reads_interleave_with_writes(self):
        service, lc, comp, clock, rng = make_lifecycle_service(
            compactor=True
        )
        queries = rng.standard_normal((2, DIM)).astype(np.float32)

        async def drive():
            for i in range(8):
                await service.submit_write(
                    "insert",
                    vector=rng.standard_normal(DIM).astype(np.float32),
                    row={"v": 0},
                )
                clock.advance(0.2)
            fut = asyncio.ensure_future(
                service.submit(queries[0], TruePredicate())
            )
            await asyncio.sleep(0)
            clock.advance(0.01)
            await service.pump()
            response = await fut
            assert response.ok
            assert response.stats.epoch == lc.current_epoch
            await service.aclose()

        run(drive())
        # read-side ledger balances independently of the write ledger
        summary = service.summary()
        assert summary["offered"] == summary["admitted"] + summary["rejected"]
        assert summary["offered"] == 1
        assert service.write_counters["applied"] == 8
