"""The randomized lifecycle-equivalence harness.

The streaming lifecycle (delta index + epoch snapshots + online
compaction) must be observationally identical to the naive competitor
that rebuilds from scratch after every operation:

* every epoch, search over the lifecycle returns exactly the ids the
  brute-force oracle computes over the live set;
* online compaction produces byte-for-byte the graph that offline
  ``maintenance.rebuild()`` produces from a full-history index with the
  same tombstones, same seed, and same worker count — including the id
  remap;
* a published snapshot never changes, no matter what writers and the
  compactor do afterwards;
* the whole pipeline is deterministic: two replays of one op tape on a
  ``FakeClock`` agree on every read and every epoch.

Runs in the exhaustive regime (see ``conftest``), where these are
exact equalities.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.attributes.table import AttributeTable
from repro.core.acorn import AcornIndex
from repro.core.maintenance import rebuild
from repro.engine import QueryBatch, SearchEngine
from repro.lifecycle import (
    BackgroundCompactor,
    LifecycleConfig,
    LifecycleIndex,
)
from repro.predicates import Between, Equals, TruePredicate
from repro.utils.clock import FakeClock

from tests.lifecycle.conftest import (
    DIM,
    EF_EXHAUSTIVE,
    PARAMS,
    RebuildOracle,
    apply_ops,
    assert_matches_oracle,
    make_world,
)

pytestmark = pytest.mark.lifecycle

PREDICATES = [TruePredicate(), Equals("v", 1), Between("v", 1, 2)]


def ops_tape(rng, n_initial, n_ops, delete_fraction=0.35):
    """A seeded insert/delete tape over a growing id space."""
    ops = []
    next_id = n_initial
    for _ in range(n_ops):
        if rng.random() < delete_fraction and next_id > 0:
            ops.append(("delete", int(rng.integers(0, next_id))))
        else:
            vec = rng.standard_normal(DIM).astype(np.float32)
            ops.append(("insert", vec, {"v": int(rng.integers(0, 4))}))
            next_id += 1
    return ops


def graph_fingerprint(index):
    """Entry point, node levels, and every adjacency list."""
    g = index.graph
    edges = {
        (node, level): tuple(g.neighbors(node, level))
        for level in range(g.max_level + 1)
        for node in g.nodes_at_level(level)
    }
    levels = {node: g.node_level(node) for node in range(len(index))}
    return g.entry_point, levels, edges


class TestRandomizedEquivalence:
    """Hypothesis-driven op sequences: lifecycle == rebuild oracle."""

    @settings(max_examples=12, deadline=None, derandomize=True)
    @given(
        seed=st.integers(0, 2**16),
        n_initial=st.integers(8, 24),
        n_ops=st.integers(5, 30),
        compact_at=st.lists(st.integers(0, 29), max_size=3, unique=True),
    )
    def test_every_epoch_matches_oracle(
        self, seed, n_initial, n_ops, compact_at
    ):
        vectors, table, rng = make_world(seed, n_initial)
        lc = LifecycleIndex.build(
            vectors, table, params=PARAMS, seed=seed % 97,
            config=LifecycleConfig(build_seed=seed % 97),
        )
        oracle = RebuildOracle(vectors, table)
        queries = rng.standard_normal((2, DIM)).astype(np.float32)
        ops = ops_tape(rng, n_initial, n_ops)
        compact_at = set(compact_at)
        for i, op in enumerate(ops):
            apply_ops(lc, oracle, [op])
            if i in compact_at:
                lc.compact(seed=seed % 97)
            assert_matches_oracle(lc, oracle, queries, PREDICATES)
        assert np.array_equal(lc.live_ids(), oracle.live_ids())

    @settings(max_examples=8, deadline=None, derandomize=True)
    @given(seed=st.integers(0, 2**16))
    def test_delete_everything_then_refill(self, seed):
        vectors, table, rng = make_world(seed, 12)
        lc = LifecycleIndex.build(vectors, table, params=PARAMS, seed=0)
        oracle = RebuildOracle(vectors, table)
        for ext in range(12):
            apply_ops(lc, oracle, [("delete", ext)])
        queries = rng.standard_normal((2, DIM)).astype(np.float32)
        assert_matches_oracle(lc, oracle, queries, PREDICATES)
        lc.compact(seed=0)
        assert lc.live_ids().shape[0] == 0
        refill = ops_tape(rng, 12, 10, delete_fraction=0.0)
        apply_ops(lc, oracle, refill)
        assert_matches_oracle(lc, oracle, queries, PREDICATES)


class TestCompactionEqualsRebuild:
    """Online compaction == offline rebuild(), byte for byte."""

    @pytest.mark.parametrize("n_workers", [1, 2])
    def test_identical_graphs_and_id_map(self, n_workers):
        seed = 7
        vectors, table, rng = make_world(29, 24)
        lc = LifecycleIndex.build(vectors, table, params=PARAMS, seed=seed)
        oracle = RebuildOracle(vectors, table)
        apply_ops(lc, oracle, ops_tape(rng, 24, 20))

        # Offline arm: one full-history index with tombstones, then
        # maintenance.rebuild — the operation the lifecycle turns online.
        all_vectors = np.stack(oracle.vectors)
        history = AttributeTable(len(oracle.vectors))
        history.add_int_column(
            "v", np.asarray([r["v"] for r in oracle.rows])
        )
        offline = AcornIndex.build(
            all_vectors, history, params=PARAMS, seed=seed
        )
        for ext in sorted(oracle.deleted):
            offline.mark_deleted(ext)
        rebuilt, offline_map = rebuild(
            offline, seed=seed, n_workers=n_workers
        )

        report = lc.compact(seed=seed, n_workers=n_workers)
        assert graph_fingerprint(lc._base) == graph_fingerprint(rebuilt)
        assert np.array_equal(report.id_map, offline_map)

    def test_compaction_drops_tombstones_and_seals(self):
        vectors, table, rng = make_world(31, 16)
        lc = LifecycleIndex.build(vectors, table, params=PARAMS, seed=0)
        oracle = RebuildOracle(vectors, table)
        apply_ops(lc, oracle, ops_tape(rng, 16, 12))
        before_live = lc.live_ids()
        report = lc.compact(seed=0)
        assert lc.delta_size() == 0
        assert lc.tombstone_count() == 0
        assert np.array_equal(lc.live_ids(), before_live)
        assert report.epoch_after > report.epoch_before
        # live entities keep their external ids through the remap
        for ext in before_live.tolist():
            assert report.id_map[ext] >= 0


class TestSnapshotImmutability:
    def test_held_snapshot_survives_writes_and_compaction(self):
        vectors, table, rng = make_world(41, 20)
        lc = LifecycleIndex.build(vectors, table, params=PARAMS, seed=0)
        oracle = RebuildOracle(vectors, table)
        apply_ops(lc, oracle, ops_tape(rng, 20, 8))
        queries = rng.standard_normal((3, DIM)).astype(np.float32)

        snap = lc.acquire_read_snapshot()
        held_epoch = snap.epoch
        before = [
            (snap.search(q, p, 5, ef_search=EF_EXHAUSTIVE).ids.tolist(),
             snap.search(q, p, 5, ef_search=EF_EXHAUSTIVE)
                 .distances.tolist())
            for q in queries for p in PREDICATES
        ]
        before_live = snap.live_ids().tolist()

        # Concurrent-history mutation: more writes, then a compaction.
        apply_ops(lc, oracle, ops_tape(rng, lc.next_external_id, 10))
        lc.compact(seed=0)
        assert lc.current_epoch > held_epoch

        after = [
            (snap.search(q, p, 5, ef_search=EF_EXHAUSTIVE).ids.tolist(),
             snap.search(q, p, 5, ef_search=EF_EXHAUSTIVE)
                 .distances.tolist())
            for q in queries for p in PREDICATES
        ]
        assert before == after
        assert snap.live_ids().tolist() == before_live
        assert snap.epoch == held_epoch
        lc.release_read_snapshot(snap)

    def test_reader_refcounts(self):
        vectors, table, _ = make_world(43, 10)
        lc = LifecycleIndex.build(vectors, table, params=PARAMS, seed=0)
        snap = lc.acquire_read_snapshot()
        assert snap.readers == 1
        snap2 = lc.acquire_read_snapshot()
        assert snap2 is snap and snap.readers == 2
        lc.release_read_snapshot(snap)
        lc.release_read_snapshot(snap2)
        assert snap.readers == 0


class TestDoubleRunDeterminism:
    def _replay(self):
        vectors, table, rng = make_world(53, 24)
        clock = FakeClock()
        lc = LifecycleIndex.build(
            vectors, table, params=PARAMS, seed=3,
            config=LifecycleConfig(
                build_seed=3, compact_min_delta=4,
                compact_delta_fraction=0.05,
            ),
            clock=clock,
        )
        compactor = BackgroundCompactor(lc, interval_s=0.2, clock=clock)
        queries = rng.standard_normal((2, DIM)).astype(np.float32)
        trace = []
        for i, op in enumerate(ops_tape(rng, 24, 30)):
            if op[0] == "insert":
                lc.insert(op[1], op[2])
            else:
                lc.delete(op[1])
            clock.advance(0.05)
            compactor.tick()
            res = lc.search(queries[i % 2], PREDICATES[i % 3], 5,
                            ef_search=EF_EXHAUSTIVE)
            trace.append((res.epoch, res.ids.tolist(),
                          res.distances.tolist()))
        return trace, lc, compactor

    def test_identical_traces(self):
        trace_a, lc_a, comp_a = self._replay()
        trace_b, lc_b, comp_b = self._replay()
        assert trace_a == trace_b
        assert lc_a.current_epoch == lc_b.current_epoch
        assert comp_a.compactions == comp_b.compactions
        assert comp_a.compactions >= 1  # the tape must exercise one
        assert np.array_equal(lc_a.live_ids(), lc_b.live_ids())
        assert graph_fingerprint(lc_a._base) == graph_fingerprint(lc_b._base)


class TestEngineSnapshotPinning:
    def test_batch_pins_one_epoch(self):
        vectors, table, rng = make_world(61, 24)
        lc = LifecycleIndex.build(vectors, table, params=PARAMS, seed=0)
        for _ in range(6):
            lc.insert(rng.standard_normal(DIM).astype(np.float32),
                      {"v": 1})
        queries = rng.standard_normal((4, DIM)).astype(np.float32)
        batch = QueryBatch.build(
            queries, [TruePredicate()] * 4, k=5, ef_search=EF_EXHAUSTIVE
        )
        with SearchEngine(lc, num_workers=2) as engine:
            outcome = engine.search_batch(batch)
        epochs = {s.epoch for s in outcome.stats}
        assert epochs == {lc.current_epoch}
        assert outcome.max_epoch == lc.current_epoch
        assert outcome.summary()["max_epoch"] == lc.current_epoch
        assert lc._published.readers == 0  # released after the batch
