"""Regression: compiled predicate masks must not survive a base swap.

The failure mode under test: ``SearchEngine``'s LRU cache compiles a
predicate against the lifecycle's pre-compaction base table; the
lifecycle then compacts under delete+reinsert churn that leaves the new
base with *exactly the old base's length* but different rows.  A mask
validated by length alone would be silently applied to the new base —
returning ghost entities that were deleted (or never matched) and
missing live matches.  Masks are now validated by table identity at
both the cache and the epoch snapshot, so these suites pin the
end-to-end behavior through the engine and the serving layer.
"""

import numpy as np
import pytest

from repro.engine.engine import QueryBatch, SearchEngine
from repro.lifecycle import LifecycleConfig, LifecycleIndex
from repro.predicates import Equals

from tests.lifecycle.conftest import DIM, EF_EXHAUSTIVE, PARAMS

pytestmark = pytest.mark.lifecycle

N = 16


def make_churned_lifecycle():
    """A lifecycle whose compaction swaps the base contents, not size.

    Base: 8 entities with v=1 (ids 0..7) + 8 with v=0 (ids 8..15).
    Churn: delete every v=1 entity, insert 8 new v=0 entities — after
    compaction the base again holds 16 rows, but none passes v==1.
    """
    rng = np.random.default_rng(123)
    vectors = rng.standard_normal((N, DIM)).astype(np.float32)
    from repro.attributes.table import AttributeTable

    table = AttributeTable(N)
    table.add_int_column("v", np.asarray([1] * 8 + [0] * 8))
    lc = LifecycleIndex.build(
        vectors, table, params=PARAMS, seed=0,
        config=LifecycleConfig(compact_min_delta=1),
    )
    return lc, rng


def churn(lc, rng):
    for external_id in range(8):
        assert lc.delete(external_id)
    for _ in range(8):
        lc.insert(rng.standard_normal(DIM).astype(np.float32), {"v": 0})


class TestEngineCacheAcrossCompaction:
    def test_no_ghosts_after_same_size_base_swap(self):
        lc, rng = make_churned_lifecycle()
        query = rng.standard_normal(DIM).astype(np.float32)
        pred = Equals("v", 1)
        with SearchEngine(lc, num_workers=1) as engine:
            old_table = lc.table
            before = engine.search_batch(
                QueryBatch.build(query, pred, k=8,
                                 ef_search=EF_EXHAUSTIVE)
            )
            assert sorted(before[0].ids.tolist()) == list(range(8))

            churn(lc, rng)
            report = lc.compact(seed=0)
            new_table = lc.table
            assert new_table is not old_table
            assert len(new_table) == len(old_table) == N
            assert report.n_live == N

            # Same engine, same predicate fingerprint: the cached mask
            # was compiled against the dead table and must be remade.
            after = engine.search_batch(
                QueryBatch.build(query, pred, k=8,
                                 ef_search=EF_EXHAUSTIVE)
            )
            assert after[0].ids.tolist() == []  # no v==1 rows survive
            exact = lc._published.exact_search(query, pred, 8)
            assert exact.ids.tolist() == []

    def test_matching_rows_found_after_swap(self):
        """Mirror case: the new base has matches the stale mask would
        miss (mask compiled when nothing passed)."""
        lc, rng = make_churned_lifecycle()
        query = rng.standard_normal(DIM).astype(np.float32)
        pred = Equals("v", 7)
        with SearchEngine(lc, num_workers=1) as engine:
            empty = engine.search_batch(
                QueryBatch.build(query, pred, k=8,
                                 ef_search=EF_EXHAUSTIVE)
            )
            assert empty[0].ids.tolist() == []
            for external_id in range(8):
                assert lc.delete(external_id)
            inserted = [
                lc.insert(rng.standard_normal(DIM).astype(np.float32),
                          {"v": 7})
                for _ in range(8)
            ]
            lc.compact(seed=0)
            found = engine.search_batch(
                QueryBatch.build(query, pred, k=8,
                                 ef_search=EF_EXHAUSTIVE)
            )
            assert sorted(found[0].ids.tolist()) == sorted(inserted)

    def test_engine_table_tracks_published_base(self):
        lc, rng = make_churned_lifecycle()
        engine = SearchEngine(lc, num_workers=1)
        try:
            assert engine.table is lc.table
            churn(lc, rng)
            lc.compact(seed=0)
            assert engine.table is lc.table
        finally:
            engine.close()

    def test_explicit_table_override_still_pins(self):
        lc, rng = make_churned_lifecycle()
        pinned = lc.table
        engine = SearchEngine(lc, num_workers=1, table=pinned)
        try:
            churn(lc, rng)
            lc.compact(seed=0)
            assert engine.table is pinned
        finally:
            engine.close()


class TestSnapshotMaskValidation:
    def test_snapshot_rejects_stale_mask_of_equal_length(self):
        lc, rng = make_churned_lifecycle()
        pred = Equals("v", 1)
        stale = pred.compile(lc.table)
        churn(lc, rng)
        lc.compact(seed=0)
        query = rng.standard_normal(DIM).astype(np.float32)
        res = lc.search(query, stale, 8, ef_search=EF_EXHAUSTIVE)
        assert res.ids.tolist() == []  # recompiled from the raw predicate

    def test_fresh_mask_of_current_table_is_honored(self):
        lc, rng = make_churned_lifecycle()
        query = rng.standard_normal(DIM).astype(np.float32)
        pred = Equals("v", 1)
        fresh = pred.compile(lc.table)
        res = lc.search(query, fresh, 8, ef_search=EF_EXHAUSTIVE)
        raw = lc.search(query, pred, 8, ef_search=EF_EXHAUSTIVE)
        assert res.ids.tolist() == raw.ids.tolist()
        assert sorted(res.ids.tolist()) == list(range(8))


class TestServingTableAcrossCompaction:
    def test_service_table_tracks_compaction(self):
        import asyncio

        from repro.serving import AcornService, ServingConfig
        from repro.utils.clock import FakeClock

        lc, rng = make_churned_lifecycle()
        service = AcornService(lc, ServingConfig(), clock=FakeClock())
        assert service.table is lc.table
        churn(lc, rng)
        lc.compact(seed=0)
        assert service.table is lc.table

        async def close():
            await service.aclose()

        asyncio.new_event_loop().run_until_complete(close())
