"""Unit tests for the HybridDataset container."""

import numpy as np
import pytest

from repro.attributes import AttributeTable
from repro.datasets import HybridDataset, HybridQuery
from repro.predicates import Equals


@pytest.fixture
def dataset():
    gen = np.random.default_rng(0)
    vectors = gen.standard_normal((50, 4)).astype(np.float32)
    table = AttributeTable(50)
    table.add_int_column("label", gen.integers(0, 3, size=50))
    queries = [
        HybridQuery(vector=vectors[i] + 0.01, predicate=Equals("label", i % 3))
        for i in range(6)
    ]
    return HybridDataset("toy", vectors, table, queries)


class TestBasics:
    def test_dimensions(self, dataset):
        assert dataset.num_vectors == 50
        assert dataset.dim == 4

    def test_size_mismatch_rejected(self):
        table = AttributeTable(3)
        table.add_int_column("label", [1, 2, 3])
        with pytest.raises(ValueError, match="rows"):
            HybridDataset("bad", np.zeros((5, 2), dtype=np.float32), table, [])

    def test_compiled_predicates_cached(self, dataset):
        first = dataset.compiled_predicates()
        assert dataset.compiled_predicates() is first

    def test_selectivities_shape(self, dataset):
        sel = dataset.selectivities()
        assert sel.shape == (6,)
        assert ((sel >= 0) & (sel <= 1)).all()


class TestGroundTruth:
    def test_cached_per_k(self, dataset):
        first = dataset.ground_truth(5)
        assert dataset.ground_truth(5) is first
        assert dataset.ground_truth(3) is not first

    def test_answers_pass_predicates(self, dataset):
        gt = dataset.ground_truth(5)
        for compiled, ids in zip(dataset.compiled_predicates(), gt):
            assert compiled.passes_many(ids).all()


class TestSubset:
    def test_subset_queries(self, dataset):
        sub = dataset.subset_queries([0, 2])
        assert len(sub.queries) == 2
        assert sub.queries[0] is dataset.queries[0]
        assert sub.num_vectors == dataset.num_vectors

    def test_subset_has_fresh_caches(self, dataset):
        dataset.ground_truth(5)
        sub = dataset.subset_queries([1])
        assert len(sub.ground_truth(5)) == 1
