"""Tests for the real-dataset file-format readers."""

import numpy as np
import pytest

from repro.datasets.io import (
    load_sift1m,
    read_bvecs,
    read_fvecs,
    read_ivecs,
    write_fvecs,
)


class TestFvecs:
    def test_roundtrip(self, tmp_path):
        gen = np.random.default_rng(0)
        vectors = gen.standard_normal((25, 12)).astype(np.float32)
        path = tmp_path / "x.fvecs"
        write_fvecs(path, vectors)
        np.testing.assert_array_equal(read_fvecs(path), vectors)

    def test_missing_file(self, tmp_path):
        with pytest.raises(FileNotFoundError, match="TEXMEX"):
            read_fvecs(tmp_path / "nope.fvecs")

    def test_corrupt_size_rejected(self, tmp_path):
        path = tmp_path / "bad.fvecs"
        write_fvecs(path, np.zeros((3, 4), dtype=np.float32))
        with open(path, "ab") as handle:
            handle.write(b"\x00\x00")  # trailing garbage
        with pytest.raises(ValueError, match="record"):
            read_fvecs(path)

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.fvecs"
        path.write_bytes(b"")
        assert read_fvecs(path).size == 0


class TestIvecsBvecs:
    def test_ivecs_roundtrip(self, tmp_path):
        data = np.arange(24, dtype=np.int32).reshape(4, 6)
        framed = np.empty((4, 7), dtype=np.int32)
        framed[:, 0] = 6
        framed[:, 1:] = data
        path = tmp_path / "gt.ivecs"
        framed.tofile(path)
        np.testing.assert_array_equal(read_ivecs(path), data)

    def test_bvecs_roundtrip(self, tmp_path):
        data = np.arange(20, dtype=np.uint8).reshape(2, 10)
        records = b""
        for row in data:
            records += np.int32(10).tobytes() + row.tobytes()
        path = tmp_path / "x.bvecs"
        path.write_bytes(records)
        np.testing.assert_array_equal(read_bvecs(path), data)


class TestLoadSift1m:
    @pytest.fixture
    def texmex_dir(self, tmp_path):
        gen = np.random.default_rng(1)
        write_fvecs(tmp_path / "sift_base.fvecs",
                    gen.standard_normal((200, 16)).astype(np.float32))
        write_fvecs(tmp_path / "sift_query.fvecs",
                    gen.standard_normal((30, 16)).astype(np.float32))
        return tmp_path

    def test_loads_paper_protocol(self, texmex_dir):
        dataset = load_sift1m(texmex_dir, seed=0)
        assert dataset.num_vectors == 200
        assert len(dataset.queries) == 30
        labels = np.asarray(dataset.table.column("label"))
        assert labels.min() >= 1 and labels.max() <= 12

    def test_truncation(self, texmex_dir):
        dataset = load_sift1m(texmex_dir, max_base=50, max_queries=5, seed=0)
        assert dataset.num_vectors == 50
        assert len(dataset.queries) == 5

    def test_deterministic(self, texmex_dir):
        a = load_sift1m(texmex_dir, seed=3)
        b = load_sift1m(texmex_dir, seed=3)
        np.testing.assert_array_equal(
            np.asarray(a.table.column("label")),
            np.asarray(b.table.column("label")),
        )

    def test_missing_directory(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_sift1m(tmp_path / "absent")

    def test_searchable_end_to_end(self, texmex_dir):
        from repro.core import AcornIndex, AcornParams

        dataset = load_sift1m(texmex_dir, seed=0)
        index = AcornIndex.build(
            dataset.vectors, dataset.table,
            params=AcornParams(m=6, gamma=6, m_beta=8, ef_construction=24),
            seed=0,
        )
        gt = dataset.ground_truth(5)
        result = index.search(
            dataset.queries[0].vector,
            dataset.compiled_predicates()[0],
            5, ef_search=32,
        )
        overlap = len(set(result.ids.tolist()) & set(gt[0].tolist()))
        assert overlap >= 2
