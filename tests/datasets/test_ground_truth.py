"""Unit tests for exact filtered KNN ground truth."""

import numpy as np
import pytest

from repro.datasets.ground_truth import filtered_knn


@pytest.fixture
def world():
    gen = np.random.default_rng(0)
    vectors = gen.standard_normal((80, 6)).astype(np.float32)
    queries = [vectors[3] + 0.01, vectors[40] + 0.01]
    masks = [gen.random(80) < 0.4 for _ in queries]
    return vectors, queries, masks


class TestFilteredKnn:
    def test_matches_naive_loop(self, world):
        vectors, queries, masks = world
        got = filtered_knn(vectors, queries, masks, k=5)
        for q, mask, ids in zip(queries, masks, got):
            passing = np.flatnonzero(mask)
            dists = ((vectors[passing] - q) ** 2).sum(axis=1)
            want = passing[np.argsort(dists)[:5]]
            np.testing.assert_array_equal(ids, want)

    def test_results_pass_mask(self, world):
        vectors, queries, masks = world
        got = filtered_knn(vectors, queries, masks, k=5)
        for mask, ids in zip(masks, got):
            assert mask[ids].all()

    def test_short_results_when_few_pass(self, world):
        vectors, queries, _ = world
        sparse = np.zeros(80, dtype=bool)
        sparse[[2, 7]] = True
        got = filtered_knn(vectors, queries[:1], [sparse], k=10)
        assert set(got[0].tolist()) == {2, 7}

    def test_empty_mask(self, world):
        vectors, queries, _ = world
        got = filtered_knn(vectors, queries[:1], [np.zeros(80, dtype=bool)], k=3)
        assert got[0].size == 0

    def test_batching_consistent(self, world):
        vectors, queries, masks = world
        a = filtered_knn(vectors, queries, masks, k=5, batch=1)
        b = filtered_knn(vectors, queries, masks, k=5, batch=64)
        for x, y in zip(a, b):
            np.testing.assert_array_equal(x, y)

    def test_validation(self, world):
        vectors, queries, masks = world
        with pytest.raises(ValueError, match="k"):
            filtered_knn(vectors, queries, masks, k=0)
        with pytest.raises(ValueError, match="masks"):
            filtered_knn(vectors, queries, masks[:1], k=3)
