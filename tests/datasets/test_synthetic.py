"""Unit tests for synthetic vector generators."""

import numpy as np
import pytest

from repro.datasets.synthetic import (
    clustered_vectors,
    sample_queries_near_data,
    uniform_vectors,
)


class TestClusteredVectors:
    def test_shapes(self):
        vectors, assignments, centers = clustered_vectors(100, 8, n_clusters=5,
                                                          seed=0)
        assert vectors.shape == (100, 8)
        assert assignments.shape == (100,)
        assert centers.shape == (5, 8)
        assert vectors.dtype == np.float32

    def test_deterministic(self):
        a, _, _ = clustered_vectors(50, 4, seed=7)
        b, _, _ = clustered_vectors(50, 4, seed=7)
        np.testing.assert_array_equal(a, b)

    def test_points_near_their_centers(self):
        vectors, assignments, centers = clustered_vectors(
            200, 16, n_clusters=4, cluster_std=0.1, center_scale=5.0, seed=1
        )
        dists_own = np.linalg.norm(vectors - centers[assignments], axis=1)
        assert dists_own.mean() < 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            clustered_vectors(0, 4)
        with pytest.raises(ValueError):
            clustered_vectors(10, 0)


class TestUniformVectors:
    def test_shape_and_dtype(self):
        vectors = uniform_vectors(30, 5, seed=0)
        assert vectors.shape == (30, 5)
        assert vectors.dtype == np.float32

    def test_validation(self):
        with pytest.raises(ValueError):
            uniform_vectors(-1, 4)


class TestQuerySampling:
    def test_queries_near_sources(self):
        vectors, _, _ = clustered_vectors(100, 8, seed=2)
        queries, sources = sample_queries_near_data(
            vectors, 20, jitter=0.01, seed=3
        )
        dists = np.linalg.norm(queries - vectors[sources], axis=1)
        assert dists.max() < 0.2

    def test_validation(self):
        vectors = uniform_vectors(10, 4, seed=0)
        with pytest.raises(ValueError):
            sample_queries_near_data(vectors, 0)
