"""Tests for the four dataset surrogates (Table 2 fidelity checks)."""

import numpy as np
import pytest

from repro.datasets import (
    make_laion_like,
    make_paper_like,
    make_sift1m_like,
    make_tripclick_like,
    query_correlation,
)
from repro.datasets.laion import CANDIDATE_KEYWORDS, GENERIC_KEYWORDS
from repro.datasets.tripclick import CLINICAL_AREAS, YEAR_MAX, YEAR_MIN
from repro.predicates import Between, ContainsAny, Equals, RegexMatch


class TestSiftPaperLike:
    def test_sift_shape_and_protocol(self, sift_tiny):
        assert sift_tiny.num_vectors == 500
        assert sift_tiny.dim == 24
        assert len(sift_tiny.queries) == 30
        assert all(isinstance(q.predicate, Equals) for q in sift_tiny.queries)

    def test_label_domain(self, sift_tiny):
        labels = np.asarray(sift_tiny.table.column("label"))
        assert labels.min() >= 1 and labels.max() <= 12

    def test_average_selectivity_near_one_twelfth(self):
        ds = make_sift1m_like(n=2000, dim=8, n_queries=60, seed=0)
        assert ds.selectivities().mean() == pytest.approx(1 / 12, abs=0.03)

    def test_deterministic(self):
        a = make_sift1m_like(n=100, dim=8, n_queries=5, seed=5)
        b = make_sift1m_like(n=100, dim=8, n_queries=5, seed=5)
        np.testing.assert_array_equal(a.vectors, b.vectors)
        assert repr(a.queries[0].predicate) == repr(b.queries[0].predicate)

    def test_paper_like_dimensionality(self):
        ds = make_paper_like(n=100, n_queries=5, seed=0)
        assert ds.dim == 200
        assert ds.name == "paper-like"

    def test_near_zero_correlation(self):
        """Random label assignment ⇒ no predicate clustering (paper's
        LCPS protocol)."""
        ds = make_sift1m_like(n=1000, dim=16, n_queries=40, seed=1)
        c = query_correlation(ds, n_resamples=6, seed=0)
        spread = np.linalg.norm(ds.vectors.std(axis=0)) ** 2
        assert abs(c) < 0.25 * spread


class TestTripclickLike:
    def test_areas_workload_operators(self, tripclick_tiny):
        assert all(
            isinstance(q.predicate, ContainsAny) for q in tripclick_tiny.queries
        )

    def test_dates_workload_operators(self):
        ds = make_tripclick_like(n=300, dim=8, n_queries=20, workload="dates",
                                 seed=2)
        assert all(isinstance(q.predicate, Between) for q in ds.queries)

    def test_area_vocabulary(self, tripclick_tiny):
        col = tripclick_tiny.table.column("areas")
        assert set(col.vocab) <= set(CLINICAL_AREAS)
        assert len(CLINICAL_AREAS) == 28  # the paper's cardinality

    def test_years_in_range(self, tripclick_tiny):
        years = np.asarray(tripclick_tiny.table.column("year"))
        assert years.min() >= YEAR_MIN and years.max() <= YEAR_MAX

    def test_years_skew_recent(self, tripclick_tiny):
        years = np.asarray(tripclick_tiny.table.column("year"))
        assert np.median(years) > 1990

    def test_selectivity_spread_for_fig9(self):
        """The dates workload must span a broad selectivity range so the
        Figure 9 percentile sweep has material."""
        ds = make_tripclick_like(n=1500, dim=8, n_queries=80, workload="dates",
                                 seed=2)
        sel = ds.selectivities()
        assert sel.min() < 0.1
        assert sel.max() > 0.4

    def test_invalid_workload(self):
        with pytest.raises(ValueError, match="workload"):
            make_tripclick_like(workload="nope")


class TestLaionLike:
    def test_keyword_lists_have_three_entries(self, laion_tiny):
        col = laion_tiny.table.column("keywords")
        lengths = np.diff(col.offsets)
        assert (lengths == 3).all()

    def test_keyword_vocabulary(self, laion_tiny):
        col = laion_tiny.table.column("keywords")
        assert set(col.vocab) <= set(CANDIDATE_KEYWORDS)

    def test_no_cor_uses_generic_keywords(self, laion_tiny):
        for q in laion_tiny.queries:
            (kw,) = q.predicate.keywords
            assert kw in GENERIC_KEYWORDS

    def test_regex_workload(self):
        ds = make_laion_like(n=300, dim=8, n_queries=20, workload="regex",
                             seed=3)
        assert all(isinstance(q.predicate, RegexMatch) for q in ds.queries)
        assert ds.selectivities().mean() > 0.0

    def test_correlation_signs(self):
        """The headline property of the LAION workloads (Figure 10)."""
        kwargs = dict(n=900, dim=32, n_queries=40, seed=3)
        pos = query_correlation(
            make_laion_like(workload="pos-cor", **kwargs), n_resamples=6, seed=0
        )
        neg = query_correlation(
            make_laion_like(workload="neg-cor", **kwargs), n_resamples=6, seed=0
        )
        no = query_correlation(
            make_laion_like(workload="no-cor", **kwargs), n_resamples=6, seed=0
        )
        assert pos > 0
        assert neg < 0
        assert neg < no < pos

    def test_selectivity_in_paper_band(self):
        ds = make_laion_like(n=1200, dim=16, n_queries=60, workload="no-cor",
                             seed=4)
        assert 0.04 < ds.selectivities().mean() < 0.2

    def test_invalid_workload(self):
        with pytest.raises(ValueError, match="workload"):
            make_laion_like(workload="bananas")


class TestCorrelationEstimator:
    def test_raises_on_all_empty_predicates(self):
        ds = make_sift1m_like(n=50, dim=4, n_queries=3, seed=0)
        # Force empty predicates.
        for q in ds.queries:
            q.predicate = Equals("label", 999)
        ds._compiled = None
        with pytest.raises(ValueError, match="non-empty"):
            query_correlation(ds, n_resamples=2)

    def test_max_queries_caps_work(self, laion_tiny):
        value = query_correlation(laion_tiny, n_resamples=2, max_queries=5,
                                  seed=1)
        assert np.isfinite(value)


class TestCorrelationKTargets:
    def test_k_targets_extension_preserves_signs(self):
        """§3.2.1's K-target extension should agree in sign with k=1."""
        kwargs = dict(n=700, dim=24, n_queries=30, seed=3)
        pos = make_laion_like(workload="pos-cor", **kwargs)
        neg = make_laion_like(workload="neg-cor", **kwargs)
        assert query_correlation(pos, n_resamples=4, k=5, seed=0) > 0
        assert query_correlation(neg, n_resamples=4, k=5, seed=0) < 0

    def test_k_validation(self, laion_tiny):
        import pytest as _pytest

        with _pytest.raises(ValueError, match="k"):
            query_correlation(laion_tiny, k=0)
