"""SnapshotArena packing, canonicalization fixups, and manager lifecycle."""

import warnings

import numpy as np
import pytest

from repro.parallel import (
    COPY_FIXUPS,
    ArenaManager,
    SnapshotArena,
    attach_arena,
    canonical_array,
    parallel_available,
    reset_fixup_counters,
)


def sample_arrays(seed=0):
    rng = np.random.default_rng(seed)
    return {
        "vectors": rng.standard_normal((20, 6)).astype(np.float32),
        "L0.indptr": np.arange(21, dtype=np.int32),
        "tombstones": rng.random(20) < 0.2,
    }


class TestCanonicalArray:
    def test_canonical_input_is_returned_unchanged(self):
        reset_fixup_counters()
        arr = np.zeros((4, 3), dtype=np.float32)
        assert canonical_array("vectors", arr, dtype=np.float32) is arr
        assert COPY_FIXUPS == {}

    def test_fortran_float64_input_is_repaired_once(self):
        """The satellite regression: a Fortran-ordered float64 matrix
        smuggled into a freeze is copied (and counted) exactly once."""
        reset_fixup_counters()
        bad = np.asfortranarray(
            np.arange(12, dtype=np.float64).reshape(3, 4)
        )
        with pytest.warns(RuntimeWarning, match="copied once at freeze"):
            fixed = canonical_array("vectors", bad, dtype=np.float32)
        assert fixed.flags.c_contiguous
        assert fixed.dtype == np.float32
        assert np.array_equal(fixed, bad.astype(np.float32))
        assert COPY_FIXUPS["vectors"] == 1

    def test_repeat_offender_counts_but_warns_once(self):
        reset_fixup_counters()
        bad = np.zeros((3, 4), dtype=np.float64, order="F")
        with pytest.warns(RuntimeWarning):
            canonical_array("vectors", bad, dtype=np.float32)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            canonical_array("vectors", bad, dtype=np.float32)
        assert COPY_FIXUPS["vectors"] == 2

    def test_strided_view_is_repaired(self):
        reset_fixup_counters()
        base = np.arange(40, dtype=np.int32).reshape(10, 4)
        view = base[::2]
        with pytest.warns(RuntimeWarning, match="non-contiguous"):
            fixed = canonical_array("L0.indices", view, dtype=np.int32)
        assert fixed.flags.c_contiguous
        assert np.array_equal(fixed, view)
        assert COPY_FIXUPS["L0.indices"] == 1


class TestSnapshotArena:
    def test_pack_attach_roundtrip(self):
        arrays = sample_arrays()
        arena = SnapshotArena.create(arrays, "tok-roundtrip")
        try:
            attached = attach_arena(arena.manifest())
            try:
                for name, arr in arrays.items():
                    view = attached.view(name)
                    assert view.dtype == arr.dtype
                    assert np.array_equal(view, arr)
                    assert not view.flags.writeable
            finally:
                attached.close()
        finally:
            arena.unlink()

    def test_offsets_are_cache_line_aligned(self):
        arena = SnapshotArena.create(sample_arrays(), "tok-align")
        try:
            for spec in arena.specs.values():
                assert spec.offset % 64 == 0
            assert arena.nbytes >= sum(
                spec.nbytes for spec in arena.specs.values()
            )
        finally:
            arena.unlink()

    def test_views_reject_writes(self):
        arena = SnapshotArena.create(sample_arrays(), "tok-ro")
        try:
            with pytest.raises(ValueError, match="read-only"):
                arena.view("vectors")[0, 0] = 1.0
        finally:
            arena.unlink()

    def test_tampered_manifest_is_rejected(self):
        arena = SnapshotArena.create(sample_arrays(), "tok-sha")
        try:
            manifest = arena.manifest()
            manifest["arrays"][0]["sha256"] = "0" * 64
            name = manifest["arrays"][0]["name"]
            with pytest.raises(ValueError, match=name):
                attach_arena(manifest)
        finally:
            arena.unlink()

    def test_corrupted_bytes_fail_verification(self):
        arena = SnapshotArena.create(sample_arrays(), "tok-corrupt")
        try:
            spec = arena.specs["L0.indptr"]
            writable = np.ndarray(
                spec.shape, dtype=np.dtype(spec.dtype),
                buffer=arena.shm.buf, offset=spec.offset,
            )
            writable[0] = 999
            with pytest.raises(ValueError, match="L0.indptr"):
                arena.verify()
        finally:
            arena.unlink()

    def test_unlink_is_idempotent(self):
        arena = SnapshotArena.create(sample_arrays(), "tok-unlink")
        arena.unlink()
        arena.unlink()
        arena.close()

    def test_parallel_available_on_this_platform(self):
        assert parallel_available() is True


class TestArenaManager:
    def test_publish_retires_and_unlinks_unread_epoch(self):
        manager = ArenaManager()
        manager.publish("epoch-1", sample_arrays(0), spec=None)
        manager.publish("epoch-2", sample_arrays(1), spec=None)
        assert manager.current.token == "epoch-2"
        assert manager.published == 2
        assert manager.retired_unlinked == 1
        assert manager.live_arenas() == 1
        manager.close()

    def test_inflight_reader_defers_unlink_until_release(self):
        manager = ArenaManager()
        old = manager.publish("epoch-1", sample_arrays(0), spec=None)
        manager.acquire(old)
        manager.publish("epoch-2", sample_arrays(1), spec=None)
        assert old.retired
        assert manager.live_arenas() == 2
        assert manager.retired_unlinked == 0
        manager.release(old)
        assert manager.live_arenas() == 1
        assert manager.retired_unlinked == 1
        manager.close()

    def test_refs_pin_source_objects(self):
        manager = ArenaManager()
        source = np.zeros(8, dtype=np.float32)
        record = manager.publish(
            "epoch-1", {"vectors": source}, spec=None, refs=(source,)
        )
        assert source is record.refs[0]
        manager.close()

    def test_close_unlinks_everything_and_is_idempotent(self):
        manager = ArenaManager()
        held = manager.publish("epoch-1", sample_arrays(0), spec=None)
        manager.acquire(held)
        manager.publish("epoch-2", sample_arrays(1), spec=None)
        manager.close()
        assert manager.live_arenas() == 0
        assert manager.current is None
        manager.close()
