"""Worker-death chaos (satellite d): crashes degrade, never corrupt.

Engine side: a chunk whose worker dies is retried once on the
respawned slot, then runs inline in the parent — either way the batch
result stays byte-identical to the sequential loop, with the downgrade
counted.  Sharded side: a probe lost to a worker crash flows through
``resilient_probe`` into the exact degraded accounting the resilience
contract defines (failed shard, lowered recall ceiling), and the slot
heals for the next query.
"""

import numpy as np
import pytest

from repro.core.acorn import AcornIndex
from repro.core.params import AcornParams
from repro.engine.engine import QueryBatch, SearchEngine
from repro.parallel import ProcessPool, WorkerCrash
from repro.predicates import Equals
from repro.shard.partition import HashPartitioner
from repro.shard.resilience import ResiliencePolicy
from repro.shard.sharded import ShardedAcornIndex

from tests.parallel.conftest import make_labeled_world


@pytest.fixture(scope="module")
def chaos_world():
    vectors, table = make_labeled_world(n=300, seed=71)
    index = AcornIndex.build(
        vectors, table,
        params=AcornParams(m=8, gamma=3, m_beta=8, ef_construction=40),
        seed=6,
    )
    return vectors, table, index


class TestEngineChunkRecovery:
    def _batch(self, vectors):
        return QueryBatch.build(
            vectors[:8], [Equals("label", i % 3) for i in range(8)],
            k=4, ef_search=40,
        )

    def test_mid_call_death_retries_on_respawned_slot(self, chaos_world):
        vectors, _table, index = chaos_world
        batch = self._batch(vectors)
        with SearchEngine(index, num_workers=1, executor="sync") as engine:
            baseline = [r.ids.tobytes()
                        for r in engine.search_batch(batch).results]
        with SearchEngine(index, num_workers=1,
                          executor="process") as engine:
            engine.search_batch(batch)  # warm spawn + pin
            pool = engine._proc_pool
            pool.call(0, "die_next")
            outcome = engine.search_batch(batch)
            assert [r.ids.tobytes() for r in outcome.results] == baseline
            assert engine.chunk_retries == 1
            assert engine.chunk_inline_fallbacks == 0
            assert pool.stats()["deaths"] == 1
            assert pool.stats()["spawns"] == 2

    def test_double_crash_falls_back_inline(self, chaos_world,
                                            monkeypatch):
        """When the retry slot dies too, the chunk runs in the parent:
        throughput degrades, the batch never does."""
        vectors, _table, index = chaos_world
        batch = self._batch(vectors)
        with SearchEngine(index, num_workers=1, executor="sync") as engine:
            baseline = [r.ids.tobytes()
                        for r in engine.search_batch(batch).results]
        with SearchEngine(index, num_workers=1,
                          executor="process") as engine:
            engine.search_batch(batch)
            pool = engine._proc_pool

            def always_crash(*_args, **_kwargs):
                raise WorkerCrash(0, "forced")

            monkeypatch.setattr(pool, "call", always_crash)
            outcome = engine.search_batch(batch)
            assert [r.ids.tobytes() for r in outcome.results] == baseline
            assert engine.chunk_retries == 1
            assert engine.chunk_inline_fallbacks == 1
            assert engine.process_fallbacks == 0


class TestShardedDegradedAccounting:
    @pytest.fixture()
    def chaos_sharded(self):
        vectors, table = make_labeled_world(n=300, seed=81)
        sharded = ShardedAcornIndex.build(
            vectors, table, HashPartitioner(3),
            params=AcornParams(m=8, gamma=3, m_beta=8, ef_construction=40),
            seed=7, shard_workers=1, executor="process",
            resilience=ResiliencePolicy(max_retries=0),
        )
        yield vectors, sharded
        sharded.close()

    def test_worker_death_degrades_then_heals(self, chaos_sharded):
        vectors, sharded = chaos_sharded
        query = vectors[0]
        predicate = Equals("label", 0)

        healthy = sharded.search(query, predicate, 5, ef_search=40)
        assert not healthy.degraded
        assert sharded.process_fallbacks == 0

        # deterministic mid-probe death: the next op hard-exits while
        # the parent blocks on its reply
        sharded._proc_pool.call(0, "die_next")
        degraded = sharded.search(query, predicate, 5, ef_search=40)
        assert degraded.degraded
        assert degraded.shards_failed >= 1
        assert degraded.recall_ceiling < 1.0
        statuses = [probe.get("status") for probe in degraded.per_shard
                    if not probe.get("pruned")]
        assert "failed" in statuses

    def test_slot_respawns_for_the_next_query(self, chaos_sharded):
        vectors, sharded = chaos_sharded
        query = vectors[0]
        predicate = Equals("label", 0)
        sharded.search(query, predicate, 5, ef_search=40)
        sharded._proc_pool.call(0, "die_next")
        sharded.search(query, predicate, 5, ef_search=40)
        healed = sharded.search(query, predicate, 5, ef_search=40)
        assert not healed.degraded
        stats = sharded._proc_pool.stats()
        assert stats["deaths"] == 1
        assert stats["spawns"] == 2

    def test_degraded_results_match_surviving_shards(self):
        """The degraded answer equals scatter-gather over the shards
        that did answer — crash loss is shard loss, never corruption."""
        vectors, table = make_labeled_world(n=300, seed=91)
        params = AcornParams(m=8, gamma=3, m_beta=8, ef_construction=40)
        sharded = ShardedAcornIndex.build(
            vectors, table, HashPartitioner(3), params=params, seed=8,
            shard_workers=1, executor="process",
            resilience=ResiliencePolicy(max_retries=0),
        )
        try:
            query = vectors[1]
            predicate = Equals("label", 1)
            sharded.search(query, predicate, 5, ef_search=40)
            sharded._proc_pool.call(0, "die_next")
            degraded = sharded.search(query, predicate, 5, ef_search=40)
            failed = {probe["shard"] for probe in degraded.per_shard
                      if probe.get("status") == "failed"}
            assert failed
            lost_rows = {
                int(i)
                for shard_id in failed
                for i in sharded.assignment.global_ids[shard_id]
            }
            assert not set(int(i) for i in degraded.ids) & lost_rows
        finally:
            sharded.close()
