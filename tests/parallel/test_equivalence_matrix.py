"""Executor equivalence matrix (satellite d).

``sync`` × ``thread`` × ``process`` over {ACORN-γ, ACORN-1, quantized
ACORN-γ} × predicate families must produce *byte-identical* batches —
ids, distances, and per-query counters — because every executor runs
the same search methods over the same frozen arrays.  The process
column additionally asserts zero fallbacks and, via the worker-side
``introspect`` op, that the hot arrays are shared-memory views.
"""

import numpy as np
import pytest

from repro.engine.engine import QueryBatch, SearchEngine
from repro.predicates import Between, Equals, Not, Or, TruePredicate

INDEXES = ("acorn", "acorn1", "quant")
PREDICATE_FAMILIES = ("true", "equals", "range", "boolean")


@pytest.fixture(scope="module")
def matrix_indexes(acorn_index, acorn_one_index, quant_acorn):
    return {
        "acorn": acorn_index,
        "acorn1": acorn_one_index,
        "quant": quant_acorn,
    }


@pytest.fixture(scope="module")
def matrix_queries(small_vectors):
    vectors, _ = small_vectors
    gen = np.random.default_rng(123)
    return vectors[gen.choice(vectors.shape[0], size=10, replace=False)]


def family_predicates(family):
    if family == "true":
        return TruePredicate()
    if family == "equals":
        return [Equals("label", i % 6) for i in range(10)]
    if family == "range":
        return [Between("label", 0, 2), Between("label", 3, 5)] * 5
    return [
        Or(Equals("label", i % 6), Equals("label", (i + 1) % 6))
        if i % 2 else Not(Equals("label", i % 6))
        for i in range(10)
    ]


@pytest.mark.parametrize("index_name", INDEXES)
@pytest.mark.parametrize("family", PREDICATE_FAMILIES)
class TestExecutorEquivalence:
    def _batch(self, matrix_queries, family):
        return QueryBatch.build(
            matrix_queries, family_predicates(family), k=5, ef_search=40
        )

    def test_thread_and_process_match_sync_bytes(
        self, matrix_indexes, matrix_queries, shared_pool, result_key,
        index_name, family,
    ):
        index = matrix_indexes[index_name]
        batch = self._batch(matrix_queries, family)
        with SearchEngine(index, num_workers=1, executor="sync") as engine:
            baseline = result_key(engine.search_batch(batch))
        with SearchEngine(index, num_workers=2,
                          executor="thread") as engine:
            assert result_key(engine.search_batch(batch)) == baseline
        with SearchEngine(index, num_workers=2, executor="process",
                          process_pool=shared_pool) as engine:
            outcome = engine.search_batch(batch)
            assert result_key(outcome) == baseline
            assert engine.process_fallbacks == 0
            assert engine.last_fallback_reason == ""
            # a second batch reuses the warm pins — still identical
            assert result_key(engine.search_batch(batch)) == baseline


class TestWorkerZeroCopy:
    def test_workers_read_the_arena_not_copies(
        self, acorn_index, matrix_queries, shared_pool
    ):
        """The in-worker half of the zero-copy contract: the
        materialized searcher's vectors and CSR arrays share memory
        with the mapped arena block, read-only."""
        batch = QueryBatch.build(matrix_queries, TruePredicate(), k=5,
                                 ef_search=40)
        with SearchEngine(acorn_index, num_workers=2, executor="process",
                          process_pool=shared_pool) as engine:
            engine.search_batch(batch)
            record = engine._arena_manager.current
            pin = (record.token, {"manifest": record.arena.manifest(),
                                  "spec": record.spec})
            report = shared_pool.call(
                0, "introspect", {"token": record.token}, pin=pin
            )
        assert report["vectors_shared"] is True
        assert report["csr_shared"] is True
        assert report["vectors_writeable"] is False
        assert report["arena_nbytes"] == record.arena.nbytes
        assert report["pid"] > 0

    def test_quantized_codes_are_shared_too(
        self, quant_acorn, matrix_queries, shared_pool
    ):
        batch = QueryBatch.build(matrix_queries, TruePredicate(), k=5,
                                 ef_search=40)
        with SearchEngine(quant_acorn, num_workers=2, executor="process",
                          process_pool=shared_pool) as engine:
            engine.search_batch(batch)
            record = engine._arena_manager.current
            pin = (record.token, {"manifest": record.arena.manifest(),
                                  "spec": record.spec})
            report = shared_pool.call(
                0, "introspect", {"token": record.token}, pin=pin
            )
        assert report["codes_shared"] is True
