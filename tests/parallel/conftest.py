"""Fixtures for the process-parallelism suite.

Spawning workers is the dominant cost here (each spawn re-imports numpy
and the library), so one warm session-scoped :class:`ProcessPool` is
shared by every test that does not specifically exercise pool
*lifetime*; those build their own short-lived pools.  Index fixtures
reuse the session-scoped dataset from the top-level conftest.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.attributes.table import AttributeTable
from repro.core.acorn import AcornIndex
from repro.core.params import AcornParams
from repro.parallel import ProcessPool


@pytest.fixture(scope="session")
def shared_pool():
    """A warm 2-slot worker pool shared across the suite."""
    pool = ProcessPool(2)
    yield pool
    pool.close()


@pytest.fixture(scope="session")
def quant_acorn(small_vectors, labeled_table):
    """An ACORN-gamma build with SQ8 quantization enabled."""
    params = AcornParams(m=8, gamma=6, m_beta=16, ef_construction=32)
    index = AcornIndex.build(
        small_vectors[0], labeled_table, params=params, seed=2
    )
    index.enable_quantization("sq8")
    return index


@pytest.fixture(scope="session")
def result_key():
    """Byte-level identity key for a BatchResult (ids, distances, counters)."""

    def key(outcome):
        return [
            (r.ids.tobytes(), r.distances.tobytes(),
             r.distance_computations, s.hops, s.visited_nodes)
            for r, s in zip(outcome.results, outcome.stats)
        ]

    return key


def make_labeled_world(n=240, dim=12, n_labels=3, seed=7):
    """Small clustered vectors + a single int ``label`` column."""
    rng = np.random.default_rng(seed)
    centers = rng.standard_normal((n_labels, dim)).astype(np.float32)
    assign = rng.integers(0, n_labels, size=n)
    vectors = (centers[assign]
               + 0.25 * rng.standard_normal((n, dim))).astype(np.float32)
    table = AttributeTable(n)
    table.add_int_column("label", assign)
    return vectors, table
