"""Close contract (satellite c): terminal, idempotent, no shm leaks.

``SearchEngine`` and ``ShardedAcornIndex`` are context managers whose
``close()`` shuts worker pools and unlinks arenas exactly once; a
closed front raises on use instead of silently resurrecting pools
over unlinked shared memory.
"""

import os

import pytest

from repro.core.params import AcornParams
from repro.engine.engine import QueryBatch, SearchEngine
from repro.predicates import Equals, TruePredicate
from repro.shard.partition import HashPartitioner
from repro.shard.sharded import ShardedAcornIndex

from tests.parallel.conftest import make_labeled_world


def shm_exists(name: str) -> bool:
    return os.path.exists(f"/dev/shm/{name}")


class TestEngineClose:
    def _batch(self, small_vectors):
        return QueryBatch.build(
            small_vectors[0][:6], TruePredicate(), k=4, ef_search=32
        )

    def test_owned_pool_and_arena_shut_down(self, acorn_index,
                                            small_vectors):
        engine = SearchEngine(acorn_index, num_workers=1,
                              executor="process")
        engine.search_batch(self._batch(small_vectors))
        pool = engine._proc_pool
        shm_name = engine._arena_manager.current.arena.shm.name
        assert shm_exists(shm_name)
        engine.close()
        assert pool.closed
        assert engine._proc_pool is None
        assert engine._arena_manager is None
        assert not shm_exists(shm_name)
        engine.close()  # idempotent
        assert engine.closed

    def test_external_pool_survives_engine_close(self, acorn_index,
                                                 small_vectors,
                                                 shared_pool):
        with SearchEngine(acorn_index, num_workers=2, executor="process",
                          process_pool=shared_pool) as engine:
            engine.search_batch(self._batch(small_vectors))
        assert engine.closed
        assert not shared_pool.closed
        assert shared_pool.call(0, "ping")["pid"] > 0

    def test_double_close_and_use_after_close(self, acorn_index,
                                              small_vectors):
        engine = SearchEngine(acorn_index, num_workers=2)
        batch = self._batch(small_vectors)
        engine.search_batch(batch)
        engine.close()
        engine.close()
        with pytest.raises(RuntimeError, match="closed"):
            engine.search_batch(batch)


class TestShardedClose:
    @pytest.fixture()
    def world(self):
        return make_labeled_world(n=240, seed=101)

    def _build(self, world, **kwargs):
        vectors, table = world
        return ShardedAcornIndex.build(
            vectors, table, HashPartitioner(3),
            params=AcornParams(m=8, gamma=3, m_beta=8, ef_construction=40),
            seed=9, **kwargs,
        )

    def test_context_manager_closes(self, world):
        vectors, _ = world
        with self._build(world) as sharded:
            result = sharded.search(vectors[0], Equals("label", 0), 4,
                                    ef_search=40)
            assert len(result.ids)
        assert sharded.closed

    def test_double_close_and_use_after_close(self, world):
        vectors, _ = world
        sharded = self._build(world)
        sharded.search(vectors[0], Equals("label", 0), 4, ef_search=40)
        sharded.close()
        sharded.close()
        with pytest.raises(RuntimeError, match="closed"):
            sharded.search(vectors[0], Equals("label", 0), 4,
                           ef_search=40)

    def test_process_front_unlinks_its_arena(self, world):
        vectors, _ = world
        sharded = self._build(world, shard_workers=1, executor="process")
        sharded.search(vectors[0], Equals("label", 0), 4, ef_search=40)
        pool = sharded._proc_pool
        shm_name = sharded._arena_manager.current.arena.shm.name
        assert shm_exists(shm_name)
        sharded.close()
        assert pool.closed
        assert not shm_exists(shm_name)

    def test_close_before_any_search(self, world):
        sharded = self._build(world, executor="process")
        sharded.close()
        assert sharded.closed


class TestEpochSwapRetiresArena:
    def test_new_epoch_retires_and_unlinks_the_old(self):
        """A search-visible mutation between batches publishes a fresh
        arena; the drained old epoch unlinks (no shm accumulation)."""
        vectors, table = make_labeled_world(n=240, seed=111)
        from repro.core.acorn import AcornIndex

        index = AcornIndex.build(
            vectors, table,
            params=AcornParams(m=8, gamma=3, m_beta=8, ef_construction=40),
            seed=10,
        )
        batch = QueryBatch.build(vectors[:4], TruePredicate(), k=4,
                                 ef_search=32)
        with SearchEngine(index, num_workers=1,
                          executor="process") as engine:
            engine.search_batch(batch)
            manager = engine._arena_manager
            first = manager.current.arena.shm.name
            index.mark_deleted(3)
            outcome = engine.search_batch(batch)
            assert manager.published == 2
            assert manager.live_arenas() == 1
            assert not shm_exists(first)
            assert all(3 not in r.ids for r in outcome.results)
