"""Snapshot build/materialize: equivalence, zero-copy, and the registry.

The in-process half of the zero-copy contract lives here (buffer
identity via ``np.shares_memory`` against the freeze arrays and an
attached arena); the in-worker half is the pool's ``introspect`` op,
exercised by the equivalence matrix.
"""

import numpy as np
import pytest

from repro.core.acorn import AcornIndex
from repro.core.params import AcornParams
from repro.hnsw import HnswIndex
from repro.parallel import (
    COPY_FIXUPS,
    SnapshotArena,
    UnsupportedSearcher,
    build_sharded_snapshot,
    build_snapshot,
    materialize,
    materialize_shard,
    reset_fixup_counters,
    sharded_snapshot_token,
    snapshot_token,
)
from repro.predicates import Equals, TruePredicate
from repro.predicates.base import CompiledPredicate
from repro.shard.partition import HashPartitioner
from repro.shard.sharded import ShardedAcornIndex

from tests.parallel.conftest import make_labeled_world


def _search_pair(original, clone, table, query, predicate, k=5, ef=32):
    """Search the real index and its materialized clone identically.

    The clone's table is a length-only stub, so it gets the predicate
    pre-compiled to a mask — exactly what workers receive.
    """
    mask = predicate.compile(table).mask
    got = original.search(query, predicate, k, ef_search=ef)
    cloned = clone.search(query, CompiledPredicate(None, mask), k,
                          ef_search=ef)
    return got, cloned


def assert_identical(got, cloned):
    assert np.array_equal(got.ids, cloned.ids)
    assert np.array_equal(got.distances, cloned.distances)
    assert got.distance_computations == cloned.distance_computations


class TestMaterializeEquivalence:
    def test_materialized_clone_matches_byte_for_byte(
        self, acorn_index, labeled_table, small_vectors
    ):
        spec, arrays = build_snapshot(acorn_index)
        clone = materialize(spec, arrays)
        rng = np.random.default_rng(17)
        for label in range(4):
            query = small_vectors[0][rng.integers(0, 500)]
            got, cloned = _search_pair(
                acorn_index, clone, labeled_table, query,
                Equals("label", label),
            )
            assert_identical(got, cloned)

    def test_quantized_clone_matches(
        self, quant_acorn, labeled_table, small_vectors
    ):
        spec, arrays = build_snapshot(quant_acorn)
        assert spec.quant is not None
        clone = materialize(spec, arrays)
        got, cloned = _search_pair(
            quant_acorn, clone, labeled_table, small_vectors[0][3],
            TruePredicate(),
        )
        assert_identical(got, cloned)

    def test_tombstones_survive_the_roundtrip(self):
        vectors, table = make_labeled_world(seed=21)
        index = AcornIndex.build(
            vectors, table,
            params=AcornParams(m=8, gamma=3, m_beta=8, ef_construction=40),
            seed=4,
        )
        index.mark_deleted(5)
        index.mark_deleted(17)
        spec, arrays = build_snapshot(index)
        clone = materialize(spec, arrays)
        assert clone._deleted == {5, 17}
        got, cloned = _search_pair(
            index, clone, table, vectors[5], TruePredicate(), k=8, ef=48
        )
        assert_identical(got, cloned)
        assert 5 not in got.ids


class TestZeroCopy:
    def test_freeze_produces_no_canonicalization_copies(self, acorn_index):
        reset_fixup_counters()
        build_snapshot(acorn_index)
        assert sum(COPY_FIXUPS.values()) == 0

    def test_clone_arrays_share_freeze_buffers(self, acorn_index):
        spec, arrays = build_snapshot(acorn_index)
        clone = materialize(spec, arrays)
        assert np.shares_memory(clone.store._data, arrays["vectors"])
        for lev, level in enumerate(clone._frozen):
            assert np.shares_memory(level.indices,
                                    arrays[f"L{lev}.indices"])
            assert np.shares_memory(level.indptr,
                                    arrays[f"L{lev}.indptr"])

    def test_arena_backed_clone_reads_the_shared_block(self, acorn_index):
        spec, arrays = build_snapshot(acorn_index)
        arena = SnapshotArena.create(arrays, "tok-zero-copy")
        try:
            clone = materialize(spec, arena.views())
            assert np.shares_memory(clone.store._data,
                                    arena.view("vectors"))
            assert not clone.store._data.flags.writeable
            assert np.shares_memory(clone._frozen[0].indices,
                                    arena.view("L0.indices"))
        finally:
            arena.unlink()

    def test_quant_codes_share_buffers(self, quant_acorn):
        spec, arrays = build_snapshot(quant_acorn)
        clone = materialize(spec, arrays)
        assert np.shares_memory(clone._quant.codes,
                                arrays["quant.codes"])

    def test_fortran_float64_store_is_repaired_at_freeze(self):
        """Satellite regression: a mis-dtyped, Fortran-ordered vector
        buffer smuggled into the store is copied once (counted, warned)
        and the snapshot still searches identically."""
        vectors, table = make_labeled_world(seed=31)
        index = AcornIndex.build(
            vectors, table,
            params=AcornParams(m=8, gamma=3, m_beta=8, ef_construction=40),
            seed=4,
        )
        baseline = index.search(vectors[0], TruePredicate(), 5,
                                ef_search=32)
        index.store._data = np.asfortranarray(
            index.store.vectors.astype(np.float64)
        )
        reset_fixup_counters()
        with pytest.warns(RuntimeWarning, match="copied once at freeze"):
            spec, arrays = build_snapshot(index)
        assert COPY_FIXUPS["vectors"] == 1
        assert arrays["vectors"].dtype == np.float32
        assert arrays["vectors"].flags.c_contiguous
        clone = materialize(spec, arrays)
        mask = TruePredicate().compile(table).mask
        cloned = clone.search(vectors[0], CompiledPredicate(None, mask),
                              5, ef_search=32)
        assert_identical(baseline, cloned)


class TestTokens:
    def test_token_is_stable_across_calls(self, acorn_index):
        assert snapshot_token(acorn_index) == snapshot_token(acorn_index)

    def test_token_changes_on_delete(self):
        vectors, table = make_labeled_world(seed=41)
        index = AcornIndex.build(
            vectors, table,
            params=AcornParams(m=8, gamma=3, m_beta=8, ef_construction=40),
            seed=4,
        )
        before = snapshot_token(index)
        index.mark_deleted(0)
        assert snapshot_token(index) != before


class TestRegistry:
    def test_non_acorn_searcher_is_unsupported(self, small_vectors):
        hnsw = HnswIndex.build(small_vectors[0][:100], m=8,
                               ef_construction=32, seed=1)
        with pytest.raises(UnsupportedSearcher, match="HnswIndex"):
            snapshot_token(hnsw)
        with pytest.raises(UnsupportedSearcher):
            build_snapshot(hnsw)

    def test_subclass_is_unsupported(self):
        """Exact-type registry: a subclass may carry Python-side state
        the spec would drop, so it must take the thread path."""

        class Tweaked(AcornIndex):
            pass

        vectors, table = make_labeled_world(n=120, seed=61)
        index = Tweaked.build(
            vectors, table,
            params=AcornParams(m=8, gamma=3, m_beta=8, ef_construction=32),
            seed=3,
        )
        with pytest.raises(UnsupportedSearcher, match="Tweaked"):
            snapshot_token(index)

    def test_empty_index_is_unsupported(self, labeled_table):
        index = AcornIndex(
            dim=8, table=labeled_table,
            params=AcornParams(m=8, gamma=3, m_beta=8, ef_construction=32),
        )
        with pytest.raises(UnsupportedSearcher, match="empty"):
            snapshot_token(index)


class TestSharded:
    @pytest.fixture(scope="class")
    def sharded(self):
        vectors, table = make_labeled_world(seed=51)
        return ShardedAcornIndex.build(
            vectors, table, HashPartitioner(3),
            params=AcornParams(m=8, gamma=3, m_beta=8, ef_construction=40),
            seed=5,
        )

    def test_per_shard_materialization_matches(self, sharded):
        spec, arrays = build_sharded_snapshot(sharded)
        assert len(spec.shards) == 3
        rng = np.random.default_rng(9)
        query = rng.standard_normal(12).astype(np.float32)
        for shard_id, shard in enumerate(sharded.shards):
            clone = materialize_shard(spec, arrays, shard_id)
            mask = Equals("label", 1).compile(shard.table).mask
            got = shard.search(query, Equals("label", 1), 4, ef_search=40)
            cloned = clone.search(query, CompiledPredicate(None, mask),
                                  4, ef_search=40)
            assert_identical(got, cloned)
            assert np.shares_memory(clone.store._data,
                                    arrays[f"s{shard_id}.vectors"])

    def test_sharded_token_covers_every_shard(self, sharded):
        token = sharded_snapshot_token(sharded)
        assert token.startswith("sharded:")
        assert token.count("|") == 2

    def test_route_planner_state_is_unsupported(self, sharded):
        sharded._shard_planners = []
        try:
            with pytest.raises(UnsupportedSearcher, match="planner"):
                build_sharded_snapshot(sharded)
            with pytest.raises(UnsupportedSearcher, match="planner"):
                sharded_snapshot_token(sharded)
        finally:
            sharded._shard_planners = None
