"""ProcessPool lifecycle: calls, remote errors, crashes, respawns."""

import pytest

from repro.parallel import ProcessPool, RemoteError, WorkerCrash


class TestCalls:
    def test_ping_roundtrip(self, shared_pool):
        reply = shared_pool.call(0, "ping")
        assert reply["pid"] > 0
        assert isinstance(reply["pinned"], list)

    def test_worker_ids_wrap_modulo_slots(self, shared_pool):
        direct = shared_pool.call(1, "ping")["pid"]
        wrapped = shared_pool.call(3, "ping")["pid"]  # 3 % 2 == 1
        assert direct == wrapped

    def test_map_calls_preserves_call_order(self, shared_pool):
        replies = shared_pool.map_calls([
            (0, "ping", None, None),
            (1, "ping", None, None),
            (0, "ping", None, None),
        ])
        pids = shared_pool.worker_pids()
        assert [r["pid"] for r in replies] == [pids[0], pids[1], pids[0]]

    def test_stats_counts_live_workers(self, shared_pool):
        shared_pool.call(0, "ping")
        stats = shared_pool.stats()
        assert stats["num_workers"] == 2
        assert 1 <= stats["alive"] <= 2
        assert stats["spawns"] >= stats["alive"]

    def test_invalid_worker_count_rejected(self):
        with pytest.raises(ValueError, match="num_workers"):
            ProcessPool(0)


class TestRemoteError:
    def test_unknown_op_is_a_remote_error(self, shared_pool):
        with pytest.raises(RemoteError, match="unknown op"):
            shared_pool.call(0, "no-such-op")

    def test_bad_payload_carries_remote_traceback(self, shared_pool):
        before = shared_pool.call(0, "ping")["pid"]
        with pytest.raises(RemoteError) as excinfo:
            shared_pool.call(0, "search_chunk", {"token": "nope"})
        assert "KeyError" in excinfo.value.remote_traceback
        assert excinfo.value.worker_id == 0
        # the op failed but the worker survived it
        assert shared_pool.call(0, "ping")["pid"] == before


class TestCrashes:
    def test_die_next_crashes_the_following_call(self):
        with ProcessPool(1) as pool:
            first_pid = pool.call(0, "ping")["pid"]
            pool.call(0, "die_next")
            with pytest.raises(WorkerCrash, match="worker 0 died"):
                pool.call(0, "ping")
            assert pool.stats()["deaths"] == 1
            # the slot respawns lazily on the next call
            second_pid = pool.call(0, "ping")["pid"]
            assert second_pid != first_pid
            assert pool.stats()["spawns"] == 2

    def test_worker_crash_is_a_plain_exception(self):
        """Crashes must flow through resilience accounting, which
        catches ``Exception`` — never escape as BaseException."""
        assert issubclass(WorkerCrash, Exception)
        assert not issubclass(WorkerCrash, KeyboardInterrupt)

    def test_kill_worker_heals_transparently(self):
        """SIGKILL is reaped by the next call's liveness check: the
        slot respawns *before* dispatch, so no WorkerCrash surfaces
        (chaos tests that need a mid-call death use ``die_next``)."""
        with ProcessPool(1) as pool:
            first_pid = pool.call(0, "ping")["pid"]
            assert pool.kill_worker(0) is True
            assert pool.call(0, "ping")["pid"] != first_pid

    def test_respawned_worker_loses_its_pins(self):
        """A fresh process has no mappings, so the pool must re-pin —
        tracked via the per-worker pinned set being reset."""
        with ProcessPool(1) as pool:
            pool.call(0, "ping")
            pool._workers[0].pinned.add("epoch-1")
            pool.call(0, "die_next")
            with pytest.raises(WorkerCrash):
                pool.call(0, "ping")
            pool.call(0, "ping")
            assert pool._workers[0].pinned == set()


class TestClose:
    def test_close_is_idempotent_and_terminal(self):
        pool = ProcessPool(1)
        pool.call(0, "ping")
        pool.close()
        pool.close()
        assert pool.closed
        with pytest.raises(RuntimeError, match="closed"):
            pool.call(0, "ping")

    def test_close_without_spawns(self):
        pool = ProcessPool(2)
        pool.close()
        assert pool.stats()["alive"] == 0
