"""Counted (never silent) fallbacks from the process to the thread path.

Searchers outside the snapshot registry, platforms without shared
memory, and fault-wrapped shard views all downgrade to in-process
execution with ``process_fallbacks`` / ``last_fallback_reason``
recording why — and the answers stay identical either way.
"""

import numpy as np
import pytest

import repro.parallel as parallel_pkg
from repro.baselines import PreFilterSearcher
from repro.core.params import AcornParams
from repro.engine.engine import QueryBatch, SearchEngine
from repro.predicates import Equals
from repro.shard.faults import FaultInjector, FaultPlan
from repro.shard.partition import HashPartitioner
from repro.shard.sharded import ShardedAcornIndex

from tests.parallel.conftest import make_labeled_world


class TestEngineFallbacks:
    def test_unregistered_searcher_falls_back_to_threads(
        self, small_vectors, labeled_table, result_key
    ):
        searcher = PreFilterSearcher(small_vectors[0], labeled_table)
        batch = QueryBatch.build(
            small_vectors[0][:6],
            [Equals("label", i % 6) for i in range(6)],
            k=4,
        )
        with SearchEngine(searcher, num_workers=2,
                          executor="thread") as engine:
            baseline = result_key(engine.search_batch(batch))
        with SearchEngine(searcher, num_workers=2,
                          executor="process") as engine:
            outcome = engine.search_batch(batch)
            assert result_key(outcome) == baseline
            assert engine.process_fallbacks == 1
            assert "not process-executable" in engine.last_fallback_reason
            # every batch re-counts: the downgrade is never sticky-silent
            engine.search_batch(batch)
            assert engine.process_fallbacks == 2

    def test_missing_shared_memory_falls_back(
        self, acorn_index, small_vectors, result_key, monkeypatch
    ):
        batch = QueryBatch.build(small_vectors[0][:6],
                                 Equals("label", 1), k=4, ef_search=32)
        with SearchEngine(acorn_index, num_workers=2,
                          executor="thread") as engine:
            baseline = result_key(engine.search_batch(batch))
        monkeypatch.setattr(parallel_pkg, "parallel_available",
                            lambda: False)
        with SearchEngine(acorn_index, num_workers=2,
                          executor="process") as engine:
            outcome = engine.search_batch(batch)
            assert result_key(outcome) == baseline
            assert engine.process_fallbacks == 1
            assert engine.last_fallback_reason == "shared memory unavailable"

    def test_invalid_executor_rejected(self, acorn_index):
        with pytest.raises(ValueError, match="executor"):
            SearchEngine(acorn_index, executor="fork")


class TestShardedFallbacks:
    def test_fault_wrapped_shards_probe_in_process(self):
        """Chaos wrappers live outside the snapshot registry, so the
        fault view downgrades to in-process probes — counted — while
        fault-free answers stay identical to the base index."""
        vectors, table = make_labeled_world(n=240, seed=121)
        sharded = ShardedAcornIndex.build(
            vectors, table, HashPartitioner(3),
            params=AcornParams(m=8, gamma=3, m_beta=8, ef_construction=40),
            seed=11, shard_workers=1, executor="process",
        )
        chaos = sharded.with_faults(
            FaultInjector(FaultPlan(faults={}), seed=0)
        )
        try:
            base = sharded.search(vectors[0], Equals("label", 0), 4,
                                  ef_search=40)
            assert sharded.process_fallbacks == 0
            got = chaos.search(vectors[0], Equals("label", 0), 4,
                               ef_search=40)
            assert chaos.process_fallbacks == 1
            assert "not process-executable" in chaos.last_fallback_reason
            assert np.array_equal(base.ids, got.ids)
            assert np.array_equal(base.distances, got.distances)
        finally:
            chaos.close()
            sharded.close()

    def test_invalid_executor_rejected(self):
        vectors, table = make_labeled_world(n=120, seed=131)
        with pytest.raises(ValueError, match="executor"):
            ShardedAcornIndex.build(
                vectors, table, HashPartitioner(2),
                params=AcornParams(m=8, gamma=3, m_beta=8,
                                   ef_construction=32),
                seed=12, executor="greenlet",
            )
