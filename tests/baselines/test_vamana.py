"""Unit tests for the FilteredVamana and StitchedVamana comparators."""

import numpy as np
import pytest

from repro.baselines import FilteredVamanaIndex, StitchedVamanaIndex
from repro.baselines.vamana_common import extract_equality_label, robust_prune
from repro.datasets.ground_truth import filtered_knn
from repro.predicates import Between, Equals
from repro.vectors.distance import DistanceComputer


@pytest.fixture(scope="module")
def filtered_vamana(small_vectors, labeled_table):
    return FilteredVamanaIndex(
        small_vectors[0], labeled_table, "label", r=16, l=40, seed=0
    )


@pytest.fixture(scope="module")
def stitched_vamana(small_vectors, labeled_table):
    return StitchedVamanaIndex(
        small_vectors[0], labeled_table, "label",
        r_small=12, l_small=30, r_stitched=24, seed=0,
    )


def _workload(small_vectors, labeled_table, seed=6, count=20):
    vectors, _ = small_vectors
    gen = np.random.default_rng(seed)
    queries = vectors[gen.integers(0, len(vectors), count)] + 0.05
    labels = gen.integers(0, 6, size=count)
    masks = [Equals("label", int(l)).mask(labeled_table) for l in labels]
    gt = filtered_knn(vectors, list(queries), masks, k=10)
    return queries, labels, gt


class TestExtractEqualityLabel:
    def test_accepts_equals(self):
        assert extract_equality_label(Equals("label", 3), "label") == 3

    def test_rejects_other_operators(self):
        with pytest.raises(ValueError, match="only supports Equals"):
            extract_equality_label(Between("label", 1, 3), "label")

    def test_rejects_other_column(self):
        with pytest.raises(ValueError, match="only supports Equals"):
            extract_equality_label(Equals("other", 3), "label")


class TestRobustPrune:
    def test_alpha_dominance(self):
        vectors = np.array(
            [[0.0, 0.0], [1.0, 0.0], [2.0, 0.0], [0.0, 3.0]], dtype=np.float32
        )
        computer = DistanceComputer(vectors)
        candidates = [(1.0, 1), (4.0, 2), (9.0, 3)]
        kept = robust_prune(computer, 0, candidates, alpha=1.0, degree_bound=5)
        # 2 is dominated via 1 (d(1,2)=1 <= d(0,2)=4); 3 is not.
        assert kept == [1, 3]

    def test_degree_bound(self):
        gen = np.random.default_rng(0)
        vectors = gen.standard_normal((30, 4)).astype(np.float32)
        computer = DistanceComputer(vectors)
        dists = ((vectors - vectors[0]) ** 2).sum(axis=1)
        candidates = [(float(dists[i]), i) for i in range(1, 30)]
        kept = robust_prune(computer, 0, candidates, alpha=1.2, degree_bound=6)
        assert len(kept) <= 6

    def test_self_excluded(self):
        vectors = np.zeros((3, 2), dtype=np.float32)
        computer = DistanceComputer(vectors)
        kept = robust_prune(
            computer, 0, [(0.0, 0), (1.0, 1)], alpha=1.2, degree_bound=5
        )
        assert 0 not in kept


@pytest.mark.parametrize("fixture_name", ["filtered_vamana", "stitched_vamana"])
class TestVamanaSearch:
    def test_recall(self, fixture_name, request, small_vectors, labeled_table):
        index = request.getfixturevalue(fixture_name)
        queries, labels, gt = _workload(small_vectors, labeled_table)
        recalls = []
        for q, label, g in zip(queries, labels, gt):
            result = index.search(q, Equals("label", int(label)), 10,
                                  ef_search=64)
            recalls.append(
                len(set(result.ids.tolist()) & set(g.tolist())) / len(g)
            )
        assert np.mean(recalls) > 0.7

    def test_results_pass_predicate(self, fixture_name, request, small_vectors,
                                    labeled_table):
        index = request.getfixturevalue(fixture_name)
        vectors, _ = small_vectors
        predicate = Equals("label", 1)
        compiled = predicate.compile(labeled_table)
        result = index.search(vectors[0], predicate, 10, ef_search=32)
        assert compiled.passes_many(result.ids).all()

    def test_unknown_label_returns_empty(self, fixture_name, request,
                                         small_vectors):
        index = request.getfixturevalue(fixture_name)
        vectors, _ = small_vectors
        result = index.search(vectors[0], Equals("label", 77), 5)
        assert len(result) == 0

    def test_non_equality_predicate_rejected(self, fixture_name, request,
                                             small_vectors):
        index = request.getfixturevalue(fixture_name)
        vectors, _ = small_vectors
        with pytest.raises(ValueError, match="only supports Equals"):
            index.search(vectors[0], Between("label", 0, 3), 5)

    def test_degree_bounds(self, fixture_name, request):
        index = request.getfixturevalue(fixture_name)
        bound = index.r if hasattr(index, "r") else index.r_stitched
        assert max(len(lst) for lst in index.adjacency) <= bound
