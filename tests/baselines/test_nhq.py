"""Unit tests for the NHQ fusion-distance comparator."""

import numpy as np
import pytest

from repro.baselines import NhqIndex
from repro.datasets.ground_truth import filtered_knn
from repro.predicates import Between, Equals


@pytest.fixture(scope="module")
def index(small_vectors, labeled_table):
    return NhqIndex(small_vectors[0], labeled_table, "label", degree=16)


class TestConstruction:
    def test_weight_auto_calibrated(self, index):
        assert index.weight > 0

    def test_adjacency_shape(self, index, small_vectors):
        vectors, _ = small_vectors
        assert index.adjacency.shape == (len(vectors), 16)

    def test_no_self_loops(self, index):
        n = len(index)
        rows = np.arange(n)[:, None]
        assert not (index.adjacency == rows).any()

    def test_explicit_weight_respected(self, small_vectors, labeled_table):
        index = NhqIndex(
            small_vectors[0], labeled_table, "label", degree=8, weight=5.0
        )
        assert index.weight == 5.0


class TestSearch:
    def test_recall(self, index, small_vectors, labeled_table):
        vectors, _ = small_vectors
        gen = np.random.default_rng(9)
        queries = vectors[gen.integers(0, len(vectors), 20)] + 0.05
        labels = gen.integers(0, 6, size=20)
        masks = [Equals("label", int(l)).mask(labeled_table) for l in labels]
        gt = filtered_knn(vectors, list(queries), masks, k=10)
        recalls = []
        for q, label, g in zip(queries, labels, gt):
            result = index.search(q, Equals("label", int(label)), 10,
                                  ef_search=80)
            recalls.append(
                len(set(result.ids.tolist()) & set(g.tolist())) / len(g)
            )
        assert np.mean(recalls) > 0.6

    def test_results_pass_predicate(self, index, small_vectors, labeled_table):
        vectors, _ = small_vectors
        predicate = Equals("label", 2)
        compiled = predicate.compile(labeled_table)
        result = index.search(vectors[0], predicate, 10, ef_search=48)
        assert compiled.passes_many(result.ids).all()

    def test_non_equality_rejected(self, index, small_vectors):
        vectors, _ = small_vectors
        with pytest.raises(ValueError, match="only supports Equals"):
            index.search(vectors[0], Between("label", 0, 2), 5)

    def test_rejects_bad_k(self, index, small_vectors):
        vectors, _ = small_vectors
        with pytest.raises(ValueError):
            index.search(vectors[0], Equals("label", 1), 0)
