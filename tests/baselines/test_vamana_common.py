"""Direct unit tests for the DiskANN-family shared machinery."""

import numpy as np
import pytest

from repro.baselines.vamana_common import greedy_search
from repro.vectors.distance import DistanceComputer


@pytest.fixture
def line_world():
    base = np.arange(12, dtype=np.float32).reshape(-1, 1)
    adjacency = [
        [j for j in (i - 1, i + 1) if 0 <= j < 12] for i in range(12)
    ]
    return DistanceComputer(base), adjacency


class TestGreedySearch:
    def test_walks_to_target(self, line_world):
        computer, adjacency = line_world
        query = np.array([10.9], dtype=np.float32)
        beam, visited = greedy_search(computer, query, adjacency, [0], 4)
        assert beam[0][1] == 11
        assert visited[0] == 0  # entry expanded first

    def test_beam_width_respected(self, line_world):
        computer, adjacency = line_world
        query = np.array([5.0], dtype=np.float32)
        beam, _ = greedy_search(computer, query, adjacency, [0], 3)
        assert len(beam) <= 3

    def test_allowed_mask_restricts(self, line_world):
        computer, adjacency = line_world
        allowed = np.zeros(12, dtype=bool)
        allowed[[0, 2, 4, 6]] = True
        query = np.array([6.0], dtype=np.float32)
        beam, visited = greedy_search(
            computer, query, adjacency, [0], 6, allowed=allowed
        )
        # Odd nodes block the chain: only node 0 is reachable.
        assert {node for _, node in beam} == {0}
        assert set(visited) == {0}

    def test_start_failing_mask_returns_empty(self, line_world):
        computer, adjacency = line_world
        allowed = np.zeros(12, dtype=bool)
        beam, visited = greedy_search(
            computer, query=np.array([1.0], dtype=np.float32),
            adjacency=adjacency, starts=[0], list_size=4, allowed=allowed,
        )
        assert beam == [] and visited == []

    def test_multiple_starts(self, line_world):
        computer, adjacency = line_world
        query = np.array([6.0], dtype=np.float32)
        beam, _ = greedy_search(computer, query, adjacency, [0, 11], 4)
        assert beam[0][1] == 6

    def test_beam_sorted(self, line_world):
        computer, adjacency = line_world
        query = np.array([3.3], dtype=np.float32)
        beam, _ = greedy_search(computer, query, adjacency, [0], 5)
        dists = [d for d, _ in beam]
        assert dists == sorted(dists)
