"""Unit tests for the HNSW post-filtering baseline."""

import numpy as np
import pytest

from repro.baselines import PostFilterSearcher
from repro.predicates import Equals, TruePredicate


@pytest.fixture(scope="module")
def searcher(hnsw_index, labeled_table):
    return PostFilterSearcher(hnsw_index, labeled_table)


class TestBudget:
    def test_oversearch_scales_inverse_selectivity(self, searcher):
        assert searcher.candidate_budget(10, 0.1, ef_search=10) == 100
        assert searcher.candidate_budget(10, 0.01, ef_search=10) == 600

    def test_budget_capped_at_dataset(self, searcher):
        assert searcher.candidate_budget(10, 1e-9, ef_search=10) == len(searcher)

    def test_budget_at_least_ef(self, searcher):
        assert searcher.candidate_budget(10, 0.9, ef_search=64) == 64

    def test_zero_selectivity_full_scan(self, searcher):
        assert searcher.candidate_budget(10, 0.0, ef_search=10) == len(searcher)


class TestSearch:
    def test_results_pass_predicate(self, searcher, small_vectors, labeled_table):
        vectors, _ = small_vectors
        predicate = Equals("label", 3)
        compiled = predicate.compile(labeled_table)
        result = searcher.search(vectors[0], predicate, 10, ef_search=32)
        assert compiled.passes_many(result.ids).all()

    def test_reasonable_recall_uncorrelated(
        self, searcher, small_vectors, labeled_table
    ):
        from repro.datasets.ground_truth import filtered_knn

        vectors, _ = small_vectors
        gen = np.random.default_rng(2)
        queries = vectors[gen.integers(0, len(vectors), 20)] + 0.05
        labels = gen.integers(0, 6, size=20)
        masks = [Equals("label", int(l)).mask(labeled_table) for l in labels]
        gt = filtered_knn(vectors, list(queries), masks, k=10)
        recalls = []
        for q, label, g in zip(queries, labels, gt):
            result = searcher.search(q, Equals("label", int(label)), 10,
                                     ef_search=64)
            recalls.append(
                len(set(result.ids.tolist()) & set(g.tolist())) / len(g)
            )
        # Labels are independent of geometry here, the friendly regime
        # for post-filtering: recall should be decent.
        assert np.mean(recalls) > 0.7

    def test_true_predicate_equals_plain_search(self, searcher, small_vectors,
                                                hnsw_index):
        vectors, _ = small_vectors
        post = searcher.search(vectors[5], TruePredicate(), 5, ef_search=64)
        plain = hnsw_index.search(vectors[5], 5, ef_search=64)
        np.testing.assert_array_equal(post.ids, plain.ids)

    def test_rejects_bad_k(self, searcher, small_vectors):
        vectors, _ = small_vectors
        with pytest.raises(ValueError):
            searcher.search(vectors[0], TruePredicate(), -1)

    def test_size_mismatch_rejected(self, hnsw_index):
        from repro.attributes import AttributeTable

        small = AttributeTable(3)
        small.add_int_column("label", [1, 2, 3])
        with pytest.raises(ValueError, match="rows"):
            PostFilterSearcher(hnsw_index, small)

    def test_nbytes_delegates(self, searcher, hnsw_index):
        assert searcher.nbytes() == hnsw_index.nbytes()
