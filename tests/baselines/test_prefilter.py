"""Unit tests for the pre-filtering baseline."""

import numpy as np
import pytest

from repro.baselines import PreFilterSearcher
from repro.datasets.ground_truth import filtered_knn
from repro.predicates import Equals, TruePredicate


@pytest.fixture(scope="module")
def searcher(small_vectors, labeled_table):
    return PreFilterSearcher(small_vectors[0], labeled_table)


class TestExactness:
    def test_matches_ground_truth_exactly(self, searcher, small_vectors,
                                          labeled_table):
        """Pre-filtering is brute force: recall must be perfect."""
        vectors, _ = small_vectors
        gen = np.random.default_rng(1)
        queries = vectors[gen.integers(0, len(vectors), 20)] + 0.1
        labels = gen.integers(0, 6, size=20)
        masks = [Equals("label", int(l)).mask(labeled_table) for l in labels]
        gt = filtered_knn(vectors, list(queries), masks, k=10)
        for q, label, g in zip(queries, labels, gt):
            result = searcher.search(q, Equals("label", int(label)), 10)
            np.testing.assert_array_equal(result.ids, g)

    def test_distance_computations_equal_cardinality(
        self, searcher, labeled_table
    ):
        predicate = Equals("label", 2)
        compiled = predicate.compile(labeled_table)
        result = searcher.search(np.zeros(16, dtype=np.float32), predicate, 5)
        assert result.distance_computations == compiled.cardinality

    def test_true_predicate_scans_everything(self, searcher, small_vectors):
        vectors, _ = small_vectors
        result = searcher.search(vectors[0], TruePredicate(), 5)
        assert result.distance_computations == len(vectors)
        assert result.ids[0] == 0


class TestEdgeCases:
    def test_empty_predicate(self, searcher):
        result = searcher.search(np.zeros(16, dtype=np.float32),
                                 Equals("label", 99), 5)
        assert len(result) == 0

    def test_fewer_passing_than_k(self, searcher, labeled_table):
        compiled = Equals("label", 0).compile(labeled_table)
        result = searcher.search(
            np.zeros(16, dtype=np.float32), Equals("label", 0),
            k=compiled.cardinality + 50,
        )
        assert len(result) == compiled.cardinality

    def test_rejects_bad_k(self, searcher):
        with pytest.raises(ValueError):
            searcher.search(np.zeros(16, dtype=np.float32), TruePredicate(), 0)

    def test_ignores_ef_search_kwarg(self, searcher, small_vectors):
        vectors, _ = small_vectors
        result = searcher.search(vectors[0], TruePredicate(), 3, ef_search=999)
        assert len(result) == 3

    def test_table_size_mismatch_rejected(self, labeled_table):
        with pytest.raises(ValueError, match="rows"):
            PreFilterSearcher(np.zeros((5, 4), dtype=np.float32), labeled_table)

    def test_nbytes_is_flat_index(self, searcher, small_vectors):
        vectors, _ = small_vectors
        assert searcher.nbytes() == vectors.nbytes
