"""Unit tests for the oracle partition index."""

import numpy as np
import pytest

from repro.baselines import OraclePartitionIndex
from repro.datasets.ground_truth import filtered_knn
from repro.predicates import Equals


@pytest.fixture(scope="module")
def oracle(small_vectors, labeled_table):
    predicates = [Equals("label", v) for v in range(6)]
    return OraclePartitionIndex(
        small_vectors[0], labeled_table, predicates,
        m=8, ef_construction=40, seed=3,
    )


class TestConstruction:
    def test_one_partition_per_predicate(self, oracle):
        assert oracle.num_partitions == 6

    def test_duplicate_predicates_deduplicated(self, small_vectors, labeled_table):
        predicates = [Equals("label", 1), Equals("label", 1)]
        oracle = OraclePartitionIndex(
            small_vectors[0], labeled_table, predicates, m=4, seed=0
        )
        assert oracle.num_partitions == 1

    def test_partition_sizes_match_cardinality(self, oracle, labeled_table):
        for value in range(6):
            compiled = Equals("label", value).compile(labeled_table)
            assert len(oracle.partition_for(Equals("label", value))) == (
                compiled.cardinality
            )


class TestSearch:
    def test_near_perfect_recall(self, oracle, small_vectors, labeled_table):
        vectors, _ = small_vectors
        gen = np.random.default_rng(4)
        queries = vectors[gen.integers(0, len(vectors), 20)] + 0.05
        labels = gen.integers(0, 6, size=20)
        masks = [Equals("label", int(l)).mask(labeled_table) for l in labels]
        gt = filtered_knn(vectors, list(queries), masks, k=10)
        recalls = []
        for q, label, g in zip(queries, labels, gt):
            result = oracle.search(q, Equals("label", int(label)), 10,
                                   ef_search=64)
            recalls.append(
                len(set(result.ids.tolist()) & set(g.tolist())) / len(g)
            )
        assert np.mean(recalls) > 0.95

    def test_results_translated_to_global_ids(self, oracle, labeled_table):
        predicate = Equals("label", 2)
        compiled = predicate.compile(labeled_table)
        result = oracle.search(np.zeros(16, dtype=np.float32), predicate, 5)
        assert compiled.passes_many(result.ids).all()

    def test_unknown_predicate_rejected(self, oracle, small_vectors):
        vectors, _ = small_vectors
        with pytest.raises(KeyError, match="cannot serve"):
            oracle.search(vectors[0], Equals("label", 42), 5)

    def test_nbytes_counts_all_partitions(self, oracle, small_vectors):
        vectors, _ = small_vectors
        # Partitions together hold every vector exactly once.
        assert oracle.nbytes() >= vectors.nbytes
