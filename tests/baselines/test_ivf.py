"""Unit tests for the IVF-Flat comparator and its k-means quantizer."""

import numpy as np
import pytest

from repro.baselines import IvfFlatIndex
from repro.baselines.ivf import kmeans
from repro.datasets.ground_truth import filtered_knn
from repro.predicates import Equals, TruePredicate


class TestKmeans:
    def test_assignment_shape(self):
        gen = np.random.default_rng(0)
        data = gen.standard_normal((100, 4)).astype(np.float32)
        centroids, assignments = kmeans(data, 5, seed=0)
        assert centroids.shape == (5, 4)
        assert assignments.shape == (100,)
        assert set(np.unique(assignments)) <= set(range(5))

    def test_separated_clusters_recovered(self):
        gen = np.random.default_rng(1)
        blobs = np.concatenate(
            [gen.standard_normal((50, 2)) * 0.1 + offset
             for offset in ([0, 0], [10, 10], [-10, 10])]
        ).astype(np.float32)
        _, assignments = kmeans(blobs, 3, seed=1)
        # Each true blob should be (almost) pure in its assigned cluster.
        for lo in (0, 50, 100):
            values, counts = np.unique(assignments[lo : lo + 50],
                                       return_counts=True)
            assert counts.max() >= 48

    def test_clusters_capped_at_n(self):
        data = np.zeros((3, 2), dtype=np.float32)
        centroids, _ = kmeans(data, 10, seed=0)
        assert centroids.shape[0] == 3

    def test_rejects_bad_cluster_count(self):
        with pytest.raises(ValueError):
            kmeans(np.zeros((3, 2), dtype=np.float32), 0)


@pytest.fixture(scope="module")
def index(small_vectors, labeled_table):
    return IvfFlatIndex(small_vectors[0], labeled_table, n_clusters=16, seed=0)


class TestIvfSearch:
    def test_cells_partition_dataset(self, index, small_vectors):
        vectors, _ = small_vectors
        total = sum(cell.size for cell in index.cells)
        assert total == len(vectors)

    def test_full_probe_is_exact(self, index, small_vectors, labeled_table):
        vectors, _ = small_vectors
        gen = np.random.default_rng(3)
        queries = vectors[gen.integers(0, len(vectors), 10)] + 0.05
        labels = gen.integers(0, 6, size=10)
        masks = [Equals("label", int(l)).mask(labeled_table) for l in labels]
        gt = filtered_knn(vectors, list(queries), masks, k=10)
        for q, label, g in zip(queries, labels, gt):
            result = index.search(
                q, Equals("label", int(label)), 10,
                nprobe=index.n_clusters,
            )
            np.testing.assert_array_equal(result.ids, g)

    def test_partial_probe_reasonable_recall(
        self, index, small_vectors, labeled_table
    ):
        vectors, _ = small_vectors
        gen = np.random.default_rng(4)
        queries = vectors[gen.integers(0, len(vectors), 20)] + 0.05
        labels = gen.integers(0, 6, size=20)
        masks = [Equals("label", int(l)).mask(labeled_table) for l in labels]
        gt = filtered_knn(vectors, list(queries), masks, k=10)
        recalls = []
        for q, label, g in zip(queries, labels, gt):
            result = index.search(q, Equals("label", int(label)), 10, nprobe=6)
            recalls.append(
                len(set(result.ids.tolist()) & set(g.tolist())) / len(g)
            )
        assert np.mean(recalls) > 0.6

    def test_results_pass_predicate(self, index, small_vectors, labeled_table):
        vectors, _ = small_vectors
        predicate = Equals("label", 3)
        compiled = predicate.compile(labeled_table)
        result = index.search(vectors[0], predicate, 10, nprobe=4)
        assert compiled.passes_many(result.ids).all()

    def test_empty_predicate(self, index, small_vectors):
        vectors, _ = small_vectors
        result = index.search(vectors[0], Equals("label", 99), 5, nprobe=4)
        assert len(result) == 0

    def test_nprobe_derived_from_ef(self, index, small_vectors):
        vectors, _ = small_vectors
        result = index.search(vectors[0], TruePredicate(), 5, ef_search=512)
        assert len(result) == 5

    def test_rejects_bad_k(self, index, small_vectors):
        vectors, _ = small_vectors
        with pytest.raises(ValueError):
            index.search(vectors[0], TruePredicate(), 0)


class TestQuantizedIvf:
    @pytest.fixture(scope="class")
    def sq8(self, small_vectors, labeled_table):
        from repro.baselines.ivf import IvfSq8Index

        return IvfSq8Index(small_vectors[0], labeled_table, n_clusters=16,
                           seed=0)

    @pytest.fixture(scope="class")
    def pq(self, small_vectors, labeled_table):
        from repro.baselines.ivf import IvfPqIndex

        return IvfPqIndex(small_vectors[0], labeled_table, n_clusters=16,
                          n_subspaces=4, n_centroids=32, seed=0)

    @pytest.mark.parametrize("which", ["sq8", "pq"])
    def test_full_probe_high_recall(self, which, request, small_vectors,
                                    labeled_table):
        index = request.getfixturevalue(which)
        vectors, _ = small_vectors
        gen = np.random.default_rng(5)
        queries = vectors[gen.integers(0, len(vectors), 15)] + 0.05
        labels = gen.integers(0, 6, size=15)
        masks = [Equals("label", int(l)).mask(labeled_table) for l in labels]
        gt = filtered_knn(vectors, list(queries), masks, k=10)
        recalls = []
        for q, label, g in zip(queries, labels, gt):
            result = index.search(q, Equals("label", int(label)), 10,
                                  nprobe=index.n_clusters)
            recalls.append(
                len(set(result.ids.tolist()) & set(g.tolist())) / len(g)
            )
        # Quantization distortion allows some slack vs the exact flat.
        threshold = 0.85 if which == "sq8" else 0.5
        assert np.mean(recalls) > threshold

    @pytest.mark.parametrize("which", ["sq8", "pq"])
    def test_smaller_than_flat(self, which, request, index):
        quantized = request.getfixturevalue(which)
        assert quantized.nbytes() < index.nbytes()

    def test_sq8_results_pass_predicate(self, sq8, small_vectors,
                                        labeled_table):
        vectors, _ = small_vectors
        predicate = Equals("label", 2)
        compiled = predicate.compile(labeled_table)
        result = sq8.search(vectors[0], predicate, 10, nprobe=4)
        assert compiled.passes_many(result.ids).all()

    def test_distance_computations_counted(self, sq8, small_vectors):
        vectors, _ = small_vectors
        result = sq8.search(vectors[0], TruePredicate(), 5, nprobe=2)
        assert result.distance_computations > 0
