"""Documentation contract: every public item carries a docstring."""

import importlib
import inspect
import pkgutil

import pytest

import repro

MODULES = [
    name
    for _, name, _ in pkgutil.walk_packages(repro.__path__, prefix="repro.")
    # __main__ runs the CLI on import; its one-liner is covered by cli.
    if not name.endswith("__main__")
]


def _public_members(module):
    for name, member in vars(module).items():
        if name.startswith("_"):
            continue
        defined_here = getattr(member, "__module__", None) == module.__name__
        if not defined_here:
            continue
        if inspect.isclass(member) or inspect.isfunction(member):
            yield name, member


@pytest.mark.parametrize("module_name", MODULES)
def test_module_docstring(module_name):
    module = importlib.import_module(module_name)
    assert module.__doc__ and module.__doc__.strip(), (
        f"{module_name} lacks a module docstring"
    )


@pytest.mark.parametrize("module_name", MODULES)
def test_public_classes_and_functions_documented(module_name):
    module = importlib.import_module(module_name)
    undocumented = []
    for name, member in _public_members(module):
        if not (member.__doc__ and member.__doc__.strip()):
            undocumented.append(name)
        if inspect.isclass(member):
            for attr_name, attr in vars(member).items():
                if attr_name.startswith("_") or not inspect.isfunction(attr):
                    continue
                if attr.__doc__ and attr.__doc__.strip():
                    continue
                # An override inherits its contract's docstring when a
                # base class documents the same method (the standard
                # Python convention — e.g. every Predicate.mask).
                inherited = any(
                    getattr(getattr(base, attr_name, None), "__doc__", None)
                    for base in member.__mro__[1:]
                )
                if not inherited:
                    undocumented.append(f"{name}.{attr_name}")
    assert not undocumented, (
        f"{module_name}: undocumented public items: {undocumented}"
    )
