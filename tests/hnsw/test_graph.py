"""Unit tests for the layered graph storage."""

import pytest

from repro.hnsw.graph import LayeredGraph


@pytest.fixture
def graph():
    g = LayeredGraph()
    g.add_node(0, 2)
    g.add_node(1, 0)
    g.add_node(2, 1)
    return g


class TestAddNode:
    def test_levels_registered(self, graph):
        assert graph.node_level(0) == 2
        assert graph.node_level(1) == 0
        assert graph.max_level == 2

    def test_dense_ids_enforced(self, graph):
        with pytest.raises(ValueError, match="densely"):
            graph.add_node(5, 0)

    def test_negative_level_rejected(self, graph):
        with pytest.raises(ValueError, match="level"):
            graph.add_node(3, -1)

    def test_entry_point_not_auto_updated(self):
        g = LayeredGraph()
        g.add_node(0, 3)
        assert g.entry_point == -1

    def test_node_present_on_all_lower_levels(self, graph):
        assert 0 in graph.nodes_at_level(0)
        assert 0 in graph.nodes_at_level(1)
        assert 0 in graph.nodes_at_level(2)
        assert 1 not in graph.nodes_at_level(1)


class TestNeighbors:
    def test_set_and_get(self, graph):
        graph.set_neighbors(0, 1, [2])
        assert graph.neighbors(0, 1) == [2]

    def test_lists_start_empty(self, graph):
        assert graph.neighbors(2, 1) == []

    def test_mutable_reference(self, graph):
        graph.neighbors(0, 0).append(1)
        assert graph.neighbors(0, 0) == [1]


class TestStatistics:
    def test_num_edges(self, graph):
        graph.set_neighbors(0, 0, [1, 2])
        graph.set_neighbors(1, 0, [0])
        assert graph.num_edges(0) == 3
        assert graph.num_edges() == 3

    def test_average_out_degree(self, graph):
        graph.set_neighbors(0, 0, [1, 2])
        assert graph.average_out_degree(0) == pytest.approx(2 / 3)

    def test_average_out_degree_empty_level(self):
        g = LayeredGraph()
        g.add_node(0, 1)
        assert g.average_out_degree(1) == 0.0 or g.average_out_degree(1) >= 0

    def test_nbytes(self, graph):
        graph.set_neighbors(0, 0, [1, 2])
        assert graph.nbytes(bytes_per_edge=4) == 2 * 4 + 3 * 4

    def test_num_nodes_at_level(self, graph):
        assert graph.num_nodes_at_level(0) == 3
        assert graph.num_nodes_at_level(2) == 1


class TestValidate:
    def test_valid_graph_passes(self, graph):
        graph.set_neighbors(0, 0, [1])
        graph.validate()

    def test_self_loop_caught(self, graph):
        graph.set_neighbors(0, 0, [0])
        with pytest.raises(AssertionError, match="self-loop"):
            graph.validate()

    def test_duplicate_caught(self, graph):
        graph.set_neighbors(0, 0, [1, 1])
        with pytest.raises(AssertionError, match="duplicate"):
            graph.validate()

    def test_cross_level_link_caught(self, graph):
        graph.set_neighbors(0, 1, [1])  # node 1 only exists on level 0
        with pytest.raises(AssertionError, match="absent"):
            graph.validate()
