"""Unit tests for the stochastic level assignment."""

import math

import numpy as np
import pytest

from repro.hnsw.levels import LevelGenerator, level_normalization


class TestNormalization:
    def test_value(self):
        assert level_normalization(16) == pytest.approx(1 / math.log(16))

    def test_rejects_small_m(self):
        with pytest.raises(ValueError):
            level_normalization(1)


class TestLevelGenerator:
    def test_levels_non_negative(self):
        gen = LevelGenerator(16, seed=0)
        assert all(gen.draw() >= 0 for _ in range(1000))

    def test_mean_matches_theory(self):
        # floor(-ln(U) * m_L) is geometric-tailed with P(l >= k) = M^-k,
        # so E[l] = sum_k M^-k = 1/(M-1).
        gen = LevelGenerator(16, seed=1)
        draws = np.array([gen.draw() for _ in range(20_000)])
        assert draws.mean() == pytest.approx(1 / 15, abs=0.01)

    def test_level_zero_most_common(self):
        gen = LevelGenerator(8, seed=2)
        draws = np.array([gen.draw() for _ in range(5000)])
        counts = np.bincount(draws)
        assert counts.argmax() == 0
        assert (np.diff(counts) <= 0).all() or counts[0] > counts[1]

    def test_deterministic_given_seed(self):
        a = [LevelGenerator(16, seed=3).draw() for _ in range(10)]
        b = [LevelGenerator(16, seed=3).draw() for _ in range(10)]
        assert a == b

    def test_expected_levels(self):
        gen = LevelGenerator(16, seed=0)
        assert gen.expected_levels() == pytest.approx(1 + 1 / math.log(16))

    def test_exponential_decay_rate(self):
        # P(l >= k) = M^-k: the population should shrink ~M x per level.
        gen = LevelGenerator(8, seed=4)
        draws = np.array([gen.draw() for _ in range(50_000)])
        p_ge_1 = (draws >= 1).mean()
        assert p_ge_1 == pytest.approx(1 / 8, abs=0.02)
