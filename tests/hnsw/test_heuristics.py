"""Unit tests for neighbor-selection strategies."""

import numpy as np

from repro.hnsw.heuristics import select_neighbors_heuristic, select_neighbors_simple


class TestSimpleSelection:
    def test_keeps_nearest_m(self):
        candidates = [(3.0, 3), (1.0, 1), (2.0, 2), (4.0, 4)]
        got = select_neighbors_simple(candidates, 2)
        assert got == [(1.0, 1), (2.0, 2)]

    def test_fewer_candidates_than_m(self):
        got = select_neighbors_simple([(1.0, 1)], 5)
        assert got == [(1.0, 1)]


class TestRngHeuristic:
    def test_prunes_triangle_long_edge(self):
        # The paper's Figure 5 scenario: v at origin; a close to v; b
        # behind a (closer to a than to v) gets pruned; c off to the
        # side survives.
        vectors = np.array(
            [
                [0.0, 0.0],   # 0 = v (target; distances below are to it)
                [1.0, 0.0],   # 1 = a
                [2.0, 0.0],   # 2 = b: dist(b, a)=1 < dist(b, v)=4 (sq)
                [0.0, 1.5],   # 3 = c
            ],
            dtype=np.float32,
        )
        candidates = [(1.0, 1), (4.0, 2), (2.25, 3)]
        got = select_neighbors_heuristic(vectors, candidates, m=3)
        kept_ids = [nid for _, nid in got]
        assert kept_ids == [1, 3]

    def test_respects_degree_bound(self):
        gen = np.random.default_rng(0)
        vectors = gen.standard_normal((20, 4)).astype(np.float32)
        dists = ((vectors - vectors[0]) ** 2).sum(axis=1)
        candidates = [(float(dists[i]), i) for i in range(1, 20)]
        got = select_neighbors_heuristic(vectors, candidates, m=5)
        assert len(got) <= 5

    def test_nearest_always_kept(self):
        gen = np.random.default_rng(1)
        vectors = gen.standard_normal((10, 4)).astype(np.float32)
        dists = ((vectors - vectors[0]) ** 2).sum(axis=1)
        candidates = sorted((float(dists[i]), i) for i in range(1, 10))
        got = select_neighbors_heuristic(vectors, candidates, m=3)
        assert got[0] == candidates[0]

    def test_empty_candidates(self):
        vectors = np.zeros((1, 2), dtype=np.float32)
        assert select_neighbors_heuristic(vectors, [], m=3) == []

    def test_output_sorted_by_distance(self):
        gen = np.random.default_rng(2)
        vectors = gen.standard_normal((15, 4)).astype(np.float32)
        dists = ((vectors - vectors[0]) ** 2).sum(axis=1)
        candidates = [(float(dists[i]), i) for i in range(1, 15)]
        got = select_neighbors_heuristic(vectors, candidates, m=6)
        assert got == sorted(got)
