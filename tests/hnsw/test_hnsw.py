"""Unit and behavioural tests for the HNSW index."""

import numpy as np
import pytest

from repro.hnsw import HnswIndex
from repro.vectors.distance import pairwise_distances


@pytest.fixture(scope="module")
def built(small_vectors):
    vectors, _ = small_vectors
    return vectors, HnswIndex.build(vectors, m=8, ef_construction=40, seed=1)


class TestConstruction:
    def test_parameter_validation(self):
        with pytest.raises(ValueError, match="M"):
            HnswIndex(4, m=1)
        with pytest.raises(ValueError, match="efc"):
            HnswIndex(4, ef_construction=0)

    def test_graph_invariants(self, built):
        _, index = built
        index.graph.validate()

    def test_degree_bounds_respected(self, built):
        _, index = built
        graph = index.graph
        for node in graph.nodes_at_level(0):
            assert len(graph.neighbors(node, 0)) <= index.m_max0
        for level in range(1, graph.max_level + 1):
            for node in graph.nodes_at_level(level):
                assert len(graph.neighbors(node, level)) <= index.m

    def test_entry_point_is_top_level_node(self, built):
        _, index = built
        entry = index.graph.entry_point
        assert index.graph.node_level(entry) == index.graph.max_level

    def test_incremental_add_returns_ids(self):
        index = HnswIndex(4, m=4, seed=0)
        gen = np.random.default_rng(0)
        ids = [index.add(gen.standard_normal(4)) for _ in range(20)]
        assert ids == list(range(20))

    def test_level_structure_shrinks(self, built):
        _, index = built
        graph = index.graph
        populations = [
            graph.num_nodes_at_level(lev) for lev in range(graph.max_level + 1)
        ]
        assert populations[0] == len(index)
        assert all(a >= b for a, b in zip(populations, populations[1:]))


class TestSearch:
    def test_high_recall(self, built):
        vectors, index = built
        gen = np.random.default_rng(3)
        queries = vectors[gen.integers(0, len(vectors), 30)] + 0.05
        gt = np.argsort(pairwise_distances(vectors, queries), axis=1)[:, :10]
        recalls = []
        for q, g in zip(queries, gt):
            result = index.search(q, 10, ef_search=64)
            recalls.append(
                len(set(result.ids.tolist()) & set(g.tolist())) / 10
            )
        assert np.mean(recalls) > 0.9

    def test_exact_match_found(self, built):
        vectors, index = built
        result = index.search(vectors[42], 1, ef_search=32)
        assert result.ids[0] == 42

    def test_results_sorted(self, built):
        vectors, index = built
        result = index.search(vectors[0] + 0.1, 10, ef_search=32)
        assert (np.diff(result.distances) >= 0).all()

    def test_k_larger_than_ef_still_returns_k(self, built):
        vectors, index = built
        result = index.search(vectors[0], 20, ef_search=5)
        assert len(result) == 20

    def test_rejects_non_positive_k(self, built):
        vectors, index = built
        with pytest.raises(ValueError):
            index.search(vectors[0], 0)

    def test_empty_index(self):
        index = HnswIndex(4)
        result = index.search(np.zeros(4), 5)
        assert len(result) == 0

    def test_single_element_index(self):
        index = HnswIndex(4, seed=0)
        index.add(np.ones(4))
        result = index.search(np.ones(4), 3)
        assert result.ids.tolist() == [0]

    def test_distance_computations_reported(self, built):
        vectors, index = built
        result = index.search(vectors[0], 10, ef_search=32)
        assert result.distance_computations > 0

    def test_search_candidates_returns_budgeted_pool(self, built):
        vectors, index = built
        candidates, ncomp = index.search_candidates(vectors[0], ef_search=50)
        assert len(candidates) == 50
        assert ncomp > 0

    def test_higher_ef_no_worse_recall(self, built):
        vectors, index = built
        gen = np.random.default_rng(5)
        queries = vectors[gen.integers(0, len(vectors), 20)] + 0.05
        gt = np.argsort(pairwise_distances(vectors, queries), axis=1)[:, :10]

        def mean_recall(ef):
            vals = []
            for q, g in zip(queries, gt):
                r = index.search(q, 10, ef_search=ef)
                vals.append(len(set(r.ids.tolist()) & set(g.tolist())) / 10)
            return np.mean(vals)

        assert mean_recall(128) >= mean_recall(8) - 0.05


class TestIntrospection:
    def test_nbytes_exceeds_vector_payload(self, built):
        vectors, index = built
        assert index.nbytes() > vectors.nbytes

    def test_out_degree_by_level(self, built):
        _, index = built
        degrees = index.out_degree_by_level()
        assert set(degrees) == set(range(index.graph.max_level + 1))
        assert degrees[0] > 0


class TestAddBatch:
    def test_returns_all_ids(self):
        gen = np.random.default_rng(0)
        index = HnswIndex(4, m=4, seed=0)
        ids = index.add_batch(gen.standard_normal((15, 4)))
        assert ids.tolist() == list(range(15))

    def test_single_vector_promoted(self):
        index = HnswIndex(4, m=4, seed=0)
        ids = index.add_batch(np.zeros(4))
        assert ids.tolist() == [0]

    def test_empty_batch_returns_empty_intp(self):
        index = HnswIndex(4, m=4, seed=0)
        ids = index.add_batch(np.empty((0, 4)))
        assert ids.shape == (0,)
        assert ids.dtype == np.intp
        assert len(index) == 0

    def test_empty_batch_leaves_rng_untouched(self):
        # An empty batch must not draw levels: a subsequent build is
        # byte-identical to one that never saw the empty call.
        gen = np.random.default_rng(0)
        vectors = gen.standard_normal((30, 4))
        plain = HnswIndex(4, m=4, seed=0)
        plain.add_batch(vectors)
        interrupted = HnswIndex(4, m=4, seed=0)
        interrupted.add_batch(np.empty((0, 4)))
        interrupted.add_batch(vectors)
        for node in range(30):
            assert (plain.graph.neighbors(node, 0)
                    == interrupted.graph.neighbors(node, 0))
