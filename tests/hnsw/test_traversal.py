"""Unit tests for the shared best-first traversal."""

import numpy as np
import pytest

from repro.vectors.distance import DistanceComputer
from repro.hnsw.scratch import TraversalScratch
from repro.hnsw.traversal import greedy_descent, search_layer


@pytest.fixture
def line_world():
    """Ten points on a line; adjacency = chain 0-1-2-...-9."""
    base = np.arange(10, dtype=np.float32).reshape(-1, 1)
    adjacency = {
        i: [j for j in (i - 1, i + 1) if 0 <= j < 10] for i in range(10)
    }
    return DistanceComputer(base), adjacency


def _entry(computer, query, node):
    return [(computer.distance_one(query, node), node)]


def _scratch(*seeds, n=10):
    scratch = TraversalScratch(n)
    scratch.begin(n)
    for seed in seeds:
        scratch.mark(seed)
    return scratch


class TestSearchLayer:
    def test_finds_nearest_from_far_entry(self, line_world):
        computer, adjacency = line_world
        query = np.array([8.9], dtype=np.float32)
        got = search_layer(
            computer, query, _entry(computer, query, 0), ef=3,
            neighbor_fn=lambda c: adjacency[c], scratch=_scratch(0),
        )
        assert [nid for _, nid in got] == [9, 8, 7]

    def test_returns_sorted_ascending(self, line_world):
        computer, adjacency = line_world
        query = np.array([4.2], dtype=np.float32)
        got = search_layer(
            computer, query, _entry(computer, query, 0), ef=5,
            neighbor_fn=lambda c: adjacency[c], scratch=_scratch(0),
        )
        dists = [d for d, _ in got]
        assert dists == sorted(dists)

    def test_ef_bounds_result_size(self, line_world):
        computer, adjacency = line_world
        query = np.array([5.0], dtype=np.float32)
        got = search_layer(
            computer, query, _entry(computer, query, 0), ef=2,
            neighbor_fn=lambda c: adjacency[c], scratch=_scratch(0),
        )
        assert len(got) <= 2

    def test_rejects_non_positive_ef(self, line_world):
        computer, adjacency = line_world
        query = np.array([5.0], dtype=np.float32)
        with pytest.raises(ValueError, match="ef"):
            search_layer(
                computer, query, [], ef=0,
                neighbor_fn=lambda c: adjacency[c],
                scratch=_scratch(),
            )

    def test_empty_neighborhood_terminates(self, line_world):
        computer, _ = line_world
        query = np.array([5.0], dtype=np.float32)
        got = search_layer(
            computer, query, _entry(computer, query, 0), ef=4,
            neighbor_fn=lambda c: [], scratch=_scratch(0),
        )
        assert [nid for _, nid in got] == [0]

    def test_visited_nodes_not_reexpanded(self, line_world):
        computer, adjacency = line_world
        query = np.array([9.0], dtype=np.float32)
        scratch = _scratch(0, 5)  # pretend 5 was already seen: chain is cut
        got = search_layer(
            computer, query, _entry(computer, query, 0), ef=10,
            neighbor_fn=lambda c: adjacency[c], scratch=scratch,
        )
        found = {nid for _, nid in got}
        assert found == {0, 1, 2, 3, 4}

    def test_distance_computations_counted(self, line_world):
        computer, adjacency = line_world
        computer.reset()
        query = np.array([9.0], dtype=np.float32)
        search_layer(
            computer, query, _entry(computer, query, 0), ef=10,
            neighbor_fn=lambda c: adjacency[c], scratch=_scratch(0),
        )
        # 1 entry distance + 9 neighbor evaluations, each exactly once.
        assert computer.count == 10

    def test_ndarray_neighborhoods(self, line_world):
        """CSR-style int32 neighbor arrays take the no-conversion path."""
        computer, adjacency = line_world
        arrays = {c: np.asarray(v, dtype=np.int32)
                  for c, v in adjacency.items()}
        query = np.array([8.9], dtype=np.float32)
        got = search_layer(
            computer, query, _entry(computer, query, 0), ef=3,
            neighbor_fn=lambda c: arrays[c], scratch=_scratch(0),
        )
        assert [nid for _, nid in got] == [9, 8, 7]

    def test_scratch_epoch_reuse_is_fresh(self, line_world):
        """Reusing one scratch across calls must not leak visited marks."""
        computer, adjacency = line_world
        scratch = TraversalScratch(10)
        query = np.array([8.9], dtype=np.float32)
        for _ in range(3):
            scratch.begin(10)
            scratch.mark(0)
            got = search_layer(
                computer, query, _entry(computer, query, 0), ef=3,
                neighbor_fn=lambda c: adjacency[c], scratch=scratch,
            )
            assert [nid for _, nid in got] == [9, 8, 7]


class TestGreedyDescent:
    def test_descends_to_local_best(self, line_world):
        computer, adjacency = line_world
        query = np.array([7.1], dtype=np.float32)
        entry = (computer.distance_one(query, 0), 0)
        best = greedy_descent(
            computer, query, entry, levels=[0],
            neighbor_fn_for_level=lambda lev: (lambda c: adjacency[c]),
            num_nodes=10,
        )
        assert best[1] == 7

    def test_shared_scratch(self, line_world):
        computer, adjacency = line_world
        query = np.array([7.1], dtype=np.float32)
        entry = (computer.distance_one(query, 0), 0)
        scratch = TraversalScratch(10)
        best = greedy_descent(
            computer, query, entry, levels=[0, 0, 0],
            neighbor_fn_for_level=lambda lev: (lambda c: adjacency[c]),
            num_nodes=10, scratch=scratch,
        )
        assert best[1] == 7
        # Three levels -> three epochs on the one shared buffer.
        assert scratch.epoch == 3
