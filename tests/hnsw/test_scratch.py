"""Property tests for the epoch-stamped traversal scratch.

The one invariant that matters: a mark made in one scope is never
visible in any other scope — including across the uint32 epoch
rollover, where a stale stamp could otherwise alias a recycled epoch
value.
"""

from __future__ import annotations

import threading

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hnsw.scratch import MAX_EPOCH, TraversalScratch, thread_scratch


@settings(max_examples=80)
@given(
    n=st.integers(1, 64),
    scopes=st.lists(
        st.lists(st.integers(0, 63), max_size=8), min_size=1, max_size=6
    ),
)
def test_marks_never_leak_between_scopes(n, scopes):
    """Whatever was marked before ``begin`` is unmarked after it."""
    scratch = TraversalScratch(n)
    previous: set[int] = set()
    for marks in scopes:
        scratch.begin(n)
        for node in previous:
            assert not scratch.is_marked(node % n)
        current = {node % n for node in marks}
        for node in current:
            scratch.mark(node)
            assert scratch.is_marked(node)
        for node in range(n):
            assert scratch.is_marked(node) == (node in current)
        previous = current


@settings(max_examples=40)
@given(
    n=st.integers(1, 64),
    start_offset=st.integers(0, 3),
    marks=st.lists(st.integers(0, 63), min_size=1, max_size=8),
)
def test_rollover_clears_stale_stamps(n, start_offset, marks):
    """Epochs wrapping past uint32 max cannot resurrect old marks."""
    scratch = TraversalScratch(n)
    # Jump the counter to the edge of the dtype and plant stale stamps.
    scratch.epoch = MAX_EPOCH - start_offset
    planted = [node % n for node in marks]
    scratch.mark_many(np.asarray(planted, dtype=np.intp))
    for _ in range(start_offset + 2):  # crosses MAX_EPOCH at least once
        epoch = scratch.begin(n)
        assert 1 <= epoch <= MAX_EPOCH
        for node in range(n):
            assert not scratch.is_marked(node)
    # The array was zeroed exactly at the wrap: every surviving stamp
    # must be strictly below the live epoch.
    assert scratch.visited.max(initial=0) <= scratch.epoch


@settings(max_examples=40)
@given(
    initial=st.integers(0, 16),
    grow_to=st.integers(0, 128),
    marks=st.lists(st.integers(0, 15), max_size=6),
)
def test_growth_preserves_current_scope_marks(initial, grow_to, marks):
    scratch = TraversalScratch(initial)
    scratch.begin(max(initial, 1))
    kept = [node % max(initial, 1) for node in marks if node < initial]
    for node in kept:
        scratch.mark(node)
    epoch_before = scratch.epoch
    if scratch.visited.size < grow_to:
        # Trigger growth without opening a new scope.
        grown = np.zeros(grow_to, dtype=scratch.visited.dtype)
        grown[: scratch.visited.size] = scratch.visited
        scratch.visited = grown
    scratch.begin(grow_to)  # growth path inside begin
    assert scratch.epoch == epoch_before + 1
    for node in range(scratch.visited.size):
        assert not scratch.is_marked(node)


def test_begin_grows_capacity_and_keeps_marks_distinct():
    scratch = TraversalScratch(4)
    scratch.begin(4)
    scratch.mark(3)
    scratch.begin(100)  # grow mid-stream
    assert scratch.visited.size >= 100
    assert not scratch.is_marked(3)
    scratch.mark(99)
    assert scratch.is_marked(99)


def test_thread_scratch_is_per_thread_singleton():
    first = thread_scratch(10)
    second = thread_scratch(50)
    assert first is second

    seen: dict[str, TraversalScratch] = {}

    def grab(key: str) -> None:
        seen[key] = thread_scratch(10)

    threads = [threading.Thread(target=grab, args=(f"t{i}",)) for i in range(3)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    scratches = list(seen.values())
    assert len(scratches) == 3
    assert len({id(s) for s in scratches}) == 3
    for scratch in scratches:
        assert scratch is not first
