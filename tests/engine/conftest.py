"""Fixtures for the batch-engine suite.

Reuses the session-scoped dataset and ACORN indexes from the top-level
conftest and adds the baseline searchers plus a shared query/predicate
workload, so equivalence tests can sweep every index type without
rebuilding anything.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import IvfFlatIndex, PostFilterSearcher, PreFilterSearcher
from repro.predicates import Equals


@pytest.fixture(scope="session")
def engine_queries(small_vectors):
    """12 query vectors sampled from the shared dataset."""
    vectors, _ = small_vectors
    gen = np.random.default_rng(99)
    picks = gen.choice(vectors.shape[0], size=12, replace=False)
    return vectors[picks].copy()


@pytest.fixture(scope="session")
def engine_predicates():
    """One label-equality predicate per query, cycling all 6 labels."""
    return [Equals("label", i % 6) for i in range(12)]


@pytest.fixture(scope="session")
def prefilter_searcher(small_vectors, labeled_table):
    return PreFilterSearcher(small_vectors[0], labeled_table)


@pytest.fixture(scope="session")
def postfilter_searcher(hnsw_index, labeled_table):
    return PostFilterSearcher(hnsw_index, labeled_table, max_oversearch=0.5)


@pytest.fixture(scope="session")
def ivf_searcher(small_vectors, labeled_table):
    return IvfFlatIndex(small_vectors[0], labeled_table, n_clusters=16, seed=0)
