"""Batch execution must be byte-identical to a sequential loop.

The engine's core contract: for a fixed searcher and batch, the result
of ``search_batch`` is exactly what a one-query-at-a-time loop produces,
for every index type and any worker count.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine import BatchResult, QueryBatch, SearchEngine

K = 5
EF = 48

ALL_SEARCHERS = [
    "acorn_index",
    "acorn_one_index",
    "prefilter_searcher",
    "postfilter_searcher",
    "ivf_searcher",
]


def _sequential(searcher, queries, predicates, k=K, ef=EF):
    return [
        searcher.search(q, p, k, ef_search=ef)
        for q, p in zip(queries, predicates)
    ]


def _assert_identical(seq_results, batch_results):
    assert len(seq_results) == len(batch_results)
    for seq, bat in zip(seq_results, batch_results):
        assert np.array_equal(seq.ids, bat.ids)
        assert np.array_equal(
            np.asarray(seq.distances), np.asarray(bat.distances)
        )
        assert seq.distance_computations == bat.distance_computations


@pytest.mark.parametrize("searcher_name", ALL_SEARCHERS)
def test_batch_matches_sequential(
    searcher_name, request, engine_queries, engine_predicates
):
    searcher = request.getfixturevalue(searcher_name)
    seq = _sequential(searcher, engine_queries, engine_predicates)
    with SearchEngine(searcher, num_workers=4) as engine:
        outcome = engine.search_batch(
            engine_queries, engine_predicates, k=K, ef_search=EF
        )
    _assert_identical(seq, outcome.results)


@pytest.mark.parametrize("workers", [1, 4, 8])
def test_deterministic_across_worker_counts(
    workers, acorn_index, engine_queries, engine_predicates
):
    batch = QueryBatch.build(engine_queries, engine_predicates, k=K,
                             ef_search=EF)
    reference = _sequential(acorn_index, engine_queries, engine_predicates)
    with SearchEngine(acorn_index, num_workers=workers) as engine:
        first = engine.search_batch(batch)
        second = engine.search_batch(batch)
    _assert_identical(reference, first.results)
    _assert_identical(first.results, second.results)


def test_mixin_search_batch_list(acorn_index, engine_queries,
                                 engine_predicates):
    """The back-compat mixin entry point returns a plain result list."""
    seq = _sequential(acorn_index, engine_queries, engine_predicates)
    out = acorn_index.search_batch(
        engine_queries, engine_predicates, K, ef_search=EF, num_workers=4
    )
    assert isinstance(out, list)
    _assert_identical(seq, out)


def test_mixin_with_stats_returns_batch_result(
    acorn_index, engine_queries, engine_predicates
):
    out = acorn_index.search_batch(
        engine_queries, engine_predicates, K, ef_search=EF, with_stats=True
    )
    assert isinstance(out, BatchResult)
    assert len(out.stats) == len(engine_queries)


def test_cache_eviction_preserves_correctness(
    acorn_index, engine_queries, engine_predicates
):
    """A 2-entry cache thrashing over 6 distinct predicates must still
    return exactly the sequential answers — eviction affects cost only."""
    seq = _sequential(acorn_index, engine_queries, engine_predicates)
    with SearchEngine(acorn_index, num_workers=2, cache_size=2) as engine:
        outcome = engine.search_batch(
            engine_queries, engine_predicates, k=K, ef_search=EF
        )
        info = engine.cache_info()
    _assert_identical(seq, outcome.results)
    assert info.size <= 2
    # 6 distinct predicates through a 2-slot LRU in cyclic order: every
    # lookup evicts-then-recompiles, so every query is a miss.
    assert info.misses == len(engine_queries)


def test_empty_batch(acorn_index):
    with SearchEngine(acorn_index) as engine:
        outcome = engine.search_batch(
            np.empty((0, 16), dtype=np.float32), [], k=K
        )
    assert len(outcome) == 0
    assert outcome.results == [] and outcome.stats == []
    assert outcome.summary()["queries"] == 0


def test_single_query_batch(acorn_index, engine_queries, engine_predicates):
    seq = _sequential(
        acorn_index, engine_queries[:1], engine_predicates[:1]
    )
    with SearchEngine(acorn_index, num_workers=4) as engine:
        outcome = engine.search_batch(
            engine_queries[0], engine_predicates[0], k=K, ef_search=EF
        )
    assert len(outcome) == 1
    _assert_identical(seq, outcome.results)
