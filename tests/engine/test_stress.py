"""Concurrency stress: many readers on one frozen snapshot.

Hammers the engine with more threads than the fast suite uses, while an
independent writer builds another index on the same interpreter, and
verifies (a) answers stay byte-identical to the sequential baseline and
(b) no distance-count increment is ever lost to a race.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.core import AcornIndex, AcornParams
from repro.core.search import assert_frozen
from repro.engine import SearchEngine
from repro.predicates import Equals
from repro.vectors.distance import GLOBAL_TALLY, DistanceComputer

pytestmark = pytest.mark.slow

N_THREADS = 8
N_QUERIES = 50 * N_THREADS


@pytest.fixture(scope="module")
def stress_workload(small_vectors):
    gen = np.random.default_rng(314)
    picks = gen.integers(0, small_vectors[0].shape[0], size=N_QUERIES)
    queries = small_vectors[0][picks].copy()
    predicates = [Equals("label", int(i) % 6) for i in range(N_QUERIES)]
    return queries, predicates


def test_shared_snapshot_with_concurrent_writer(
    acorn_index, stress_workload
):
    """8 worker threads x 50 queries each against one frozen snapshot,
    while a writer thread builds a separate index concurrently; results
    must match the sequential baseline exactly."""
    queries, predicates = stress_workload
    baseline = [
        acorn_index.search(q, p, 5, ef_search=40)
        for q, p in zip(queries, predicates)
    ]

    built = []

    def writer():
        gen = np.random.default_rng(1)
        vecs = gen.standard_normal((300, 16)).astype(np.float32)
        from repro.attributes import AttributeTable

        table = AttributeTable(300)
        table.add_int_column("label", gen.integers(0, 4, size=300))
        params = AcornParams(m=6, gamma=4, m_beta=12, ef_construction=24)
        built.append(AcornIndex.build(vecs, table, params=params, seed=9))

    frozen = acorn_index.freeze()
    assert_frozen(frozen)
    thread = threading.Thread(target=writer)
    thread.start()
    try:
        with SearchEngine(acorn_index, num_workers=N_THREADS) as engine:
            outcome = engine.search_batch(
                queries, predicates, k=5, ef_search=40
            )
    finally:
        thread.join()

    assert len(built) == 1 and len(built[0]) == 300
    for seq, bat in zip(baseline, outcome.results):
        assert np.array_equal(seq.ids, bat.ids)
        assert seq.distance_computations == bat.distance_computations
    # The writer never touched the served snapshot.
    assert_frozen(acorn_index.freeze())


def test_global_tally_reconciles_under_contention(
    acorn_index, stress_workload
):
    """Readers-only phase: the process-global tally's delta equals the
    sum of per-query counts — no increment lost across 8 threads."""
    queries, predicates = stress_workload
    with SearchEngine(acorn_index, num_workers=N_THREADS) as engine:
        compiled, _ = engine._compile_predicates(predicates)
        before = GLOBAL_TALLY.total
        outcome = engine.search_batch(queries, compiled, k=5, ef_search=40)
        delta = GLOBAL_TALLY.total - before
    assert delta == outcome.total_distance_computations


def test_distance_computer_counter_is_thread_safe(small_vectors):
    """Direct hammer: 8 threads x 10k increments on one shared computer
    must never lose an update."""
    computer = DistanceComputer(small_vectors[0])
    per_thread, increments = 10_000, 3

    def hammer():
        for _ in range(per_thread):
            computer.add_count(increments)

    threads = [threading.Thread(target=hammer) for _ in range(N_THREADS)]
    before = GLOBAL_TALLY.total
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    expected = N_THREADS * per_thread * increments
    assert computer.count == expected
    assert GLOBAL_TALLY.total - before == expected
