"""Engine lifecycle hardening and batch-validation diagnostics."""

import gc

import numpy as np
import pytest

from repro.engine.engine import QueryBatch, SearchEngine
from repro.predicates import Equals, TruePredicate


class TestQueryBatchValidation:
    def test_mismatched_lengths_message_names_both_counts(self):
        queries = np.zeros((3, 4), dtype=np.float32)
        predicates = [TruePredicate()] * 2
        with pytest.raises(ValueError) as excinfo:
            QueryBatch.build(queries, predicates, k=5)
        message = str(excinfo.value)
        assert "3 queries" in message
        assert "2 predicates" in message
        assert "broadcast" in message

    def test_too_many_predicates_also_rejected(self):
        queries = np.zeros((2, 4), dtype=np.float32)
        with pytest.raises(ValueError, match="2 queries.*5 predicates"):
            QueryBatch.build(queries, [TruePredicate()] * 5, k=5)

    def test_single_predicate_broadcasts(self):
        queries = np.zeros((3, 4), dtype=np.float32)
        batch = QueryBatch.build(queries, Equals("x", 1), k=5)
        assert len(batch.predicates) == 3

    def test_matched_lengths_accepted(self):
        queries = np.zeros((2, 4), dtype=np.float32)
        batch = QueryBatch.build(queries, [TruePredicate()] * 2, k=5)
        assert len(batch) == 2


class TestEngineClose:
    def _engine(self, acorn_index, workers=2):
        return SearchEngine(acorn_index, num_workers=workers)

    def test_close_idempotent(self, acorn_index):
        engine = self._engine(acorn_index)
        engine._executor()  # force pool creation
        engine.close()
        engine.close()
        assert engine._pool is None

    def test_del_after_explicit_close(self, acorn_index):
        engine = self._engine(acorn_index)
        engine._executor()
        engine.close()
        engine.__del__()  # must not raise
        assert engine._pool is None

    def test_close_without_pool(self, acorn_index):
        engine = self._engine(acorn_index)
        engine.close()  # never created a pool
        assert engine._pool is None

    def test_del_safe_after_failed_init(self):
        """__del__ on a partially-constructed engine must not raise."""
        engine = SearchEngine.__new__(SearchEngine)  # __init__ never ran
        engine.__del__()

    def test_context_manager_closes(self, acorn_index):
        with SearchEngine(acorn_index, num_workers=2) as engine:
            engine._executor()
            assert engine._pool is not None
        assert engine._pool is None

    def test_search_after_close_raises(self, acorn_index, small_vectors):
        """close() is terminal: it may have unlinked shared-memory
        arenas, so a later batch raises instead of silently re-creating
        pools (the contract the process executor relies on)."""
        engine = self._engine(acorn_index)
        batch = QueryBatch.build(
            small_vectors[0][:4], TruePredicate(), k=3, ef_search=16
        )
        engine.search_batch(batch)
        engine.close()
        with pytest.raises(RuntimeError, match="closed"):
            engine.search_batch(batch)
        engine.close()  # still idempotent after the failed call

    def test_gc_collects_closed_engine(self, acorn_index):
        engine = self._engine(acorn_index)
        engine._executor()
        engine.close()
        del engine
        gc.collect()  # triggers __del__; must be silent
