"""Golden regression: pinned serialization of the instrumentation.

``QueryStats.to_dict()``, ``BatchResult.summary()``, and the sweep CSV
header feed downstream dashboards and the ``BENCH_*.json`` schemas, so
their shape must not drift silently.  These goldens pin field names,
ordering, and exact values (the inputs are hand-crafted, so every
number below is arithmetically forced).  If a deliberate schema change
moves them, update the goldens here *and* the corresponding
``validate_*_entry`` checks in ``repro.cli`` in the same commit.
"""

import dataclasses

import pytest

from repro.engine.engine import BatchResult
from repro.engine.instrumentation import QueryStats
from repro.eval.runner import MethodSweep, SweepPoint

QUERY_STATS_FIELDS = (
    "query_index",
    "distance_computations",
    "hops",
    "visited_nodes",
    "predicate_cache_hit",
    "wall_time_s",
    "shards_probed",
    "shards_pruned",
    "shards_failed",
    "shards_timed_out",
    "degraded",
    "recall_ceiling",
    "route_chosen",
    "route_reason",
    "fallback_triggered",
    "estimator_error",
    "quantized_distances",
    "rerank_distances",
    "rerank_factor",
    "queue_wait_ms",
    "batch_size_served",
    "tenant_id",
    "epoch",
)

SUMMARY_KEYS = (
    "queries",
    "num_workers",
    "wall_time_s",
    "qps",
    "latency_s",
    "distance_computations",
    "total_distance_computations",
    "cache_hits",
    "cache_misses",
    "shards_probed",
    "shards_pruned",
    "shards_failed",
    "shards_timed_out",
    "degraded_queries",
    "min_recall_ceiling",
    "route_counts",
    "fallbacks_triggered",
    "mean_abs_estimator_error",
    "total_quantized_distances",
    "total_rerank_distances",
    "mean_queue_wait_ms",
    "mean_batch_size_served",
    "tenant_counts",
    "max_epoch",
)

CSV_HEADER = (
    "method,effort,recall,qps,mean_distance_computations,"
    "mean_latency_s,p50_latency_s,p95_latency_s,p99_latency_s,"
    "mean_shards_probed,mean_shards_pruned,mean_shards_failed,"
    "mean_shards_timed_out,degraded_fraction,mean_recall_ceiling,"
    "fallback_fraction,mean_abs_estimator_error,"
    "mean_quantized_distances,mean_rerank_distances,"
    "mean_queue_wait_ms,mean_batch_size_served"
)


def _stats_pair():
    healthy = QueryStats(
        query_index=0, distance_computations=120, hops=40,
        visited_nodes=55, predicate_cache_hit=False, wall_time_s=0.002,
        shards_probed=3, shards_pruned=1,
    )
    degraded = QueryStats(
        query_index=1, distance_computations=80, hops=25,
        visited_nodes=30, predicate_cache_hit=True, wall_time_s=0.004,
        shards_probed=2, shards_pruned=2, shards_failed=1,
        shards_timed_out=1, degraded=True, recall_ceiling=0.625,
        route_chosen="pre-filter",
        route_reason="fallback from acorn-gamma: hop budget exhausted",
        fallback_triggered=True, estimator_error=-0.05,
        quantized_distances=640, rerank_distances=30, rerank_factor=3.0,
        queue_wait_ms=4.0, batch_size_served=2, tenant_id="acme",
        epoch=7,
    )
    return healthy, degraded


class TestQueryStatsGolden:
    def test_field_names_and_order_pinned(self):
        assert tuple(
            f.name for f in dataclasses.fields(QueryStats)
        ) == QUERY_STATS_FIELDS

    def test_to_dict_golden(self):
        healthy, _ = _stats_pair()
        assert healthy.to_dict() == {
            "query_index": 0,
            "distance_computations": 120,
            "hops": 40,
            "visited_nodes": 55,
            "predicate_cache_hit": False,
            "wall_time_s": 0.002,
            "shards_probed": 3,
            "shards_pruned": 1,
            "shards_failed": 0,
            "shards_timed_out": 0,
            "degraded": False,
            "recall_ceiling": 1.0,
            "route_chosen": "",
            "route_reason": "",
            "fallback_triggered": False,
            "estimator_error": 0.0,
            "quantized_distances": 0,
            "rerank_distances": 0,
            "rerank_factor": 0.0,
            "queue_wait_ms": 0.0,
            "batch_size_served": 0,
            "tenant_id": "",
            "epoch": 0,
        }

    def test_failure_fields_default_to_healthy(self):
        healthy, _ = _stats_pair()
        assert healthy.shards_failed == 0
        assert healthy.shards_timed_out == 0
        assert healthy.degraded is False
        assert healthy.recall_ceiling == 1.0

    def test_routing_fields_default_to_unrouted(self):
        healthy, _ = _stats_pair()
        assert healthy.route_chosen == ""
        assert healthy.route_reason == ""
        assert healthy.fallback_triggered is False
        assert healthy.estimator_error == 0.0


class TestBatchSummaryGolden:
    def _summary(self):
        healthy, degraded = _stats_pair()
        batch = BatchResult(
            results=[None, None], stats=[healthy, degraded],
            wall_time_s=0.01, num_workers=2,
        )
        return batch.summary()

    def test_key_set_and_order_pinned(self):
        assert tuple(self._summary().keys()) == SUMMARY_KEYS

    def test_summary_values_golden(self):
        summary = self._summary()
        assert summary["queries"] == 2
        assert summary["num_workers"] == 2
        assert summary["qps"] == pytest.approx(200.0)
        assert summary["total_distance_computations"] == 200
        assert summary["cache_hits"] == 1
        assert summary["cache_misses"] == 1
        assert summary["shards_probed"] == 5
        assert summary["shards_pruned"] == 3
        assert summary["shards_failed"] == 1
        assert summary["shards_timed_out"] == 1
        assert summary["degraded_queries"] == 1
        assert summary["min_recall_ceiling"] == pytest.approx(0.625)
        # Only the degraded query carries a route; the healthy query
        # ran unrouted and must not appear in the tally.
        assert summary["route_counts"] == {"pre-filter": 1}
        assert summary["fallbacks_triggered"] == 1
        assert summary["mean_abs_estimator_error"] == pytest.approx(0.025)
        # Only the degraded query ran quantized; totals sum per-query
        # counters and the healthy query contributes zero.
        assert summary["total_quantized_distances"] == 640
        assert summary["total_rerank_distances"] == 30
        # Only the degraded query rode a coalesced serving batch; the
        # healthy query was a direct engine call contributing zeros to
        # both means and no tenant to the tally.
        assert summary["mean_queue_wait_ms"] == pytest.approx(2.0)
        assert summary["mean_batch_size_served"] == pytest.approx(1.0)
        assert summary["tenant_counts"] == {"acme": 1}
        # The degraded query ran at lifecycle epoch 7; the healthy one
        # was un-epoched (0), and the summary reports the newest seen.
        assert summary["max_epoch"] == 7
        assert summary["latency_s"] == pytest.approx({
            "count": 2, "mean": 0.003, "p50": 0.003, "p95": 0.0039,
            "p99": 0.00398, "min": 0.002, "max": 0.004,
        })
        assert summary["distance_computations"] == pytest.approx({
            "count": 2, "mean": 100.0, "p50": 100.0, "p95": 118.0,
            "p99": 119.6, "min": 80.0, "max": 120.0,
        })


class TestSweepCsvGolden:
    def test_header_pinned(self):
        sweep = MethodSweep(method="m", points=[])
        assert sweep.to_csv() == CSV_HEADER

    def test_row_golden(self):
        point = SweepPoint(
            effort=40, recall=0.95, qps=1234.5,
            mean_distance_computations=321.0, mean_latency_s=0.0008,
            p50_latency_s=0.0007, p95_latency_s=0.0011,
            p99_latency_s=0.0013, mean_shards_probed=3.5,
            mean_shards_pruned=0.5, mean_shards_failed=0.25,
            mean_shards_timed_out=0.75, degraded_fraction=0.5,
            mean_recall_ceiling=0.9375, fallback_fraction=0.125,
            mean_abs_estimator_error=0.015625,
            mean_quantized_distances=512.25, mean_rerank_distances=30.5,
            mean_queue_wait_ms=1.25, mean_batch_size_served=3.75,
        )
        sweep = MethodSweep(method="acorn", points=[point])
        assert sweep.to_csv().splitlines()[1] == (
            "acorn,40,0.950000,1234.500,321.00,0.000800,0.000700,"
            "0.001100,0.001300,3.50,0.50,0.25,0.75,0.5000,0.9375,"
            "0.1250,0.015625,512.25,30.50,1.250,3.75"
        )

    def test_failure_columns_default_to_healthy(self):
        point = SweepPoint(
            effort=10, recall=0.5, qps=1.0,
            mean_distance_computations=1.0, mean_latency_s=0.1,
        )
        assert point.mean_shards_failed == 0.0
        assert point.mean_shards_timed_out == 0.0
        assert point.degraded_fraction == 0.0
        assert point.mean_recall_ceiling == 1.0
        assert point.fallback_fraction == 0.0
        assert point.mean_abs_estimator_error == 0.0
        assert point.mean_quantized_distances == 0.0
        assert point.mean_rerank_distances == 0.0
        assert point.mean_queue_wait_ms == 0.0
        assert point.mean_batch_size_served == 0.0
