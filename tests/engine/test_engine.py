"""Engine plumbing: batch validation, instrumentation, predicate cache.

Covers the per-query ``QueryStats`` contract (in particular that its
distance-computation counts reconcile exactly with the process-global
tally), the LRU cache's hit/miss semantics, and ``QueryBatch``'s input
normalization.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.engine import (
    PredicateCache,
    QueryBatch,
    QueryStats,
    SearchEngine,
    resolve_table,
)
from repro.predicates import Equals, TruePredicate
from repro.vectors.distance import GLOBAL_TALLY

K = 5
EF = 48


# ----------------------------------------------------------------------
# QueryBatch validation
# ----------------------------------------------------------------------

def test_batch_build_mismatched_lengths_raises(engine_queries):
    with pytest.raises(ValueError, match="predicates"):
        QueryBatch.build(engine_queries, [TruePredicate()] * 3, k=K)


def test_batch_build_rejects_nonpositive_k(engine_queries,
                                           engine_predicates):
    with pytest.raises(ValueError, match="k must be positive"):
        QueryBatch.build(engine_queries, engine_predicates, k=0)


def test_batch_build_broadcasts_single_predicate(engine_queries):
    batch = QueryBatch.build(engine_queries, Equals("label", 0), k=K)
    assert len(batch.predicates) == len(engine_queries)
    assert all(p is batch.predicates[0] for p in batch.predicates)


def test_batch_build_promotes_single_vector(engine_queries):
    batch = QueryBatch.build(engine_queries[0], TruePredicate(), k=K)
    assert batch.queries.shape == (1, engine_queries.shape[1])
    assert len(batch) == 1


def test_batch_build_empty(engine_queries):
    batch = QueryBatch.build(
        np.empty((0, engine_queries.shape[1]), dtype=np.float32), [], k=K
    )
    assert len(batch) == 0


def test_search_batch_raw_pieces_require_k(acorn_index, engine_queries,
                                           engine_predicates):
    with SearchEngine(acorn_index) as engine:
        with pytest.raises(ValueError, match="k is required"):
            engine.search_batch(engine_queries, engine_predicates)


# ----------------------------------------------------------------------
# Instrumentation
# ----------------------------------------------------------------------

def test_query_stats_reconcile_with_global_tally(
    acorn_index, engine_queries, engine_predicates
):
    """Acceptance criterion: per-query ``distance_computations`` sums to
    exactly the process-global counter delta across the batch."""
    with SearchEngine(acorn_index, num_workers=4) as engine:
        # Pre-compile so the delta below measures search work only.
        compiled, _ = engine._compile_predicates(engine_predicates)
        before = GLOBAL_TALLY.total
        outcome = engine.search_batch(
            engine_queries, compiled, k=K, ef_search=EF
        )
        delta = GLOBAL_TALLY.total - before
    assert delta == outcome.total_distance_computations
    assert delta == sum(s.distance_computations for s in outcome.stats)


def test_query_stats_match_results_and_order(
    acorn_index, engine_queries, engine_predicates
):
    with SearchEngine(acorn_index, num_workers=4) as engine:
        outcome = engine.search_batch(
            engine_queries, engine_predicates, k=K, ef_search=EF
        )
    for i, (result, stats) in enumerate(zip(outcome.results, outcome.stats)):
        assert stats.query_index == i
        assert stats.distance_computations == result.distance_computations
        assert stats.hops == result.hops
        assert stats.visited_nodes == result.visited_nodes
        assert stats.wall_time_s >= 0.0


def test_query_stats_frozen_and_serializable():
    stats = QueryStats(
        query_index=0, distance_computations=10, hops=3, visited_nodes=7,
        predicate_cache_hit=True, wall_time_s=0.5,
    )
    with pytest.raises(dataclasses.FrozenInstanceError):
        stats.hops = 99
    record = stats.to_dict()
    assert record["distance_computations"] == 10
    assert record["predicate_cache_hit"] is True


def test_batch_summary_fields(acorn_index, engine_queries,
                              engine_predicates):
    with SearchEngine(acorn_index, num_workers=2) as engine:
        outcome = engine.search_batch(
            engine_queries, engine_predicates, k=K, ef_search=EF
        )
    summary = outcome.summary()
    assert summary["queries"] == len(engine_queries)
    assert summary["num_workers"] == 2
    assert summary["qps"] > 0
    assert summary["latency_s"]["count"] == len(engine_queries)
    assert (summary["cache_hits"] + summary["cache_misses"]
            == len(engine_queries))
    assert (summary["total_distance_computations"]
            == outcome.total_distance_computations)


# ----------------------------------------------------------------------
# Predicate cache
# ----------------------------------------------------------------------

def test_cache_hits_on_repeated_predicates(acorn_index, engine_queries):
    """6 distinct predicates over 12 queries: first sighting of each is
    a miss, every repeat is a hit."""
    predicates = [Equals("label", i % 6) for i in range(12)]
    with SearchEngine(acorn_index, num_workers=1) as engine:
        outcome = engine.search_batch(
            engine_queries, predicates, k=K, ef_search=EF
        )
        info = engine.cache_info()
    assert outcome.cache_misses == 6
    assert outcome.cache_hits == 6
    assert info.hits == 6 and info.misses == 6 and info.size == 6
    assert info.hit_rate == pytest.approx(0.5)
    # Hits and misses land on the right queries: second cycle all hits.
    flags = [s.predicate_cache_hit for s in outcome.stats]
    assert flags == [False] * 6 + [True] * 6


def test_precompiled_predicates_count_as_hits(
    acorn_index, labeled_table, engine_queries
):
    compiled = [Equals("label", i % 6).compile(labeled_table)
                for i in range(12)]
    with SearchEngine(acorn_index) as engine:
        outcome = engine.search_batch(
            engine_queries, compiled, k=K, ef_search=EF
        )
    assert outcome.cache_misses == 0


def test_engine_without_table_rejects_raw_predicates(engine_queries):
    class Bare:
        """Searcher with no attribute table anywhere."""

        def search(self, query, predicate, k, ef_search=64):
            raise AssertionError("should not be reached")

    engine = SearchEngine(Bare())
    assert engine.table is None
    with pytest.raises(ValueError, match="attribute table"):
        engine.search_batch(engine_queries, Equals("label", 0), k=K)


def test_resolve_table_checks_searcher_then_index(labeled_table):
    class WithTable:
        table = labeled_table

    class Router:
        index = WithTable()

    assert resolve_table(WithTable()) is labeled_table
    assert resolve_table(Router()) is labeled_table
    assert resolve_table(object()) is None


def test_predicate_cache_lru_eviction(labeled_table):
    cache = PredicateCache(capacity=2)
    p0, p1, p2 = (Equals("label", v) for v in range(3))
    cache.get_or_compile(p0, labeled_table)
    cache.get_or_compile(p1, labeled_table)
    cache.get_or_compile(p0, labeled_table)      # p0 now most recent
    cache.get_or_compile(p2, labeled_table)      # evicts p1
    _, was_hit = cache.get_or_compile(p1, labeled_table)
    assert not was_hit
    assert len(cache) == 2


def test_predicate_cache_recompiles_on_table_growth(labeled_table):
    """Entries cached against a smaller table are stale, not wrong."""
    from repro.attributes import AttributeTable

    small = AttributeTable(4)
    small.add_int_column("label", np.array([0, 1, 0, 1]))
    cache = PredicateCache(capacity=4)
    pred = Equals("label", 0)
    first, _ = cache.get_or_compile(pred, small)
    bigger, was_hit = cache.get_or_compile(pred, labeled_table)
    assert not was_hit
    assert len(bigger) == len(labeled_table) != len(first)


def test_predicate_cache_recompiles_on_same_length_table_swap():
    """A table swap of *equal* length (a lifecycle compaction after
    delete+reinsert churn) must miss: length alone cannot tell the new
    base from the old, and a stale mask filters the wrong rows."""
    from repro.attributes import AttributeTable

    old = AttributeTable(4)
    old.add_int_column("label", np.array([0, 0, 1, 1]))
    new = AttributeTable(4)
    new.add_int_column("label", np.array([1, 1, 0, 0]))
    cache = PredicateCache(capacity=4)
    pred = Equals("label", 0)
    stale, _ = cache.get_or_compile(pred, old)
    fresh, was_hit = cache.get_or_compile(pred, new)
    assert not was_hit
    assert fresh.table is new and stale.table is old
    assert fresh.mask.tolist() == [False, False, True, True]
    # and the new entry replaced the old one under the same fingerprint
    again, was_hit = cache.get_or_compile(pred, new)
    assert was_hit and again is fresh


def test_predicate_cache_clear_and_capacity_validation(labeled_table):
    with pytest.raises(ValueError, match="capacity"):
        PredicateCache(capacity=0)
    cache = PredicateCache(capacity=4)
    cache.get_or_compile(Equals("label", 0), labeled_table)
    cache.clear()
    assert len(cache) == 0
    assert cache.info().misses == 1  # counters survive clear()


def test_fingerprint_shares_masks_across_equal_predicates(labeled_table):
    cache = PredicateCache(capacity=4)
    first, _ = cache.get_or_compile(Equals("label", 3), labeled_table)
    second, was_hit = cache.get_or_compile(Equals("label", 3), labeled_table)
    assert was_hit
    assert second is first
