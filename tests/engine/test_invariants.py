"""Search invariants: predicate satisfaction and a recall tripwire.

Two properties the whole system rests on: (1) hybrid search never
returns an entity that fails its predicate, for any index type and any
predicate; (2) ACORN-gamma stays close to exact filtered search — a
regression tripwire at the paper's operating point (gamma = 12,
ef = 64) on a 2k-vector workload.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.attributes import AttributeTable
from repro.baselines import PreFilterSearcher
from repro.core import AcornIndex, AcornParams
from repro.engine import SearchEngine
from repro.eval import mean_recall_at_k
from repro.predicates import Equals, OneOf

ALL_SEARCHERS = [
    "acorn_index",
    "acorn_one_index",
    "prefilter_searcher",
    "postfilter_searcher",
    "ivf_searcher",
]


@pytest.mark.parametrize("searcher_name", ALL_SEARCHERS)
def test_batch_results_satisfy_predicates(
    searcher_name, request, engine_queries, engine_predicates, labeled_table
):
    searcher = request.getfixturevalue(searcher_name)
    with SearchEngine(searcher, num_workers=4) as engine:
        outcome = engine.search_batch(
            engine_queries, engine_predicates, k=8, ef_search=48
        )
    for result, predicate in zip(outcome.results, engine_predicates):
        mask = predicate.mask(labeled_table)
        assert all(mask[int(i)] for i in result.ids), (
            f"{searcher_name} returned ids failing {predicate!r}"
        )


@settings(max_examples=25, deadline=None)
@given(
    label=st.integers(min_value=0, max_value=5),
    extra=st.integers(min_value=0, max_value=5),
    query_row=st.integers(min_value=0, max_value=599),
    k=st.integers(min_value=1, max_value=12),
)
def test_acorn_satisfies_arbitrary_label_predicates(
    acorn_index, small_vectors, labeled_table, label, extra, query_row, k
):
    """Property: for random (predicate, query, k) triples, every id the
    engine returns passes the predicate, and results stay sorted."""
    predicate = OneOf("label", sorted({label, extra}))
    with SearchEngine(acorn_index, num_workers=1) as engine:
        outcome = engine.search_batch(
            small_vectors[0][query_row], predicate, k=k, ef_search=48
        )
    (result,) = outcome.results
    mask = predicate.mask(labeled_table)
    assert all(mask[int(i)] for i in result.ids)
    assert len(result.ids) <= k
    distances = np.asarray(result.distances)
    assert np.all(np.diff(distances) >= 0)


@pytest.fixture(scope="module")
def recall_world():
    """2k clustered vectors, an 8-label column, and 24 hybrid queries —
    the workload for the recall tripwire."""
    gen = np.random.default_rng(42)
    n, dim = 2000, 24
    centers = gen.standard_normal((10, dim)).astype(np.float32)
    assign = gen.integers(0, 10, size=n)
    vectors = (centers[assign]
               + 0.3 * gen.standard_normal((n, dim))).astype(np.float32)
    table = AttributeTable(n)
    table.add_int_column("label", gen.integers(0, 8, size=n))
    queries = vectors[gen.choice(n, size=24, replace=False)].copy()
    predicates = [Equals("label", i % 8) for i in range(24)]
    return vectors, table, queries, predicates


def test_acorn_gamma_recall_tripwire(recall_world):
    """ACORN-gamma recall >= 0.85 vs brute force at gamma=12, ef=64.

    Selectivity is ~1/8 > 1/gamma, inside the regime where the paper
    predicts the predicate subgraph retains HNSW-like navigability
    (Section 5.1), so recall well below 1.0 signals a construction or
    traversal regression, not workload noise.
    """
    vectors, table, queries, predicates = recall_world
    params = AcornParams(m=12, gamma=12, m_beta=24, ef_construction=40)
    index = AcornIndex.build(vectors, table, params=params, seed=0)
    exact = PreFilterSearcher(vectors, table)

    k = 10
    with SearchEngine(index, num_workers=4) as engine:
        outcome = engine.search_batch(queries, predicates, k=k, ef_search=64)
    truth = [
        exact.search(q, p, k).ids for q, p in zip(queries, predicates)
    ]
    recall = mean_recall_at_k(
        [r.ids for r in outcome.results], truth, k
    )
    assert recall >= 0.85, f"ACORN-gamma recall regressed: {recall:.3f}"
