"""Deferred distance-count accumulation under the thread-pool engine.

The CSR kernel batches counter updates per query (two lock
acquisitions per query instead of two per hop).  These tests pin the
accounting contract: the process-global tally advances by exactly the
sum of per-query counts — no increment lost, none double-flushed — for
every worker count, and per-query results stay byte-identical.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine import QueryBatch, SearchEngine
from repro.predicates import Equals
from repro.vectors.distance import GLOBAL_TALLY, DistanceComputer

K = 8
EF = 48


class TestDeferredComputer:
    """Unit-level defer/flush semantics on one computer."""

    @pytest.fixture
    def computer(self):
        base = np.arange(20, dtype=np.float32).reshape(-1, 2)
        return DistanceComputer(base)

    def test_pending_counts_visible_before_flush(self, computer):
        computer.defer_counts()
        before = GLOBAL_TALLY.total
        computer.distances_to(
            np.zeros(2, dtype=np.float32), np.arange(5, dtype=np.intp)
        )
        # Locally visible immediately, globally invisible until flush.
        assert computer.count == 5
        assert GLOBAL_TALLY.total == before

    def test_flush_settles_global_tally_once(self, computer):
        computer.defer_counts()
        before = GLOBAL_TALLY.total
        computer.distances_to(
            np.zeros(2, dtype=np.float32), np.arange(7, dtype=np.intp)
        )
        flushed = computer.flush_counts()
        assert flushed == 7
        assert GLOBAL_TALLY.total == before + 7
        assert computer.count == 7
        # A second flush with nothing pending is a no-op.
        assert computer.flush_counts() == 0
        assert GLOBAL_TALLY.total == before + 7

    def test_undeterred_path_unchanged(self, computer):
        before = GLOBAL_TALLY.total
        computer.distances_to(
            np.zeros(2, dtype=np.float32), np.arange(4, dtype=np.intp)
        )
        assert computer.count == 4
        assert GLOBAL_TALLY.total == before + 4


class TestEnginePoolAccounting:
    """Whole-batch accounting across worker counts."""

    @pytest.fixture(scope="class")
    def workload(self, small_vectors):
        vectors, _ = small_vectors
        gen = np.random.default_rng(321)
        picks = gen.choice(vectors.shape[0], size=16, replace=False)
        queries = vectors[picks].copy()
        predicates = [Equals("label", i % 6) for i in range(16)]
        return QueryBatch.build(queries, predicates, k=K, ef_search=EF)

    @pytest.mark.parametrize("num_workers", [1, 2, 4])
    def test_tally_delta_equals_sum_of_query_counts(
        self, acorn_index, workload, num_workers
    ):
        before = GLOBAL_TALLY.total
        with SearchEngine(acorn_index, num_workers=num_workers) as engine:
            results = engine.search_batch(workload)
        delta = GLOBAL_TALLY.total - before
        assert delta == sum(r.distance_computations for r in results)

    def test_results_identical_across_worker_counts(
        self, acorn_index, workload
    ):
        baselines = None
        for num_workers in (1, 2, 4):
            with SearchEngine(acorn_index, num_workers=num_workers) as engine:
                results = list(engine.search_batch(workload))
            if baselines is None:
                baselines = results
                continue
            for got, want in zip(results, baselines):
                assert got.ids.tobytes() == want.ids.tobytes()
                assert got.distances.tobytes() == want.distances.tobytes()
                assert got.distance_computations == want.distance_computations
                assert got.hops == want.hops
                assert got.visited_nodes == want.visited_nodes
