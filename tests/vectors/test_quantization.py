"""Unit tests for the SQ8 and PQ codecs."""

import numpy as np
import pytest

from repro.vectors.quantization import ProductQuantizer, ScalarQuantizer


@pytest.fixture(scope="module")
def data():
    gen = np.random.default_rng(0)
    return gen.standard_normal((400, 16)).astype(np.float32) * 3.0


class TestScalarQuantizer:
    def test_roundtrip_error_bounded(self, data):
        sq = ScalarQuantizer(data)
        decoded = sq.decode(sq.encode(data))
        # Max error per dimension is half a quantization step.
        assert np.abs(decoded - data).max() <= (sq.scale.max() / 2) + 1e-5

    def test_codes_are_uint8(self, data):
        codes = ScalarQuantizer(data).encode(data)
        assert codes.dtype == np.uint8

    def test_constant_dimension(self):
        data = np.ones((10, 3), dtype=np.float32)
        data[:, 1] = 7.0
        sq = ScalarQuantizer(data)
        np.testing.assert_allclose(sq.decode(sq.encode(data)), data)

    def test_asymmetric_distance_close_to_exact(self, data):
        sq = ScalarQuantizer(data)
        codes = sq.encode(data)
        query = data[0] + 0.1
        approx = sq.distances(query, codes)
        exact = ((data - query) ** 2).sum(axis=1)
        assert np.abs(approx - exact).mean() < 0.05 * exact.mean()

    def test_distance_preserves_nn_ranking(self, data):
        sq = ScalarQuantizer(data)
        codes = sq.encode(data)
        query = data[5] + 0.05
        approx_top = np.argsort(sq.distances(query, codes))[:10]
        exact_top = np.argsort(((data - query) ** 2).sum(axis=1))[:10]
        assert len(set(approx_top) & set(exact_top)) >= 8

    def test_code_nbytes(self, data):
        sq = ScalarQuantizer(data)
        assert sq.code_nbytes(100) == 100 * 16

    def test_empty_training_rejected(self):
        with pytest.raises(ValueError):
            ScalarQuantizer(np.empty((0, 4), dtype=np.float32))


class TestProductQuantizer:
    def test_code_shape_and_dtype(self, data):
        pq = ProductQuantizer(data, n_subspaces=4, n_centroids=32, seed=0)
        codes = pq.encode(data)
        assert codes.shape == (400, 4)
        assert codes.dtype == np.uint8

    def test_decode_reduces_error_vs_random(self, data):
        pq = ProductQuantizer(data, n_subspaces=4, n_centroids=64, seed=0)
        decoded = pq.decode(pq.encode(data))
        err = ((decoded - data) ** 2).sum(axis=1).mean()
        baseline = ((data - data.mean(axis=0)) ** 2).sum(axis=1).mean()
        assert err < baseline

    def test_adc_matches_decoded_distance(self, data):
        pq = ProductQuantizer(data, n_subspaces=4, n_centroids=32, seed=0)
        codes = pq.encode(data)
        query = data[3]
        adc = pq.distances(query, codes)
        decoded = pq.decode(codes)
        explicit = ((decoded - query) ** 2).sum(axis=1)
        np.testing.assert_allclose(adc, explicit, rtol=1e-3, atol=1e-2)

    def test_nn_ranking_mostly_preserved(self, data):
        pq = ProductQuantizer(data, n_subspaces=8, n_centroids=64, seed=0)
        codes = pq.encode(data)
        query = data[7] + 0.05
        approx_top = set(np.argsort(pq.distances(query, codes))[:20].tolist())
        exact_top = set(
            np.argsort(((data - query) ** 2).sum(axis=1))[:10].tolist()
        )
        assert len(approx_top & exact_top) >= 5

    def test_validation(self, data):
        with pytest.raises(ValueError, match="divide"):
            ProductQuantizer(data, n_subspaces=5)
        with pytest.raises(ValueError, match="n_centroids"):
            ProductQuantizer(data, n_subspaces=4, n_centroids=500)

    def test_code_nbytes(self, data):
        pq = ProductQuantizer(data, n_subspaces=4, n_centroids=16, seed=0)
        assert pq.code_nbytes(100) == 400
