"""Unit tests for the SQ8 and PQ codecs."""

import numpy as np
import pytest

from repro.vectors.quantization import ProductQuantizer, ScalarQuantizer


@pytest.fixture(scope="module")
def data():
    gen = np.random.default_rng(0)
    return gen.standard_normal((400, 16)).astype(np.float32) * 3.0


class TestScalarQuantizer:
    def test_roundtrip_error_bounded(self, data):
        sq = ScalarQuantizer(data)
        decoded = sq.decode(sq.encode(data))
        # Max error per dimension is half a quantization step.
        assert np.abs(decoded - data).max() <= (sq.scale.max() / 2) + 1e-5

    def test_codes_are_uint8(self, data):
        codes = ScalarQuantizer(data).encode(data)
        assert codes.dtype == np.uint8

    def test_constant_dimension(self):
        data = np.ones((10, 3), dtype=np.float32)
        data[:, 1] = 7.0
        sq = ScalarQuantizer(data)
        np.testing.assert_allclose(sq.decode(sq.encode(data)), data)

    def test_asymmetric_distance_close_to_exact(self, data):
        sq = ScalarQuantizer(data)
        codes = sq.encode(data)
        query = data[0] + 0.1
        approx = sq.distances(query, codes)
        exact = ((data - query) ** 2).sum(axis=1)
        assert np.abs(approx - exact).mean() < 0.05 * exact.mean()

    def test_distance_preserves_nn_ranking(self, data):
        sq = ScalarQuantizer(data)
        codes = sq.encode(data)
        query = data[5] + 0.05
        approx_top = np.argsort(sq.distances(query, codes))[:10]
        exact_top = np.argsort(((data - query) ** 2).sum(axis=1))[:10]
        assert len(set(approx_top) & set(exact_top)) >= 8

    def test_code_nbytes(self, data):
        sq = ScalarQuantizer(data)
        assert sq.code_nbytes(100) == 100 * 16

    def test_empty_training_rejected(self):
        with pytest.raises(ValueError):
            ScalarQuantizer(np.empty((0, 4), dtype=np.float32))


class TestTrainingValidation:
    """Both codecs reject ambiguous or poisoned training input loudly."""

    @pytest.mark.parametrize("make", [
        ScalarQuantizer,
        lambda v: ProductQuantizer(v, n_subspaces=2, n_centroids=4, seed=0),
    ], ids=["sq8", "pq"])
    def test_1d_input_rejected(self, make):
        with pytest.raises(ValueError, match="2-D"):
            make(np.ones(8, dtype=np.float32))

    @pytest.mark.parametrize("make", [
        ScalarQuantizer,
        lambda v: ProductQuantizer(v, n_subspaces=2, n_centroids=4, seed=0),
    ], ids=["sq8", "pq"])
    def test_3d_input_rejected(self, make):
        with pytest.raises(ValueError, match="2-D"):
            make(np.ones((2, 4, 2), dtype=np.float32))

    @pytest.mark.parametrize("bad", [np.nan, np.inf, -np.inf])
    @pytest.mark.parametrize("make", [
        ScalarQuantizer,
        lambda v: ProductQuantizer(v, n_subspaces=2, n_centroids=4, seed=0),
    ], ids=["sq8", "pq"])
    def test_nonfinite_input_rejected(self, make, bad):
        data = np.ones((10, 4), dtype=np.float32)
        data[3, 2] = bad
        with pytest.raises(ValueError, match="NaN or inf"):
            make(data)

    def test_zero_dim_rejected(self):
        with pytest.raises(ValueError, match="non-empty"):
            ScalarQuantizer(np.empty((5, 0), dtype=np.float32))

    def test_pq_empty_training_rejected(self):
        with pytest.raises(ValueError, match="non-empty"):
            ProductQuantizer(np.empty((0, 4), dtype=np.float32),
                             n_subspaces=2)


class TestProductQuantizer:
    def test_code_shape_and_dtype(self, data):
        pq = ProductQuantizer(data, n_subspaces=4, n_centroids=32, seed=0)
        codes = pq.encode(data)
        assert codes.shape == (400, 4)
        assert codes.dtype == np.uint8

    def test_decode_reduces_error_vs_random(self, data):
        pq = ProductQuantizer(data, n_subspaces=4, n_centroids=64, seed=0)
        decoded = pq.decode(pq.encode(data))
        err = ((decoded - data) ** 2).sum(axis=1).mean()
        baseline = ((data - data.mean(axis=0)) ** 2).sum(axis=1).mean()
        assert err < baseline

    def test_adc_matches_decoded_distance(self, data):
        pq = ProductQuantizer(data, n_subspaces=4, n_centroids=32, seed=0)
        codes = pq.encode(data)
        query = data[3]
        adc = pq.distances(query, codes)
        decoded = pq.decode(codes)
        explicit = ((decoded - query) ** 2).sum(axis=1)
        np.testing.assert_allclose(adc, explicit, rtol=1e-3, atol=1e-2)

    def test_nn_ranking_mostly_preserved(self, data):
        pq = ProductQuantizer(data, n_subspaces=8, n_centroids=64, seed=0)
        codes = pq.encode(data)
        query = data[7] + 0.05
        approx_top = set(np.argsort(pq.distances(query, codes))[:20].tolist())
        exact_top = set(
            np.argsort(((data - query) ** 2).sum(axis=1))[:10].tolist()
        )
        assert len(approx_top & exact_top) >= 5

    def test_validation(self, data):
        with pytest.raises(ValueError, match="divide"):
            ProductQuantizer(data, n_subspaces=5)
        with pytest.raises(ValueError, match="n_centroids"):
            ProductQuantizer(data, n_subspaces=4, n_centroids=500)

    def test_code_nbytes(self, data):
        pq = ProductQuantizer(data, n_subspaces=4, n_centroids=16, seed=0)
        assert pq.code_nbytes(100) == 400

    def test_lookup_table_shape(self, data):
        pq = ProductQuantizer(data, n_subspaces=4, n_centroids=32, seed=0)
        table = pq.lookup_table(data[0])
        assert table.shape == (4, 32)
        assert table.dtype == np.float32

    def test_distances_reuse_lookup_table_exactly(self, data):
        """Regression pin: ``distances`` is exactly a gather-sum over
        ``lookup_table(query)`` — precomputing the table must be
        bitwise-equivalent to letting ``distances`` build it."""
        pq = ProductQuantizer(data, n_subspaces=4, n_centroids=32, seed=0)
        codes = pq.encode(data)
        query = data[11] + 0.2
        table = pq.lookup_table(query)
        np.testing.assert_array_equal(
            pq.distances(query, codes),
            pq.distances(query, codes, table=table),
        )
        # And the ADC arithmetic itself: per-subspace table gathers
        # accumulated in float32, in subspace order.
        manual = np.zeros(codes.shape[0], dtype=np.float32)
        for sub in range(pq.n_subspaces):
            manual += table[sub][codes[:, sub]]
        np.testing.assert_array_equal(pq.distances(query, codes), manual)
