"""Unit tests for distance kernels and the computation counter."""

import numpy as np
import pytest

from repro.vectors.distance import (
    DistanceComputer,
    Metric,
    pairwise_distances,
    resolve_metric,
)


@pytest.fixture
def base():
    gen = np.random.default_rng(0)
    return gen.standard_normal((50, 8)).astype(np.float32)


class TestResolveMetric:
    def test_accepts_enum(self):
        assert resolve_metric(Metric.L2) is Metric.L2

    def test_accepts_string(self):
        assert resolve_metric("cosine") is Metric.COSINE

    def test_rejects_unknown(self):
        with pytest.raises(ValueError, match="unknown metric"):
            resolve_metric("manhattan")


class TestPairwiseDistances:
    def test_l2_matches_naive(self, base):
        queries = base[:3] + 0.1
        got = pairwise_distances(base, queries, metric="l2")
        want = ((queries[:, None, :] - base[None, :, :]) ** 2).sum(axis=2)
        np.testing.assert_allclose(got, want, rtol=1e-4, atol=1e-4)

    def test_l2_non_negative(self, base):
        got = pairwise_distances(base, base)
        assert (got >= 0).all()

    def test_l2_self_distance_zero(self, base):
        got = pairwise_distances(base, base)
        np.testing.assert_allclose(np.diag(got), 0.0, atol=1e-3)

    def test_inner_product_matches_naive(self, base):
        queries = base[:3]
        got = pairwise_distances(base, queries, metric="ip")
        np.testing.assert_allclose(got, -(queries @ base.T), rtol=1e-5)

    def test_cosine_range(self, base):
        got = pairwise_distances(base, base[:5], metric="cosine")
        assert (got >= -1e-5).all() and (got <= 2 + 1e-5).all()

    def test_cosine_self_distance_zero(self, base):
        got = pairwise_distances(base, base[:5], metric="cosine")
        np.testing.assert_allclose(np.diag(got[:, :5]), 0.0, atol=1e-5)

    def test_single_query_promoted(self, base):
        got = pairwise_distances(base, base[0])
        assert got.shape == (1, len(base))


class TestDistanceComputer:
    def test_rejects_non_2d_base(self):
        with pytest.raises(ValueError, match="2-D"):
            DistanceComputer(np.zeros(5, dtype=np.float32))

    def test_counts_batched(self, base):
        computer = DistanceComputer(base)
        computer.distances_to(base[0], np.arange(7))
        assert computer.count == 7

    def test_counts_single(self, base):
        computer = DistanceComputer(base)
        computer.distance_one(base[0], 3)
        computer.distance_one(base[0], 4)
        assert computer.count == 2

    def test_counts_all(self, base):
        computer = DistanceComputer(base)
        computer.distances_to_all(base[0])
        assert computer.count == len(base)

    def test_reset(self, base):
        computer = DistanceComputer(base)
        computer.distances_to_all(base[0])
        computer.reset()
        assert computer.count == 0

    def test_distances_match_pairwise(self, base):
        computer = DistanceComputer(base)
        ids = np.array([1, 5, 9])
        got = computer.distances_to(base[0], ids)
        want = pairwise_distances(base, base[0])[0][ids]
        np.testing.assert_allclose(got, want, rtol=1e-4, atol=1e-4)

    def test_set_query_validates_dim(self, base):
        computer = DistanceComputer(base)
        with pytest.raises(ValueError, match="dim"):
            computer.set_query(np.zeros(3))

    def test_nearest_neighbor_order_preserved_cosine(self, base):
        # Rank-preserving variants must sort identically to true metric.
        computer = DistanceComputer(base, metric="cosine")
        query = base[0]
        got = computer.distances_to(query, np.arange(len(base)))
        true = np.array([
            1 - (query @ b) / (np.linalg.norm(query) * np.linalg.norm(b))
            for b in base
        ])
        np.testing.assert_array_equal(np.argsort(got), np.argsort(true))

    def test_dim_and_len(self, base):
        computer = DistanceComputer(base)
        assert computer.dim == 8
        assert len(computer) == 50


class TestPrecomputedCosineNorms:
    @pytest.fixture
    def base(self):
        gen = np.random.default_rng(77)
        return gen.standard_normal((40, 8)).astype(np.float32)

    def test_matches_naive_kernel_bitwise(self, base):
        # The norm-cached path must reproduce the naive kernel exactly:
        # same multiply order, same float32 promotion.
        query = base[3] * 1.7
        cached = DistanceComputer(base, metric="cosine")
        naive = pairwise_distances(base, query, metric="cosine")[0]
        got = cached.distances_to(query, np.arange(len(base)))
        np.testing.assert_allclose(got, naive, rtol=1e-6, atol=1e-7)

    def test_accepts_external_norms(self, base):
        norms = np.linalg.norm(base, axis=1)
        computer = DistanceComputer(base, metric="cosine", base_norms=norms)
        a = computer.distances_to(base[0], np.arange(10))
        b = DistanceComputer(base, metric="cosine").distances_to(
            base[0], np.arange(10)
        )
        np.testing.assert_array_equal(a, b)

    def test_rejects_misaligned_norms(self, base):
        with pytest.raises(ValueError, match="norms"):
            DistanceComputer(base, metric="cosine",
                             base_norms=np.ones(3, dtype=np.float32))

    def test_norms_ignored_for_l2(self, base):
        computer = DistanceComputer(base, metric="l2",
                                    base_norms=np.ones(3))
        assert computer._base_norms is None

    def test_zero_vector_guard(self, base):
        padded = np.vstack([base, np.zeros((1, 8), dtype=np.float32)])
        computer = DistanceComputer(padded, metric="cosine")
        got = computer.distances_to(padded[0], np.array([len(padded) - 1]))
        assert np.isfinite(got).all()
