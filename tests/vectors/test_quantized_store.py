"""Unit tests for the quantized code mirror (`repro.vectors.quantized_store`).

The decode-free distance identities are the load-bearing part: every
metric's quantized distance must agree with the naive
decode-then-measure reference, or traversal ranks silently diverge from
what the rerank tail assumes.
"""

import numpy as np
import pytest

from repro.vectors.distance import Metric
from repro.vectors.quantized_store import (
    DEFAULT_RERANK_FACTOR,
    QuantizationConfig,
    QuantizedStore,
    codes_checksum,
    rerank_budget,
    resolve_quantization,
)
from repro.vectors.store import VectorStore


@pytest.fixture(scope="module")
def vectors():
    gen = np.random.default_rng(7)
    return (gen.standard_normal((300, 16)) * 2.0).astype(np.float32)


def make_store(vectors, kind, metric):
    store = VectorStore(dim=16, metric=metric)
    store.add_many(vectors)
    config = QuantizationConfig(kind=kind, pq_subspaces=4, pq_centroids=64)
    qs = QuantizedStore(config, metric)
    qs.train(store.vectors)
    qs.sync(store)
    return store, qs


class TestConfig:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="kind"):
            QuantizationConfig(kind="int4")

    def test_rerank_factor_floor(self):
        with pytest.raises(ValueError, match="rerank_factor"):
            QuantizationConfig(rerank_factor=0.5)
        QuantizationConfig(rerank_factor=1.0)  # boundary is legal

    def test_json_roundtrip(self):
        config = QuantizationConfig(kind="pq", rerank_factor=2.5,
                                    pq_subspaces=4, pq_centroids=32)
        assert QuantizationConfig.from_json(config.to_json()) == config

    def test_resolve_forms(self):
        assert resolve_quantization(None) is None
        assert resolve_quantization("pq").kind == "pq"
        assert resolve_quantization({"kind": "sq8", "rerank_factor": 2.0}
                                    ).rerank_factor == 2.0
        config = QuantizationConfig()
        assert resolve_quantization(config) is config
        with pytest.raises(TypeError):
            resolve_quantization(42)

    def test_rerank_budget(self):
        assert rerank_budget(10, DEFAULT_RERANK_FACTOR) == 30
        assert rerank_budget(10, 1.0) == 10
        assert rerank_budget(3, 1.5) == 5  # ceil(4.5)


class TestChecksum:
    def test_sensitive_to_content_and_shape(self):
        codes = np.arange(12, dtype=np.uint8).reshape(3, 4)
        base = codes_checksum(codes)
        assert base == codes_checksum(codes.copy())
        tampered = codes.copy()
        tampered[1, 2] ^= 0xFF
        assert codes_checksum(tampered) != base
        assert codes_checksum(codes.reshape(4, 3)) != base


class TestQuantizedStore:
    @pytest.mark.parametrize("kind", ["sq8", "pq"])
    @pytest.mark.parametrize(
        "metric", [Metric.L2, Metric.INNER_PRODUCT, Metric.COSINE]
    )
    def test_distances_match_decoded_reference(self, vectors, kind, metric):
        """Decode-free distances == decode-then-measure, per metric."""
        _, qs = make_store(vectors, kind, metric)
        decoded = qs.codec.decode(qs.codes)
        query = vectors[3] + 0.1
        ids = np.arange(0, 300, 7)
        comp = qs.computer()
        comp.set_query(query)
        got = comp.distances(ids)
        rows = decoded[ids]
        if metric is Metric.L2:
            want = ((rows - query) ** 2).sum(axis=1)
        elif metric is Metric.INNER_PRODUCT:
            want = -(rows @ query)
        else:
            want = 1.0 - (rows @ query) / (
                np.linalg.norm(rows, axis=1) * np.linalg.norm(query)
            )
        np.testing.assert_allclose(got, want, rtol=2e-4, atol=2e-4)

    @pytest.mark.parametrize("kind", ["sq8", "pq"])
    @pytest.mark.parametrize(
        "metric", [Metric.L2, Metric.INNER_PRODUCT, Metric.COSINE]
    )
    def test_batched_matches_per_query(self, vectors, kind, metric):
        """The lockstep entry point agrees with the per-query computer."""
        _, qs = make_store(vectors, kind, metric)
        gen = np.random.default_rng(1)
        queries = vectors[:5] + 0.05
        qidx = gen.integers(0, 5, size=40)
        ids = gen.integers(0, 300, size=40)
        batched = qs.batched_distances(queries, qidx, ids)
        for q in range(5):
            sel = qidx == q
            comp = qs.computer()
            comp.set_query(queries[q])
            np.testing.assert_allclose(
                batched[sel], comp.distances(ids[sel]), rtol=1e-4, atol=1e-4
            )

    def test_batched_empty(self, vectors):
        _, qs = make_store(vectors, "sq8", Metric.L2)
        out = qs.batched_distances(vectors[:2], np.empty(0, dtype=np.int64),
                                   np.empty(0, dtype=np.int64))
        assert out.size == 0

    def test_computer_counts_evaluations(self, vectors):
        _, qs = make_store(vectors, "sq8", Metric.L2)
        comp = qs.computer()
        comp.set_query(vectors[0])
        comp.distances(np.arange(10))
        comp.distances(np.arange(5))
        assert comp.count == 15

    def test_sync_is_incremental(self, vectors):
        store, qs = make_store(vectors[:200], "sq8", Metric.L2)
        assert len(qs) == 200
        first_codes = qs.codes.copy()
        store.add_many(vectors[200:])
        qs.sync(store)
        assert len(qs) == 300
        # Already-encoded rows never shift under the frozen codec.
        np.testing.assert_array_equal(qs.codes[:200], first_codes)

    def test_sync_before_train_raises(self, vectors):
        store = VectorStore(dim=16, metric=Metric.L2)
        store.add_many(vectors)
        qs = QuantizedStore(QuantizationConfig(), Metric.L2)
        with pytest.raises(RuntimeError, match="train"):
            qs.sync(store)

    def test_computer_without_codes_raises(self):
        qs = QuantizedStore(QuantizationConfig(), Metric.L2)
        with pytest.raises(RuntimeError):
            qs.computer()

    def test_nbytes_compression(self, vectors):
        store, qs = make_store(vectors, "sq8", Metric.L2)
        assert qs.nbytes() == store.vectors.nbytes // 4

    @pytest.mark.parametrize("kind", ["sq8", "pq"])
    def test_state_roundtrip_exact(self, vectors, kind):
        _, qs = make_store(vectors, kind, Metric.L2)
        restored = QuantizedStore.from_state(
            qs.config, Metric.L2, qs.state_arrays()
        )
        np.testing.assert_array_equal(restored.codes, qs.codes)
        assert restored.checksum() == qs.checksum()
        query = vectors[9]
        a = qs.computer()
        a.set_query(query)
        b = restored.computer()
        b.set_query(query)
        ids = np.arange(50)
        np.testing.assert_array_equal(a.distances(ids), b.distances(ids))
