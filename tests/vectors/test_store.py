"""Unit tests for the vector store."""

import numpy as np
import pytest

from repro.vectors.store import VectorStore


class TestConstruction:
    def test_rejects_non_positive_dim(self):
        with pytest.raises(ValueError, match="dim"):
            VectorStore(0)

    def test_from_array(self):
        data = np.arange(12, dtype=np.float32).reshape(3, 4)
        store = VectorStore.from_array(data)
        assert len(store) == 3
        np.testing.assert_array_equal(store.vectors, data)

    def test_from_array_copies(self):
        data = np.ones((2, 3), dtype=np.float32)
        store = VectorStore.from_array(data)
        data[0, 0] = 99.0
        assert store.get(0)[0] == 1.0


class TestAdd:
    def test_returns_sequential_ids(self):
        store = VectorStore(4)
        assert store.add(np.zeros(4)) == 0
        assert store.add(np.ones(4)) == 1

    def test_growth_beyond_capacity(self):
        store = VectorStore(2, capacity=1)
        for i in range(20):
            store.add(np.full(2, i, dtype=np.float32))
        assert len(store) == 20
        assert store.get(19)[0] == 19.0

    def test_rejects_wrong_dim(self):
        store = VectorStore(4)
        with pytest.raises(ValueError, match="dim"):
            store.add(np.zeros(5))

    def test_get_out_of_range(self):
        store = VectorStore(4)
        store.add(np.zeros(4))
        with pytest.raises(IndexError):
            store.get(1)

    def test_vectors_view_read_only(self):
        store = VectorStore.from_array(np.ones((2, 2), dtype=np.float32))
        with pytest.raises(ValueError):
            store.vectors[0, 0] = 5.0


class TestComputer:
    def test_snapshot_excludes_later_adds(self):
        store = VectorStore(2)
        store.add(np.zeros(2))
        computer = store.computer()
        store.add(np.ones(2))
        assert len(computer) == 1

    def test_metric_propagates(self):
        store = VectorStore(2, metric="cosine")
        store.add(np.ones(2))
        assert store.computer().metric.value == "cosine"


class TestNbytes:
    def test_matches_payload(self):
        store = VectorStore.from_array(np.zeros((10, 8), dtype=np.float32))
        assert store.nbytes() == 10 * 8 * 4


class TestNormCache:
    def test_none_for_non_cosine(self):
        store = VectorStore.from_array(np.ones((4, 2), dtype=np.float32))
        assert store.base_norms() is None

    def test_incremental_norms_match_full_recompute(self):
        gen = np.random.default_rng(13)
        store = VectorStore(4, metric="cosine")
        for chunk in np.split(gen.standard_normal((30, 4)).astype(np.float32), 3):
            for vec in chunk:
                store.add(vec)
            norms = store.base_norms()
            want = np.linalg.norm(store.vectors, axis=1)
            np.testing.assert_array_equal(norms, want)

    def test_computer_snapshot_keeps_old_norms(self):
        gen = np.random.default_rng(14)
        store = VectorStore(4, metric="cosine")
        store.add(gen.standard_normal(4).astype(np.float32))
        computer = store.computer()
        store.add(gen.standard_normal(4).astype(np.float32))
        store.base_norms()
        # The earlier computer still sees exactly one row and one norm.
        assert len(computer) == 1
        assert computer._base_norms.shape[0] == 1


class TestAddMany:
    def test_block_append_matches_scalar_adds(self):
        gen = np.random.default_rng(21)
        vectors = gen.standard_normal((17, 4)).astype(np.float32)
        block = VectorStore(4)
        ids = block.add_many(vectors)
        scalar = VectorStore(4)
        for vector in vectors:
            scalar.add(vector)
        assert ids.tolist() == list(range(17))
        np.testing.assert_array_equal(block.vectors, scalar.vectors)

    def test_empty_input(self):
        store = VectorStore(4)
        ids = store.add_many(np.empty((0, 4)))
        assert ids.shape == (0,)
        assert ids.dtype == np.intp
        assert len(store) == 0

    def test_single_1d_vector(self):
        store = VectorStore(3)
        ids = store.add_many(np.array([1.0, 2.0, 3.0]))
        assert ids.tolist() == [0]
        np.testing.assert_array_equal(store.get(0), [1.0, 2.0, 3.0])

    def test_growth_beyond_capacity(self):
        gen = np.random.default_rng(22)
        store = VectorStore(2)
        store.add(np.zeros(2, dtype=np.float32))
        ids = store.add_many(gen.standard_normal((100, 2)).astype(np.float32))
        assert ids.tolist() == list(range(1, 101))
        assert len(store) == 101

    def test_rejects_wrong_dim(self):
        store = VectorStore(4)
        with pytest.raises(ValueError):
            store.add_many(np.zeros((3, 5), dtype=np.float32))

    def test_cosine_norms_cover_block(self):
        gen = np.random.default_rng(23)
        store = VectorStore(4, metric="cosine")
        vectors = gen.standard_normal((9, 4)).astype(np.float32)
        store.add_many(vectors)
        np.testing.assert_array_equal(
            store.base_norms(), np.linalg.norm(vectors, axis=1)
        )
