"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_sweep_defaults(self):
        args = build_parser().parse_args(["sweep"])
        assert args.dataset == "sift"
        assert args.methods == "acorn,acorn1,pre,post"

    def test_bench_batch_defaults(self):
        args = build_parser().parse_args(["bench-batch"])
        assert args.n == 10000
        assert args.queries == 256
        assert args.workers == 4
        assert args.out == "BENCH_engine.json"

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_dataset_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sweep", "--dataset", "imagenet"])


class TestCommands:
    def test_info(self, capsys):
        main(["info"])
        out = capsys.readouterr().out
        assert "ACORN" in out
        assert "datasets:" in out

    def test_correlation_small(self, capsys):
        main(["correlation", "--n", "300", "--queries", "10"])
        out = capsys.readouterr().out
        assert "pos-cor" in out and "neg-cor" in out

    def test_sweep_small(self, capsys):
        main([
            "sweep", "--dataset", "sift", "--n", "400", "--queries", "10",
            "--m", "8", "--gamma", "6", "--methods", "acorn,pre",
            "--efforts", "16", "--recall-target", "0.5",
        ])
        out = capsys.readouterr().out
        assert "ACORN-gamma" in out
        assert "pre-filter" in out

    def test_bench_batch_small(self, capsys, tmp_path):
        out_path = tmp_path / "bench.json"
        main([
            "bench-batch", "--n", "400", "--queries", "12", "--dim", "16",
            "--m", "8", "--gamma", "6", "--workers", "2",
            "--distinct-predicates", "4", "--out", str(out_path),
        ])
        out = capsys.readouterr().out
        assert "sequential loop" in out
        assert "recorded entry" in out
        entries = json.loads(out_path.read_text())
        assert len(entries) == 1
        assert entries[0]["queries"] == 12
        assert entries[0]["cache_misses"] == 4

    def test_sweep_unknown_method(self):
        with pytest.raises(SystemExit, match="unknown method"):
            main([
                "sweep", "--dataset", "sift", "--n", "300", "--queries", "5",
                "--methods", "magic",
            ])
