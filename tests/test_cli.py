"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import (
    build_parser,
    main,
    validate_build_entry,
    validate_chaos_entry,
    validate_lifecycle_entry,
    validate_parallel_entry,
    validate_quant_entry,
    validate_route_entry,
    validate_serving_entry,
    validate_shard_entry,
)


class TestParser:
    def test_sweep_defaults(self):
        args = build_parser().parse_args(["sweep"])
        assert args.dataset == "sift"
        assert args.methods == "acorn,acorn1,pre,post"

    def test_bench_batch_defaults(self):
        args = build_parser().parse_args(["bench-batch"])
        assert args.n == 10000
        assert args.queries == 256
        assert args.workers == 4
        assert args.out == "BENCH_engine.json"

    def test_bench_shard_defaults(self):
        args = build_parser().parse_args(["bench-shard"])
        assert args.n == 10000
        assert args.shards == 4
        assert args.out == "BENCH_shard.json"
        assert args.smoke is False

    def test_bench_chaos_defaults(self):
        args = build_parser().parse_args(["bench-chaos"])
        assert args.shards == 8
        assert args.failure_rate == 0.2
        assert args.deadline == 0.5
        assert args.retries == 1
        assert args.out == "BENCH_chaos.json"
        assert args.smoke is False

    def test_bench_build_defaults(self):
        args = build_parser().parse_args(["bench-build"])
        assert args.n == 10000
        assert args.workers == 4
        assert args.wave_cap is None
        assert args.ef_construction == 144
        assert args.out == "BENCH_build.json"
        assert args.smoke is False

    def test_bench_route_defaults(self):
        args = build_parser().parse_args(["bench-route"])
        assert args.n == 10000
        assert args.queries == 240
        assert args.ef == 64
        assert args.estimator == "exact"
        assert args.out == "BENCH_route.json"
        assert args.smoke is False

    def test_bench_quant_defaults(self):
        args = build_parser().parse_args(["bench-quant"])
        assert args.n == 10000
        assert args.queries == 128
        assert args.ef == 192
        assert args.beam == 32
        assert args.quantization == "sq8"
        assert args.rerank_factor == 3.0
        assert args.recall_floor == 0.95
        assert args.out == "BENCH_quant.json"
        assert args.smoke is False

    def test_bench_serving_defaults(self):
        args = build_parser().parse_args(["bench-serving"])
        assert args.n == 10000
        assert args.k == 10
        assert args.workers == 4
        assert args.max_batch == 32
        assert args.latency_budget_ms == 5.0
        assert args.max_pending == 256
        assert args.tenants == 4
        assert args.tenant_rate == 150.0
        assert args.tenant_burst == 20.0
        assert args.rate == 800.0
        assert args.duration == 2.0
        assert args.flash_multiplier == 4.0
        assert args.out == "BENCH_serving.json"
        assert args.smoke is False

    def test_bench_lifecycle_defaults(self):
        args = build_parser().parse_args(["bench-lifecycle"])
        assert args.n == 8000
        assert args.dim == 32
        assert args.k == 10
        assert args.m == 12
        assert args.gamma == 12
        assert args.ef == 64
        assert args.ops == 2000
        assert args.reads == 200
        assert args.delete_fraction == 0.3
        assert args.recall_floor == 0.7
        assert args.out == "BENCH_lifecycle.json"
        assert args.smoke is False

    def test_bench_quant_rejects_unknown_codec(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["bench-quant", "--quantization",
                                       "int4"])

    def test_bench_route_rejects_unknown_estimator(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["bench-route", "--estimator", "oracle"])

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_dataset_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sweep", "--dataset", "imagenet"])


class TestCommands:
    def test_info(self, capsys):
        main(["info"])
        out = capsys.readouterr().out
        assert "ACORN" in out
        assert "datasets:" in out

    def test_correlation_small(self, capsys):
        main(["correlation", "--n", "300", "--queries", "10"])
        out = capsys.readouterr().out
        assert "pos-cor" in out and "neg-cor" in out

    def test_sweep_small(self, capsys):
        main([
            "sweep", "--dataset", "sift", "--n", "400", "--queries", "10",
            "--m", "8", "--gamma", "6", "--methods", "acorn,pre",
            "--efforts", "16", "--recall-target", "0.5",
        ])
        out = capsys.readouterr().out
        assert "ACORN-gamma" in out
        assert "pre-filter" in out

    def test_bench_batch_small(self, capsys, tmp_path):
        out_path = tmp_path / "bench.json"
        main([
            "bench-batch", "--n", "400", "--queries", "12", "--dim", "16",
            "--m", "8", "--gamma", "6", "--workers", "2",
            "--distinct-predicates", "4", "--out", str(out_path),
        ])
        out = capsys.readouterr().out
        assert "sequential loop" in out
        assert "recorded entry" in out
        entries = json.loads(out_path.read_text())
        assert len(entries) == 1
        assert entries[0]["queries"] == 12
        assert entries[0]["cache_misses"] == 4

    def test_sweep_unknown_method(self):
        with pytest.raises(SystemExit, match="unknown method"):
            main([
                "sweep", "--dataset", "sift", "--n", "300", "--queries", "5",
                "--methods", "magic",
            ])

    def test_bench_shard_smoke(self, capsys, tmp_path):
        out_path = tmp_path / "bench_shard.json"
        main([
            "bench-shard", "--n", "400", "--queries", "12", "--dim", "12",
            "--m", "8", "--gamma", "6", "--workers", "2", "--shards", "3",
            "--smoke", "--out", str(out_path),
        ])
        out = capsys.readouterr().out
        assert "sharded engine" in out
        assert "results identical: True" in out
        entries = json.loads(out_path.read_text())
        assert len(entries) == 1
        validate_shard_entry(entries[0])
        assert entries[0]["n_shards"] == 3
        assert entries[0]["shards_pruned"] >= 1
        assert entries[0]["results_identical"] is True

    def test_bench_chaos_smoke(self, capsys, tmp_path):
        out_path = tmp_path / "bench_chaos.json"
        main([
            "bench-chaos", "--n", "400", "--queries", "8", "--dim", "12",
            "--m", "8", "--gamma", "6", "--shards", "5",
            "--failure-rate", "0.2", "--smoke", "--out", str(out_path),
        ])
        out = capsys.readouterr().out
        assert "accounting exact   : True" in out
        assert "recorded entry" in out
        entries = json.loads(out_path.read_text())
        assert len(entries) == 1
        validate_chaos_entry(entries[0])
        assert entries[0]["ground_truth_matches"] is True
        assert entries[0]["within_deadline"] is True
        assert entries[0]["degraded_queries"] >= 1
        assert len(entries[0]["faulty_shards"]) == 1

    def test_bench_build_smoke(self, capsys, tmp_path):
        out_path = tmp_path / "bench_build.json"
        main([
            "bench-build", "--n", "400", "--queries", "8", "--dim", "12",
            "--m", "8", "--gamma", "6", "--ef-construction", "48",
            "--workers", "2", "--smoke", "--out", str(out_path),
        ])
        out = capsys.readouterr().out
        assert "parallel build" in out
        assert "checksum match = True" in out
        assert "recorded entry" in out
        entries = json.loads(out_path.read_text())
        assert len(entries) == 1
        validate_build_entry(entries[0])
        assert entries[0]["n"] == 400
        assert entries[0]["parallel_rebuild_checksum_match"] is True
        assert entries[0]["graphs_valid"] is True
        assert entries[0]["recall_gap"] <= 0.01

    def test_bench_route_smoke(self, capsys, tmp_path):
        out_path = tmp_path / "bench_route.json"
        main([
            "bench-route", "--n", "600", "--queries", "16", "--dim", "12",
            "--m", "8", "--gamma", "6", "--workers", "1",
            "--smoke", "--out", str(out_path),
        ])
        out = capsys.readouterr().out
        assert "static" in out and "adaptive" in out
        assert "route decisions identical" in out
        assert "recorded entry" in out
        entries = json.loads(out_path.read_text())
        assert len(entries) == 1
        validate_route_entry(entries[0])
        assert entries[0]["smoke"] is True
        assert entries[0]["recall_delta"] >= -0.01
        adaptive = entries[0]["policies"]["adaptive"]
        assert sum(adaptive["route_counts"].values()) == 16

    def test_bench_route_deterministic_across_runs(self, tmp_path):
        """Same seed, same workload — identical entries modulo the
        timestamp and wall-clock measurements."""
        records = []
        for run in range(2):
            out_path = tmp_path / f"route_{run}.json"
            main([
                "bench-route", "--n", "500", "--queries", "12", "--dim",
                "10", "--m", "8", "--gamma", "6", "--workers", "1",
                "--smoke", "--out", str(out_path),
            ])
            entry = json.loads(out_path.read_text())[0]
            entry.pop("timestamp")
            entry.pop("adaptive_qps_speedup")
            for sub in entry["policies"].values():
                sub.pop("qps")
                sub.pop("latency_s")
            records.append(entry)
        assert records[0] == records[1]

    def test_bench_quant_smoke(self, capsys, tmp_path):
        out_path = tmp_path / "bench_quant.json"
        main([
            "bench-quant", "--n", "600", "--queries", "16", "--dim", "12",
            "--m", "8", "--gamma", "6", "--ef", "96",
            "--smoke", "--out", str(out_path),
        ])
        out = capsys.readouterr().out
        assert "float32" in out
        assert "sq8" in out
        assert "determinism" in out
        assert "recorded entry" in out
        entries = json.loads(out_path.read_text())
        assert len(entries) == 1
        validate_quant_entry(entries[0])
        assert entries[0]["smoke"] is True
        assert entries[0]["recall_ok"] is True
        assert entries[0]["deterministic"] is True
        assert entries[0]["float32"]["mean_quantized_distances"] == 0.0
        assert entries[0]["quantized"]["mean_quantized_distances"] > 0

    def test_bench_quant_deterministic_across_runs(self, tmp_path):
        """Same seed, same workload — identical arms modulo the
        timestamp and wall-clock measurements."""
        records = []
        for run in range(2):
            out_path = tmp_path / f"quant_{run}.json"
            main([
                "bench-quant", "--n", "500", "--queries", "12", "--dim",
                "10", "--m", "8", "--gamma", "6", "--ef", "96",
                "--smoke", "--out", str(out_path),
            ])
            entry = json.loads(out_path.read_text())[0]
            entry.pop("timestamp")
            entry.pop("batch_qps_speedup")
            for arm in ("float32", "quantized"):
                entry[arm].pop("qps")
                entry[arm].pop("latency_s")
            records.append(entry)
        assert records[0] == records[1]

    def test_bench_serving_smoke(self, capsys, tmp_path):
        out_path = tmp_path / "bench_serving.json"
        main([
            "bench-serving", "--n", "400", "--dim", "10", "--m", "8",
            "--gamma", "6", "--workers", "2", "--pool", "16",
            "--rate", "600", "--duration", "0.25",
            "--tenant-rate", "40", "--tenant-burst", "5",
            "--smoke", "--out", str(out_path),
        ])
        out = capsys.readouterr().out
        assert "deterministic yes" in out
        assert "recorded entry" in out
        entries = json.loads(out_path.read_text())
        assert len(entries) == 1
        entry = entries[0]
        validate_serving_entry(entry)
        assert entry["smoke"] is True
        assert entry["deterministic"] is True
        # The flash crowd must actually shed against the tight quotas,
        # and the steady schedule must actually serve — the command
        # exits nonzero otherwise, but pin it here too.
        assert entry["schedules"]["flash"]["rejected"] >= 1
        assert entry["schedules"]["poisson"]["ok"] >= 1

    def test_bench_lifecycle_smoke(self, capsys, tmp_path):
        out_path = tmp_path / "bench_lifecycle.json"
        main([
            "bench-lifecycle", "--n", "300", "--dim", "10", "--m", "8",
            "--gamma", "8", "--ops", "60", "--reads", "12",
            "--recall-floor", "0.5", "--smoke", "--out", str(out_path),
        ])
        out = capsys.readouterr().out
        assert "-> pass" in out
        assert "recorded entry" in out
        entries = json.loads(out_path.read_text())
        assert len(entries) == 1
        entry = entries[0]
        validate_lifecycle_entry(entry)
        assert entry["smoke"] is True
        assert entry["determinism"] == "pass"
        assert entry["failed_reads_during_compaction"] == 0
        assert entry["blocked_reads"] == 0
        assert entry["compactions"] >= 1

    def test_bench_serving_deterministic_across_runs(self, tmp_path):
        """Same seed, same trace — identical entries modulo the
        timestamp and the wall-clock (realtime) arms."""
        records = []
        for run in range(2):
            out_path = tmp_path / f"serving_{run}.json"
            main([
                "bench-serving", "--n", "300", "--dim", "10", "--m", "8",
                "--gamma", "6", "--workers", "2", "--pool", "12",
                "--rate", "500", "--duration", "0.2",
                "--tenant-rate", "40", "--tenant-burst", "5",
                "--smoke", "--out", str(out_path),
            ])
            entry = json.loads(out_path.read_text())[0]
            entry.pop("timestamp")
            for sub in entry["schedules"].values():
                sub.pop("realtime")
            records.append(entry)
        assert records[0] == records[1]

    def test_bench_chaos_deterministic_across_runs(self, tmp_path):
        """Same seed, same plan, same accounting — byte-for-byte except
        the timestamp."""
        records = []
        for run in range(2):
            out_path = tmp_path / f"chaos_{run}.json"
            main([
                "bench-chaos", "--n", "300", "--queries", "6", "--dim",
                "10", "--m", "8", "--gamma", "6", "--shards", "4",
                "--smoke", "--out", str(out_path),
            ])
            entry = json.loads(out_path.read_text())[0]
            entry.pop("timestamp")
            records.append(entry)
        assert records[0] == records[1]


class TestValidateShardEntry:
    def _entry(self, **overrides):
        entry = {
            "bench": "shard-scatter-gather",
            "timestamp": "2026-01-01T00:00:00",
            "n": 400, "dim": 12, "queries": 10, "k": 10, "ef_search": 400,
            "m": 8, "gamma": 6, "n_shards": 4, "workers": 2, "smoke": True,
            "partitioner": {"type": "attribute-range"},
            "unsharded_qps": 100.0, "sharded_qps": 120.0, "qps_ratio": 1.2,
            "shards_probed": 15, "shards_pruned": 25,
            "prune_fraction": 0.625, "results_identical": True,
            "latency_s": {"p50": 0.001},
        }
        entry.update(overrides)
        return entry

    def test_valid_entry_passes(self):
        validate_shard_entry(self._entry())

    def test_missing_key_rejected(self):
        entry = self._entry()
        del entry["n_shards"]
        with pytest.raises(ValueError, match="missing keys"):
            validate_shard_entry(entry)

    def test_mistyped_count_rejected(self):
        with pytest.raises(ValueError, match="must be an int"):
            validate_shard_entry(self._entry(shards_probed="15"))

    def test_unbalanced_accounting_rejected(self):
        with pytest.raises(ValueError, match="does not balance"):
            validate_shard_entry(self._entry(shards_pruned=99))


class TestValidateChaosEntry:
    def _entry(self, **overrides):
        entry = {
            "bench": "shard-chaos",
            "timestamp": "2026-01-01T00:00:00",
            "n": 400, "dim": 12, "queries": 8, "k": 10, "ef_search": 400,
            "m": 8, "gamma": 6, "n_shards": 8, "workers": 1, "smoke": True,
            "failure_rate": 0.2, "faulty_shards": [2, 5],
            "shard_deadline_s": 0.5, "max_retries": 1,
            "degraded_queries": 8, "shards_failed": 8,
            "shards_timed_out": 8, "min_recall_ceiling": 0.7,
            "mean_recall_ceiling": 0.75, "ground_truth_matches": True,
            "within_deadline": True, "max_query_clock_s": 4.1,
            "query_budget_s": 32.9,
            "breaker_states": ["closed"] * 6 + ["open"] * 2,
        }
        entry.update(overrides)
        return entry

    def test_valid_entry_passes(self):
        validate_chaos_entry(self._entry())

    def test_missing_key_rejected(self):
        entry = self._entry()
        del entry["shards_timed_out"]
        with pytest.raises(ValueError, match="missing keys"):
            validate_chaos_entry(entry)

    def test_mistyped_count_rejected(self):
        with pytest.raises(ValueError, match="must be an int"):
            validate_chaos_entry(self._entry(shards_failed="8"))

    def test_mistyped_flag_rejected(self):
        with pytest.raises(ValueError, match="must be a bool"):
            validate_chaos_entry(self._entry(ground_truth_matches=1))

    def test_overflowing_accounting_rejected(self):
        with pytest.raises(ValueError, match="exceeds probe"):
            validate_chaos_entry(self._entry(shards_failed=100))

    def test_out_of_range_ceiling_rejected(self):
        with pytest.raises(ValueError, match=r"in \[0, 1\]"):
            validate_chaos_entry(self._entry(min_recall_ceiling=1.5))

    def test_excess_degraded_queries_rejected(self):
        with pytest.raises(ValueError, match="degraded_queries"):
            validate_chaos_entry(self._entry(degraded_queries=99))


class TestValidateBuildEntry:
    def _entry(self, **overrides):
        entry = {
            "bench": "build-tti",
            "timestamp": "2026-01-01T00:00:00",
            "n": 1500, "dim": 32, "m": 12, "gamma": 12,
            "ef_construction": 144, "n_workers": 4, "wave_cap": None,
            "smoke": True,
            "sequential_s": 2.0, "parallel_s": 0.8, "speedup": 2.5,
            "sequential_distance_comps": 500000,
            "parallel_distance_comps": 550000,
            "sequential_checksum": "ab" * 16,
            "parallel_checksum": "cd" * 16,
            "parallel_rebuild_checksum_match": True,
            "recall_at_10_sequential": 1.0,
            "recall_at_10_parallel": 0.995,
            "recall_gap": 0.005,
            "graphs_valid": True,
        }
        entry.update(overrides)
        return entry

    def test_valid_entry_passes(self):
        validate_build_entry(self._entry())

    def test_integer_wave_cap_passes(self):
        validate_build_entry(self._entry(wave_cap=64))

    def test_missing_key_rejected(self):
        entry = self._entry()
        del entry["speedup"]
        with pytest.raises(ValueError, match="missing keys"):
            validate_build_entry(entry)

    def test_mistyped_count_rejected(self):
        with pytest.raises(ValueError, match="must be an int"):
            validate_build_entry(self._entry(n_workers="4"))

    def test_mistyped_wave_cap_rejected(self):
        with pytest.raises(ValueError, match="wave_cap"):
            validate_build_entry(self._entry(wave_cap=2.5))

    def test_mistyped_flag_rejected(self):
        with pytest.raises(ValueError, match="must be a bool"):
            validate_build_entry(self._entry(graphs_valid=1))

    def test_nonpositive_timing_rejected(self):
        with pytest.raises(ValueError, match="positive"):
            validate_build_entry(self._entry(parallel_s=0.0))

    def test_inconsistent_speedup_rejected(self):
        with pytest.raises(ValueError, match="speedup"):
            validate_build_entry(self._entry(speedup=9.9))

    def test_out_of_range_recall_rejected(self):
        with pytest.raises(ValueError, match=r"\[0, 1\]"):
            validate_build_entry(self._entry(recall_at_10_parallel=1.2))

    def test_inconsistent_recall_gap_rejected(self):
        with pytest.raises(ValueError, match="recall_gap"):
            validate_build_entry(self._entry(recall_gap=0.5))


class TestValidateRouteEntry:
    def _policy(self, qps, recall, dc, routes, fallbacks=0, err=0.0):
        return {
            "qps": qps, "recall_at_k": recall,
            "mean_distance_computations": dc,
            "route_counts": routes, "fallbacks_triggered": fallbacks,
            "mean_abs_estimator_error": err,
            "latency_s": {"p50": 0.001, "p95": 0.002, "p99": 0.003},
        }

    def _entry(self, **overrides):
        entry = {
            "bench": "route",
            "timestamp": "2026-01-01T00:00:00",
            "n": 1500, "dim": 16, "queries": 32, "k": 10,
            "ef_search": 64, "m": 16, "gamma": 12, "workers": 1,
            "smoke": True, "s_min": 0.083333,
            "policies": {
                "static": self._policy(
                    1000.0, 0.94, 800.0,
                    {"pre-filter": 16, "acorn-gamma": 16},
                ),
                "adaptive": self._policy(
                    2000.0, 0.99, 1600.0,
                    {"pre-filter": 30, "acorn-gamma": 2},
                    fallbacks=1, err=0.01,
                ),
            },
            "adaptive_qps_speedup": 2.0,
            "adaptive_dc_speedup": 0.5,
            "recall_delta": 0.05,
        }
        entry.update(overrides)
        return entry

    def test_valid_entry_passes(self):
        validate_route_entry(self._entry())

    def test_missing_key_rejected(self):
        entry = self._entry()
        del entry["s_min"]
        with pytest.raises(ValueError, match="missing keys"):
            validate_route_entry(entry)

    def test_mistyped_count_rejected(self):
        with pytest.raises(ValueError, match="must be an int"):
            validate_route_entry(self._entry(queries="32"))

    def test_mistyped_flag_rejected(self):
        with pytest.raises(ValueError, match="must be a bool"):
            validate_route_entry(self._entry(smoke=1))

    def test_missing_policy_rejected(self):
        entry = self._entry()
        del entry["policies"]["adaptive"]
        with pytest.raises(ValueError, match="policies missing"):
            validate_route_entry(entry)

    def test_missing_policy_key_rejected(self):
        entry = self._entry()
        del entry["policies"]["static"]["route_counts"]
        with pytest.raises(ValueError, match="missing keys"):
            validate_route_entry(entry)

    def test_unbalanced_route_counts_rejected(self):
        entry = self._entry()
        entry["policies"]["adaptive"]["route_counts"] = {"pre-filter": 31}
        with pytest.raises(ValueError, match="does not balance"):
            validate_route_entry(entry)

    def test_negative_route_count_rejected(self):
        entry = self._entry()
        entry["policies"]["adaptive"]["route_counts"] = {
            "pre-filter": 33, "acorn-gamma": -1,
        }
        with pytest.raises(ValueError, match="ints >= 0"):
            validate_route_entry(entry)

    def test_out_of_range_recall_rejected(self):
        entry = self._entry()
        entry["policies"]["static"]["recall_at_k"] = 1.2
        with pytest.raises(ValueError, match=r"\[0, 1\]"):
            validate_route_entry(entry)

    def test_excess_fallbacks_rejected(self):
        entry = self._entry()
        entry["policies"]["adaptive"]["fallbacks_triggered"] = 99
        with pytest.raises(ValueError, match="fallbacks_triggered"):
            validate_route_entry(entry)

    def test_inconsistent_speedup_rejected(self):
        with pytest.raises(ValueError, match="qps_speedup"):
            validate_route_entry(self._entry(adaptive_qps_speedup=9.9))

    def test_inconsistent_recall_delta_rejected(self):
        with pytest.raises(ValueError, match="recall_delta"):
            validate_route_entry(self._entry(recall_delta=-0.5))


class TestValidateQuantEntry:
    def _arm(self, qps, recall, dc, qd, rerank):
        return {
            "qps": qps, "recall_at_k": recall,
            "mean_distance_computations": dc,
            "mean_quantized_distances": qd,
            "mean_rerank_distances": rerank,
            "latency_s": 0.002,
        }

    def _entry(self, **overrides):
        entry = {
            "bench": "quant",
            "timestamp": "2026-01-01T00:00:00",
            "n": 1500, "dim": 16, "queries": 32, "k": 10,
            "ef_search": 96, "m": 8, "gamma": 6, "workers": 1,
            "beam": 32, "smoke": True,
            "quantization": "sq8", "rerank_factor": 3.0,
            "float32": self._arm(300.0, 0.97, 900.0, 0.0, 0.0),
            "quantized": self._arm(700.0, 0.96, 100.0, 950.0, 28.0),
            "batch_qps_speedup": 2.333,
            "recall_floor": 0.95,
            "recall_ok": True,
            "deterministic": True,
        }
        entry.update(overrides)
        return entry

    def test_valid_entry_passes(self):
        validate_quant_entry(self._entry())

    def test_missing_key_rejected(self):
        entry = self._entry()
        del entry["beam"]
        with pytest.raises(ValueError, match="missing keys"):
            validate_quant_entry(entry)

    def test_mistyped_count_rejected(self):
        with pytest.raises(ValueError, match="must be an int"):
            validate_quant_entry(self._entry(queries="32"))

    def test_mistyped_flag_rejected(self):
        with pytest.raises(ValueError, match="must be a bool"):
            validate_quant_entry(self._entry(deterministic=1))

    def test_unknown_codec_rejected(self):
        with pytest.raises(ValueError, match="quantization"):
            validate_quant_entry(self._entry(quantization="int4"))

    def test_missing_arm_key_rejected(self):
        entry = self._entry()
        del entry["quantized"]["mean_rerank_distances"]
        with pytest.raises(ValueError, match="missing keys"):
            validate_quant_entry(entry)

    def test_out_of_range_recall_rejected(self):
        entry = self._entry()
        entry["float32"]["recall_at_k"] = 1.2
        with pytest.raises(ValueError, match=r"\[0, 1\]"):
            validate_quant_entry(entry)

    def test_float_arm_quantized_evals_rejected(self):
        entry = self._entry()
        entry["float32"]["mean_quantized_distances"] = 5.0
        with pytest.raises(ValueError, match="zero quantized"):
            validate_quant_entry(entry)

    def test_quantized_arm_without_evals_rejected(self):
        entry = self._entry()
        entry["quantized"]["mean_quantized_distances"] = 0.0
        with pytest.raises(ValueError, match="no quantized"):
            validate_quant_entry(entry)

    def test_rerank_over_budget_rejected(self):
        entry = self._entry()
        entry["quantized"]["mean_rerank_distances"] = 99.0
        with pytest.raises(ValueError, match="rerank"):
            validate_quant_entry(entry)

    def test_inconsistent_speedup_rejected(self):
        with pytest.raises(ValueError, match="speedup"):
            validate_quant_entry(self._entry(batch_qps_speedup=9.9))


class TestValidateServingEntry:
    def _pct(self, values):
        if not values:
            return {"count": 0, "mean": None, "p50": None, "p95": None,
                    "p99": None, "min": None, "max": None}
        return {"count": len(values), "mean": 1.0, "p50": 1.0,
                "p95": 2.0, "p99": 2.0, "min": 0.5, "max": 2.0}

    def _schedule(self, offered=10, ok=7, degraded=1, rejected=2):
        served = ok + degraded
        return {
            "offered": offered, "ok": ok, "degraded": degraded,
            "rejected": rejected,
            "shed_fraction": rejected / offered if offered else 0.0,
            "goodput_qps": None,
            "latency_ms": self._pct([1.0] * served),
            "queue_wait_ms": self._pct([1.0] * served),
            "mean_batch_size": 2.5,
            "min_recall_ceiling": 0.9,
            "tenants": {
                "tenant-0": {"offered": offered - 3, "rejected": rejected},
                "tenant-1": {"offered": 3, "rejected": 0},
            },
            "realtime": {
                "wall_s": 0.5, "goodput_qps": served / 0.5,
                "served": served, "rejected": rejected,
                "p50_latency_ms": 1.5, "p99_latency_ms": 4.0,
            },
        }

    def _entry(self, **overrides):
        entry = {
            "bench": "serving",
            "timestamp": "2026-01-01T00:00:00",
            "n": 400, "dim": 10, "k": 10, "ef_search": 64,
            "m": 8, "gamma": 6, "engine_workers": 2, "smoke": True,
            "max_batch": 8, "latency_budget_ms": 5.0, "max_pending": 64,
            "n_tenants": 2, "tenant_rate_qps": 40.0, "tenant_burst": 5.0,
            "rate_qps": 500.0, "duration_s": 0.2,
            "schedules": {
                "poisson": self._schedule(),
                "flash": self._schedule(offered=20, ok=10, degraded=2,
                                        rejected=8),
            },
            "deterministic": True,
        }
        # flash tenants must sum to its offered load
        entry["schedules"]["flash"]["tenants"] = {
            "tenant-0": {"offered": 15, "rejected": 8},
            "tenant-1": {"offered": 5, "rejected": 0},
        }
        entry.update(overrides)
        return entry

    def test_valid_entry_passes(self):
        validate_serving_entry(self._entry())

    def test_missing_key_rejected(self):
        entry = self._entry()
        del entry["max_batch"]
        with pytest.raises(ValueError, match="missing keys"):
            validate_serving_entry(entry)

    def test_missing_schedule_rejected(self):
        entry = self._entry()
        del entry["schedules"]["flash"]
        with pytest.raises(ValueError, match="schedules missing"):
            validate_serving_entry(entry)

    def test_mistyped_count_rejected(self):
        with pytest.raises(ValueError, match="must be an int"):
            validate_serving_entry(self._entry(max_pending="64"))

    def test_mistyped_flag_rejected(self):
        with pytest.raises(ValueError, match="must be a bool"):
            validate_serving_entry(self._entry(deterministic=1))

    def test_unbalanced_accounting_rejected(self):
        entry = self._entry()
        entry["schedules"]["poisson"]["ok"] += 1
        with pytest.raises(ValueError, match="does not balance"):
            validate_serving_entry(entry)

    def test_inconsistent_shed_fraction_rejected(self):
        entry = self._entry()
        entry["schedules"]["poisson"]["shed_fraction"] = 0.9
        with pytest.raises(ValueError, match="shed_fraction"):
            validate_serving_entry(entry)

    def test_tenant_offers_must_sum_to_offered(self):
        entry = self._entry()
        entry["schedules"]["poisson"]["tenants"]["tenant-1"]["offered"] = 99
        with pytest.raises(ValueError, match="per-tenant offers"):
            validate_serving_entry(entry)

    def test_unbalanced_realtime_rejected(self):
        entry = self._entry()
        entry["schedules"]["poisson"]["realtime"]["served"] += 1
        with pytest.raises(ValueError, match="realtime accounting"):
            validate_serving_entry(entry)

    def test_partially_none_percentiles_rejected(self):
        entry = self._entry()
        entry["schedules"]["poisson"]["latency_ms"]["p99"] = None
        with pytest.raises(ValueError, match="latency_ms"):
            validate_serving_entry(entry)

    def test_all_shed_schedule_passes_with_none_stats(self):
        entry = self._entry()
        entry["schedules"]["flash"] = {
            "offered": 4, "ok": 0, "degraded": 0, "rejected": 4,
            "shed_fraction": 1.0, "goodput_qps": None,
            "latency_ms": self._pct([]), "queue_wait_ms": self._pct([]),
            "mean_batch_size": 0.0, "min_recall_ceiling": 1.0,
            "tenants": {"tenant-0": {"offered": 4, "rejected": 4}},
            "realtime": {
                "wall_s": 0.5, "goodput_qps": None, "served": 0,
                "rejected": 4, "p50_latency_ms": None,
                "p99_latency_ms": None,
            },
        }
        validate_serving_entry(entry)

    def test_served_without_goodput_rejected(self):
        entry = self._entry()
        entry["schedules"]["poisson"]["realtime"]["goodput_qps"] = None
        with pytest.raises(ValueError, match="goodput"):
            validate_serving_entry(entry)


class TestBenchParallelCli:
    def test_bench_parallel_defaults(self):
        args = build_parser().parse_args(["bench-parallel"])
        assert args.n == 10000
        assert args.workers == "1,2,4,8"
        assert args.out == "BENCH_parallel.json"
        assert args.smoke is False

    def test_bench_report_defaults(self):
        args = build_parser().parse_args(["bench-report"])
        assert args.dir == "."
        assert args.out == "BENCH_REPORT.md"
        assert args.csv is None

    def test_bench_parallel_smoke(self, capsys, tmp_path):
        out_path = tmp_path / "bench_parallel.json"
        main([
            "bench-parallel", "--n", "400", "--queries", "8", "--dim",
            "12", "--m", "8", "--gamma", "4", "--smoke",
            "--out", str(out_path),
        ])
        out = capsys.readouterr().out
        assert "byte-identical to sync : True" in out
        assert "double-run determinism : True" in out
        assert "recorded entry" in out
        entries = json.loads(out_path.read_text())
        assert len(entries) == 1
        validate_parallel_entry(entries[0])
        entry = entries[0]
        assert entry["smoke"] is True
        assert entry["results_identical"] is True
        assert entry["deterministic"] is True
        assert entry["zero_copy"] is True
        assert entry["fixup_copies"] == 0
        assert set(entry["process_qps_by_workers"]) == {"1", "2"}
        # the 2x gate is recorded, only enforced on full >=4-cpu runs
        assert entry["gate_enforced"] is False


class TestBenchReportCli:
    def _seed_bench_files(self, tmp_path):
        (tmp_path / "BENCH_parallel.json").write_text(json.dumps([{
            "bench": "parallel", "timestamp": "2026-08-08T00:00:00",
            "n": 400, "queries": 8, "smoke": True, "cpus": 1,
            "process_vs_thread_at_4": 0.9, "best_process_vs_thread": 1.1,
            "zero_copy": True,
        }]))
        (tmp_path / "BENCH_engine.json").write_text(json.dumps([
            {"bench": "engine-batch", "timestamp": "2026-08-07T00:00:00",
             "n": 500, "queries": 16, "smoke": False,
             "engine_qps": 1234.5, "speedup_vs_sequential": 2.5},
            {"bench": "engine-batch", "timestamp": "2026-08-08T00:00:00",
             "n": 500, "queries": 16, "smoke": False,
             "engine_qps": 2222.0, "speedup_vs_sequential": 3.0},
        ]))
        (tmp_path / "BENCH_broken.json").write_text("{not json")

    def test_report_aggregates_all_bench_files(self, capsys, tmp_path):
        self._seed_bench_files(tmp_path)
        out_md = tmp_path / "REPORT.md"
        out_csv = tmp_path / "report.csv"
        main([
            "bench-report", "--dir", str(tmp_path),
            "--out", str(out_md), "--csv", str(out_csv),
        ])
        out = capsys.readouterr().out
        assert "skipping BENCH_broken.json" in out
        assert "3 runs across 2 files" in out
        report = out_md.read_text()
        assert "# Benchmark trajectory" in report
        assert "perf trajectory" in report
        assert "best_process_vs_thread=1.1" in report
        assert "engine_qps=2222.0" in report
        import csv as csv_mod

        with open(out_csv) as handle:
            rows = list(csv_mod.DictReader(handle))
        assert len(rows) == 3
        assert rows[0]["bench"] == "engine-batch"
        assert rows[2]["bench"] == "parallel"
        assert rows[2]["headline"].startswith("process_vs_thread_at_4=")

    def test_report_with_no_bench_files_exits(self, tmp_path):
        with pytest.raises(SystemExit, match="no BENCH"):
            main(["bench-report", "--dir", str(tmp_path)])


class TestValidateParallelEntry:
    def _entry(self, **overrides):
        entry = {
            "bench": "parallel", "timestamp": "2026-08-08T00:00:00",
            "n": 400, "dim": 12, "queries": 8, "k": 10, "ef_search": 32,
            "m": 8, "gamma": 4, "smoke": True, "cpus": 4,
            "index": "acorn-gamma", "sync_qps": 100.0,
            "thread_qps_by_workers": {"1": 110.0, "2": 120.0},
            "process_qps_by_workers": {"1": 130.0, "2": 250.0},
            "process_vs_thread_at_4": 2.1,
            "best_process_vs_thread": 2.1,
            "results_identical": True, "deterministic": True,
            "zero_copy": True, "arena_nbytes": 1 << 20,
            "fixup_copies": 0, "pool": {"spawns": 2, "deaths": 0},
            "gate_enforced": True,
        }
        entry.update(overrides)
        return entry

    def test_valid_entry_passes(self):
        validate_parallel_entry(self._entry())

    def test_missing_key_rejected(self):
        entry = self._entry()
        del entry["arena_nbytes"]
        with pytest.raises(ValueError, match="missing keys"):
            validate_parallel_entry(entry)

    def test_diverged_results_rejected(self):
        with pytest.raises(ValueError, match="byte-identity"):
            validate_parallel_entry(self._entry(results_identical=False))

    def test_nondeterministic_run_rejected(self):
        with pytest.raises(ValueError, match="diverged"):
            validate_parallel_entry(self._entry(deterministic=False))

    def test_copied_arrays_rejected(self):
        with pytest.raises(ValueError, match="zero-copy"):
            validate_parallel_entry(self._entry(zero_copy=False))

    def test_fixup_copies_rejected(self):
        with pytest.raises(ValueError, match="canonicalization"):
            validate_parallel_entry(self._entry(fixup_copies=3))

    def test_enforced_gate_below_2x_rejected(self):
        with pytest.raises(ValueError, match="2x thread"):
            validate_parallel_entry(
                self._entry(process_vs_thread_at_4=1.4)
            )

    def test_unenforced_gate_records_honest_ratio(self):
        validate_parallel_entry(self._entry(
            process_vs_thread_at_4=0.62, best_process_vs_thread=1.29,
            cpus=1, gate_enforced=False,
        ))

    def test_empty_qps_sweep_rejected(self):
        with pytest.raises(ValueError, match="non-empty"):
            validate_parallel_entry(
                self._entry(process_qps_by_workers={})
            )

    def test_nonpositive_qps_rejected(self):
        with pytest.raises(ValueError, match="positive"):
            validate_parallel_entry(
                self._entry(thread_qps_by_workers={"1": 0.0})
            )

    def test_mistyped_pool_counter_rejected(self):
        with pytest.raises(ValueError, match="pool.spawns"):
            validate_parallel_entry(
                self._entry(pool={"spawns": "2", "deaths": 0})
            )
