"""Shared fixtures: small deterministic datasets and prebuilt indexes.

Index construction dominates test runtime, so indexes over the shared
datasets are session-scoped; tests must not mutate them (tests that
exercise insertion build their own small indexes).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.attributes import AttributeTable
from repro.core import AcornIndex, AcornOneIndex, AcornParams
from repro.datasets import make_laion_like, make_sift1m_like, make_tripclick_like
from repro.hnsw import HnswIndex


@pytest.fixture(scope="session")
def rng():
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def small_vectors():
    """600 clustered 16-d vectors used across index tests."""
    gen = np.random.default_rng(7)
    centers = gen.standard_normal((8, 16)).astype(np.float32)
    assign = gen.integers(0, 8, size=600)
    return (centers[assign] + 0.3 * gen.standard_normal((600, 16)).astype(np.float32),
            assign)


@pytest.fixture(scope="session")
def labeled_table(small_vectors):
    """Attribute table with a 6-value label column over small_vectors."""
    gen = np.random.default_rng(8)
    n = small_vectors[0].shape[0]
    table = AttributeTable(n)
    table.add_int_column("label", gen.integers(0, 6, size=n))
    return table


@pytest.fixture(scope="session")
def hnsw_index(small_vectors):
    return HnswIndex.build(small_vectors[0], m=8, ef_construction=40, seed=1)


@pytest.fixture(scope="session")
def acorn_index(small_vectors, labeled_table):
    params = AcornParams(m=8, gamma=6, m_beta=16, ef_construction=32)
    return AcornIndex.build(
        small_vectors[0], labeled_table, params=params, seed=2
    )


@pytest.fixture(scope="session")
def acorn_one_index(small_vectors, labeled_table):
    # ACORN-1's 2-hop expansion pool scales with M^2; at M=8 it is too
    # small to keep sparse predicate subgraphs connected (the paper
    # defaults to M=32), so the shared fixture uses M=16.
    return AcornOneIndex.build(
        small_vectors[0], labeled_table, m=16, ef_construction=48, seed=2
    )


@pytest.fixture(scope="session")
def sift_tiny():
    return make_sift1m_like(n=500, dim=24, n_queries=30, seed=0)


@pytest.fixture(scope="session")
def tripclick_tiny():
    return make_tripclick_like(n=500, dim=24, n_queries=30, workload="areas", seed=2)


@pytest.fixture(scope="session")
def laion_tiny():
    return make_laion_like(n=500, dim=24, n_queries=30, workload="no-cor", seed=3)
