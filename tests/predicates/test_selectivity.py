"""Unit tests for selectivity estimation."""

import numpy as np
import pytest

from repro.attributes.table import AttributeTable
from repro.predicates import Equals
from repro.predicates.selectivity import (
    ExactSelectivityEstimator,
    SamplingSelectivityEstimator,
)


@pytest.fixture
def table():
    gen = np.random.default_rng(0)
    t = AttributeTable(2000)
    t.add_int_column("label", gen.integers(0, 10, size=2000))
    return t


class TestExact:
    def test_matches_ground_truth(self, table):
        estimator = ExactSelectivityEstimator(table)
        predicate = Equals("label", 3)
        truth = predicate.mask(table).mean()
        assert estimator.estimate(predicate) == pytest.approx(truth)

    def test_empty_table(self):
        empty = AttributeTable(0)
        empty.add_int_column("label", [])
        assert ExactSelectivityEstimator(empty).estimate(Equals("label", 1)) == 0.0


class TestSampling:
    def test_close_to_truth(self, table):
        estimator = SamplingSelectivityEstimator(table, sample_size=500, seed=1)
        predicate = Equals("label", 3)
        truth = predicate.mask(table).mean()
        # 500 samples of s~0.1: standard error ~0.013; 4 sigma bound.
        assert abs(estimator.estimate(predicate) - truth) < 0.055

    def test_deterministic_given_seed(self, table):
        a = SamplingSelectivityEstimator(table, sample_size=100, seed=5)
        b = SamplingSelectivityEstimator(table, sample_size=100, seed=5)
        predicate = Equals("label", 2)
        assert a.estimate(predicate) == b.estimate(predicate)

    def test_sample_capped_at_table_size(self, table):
        estimator = SamplingSelectivityEstimator(table, sample_size=10_000, seed=0)
        assert estimator.sample_size == 2000

    def test_full_sample_is_exact(self, table):
        estimator = SamplingSelectivityEstimator(table, sample_size=2000, seed=0)
        predicate = Equals("label", 7)
        assert estimator.estimate(predicate) == pytest.approx(
            predicate.mask(table).mean()
        )

    def test_rejects_bad_sample_size(self, table):
        with pytest.raises(ValueError):
            SamplingSelectivityEstimator(table, sample_size=0)


class TestHistogram:
    def test_between_close_to_truth(self, table):
        from repro.predicates import Between, HistogramSelectivityEstimator

        estimator = HistogramSelectivityEstimator(table, n_buckets=32)
        predicate = Between("label", 2, 6)
        truth = predicate.mask(table).mean()
        assert abs(estimator.estimate(predicate) - truth) < 0.1

    def test_equals_close_to_truth(self, table):
        from repro.predicates import HistogramSelectivityEstimator

        estimator = HistogramSelectivityEstimator(table, n_buckets=10)
        predicate = Equals("label", 4)
        truth = predicate.mask(table).mean()
        assert abs(estimator.estimate(predicate) - truth) < 0.08

    def test_oneof_sums_and_caps(self, table):
        from repro.predicates import HistogramSelectivityEstimator, OneOf

        estimator = HistogramSelectivityEstimator(table, n_buckets=10)
        wide = OneOf("label", list(range(10)))
        assert 0.5 < estimator.estimate(wide) <= 1.0

    def test_fallback_for_unsupported_shapes(self, table):
        from repro.predicates import HistogramSelectivityEstimator, Not

        estimator = HistogramSelectivityEstimator(table, n_buckets=10, seed=0)
        predicate = Not(Equals("label", 3))
        truth = predicate.mask(table).mean()
        assert abs(estimator.estimate(predicate) - truth) < 0.1

    def test_out_of_range_between(self, table):
        from repro.predicates import Between, HistogramSelectivityEstimator

        estimator = HistogramSelectivityEstimator(table)
        assert estimator.estimate(Between("label", 50, 60)) == 0.0

    def test_rejects_bad_buckets(self, table):
        from repro.predicates import HistogramSelectivityEstimator

        with pytest.raises(ValueError):
            HistogramSelectivityEstimator(table, n_buckets=0)

    def test_empty_table_builds_no_histograms(self):
        """Regression: an empty int column must not produce a phantom
        histogram (np.histogram silently invents a [0, 1] domain on
        empty input); estimates route to the fallback and return 0.0."""
        from repro.predicates import HistogramSelectivityEstimator

        empty = AttributeTable(0)
        empty.add_int_column("label", [])
        estimator = HistogramSelectivityEstimator(empty, seed=0)
        assert estimator._histograms == {}
        assert estimator.estimate(Equals("label", 3)) == 0.0

    def test_empty_table_between_and_oneof(self):
        from repro.predicates import (
            Between,
            HistogramSelectivityEstimator,
            OneOf,
        )

        empty = AttributeTable(0)
        empty.add_int_column("score", [])
        estimator = HistogramSelectivityEstimator(empty, seed=0)
        assert estimator.estimate(Between("score", 0, 10)) == 0.0
        assert estimator.estimate(OneOf("score", (1, 2))) == 0.0

    def test_all_categorical_table_uses_fallback(self):
        """A table with only string columns builds zero histograms and
        every estimate goes through the fallback estimator."""
        from repro.predicates import HistogramSelectivityEstimator

        t = AttributeTable(100)
        t.add_string_column(
            "color", ["red" if i % 4 == 0 else "blue" for i in range(100)]
        )
        estimator = HistogramSelectivityEstimator(
            t, fallback=ExactSelectivityEstimator(t)
        )
        assert estimator._histograms == {}
        assert estimator.estimate(Equals("color", "red")) == pytest.approx(
            0.25
        )
