"""Unit tests for keyword containment predicates."""

import numpy as np
import pytest

from repro.attributes.table import AttributeTable
from repro.predicates import ContainsAll, ContainsAny


@pytest.fixture
def table():
    t = AttributeTable(5)
    t.add_keywords_column(
        "areas",
        [["cardio", "onco"], ["onco"], ["neuro"], [], ["cardio", "neuro"]],
    )
    t.add_int_column("year", [0, 1, 2, 3, 4])
    return t


class TestContainsAny:
    def test_single_keyword(self, table):
        np.testing.assert_array_equal(
            ContainsAny("areas", ["onco"]).mask(table),
            [True, True, False, False, False],
        )

    def test_disjunction(self, table):
        got = ContainsAny("areas", ["onco", "neuro"]).mask(table)
        np.testing.assert_array_equal(got, [True, True, True, False, True])

    def test_unknown_keyword(self, table):
        assert ContainsAny("areas", ["derm"]).mask(table).sum() == 0

    def test_matches_single_entity(self, table):
        pred = ContainsAny("areas", ["cardio"])
        assert pred.matches(table, 0)
        assert not pred.matches(table, 3)

    def test_empty_list_entity_never_passes(self, table):
        pred = ContainsAny("areas", ["cardio", "onco", "neuro"])
        assert not pred.mask(table)[3]

    def test_requires_keywords(self):
        with pytest.raises(ValueError, match="at least one"):
            ContainsAny("areas", [])

    def test_requires_keywords_column(self, table):
        with pytest.raises(ValueError, match="keywords column"):
            ContainsAny("year", ["x"]).mask(table)


class TestContainsAll:
    def test_conjunction(self, table):
        got = ContainsAll("areas", ["cardio", "onco"]).mask(table)
        np.testing.assert_array_equal(got, [True, False, False, False, False])

    def test_single_equals_any(self, table):
        any_mask = ContainsAny("areas", ["neuro"]).mask(table)
        all_mask = ContainsAll("areas", ["neuro"]).mask(table)
        np.testing.assert_array_equal(any_mask, all_mask)

    def test_requires_keywords(self):
        with pytest.raises(ValueError, match="at least one"):
            ContainsAll("areas", [])
