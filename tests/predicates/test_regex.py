"""Unit tests for regex predicates."""

import numpy as np
import pytest

from repro.attributes.table import AttributeTable
from repro.predicates import RegexMatch


@pytest.fixture
def table():
    t = AttributeTable(4)
    t.add_string_column(
        "caption",
        ["a photo of a dog", "two cats playing", "dog and cat", "a 1990 photo"],
    )
    t.add_int_column("year", [1, 2, 3, 4])
    return t


class TestRegexMatch:
    def test_word_match(self, table):
        np.testing.assert_array_equal(
            RegexMatch("caption", r"\bdog\b").mask(table),
            [True, False, True, False],
        )

    def test_anchored(self, table):
        got = RegexMatch("caption", r"^a ").mask(table)
        np.testing.assert_array_equal(got, [True, False, False, True])

    def test_digit_class(self, table):
        assert RegexMatch("caption", r"[0-9]{4}").mask(table).sum() == 1

    def test_alternation(self, table):
        got = RegexMatch("caption", r"(cats|1990)").mask(table)
        assert got.sum() == 2

    def test_matches_single(self, table):
        assert RegexMatch("caption", "photo").matches(table, 0)
        assert not RegexMatch("caption", "photo").matches(table, 1)

    def test_invalid_pattern(self):
        with pytest.raises(ValueError, match="invalid regex"):
            RegexMatch("caption", "[unclosed")

    def test_requires_string_column(self, table):
        with pytest.raises(ValueError, match="string column"):
            RegexMatch("year", "x").mask(table)

    def test_no_match_anywhere(self, table):
        assert RegexMatch("caption", "zebra").mask(table).sum() == 0
