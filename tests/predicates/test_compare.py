"""Unit tests for comparison predicates."""

import numpy as np
import pytest

from repro.attributes.table import AttributeTable
from repro.predicates import Between, Equals, OneOf


@pytest.fixture
def table():
    t = AttributeTable(6)
    t.add_int_column("year", [1990, 2000, 2010, 2020, 2000, 1985])
    t.add_string_column("kind", ["a", "b", "a", "c", "b", "a"])
    t.add_keywords_column("tags", [["x"]] * 6)
    return t


class TestEquals:
    def test_int_column(self, table):
        np.testing.assert_array_equal(
            Equals("year", 2000).mask(table),
            [False, True, False, False, True, False],
        )

    def test_string_column(self, table):
        assert Equals("kind", "c").mask(table).sum() == 1

    def test_matches_single(self, table):
        assert Equals("year", 1990).matches(table, 0)
        assert not Equals("year", 1990).matches(table, 1)

    def test_no_match(self, table):
        assert Equals("year", 1234).mask(table).sum() == 0

    def test_rejects_keywords_column(self, table):
        with pytest.raises(ValueError, match="int, float, or string"):
            Equals("tags", "x").mask(table)

    def test_repr(self):
        assert repr(Equals("year", 5)) == "Equals('year', 5)"


class TestOneOf:
    def test_mask(self, table):
        got = OneOf("year", [1990, 2020]).mask(table)
        np.testing.assert_array_equal(got, [True, False, False, True, False, False])

    def test_matches(self, table):
        assert OneOf("kind", ["a", "c"]).matches(table, 3)
        assert not OneOf("kind", ["a", "c"]).matches(table, 1)

    def test_requires_values(self):
        with pytest.raises(ValueError, match="at least one"):
            OneOf("year", [])


class TestBetween:
    def test_inclusive_bounds(self, table):
        got = Between("year", 2000, 2010).mask(table)
        np.testing.assert_array_equal(got, [False, True, True, False, True, False])

    def test_matches(self, table):
        assert Between("year", 1980, 1990).matches(table, 5)

    def test_single_point_range(self, table):
        assert Between("year", 2020, 2020).mask(table).sum() == 1

    def test_inverted_bounds_rejected(self):
        with pytest.raises(ValueError, match="inverted"):
            Between("year", 2020, 2000)

    def test_empty_range_result(self, table):
        assert Between("year", 2021, 2022).mask(table).sum() == 0
