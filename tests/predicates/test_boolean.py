"""Unit tests for boolean predicate composition."""

import numpy as np
import pytest

from repro.attributes.table import AttributeTable
from repro.predicates import And, Between, ContainsAny, Equals, Not, Or


@pytest.fixture
def table():
    t = AttributeTable(6)
    t.add_int_column("year", [1990, 2000, 2010, 2020, 2000, 1985])
    t.add_keywords_column(
        "areas", [["a"], ["b"], ["a", "b"], ["c"], ["a"], ["b", "c"]]
    )
    return t


class TestAnd:
    def test_mask(self, table):
        pred = And(Between("year", 1990, 2010), ContainsAny("areas", ["a"]))
        np.testing.assert_array_equal(
            pred.mask(table), [True, False, True, False, True, False]
        )

    def test_three_children(self, table):
        pred = And(
            Between("year", 1980, 2020),
            ContainsAny("areas", ["a", "b"]),
            Not(Equals("year", 2000)),
        )
        assert pred.mask(table).sum() == 3

    def test_requires_two_children(self):
        with pytest.raises(ValueError):
            And(Equals("year", 1))

    def test_matches(self, table):
        pred = And(Equals("year", 2000), ContainsAny("areas", ["b"]))
        assert pred.matches(table, 1)
        assert not pred.matches(table, 4)


class TestOr:
    def test_mask(self, table):
        pred = Or(Equals("year", 1990), Equals("year", 1985))
        np.testing.assert_array_equal(
            pred.mask(table), [True, False, False, False, False, True]
        )

    def test_requires_two_children(self):
        with pytest.raises(ValueError):
            Or(Equals("year", 1))


class TestNot:
    def test_mask_complement(self, table):
        pred = Equals("year", 2000)
        np.testing.assert_array_equal(Not(pred).mask(table), ~pred.mask(table))

    def test_matches(self, table):
        assert Not(Equals("year", 2000)).matches(table, 0)


class TestOperatorSugar:
    def test_and_operator(self, table):
        combined = Equals("year", 2000) & ContainsAny("areas", ["b"])
        assert isinstance(combined, And)
        assert combined.mask(table).sum() == 1

    def test_or_operator(self, table):
        combined = Equals("year", 1990) | Equals("year", 1985)
        assert isinstance(combined, Or)
        assert combined.mask(table).sum() == 2

    def test_invert_operator(self, table):
        assert isinstance(~Equals("year", 2000), Not)


class TestBooleanLaws:
    def test_de_morgan(self, table):
        a = Equals("year", 2000)
        b = ContainsAny("areas", ["a"])
        lhs = Not(And(a, b)).mask(table)
        rhs = Or(Not(a), Not(b)).mask(table)
        np.testing.assert_array_equal(lhs, rhs)

    def test_double_negation(self, table):
        a = Between("year", 1990, 2010)
        np.testing.assert_array_equal(Not(Not(a)).mask(table), a.mask(table))
