"""Unit tests for Predicate compilation and CompiledPredicate."""

import numpy as np
import pytest

from repro.attributes.table import AttributeTable
from repro.predicates import Equals, TruePredicate


@pytest.fixture
def table():
    t = AttributeTable(10)
    t.add_int_column("label", [0, 1, 2, 0, 1, 2, 0, 1, 2, 0])
    return t


class TestTruePredicate:
    def test_mask_all_true(self, table):
        assert TruePredicate().mask(table).all()

    def test_matches(self, table):
        assert TruePredicate().matches(table, 3)

    def test_selectivity_one(self, table):
        assert TruePredicate().compile(table).selectivity == 1.0


class TestCompiledPredicate:
    def test_passes(self, table):
        compiled = Equals("label", 0).compile(table)
        assert compiled.passes(0)
        assert not compiled.passes(1)

    def test_passes_many(self, table):
        compiled = Equals("label", 0).compile(table)
        np.testing.assert_array_equal(
            compiled.passes_many(np.array([0, 1, 3])), [True, False, True]
        )

    def test_passing_ids(self, table):
        compiled = Equals("label", 2).compile(table)
        np.testing.assert_array_equal(compiled.passing_ids, [2, 5, 8])

    def test_cardinality_and_selectivity(self, table):
        compiled = Equals("label", 0).compile(table)
        assert compiled.cardinality == 4
        assert compiled.selectivity == pytest.approx(0.4)

    def test_len(self, table):
        assert len(Equals("label", 0).compile(table)) == 10

    def test_repr_mentions_selectivity(self, table):
        assert "selectivity" in repr(Equals("label", 0).compile(table))

    def test_empty_table_selectivity_zero(self):
        table = AttributeTable(0)
        table.add_int_column("label", [])
        assert Equals("label", 1).compile(table).selectivity == 0.0


class TestDefaultMatches:
    def test_matches_consistent_with_mask(self, table):
        predicate = Equals("label", 1)
        mask = predicate.mask(table)
        for i in range(10):
            assert predicate.matches(table, i) == bool(mask[i])
