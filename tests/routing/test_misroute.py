"""Deliberate-misroute regressions: wrong estimates cost counters, not recall.

The planner's core safety claim is that a bad selectivity estimate (or
a bad cost prediction) changes *which* route answers a query — and
therefore how many distance computations it spends — but never the
quality of the answer.  These tests feed the planner estimators that
lie in both directions and pin recall@10 against a truthful planner.
"""

import numpy as np
import pytest

from repro.baselines.prefilter import PreFilterSearcher
from repro.eval.metrics import recall_at_k
from repro.predicates import Equals, OneOf
from repro.predicates.selectivity import SelectivityEstimator
from repro.routing import CostModel, RoutePlanner, RoutingFeedback, WalkBudget


class EstimateDrivenModel(CostModel):
    """A cost model whose route choice hinges *only* on the estimate.

    On a 600-vector fixture the real model's vectorized-scan discount
    makes pre-filter the argmin for any estimate at any ef, so a lying
    estimator could never flip a route.  This stub makes the graph win
    exactly when the (possibly lying) estimate is high, letting the
    tests misroute on purpose while executing at exhaustive ef — where
    every route is exact and recall differences isolate the planner.
    """

    def units(self, route, selectivity, k, ef_search, correlation=0.0):
        s = min(max(float(selectivity), self.s_floor), 1.0)
        if route == "pre-filter":
            return s * self.n + k
        if route == "acorn-gamma":
            return (1.0 - s) * self.n + k
        return super().units(route, selectivity, k, ef_search, correlation)


def _estimate_driven_model(acorn_index):
    return EstimateDrivenModel(
        n=len(acorn_index),
        m=acorn_index.params.m,
        gamma=acorn_index.params.gamma,
    )


class OverEstimator(SelectivityEstimator):
    """Claims every predicate passes nearly everything (pushes the
    planner toward graph routes)."""

    def estimate(self, predicate) -> float:
        return 0.95


class UnderEstimator(SelectivityEstimator):
    """Claims every predicate passes almost nothing (pushes the planner
    toward pre-filter)."""

    def estimate(self, predicate) -> float:
        return 0.001


def _workload(rng, n_queries=16):
    queries = [rng.standard_normal(16).astype(np.float32)
               for _ in range(n_queries)]
    preds = []
    for i in range(n_queries):
        if i % 2:
            preds.append(Equals("label", i % 6))
        else:
            preds.append(OneOf("label", (i % 6, (i + 2) % 6)))
    return queries, preds


def _ground_truth(acorn_index, queries, preds, k=10):
    pre = PreFilterSearcher(
        acorn_index.store.vectors, acorn_index.table,
        metric=acorn_index.metric,
    )
    return [
        pre.search(q, p.compile(acorn_index.table), k)
        for q, p in zip(queries, preds)
    ]


def _run(planner, queries, preds, k=10, ef=64):
    return [planner.search(q, p, k, ef_search=ef)
            for q, p in zip(queries, preds)]


def _mean_recall(results, truth, k=10):
    return float(np.mean([
        recall_at_k(r.ids, t.ids, k) for r, t in zip(results, truth)
    ]))


@pytest.fixture(scope="module")
def workload(acorn_index):
    rng = np.random.default_rng(77)
    queries, preds = _workload(rng)
    return queries, preds, _ground_truth(acorn_index, queries, preds)


class TestLyingEstimators:
    def test_overestimate_misroutes_but_keeps_recall(
        self, acorn_index, workload
    ):
        queries, preds, truth = workload
        n = len(acorn_index)
        model = _estimate_driven_model(acorn_index)
        truthful = RoutePlanner(
            acorn_index, policy="adaptive", cost_model=model,
        )
        lying = RoutePlanner(
            acorn_index, policy="adaptive", estimator=OverEstimator(),
            cost_model=model,
        )
        honest = _run(truthful, queries, preds, ef=n)
        routed = _run(lying, queries, preds, ef=n)
        # The lie is visible in the telemetry...
        assert any(r.estimator_error > 0.1 for r in routed)
        assert all(r.est_selectivity == pytest.approx(0.95)
                   for r in routed)
        # ...and the misroute actually happened for at least one query
        # (0.95 >> every true selectivity here, so the liar graphs
        # where the truthful planner pre-filters)...
        assert any(a.route_chosen != b.route_chosen
                   for a, b in zip(honest, routed))
        # ...but recall@10 does not degrade: at exhaustive ef every
        # route is exact, so the misroute can only move cost counters.
        assert _mean_recall(routed, truth) >= _mean_recall(honest, truth)

    def test_underestimate_forces_prefilter_and_exact_results(
        self, acorn_index, workload
    ):
        queries, preds, truth = workload
        lying = RoutePlanner(
            acorn_index, policy="adaptive", estimator=UnderEstimator(),
        )
        routed = _run(lying, queries, preds)
        # 0.001 selectivity makes pre-filter the predicted argmin for
        # every query — and pre-filter is exact, whatever the estimate.
        assert all(r.route_chosen == "pre-filter" for r in routed)
        for r, t in zip(routed, truth):
            assert np.array_equal(r.ids, t.ids)
            assert np.allclose(r.distances, t.distances)
        assert all(r.estimator_error < 0 for r in routed)

    def test_misroute_moves_cost_counters_only(self, acorn_index, workload):
        """Same query, same answer quality, different bill."""
        queries, preds, truth = workload
        n = len(acorn_index)
        model = _estimate_driven_model(acorn_index)
        over = _run(
            RoutePlanner(acorn_index, policy="adaptive",
                         estimator=OverEstimator(), cost_model=model),
            queries, preds, ef=n,
        )
        under = _run(
            RoutePlanner(acorn_index, policy="adaptive",
                         estimator=UnderEstimator(), cost_model=model),
            queries, preds, ef=n,
        )
        assert _mean_recall(over, truth) == pytest.approx(1.0)
        assert _mean_recall(under, truth) == pytest.approx(1.0)
        # The two lies produce different cost profiles.
        assert (
            sum(r.distance_computations for r in over)
            != sum(r.distance_computations for r in under)
        )

    def test_feedback_recovers_from_lying_estimator(self, acorn_index):
        """Repeating a misrouted signature lets observed cost override
        the lie: the planner converges to the cheaper route."""
        feedback = RoutingFeedback()
        lying = RoutePlanner(
            acorn_index, policy="adaptive", estimator=OverEstimator(),
            feedback=feedback,
        )
        rng = np.random.default_rng(78)
        query = rng.standard_normal(16).astype(np.float32)
        pred = Equals("label", 3)  # truly selective: graph is the lie
        for _ in range(3):
            last = lying.search(query, pred, 10, ef_search=64)
        plan = lying.last_plan
        # After observations, the prediction for the converged route is
        # observation-driven, not model-driven.
        assert last.route_chosen == min(
            plan.predicted_costs, key=plan.predicted_costs.__getitem__
        )
        assert feedback.queries_recorded >= 3


class TestFallbackSafetyNet:
    def test_fallback_equals_prefilter_baseline(self, acorn_index):
        """Even with a hostile estimator AND a starved hop budget, an
        aborted walk answers byte-identically to pre-filter."""
        planner = RoutePlanner(
            acorn_index,
            policy="adaptive",
            estimator=OverEstimator(),
            feedback=RoutingFeedback(initial_scales={"acorn-gamma": 1e-6}),
            walk_budget=WalkBudget(hop_budget=1),
        )
        pre = PreFilterSearcher(
            acorn_index.store.vectors, acorn_index.table,
            metric=acorn_index.metric,
        )
        rng = np.random.default_rng(79)
        queries, preds = _workload(rng, n_queries=10)
        fallbacks = 0
        for query, pred in zip(queries, preds):
            result = planner.search(query, pred, 10, ef_search=48)
            expected = pre.search(query, pred.compile(acorn_index.table), 10)
            assert np.array_equal(result.ids, expected.ids)
            assert np.allclose(result.distances, expected.distances)
            fallbacks += result.fallback_triggered
        assert fallbacks > 0
