"""Unit tests for the online routing-feedback store."""

import threading

import pytest

from repro.routing import RoutingFeedback
from repro.routing.cost import ROUTE_ACORN_GAMMA, ROUTE_PRE_FILTER


class TestValidation:
    def test_rejects_bad_smoothing(self):
        with pytest.raises(ValueError):
            RoutingFeedback(smoothing=0.0)
        with pytest.raises(ValueError):
            RoutingFeedback(smoothing=1.5)

    def test_rejects_bad_min_observations(self):
        with pytest.raises(ValueError):
            RoutingFeedback(min_observations=0)


class TestPredict:
    def test_unseen_pair_returns_model_cost(self):
        fb = RoutingFeedback()
        assert fb.predict("sig", ROUTE_PRE_FILTER, 100.0) == 100.0

    def test_observed_mean_replaces_model(self):
        fb = RoutingFeedback()
        fb.record("sig", ROUTE_ACORN_GAMMA, 400.0)
        fb.record("sig", ROUTE_ACORN_GAMMA, 600.0)
        # Observed mean (500) wins over any model guess.
        assert fb.predict("sig", ROUTE_ACORN_GAMMA, 10.0) == pytest.approx(500.0)

    def test_min_observations_gates_replacement(self):
        fb = RoutingFeedback(min_observations=2)
        fb.record("sig", ROUTE_ACORN_GAMMA, 400.0)
        # One observation < 2: still model-driven.
        assert fb.predict("sig", ROUTE_ACORN_GAMMA, 10.0) == pytest.approx(10.0)
        fb.record("sig", ROUTE_ACORN_GAMMA, 600.0)
        assert fb.predict("sig", ROUTE_ACORN_GAMMA, 10.0) == pytest.approx(500.0)

    def test_other_signatures_use_calibration_scale(self):
        fb = RoutingFeedback(smoothing=1.0)
        # Observed 2x the modeled cost -> scale 2.0 for the route.
        fb.record("seen", ROUTE_ACORN_GAMMA, 200.0, model_cost=100.0)
        assert fb.cost_scale(ROUTE_ACORN_GAMMA) == pytest.approx(2.0)
        assert fb.predict("unseen", ROUTE_ACORN_GAMMA, 50.0) == pytest.approx(100.0)

    def test_scale_ewma_smoothing(self):
        fb = RoutingFeedback(smoothing=0.5)
        fb.record("a", ROUTE_ACORN_GAMMA, 200.0, model_cost=100.0)  # ratio 2
        fb.record("b", ROUTE_ACORN_GAMMA, 400.0, model_cost=100.0)  # ratio 4
        # First observation seeds the scale; second EWMA-blends: 0.5*2+0.5*4.
        assert fb.cost_scale(ROUTE_ACORN_GAMMA) == pytest.approx(3.0)

    def test_initial_scales_optimism(self):
        fb = RoutingFeedback(initial_scales={ROUTE_ACORN_GAMMA: 0.1})
        assert fb.predict("x", ROUTE_ACORN_GAMMA, 1000.0) == pytest.approx(100.0)
        # Routes without an initial scale stay neutral.
        assert fb.predict("x", ROUTE_PRE_FILTER, 1000.0) == pytest.approx(1000.0)


class TestLifecycle:
    def test_begin_batch_counts_batches_and_keeps_learning(self):
        fb = RoutingFeedback()
        fb.record("sig", ROUTE_PRE_FILTER, 50.0)
        fb.begin_batch()
        fb.begin_batch()
        assert fb.batches_started == 2
        # Learning persists across batches.
        assert fb.predict("sig", ROUTE_PRE_FILTER, 999.0) == pytest.approx(50.0)

    def test_reset_cold_starts(self):
        fb = RoutingFeedback()
        fb.record("sig", ROUTE_PRE_FILTER, 50.0, model_cost=100.0)
        fb.reset()
        assert fb.queries_recorded == 0
        assert fb.cost_scale(ROUTE_PRE_FILTER) == 1.0
        assert fb.predict("sig", ROUTE_PRE_FILTER, 999.0) == pytest.approx(999.0)

    def test_observation_returns_copy(self):
        fb = RoutingFeedback()
        fb.record("sig", ROUTE_PRE_FILTER, 50.0, hops=7, latency_s=0.1)
        obs = fb.observation("sig", ROUTE_PRE_FILTER)
        assert obs.count == 1
        assert obs.total_hops == 7
        obs.count = 99
        assert fb.observation("sig", ROUTE_PRE_FILTER).count == 1

    def test_observation_unseen_is_none(self):
        assert RoutingFeedback().observation("x", ROUTE_PRE_FILTER) is None

    def test_snapshot_shape(self):
        fb = RoutingFeedback()
        fb.begin_batch()
        fb.record("sig", ROUTE_PRE_FILTER, 50.0)
        snap = fb.snapshot()
        assert snap["batches_started"] == 1
        assert snap["queries_recorded"] == 1
        assert f"{ROUTE_PRE_FILTER}::sig" in snap["observations"]


class TestThreadSafety:
    def test_concurrent_records_all_counted(self):
        fb = RoutingFeedback()

        def worker():
            for _ in range(200):
                fb.record("sig", ROUTE_PRE_FILTER, 1.0)

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert fb.queries_recorded == 800
        assert fb.observation("sig", ROUTE_PRE_FILTER).count == 800
