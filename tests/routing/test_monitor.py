"""Unit tests for the walk monitor (the RACORN-1 degeneration trigger)."""

import dataclasses

import pytest

from repro.routing import WalkBudget, WalkMonitor


class TestWalkBudget:
    def test_rejects_nonpositive_hop_budget(self):
        with pytest.raises(ValueError):
            WalkBudget(hop_budget=0)

    def test_rejects_out_of_range_passing_rate(self):
        with pytest.raises(ValueError):
            WalkBudget(hop_budget=10, min_passing_rate=1.5)
        with pytest.raises(ValueError):
            WalkBudget(hop_budget=10, min_passing_rate=-0.1)

    def test_rejects_negative_grace(self):
        with pytest.raises(ValueError):
            WalkBudget(hop_budget=10, grace_hops=-1)

    def test_frozen(self):
        budget = WalkBudget(hop_budget=10)
        with pytest.raises(dataclasses.FrozenInstanceError):
            budget.hop_budget = 20


class TestWalkMonitor:
    def test_rejects_nonpositive_m(self):
        with pytest.raises(ValueError):
            WalkMonitor(WalkBudget(hop_budget=10), m=0)

    def test_healthy_walk_never_aborts(self):
        monitor = WalkMonitor(
            WalkBudget(hop_budget=100, min_passing_rate=0.1, grace_hops=4),
            m=8,
        )
        for _ in range(50):
            assert monitor.observe(6)  # 0.75 passing rate
        assert not monitor.aborted
        assert monitor.abort_reason == ""

    def test_hop_budget_abort(self):
        monitor = WalkMonitor(WalkBudget(hop_budget=5), m=8)
        for _ in range(5):
            assert monitor.observe(8)
        assert monitor.observe(8) is False
        assert monitor.aborted
        assert "hop budget exhausted" in monitor.abort_reason

    def test_passing_rate_abort_after_grace(self):
        monitor = WalkMonitor(
            WalkBudget(hop_budget=100, min_passing_rate=0.5, grace_hops=4),
            m=8,
        )
        # 3 empty hops inside the grace period: no abort yet.
        assert monitor.observe(0)
        assert monitor.observe(0)
        assert monitor.observe(0)
        assert not monitor.aborted
        # 4th hop arms the test: rate 0/32 < 0.5 -> abort.
        assert monitor.observe(0) is False
        assert monitor.aborted
        assert "passing rate collapsed" in monitor.abort_reason

    def test_grace_period_suppresses_early_empty_neighborhoods(self):
        monitor = WalkMonitor(
            WalkBudget(hop_budget=100, min_passing_rate=0.5, grace_hops=10),
            m=8,
        )
        for _ in range(9):
            assert monitor.observe(0)
        assert not monitor.aborted

    def test_passing_rate_starts_at_one(self):
        monitor = WalkMonitor(WalkBudget(hop_budget=10), m=8)
        assert monitor.passing_rate == 1.0

    def test_passing_rate_is_mean_fraction_of_m(self):
        monitor = WalkMonitor(WalkBudget(hop_budget=100), m=10)
        monitor.observe(10)
        monitor.observe(0)
        assert monitor.passing_rate == pytest.approx(0.5)

    def test_observe_after_abort_stays_false(self):
        monitor = WalkMonitor(WalkBudget(hop_budget=1), m=4)
        monitor.observe(4)
        assert monitor.observe(4) is False
        hops_at_abort = monitor.hops
        assert monitor.observe(4) is False
        # No further accounting once aborted.
        assert monitor.hops == hops_at_abort
