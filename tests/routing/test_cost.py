"""Unit tests for the route cost model's shape and guards."""

import pytest

from repro.routing import CostModel
from repro.routing.cost import (
    ALL_ROUTES,
    ROUTE_ACORN_GAMMA,
    ROUTE_ACORN_ONE,
    ROUTE_POST_FILTER,
    ROUTE_PRE_FILTER,
)


@pytest.fixture
def model():
    return CostModel(n=10_000, m=16, gamma=12)


class TestValidation:
    def test_rejects_negative_n(self):
        with pytest.raises(ValueError):
            CostModel(n=-1, m=16, gamma=12)

    def test_rejects_nonpositive_m_gamma(self):
        with pytest.raises(ValueError):
            CostModel(n=10, m=0, gamma=12)
        with pytest.raises(ValueError):
            CostModel(n=10, m=16, gamma=0)

    def test_rejects_nonpositive_scan_unit_cost(self):
        with pytest.raises(ValueError):
            CostModel(n=10, m=16, gamma=12, scan_unit_cost=0.0)

    def test_unknown_route_raises(self, model):
        with pytest.raises(ValueError):
            model.units("teleport", 0.5, 10, 64)
        with pytest.raises(ValueError):
            model.unit_cost("teleport")


class TestShape:
    def test_prefilter_linear_in_selectivity(self, model):
        cheap = model.units(ROUTE_PRE_FILTER, 0.01, 10, 64)
        dear = model.units(ROUTE_PRE_FILTER, 0.5, 10, 64)
        assert dear > cheap
        # s·n + k, discounted by the scan unit cost.
        assert dear == pytest.approx(
            (0.5 * 10_000 + 10) * model.scan_unit_cost
        )

    def test_prefilter_wins_at_low_selectivity(self, model):
        s = 0.001  # far below s_min = 1/12
        units = model.all_units(ALL_ROUTES, s, 10, 64)
        assert min(units, key=units.__getitem__) == ROUTE_PRE_FILTER

    def test_graph_wins_at_high_selectivity(self, model):
        s = 0.9
        pre = model.units(ROUTE_PRE_FILTER, s, 10, 64)
        gamma = model.units(ROUTE_ACORN_GAMMA, s, 10, 64)
        assert gamma < pre

    def test_blowup_below_navigability_threshold(self, model):
        # Below 1/gamma the predicate subgraph degrades; the model must
        # charge the gamma route more per unit of lost selectivity.
        at_threshold = model.units(ROUTE_ACORN_GAMMA, 1 / 12, 10, 64)
        far_below = model.units(ROUTE_ACORN_GAMMA, 1 / 120, 10, 64)
        assert far_below > at_threshold

    def test_acorn_one_blows_up_before_gamma(self):
        # ACORN-1's densification is only M; with gamma > M it degrades
        # at higher selectivity than ACORN-gamma (paper Figure 4c).
        model = CostModel(n=10_000, m=16, gamma=64)
        s = 1 / 32  # below 1/M = 1/16, above 1/gamma = 1/64
        one = model.units(ROUTE_ACORN_ONE, s, 10, 64)
        gamma = model.units(ROUTE_ACORN_GAMMA, s, 10, 64)
        assert one > gamma

    def test_negative_correlation_inflates_graph_not_prefilter(self, model):
        neutral = model.units(ROUTE_ACORN_GAMMA, 0.2, 10, 64, correlation=0.0)
        anti = model.units(ROUTE_ACORN_GAMMA, 0.2, 10, 64, correlation=-0.8)
        assert anti > neutral
        assert model.units(
            ROUTE_PRE_FILTER, 0.2, 10, 64, correlation=-0.8
        ) == model.units(ROUTE_PRE_FILTER, 0.2, 10, 64, correlation=0.0)

    def test_positive_correlation_is_not_a_discount(self, model):
        neutral = model.units(ROUTE_ACORN_GAMMA, 0.2, 10, 64, correlation=0.0)
        friendly = model.units(ROUTE_ACORN_GAMMA, 0.2, 10, 64, correlation=0.8)
        assert friendly == pytest.approx(neutral)

    def test_postfilter_budget_capped_at_n(self, model):
        # k/s would exceed n at tiny selectivity; the budget clamps.
        capped = model.units(ROUTE_POST_FILTER, 1e-4, 10, 64)
        assert capped == pytest.approx(10_000 * 16)

    def test_unit_cost_discounts_only_prefilter(self, model):
        assert model.unit_cost(ROUTE_PRE_FILTER) == model.scan_unit_cost
        for route in (ROUTE_ACORN_GAMMA, ROUTE_ACORN_ONE, ROUTE_POST_FILTER):
            assert model.unit_cost(route) == 1.0

    def test_all_units_covers_requested_routes(self, model):
        units = model.all_units(ALL_ROUTES, 0.3, 10, 64)
        assert tuple(units) == ALL_ROUTES
        assert all(v > 0 for v in units.values())

    def test_empty_index_does_not_divide_by_zero(self):
        model = CostModel(n=0, m=16, gamma=12)
        for route in ALL_ROUTES:
            assert model.units(route, 0.5, 10, 64) >= 0.0


class TestQuantizedDiscount:
    def test_rejects_nonpositive_quant_unit_cost(self):
        with pytest.raises(ValueError, match="quant_unit_cost"):
            CostModel(n=100, m=8, gamma=4, quant_unit_cost=0.0)

    def test_rejects_unknown_quantized_route(self):
        with pytest.raises(ValueError):
            CostModel(n=100, m=8, gamma=4, quantized_routes=("warp",))
        model = CostModel(n=100, m=8, gamma=4)
        with pytest.raises(ValueError):
            model.mark_quantized("warp")

    def test_marked_route_is_discounted(self, model):
        base = model.units(ROUTE_ACORN_GAMMA, selectivity=0.5, ef_search=64, k=10)
        model.mark_quantized(ROUTE_ACORN_GAMMA)
        discounted = model.units(ROUTE_ACORN_GAMMA, selectivity=0.5,
                                 ef_search=64, k=10)
        assert discounted == pytest.approx(base * model.quant_unit_cost)
        # Unmarked routes keep their full price.
        assert model.units(ROUTE_ACORN_ONE, selectivity=0.5, ef_search=64, k=10) \
            == pytest.approx(
                CostModel(n=10_000, m=16, gamma=12).units(
                    ROUTE_ACORN_ONE, selectivity=0.5, ef_search=64, k=10)
            )

    def test_prefilter_never_discounted(self, model):
        base = model.units(ROUTE_PRE_FILTER, selectivity=0.5, ef_search=64, k=10)
        model.mark_quantized(*ALL_ROUTES)
        assert model.units(ROUTE_PRE_FILTER, selectivity=0.5, ef_search=64, k=10) \
            == pytest.approx(base)

    def test_observed_units_blends_exact_and_quantized(self, model):
        units = model.observed_units(ROUTE_ACORN_GAMMA, 100, 400)
        expected = (100 * model.unit_cost(ROUTE_ACORN_GAMMA)
                    + 400 * model.quant_unit_cost)
        assert units == pytest.approx(expected)
        # No quantized work → same as the exact-only bill.
        assert model.observed_units(ROUTE_ACORN_GAMMA, 100) == pytest.approx(
            100 * model.unit_cost(ROUTE_ACORN_GAMMA)
        )
