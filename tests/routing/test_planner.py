"""Routing-correctness harness for the cost-based planner.

Pins the PR's core contracts:

- ``policy="static"`` is byte-identical to the legacy
  :class:`~repro.core.router.HybridSearcher` (routes, results, and
  counters);
- the adaptive planner's routing decisions are deterministic
  run-to-run;
- a monitored walk that aborts falls back to results identical to the
  pre-filter baseline;
- routing telemetry threads through the batch engine into
  ``QueryStats`` and ``BatchResult.summary()``;
- the sharded index's per-shard routing preserves results and
  surfaces aggregated route telemetry.
"""

import numpy as np
import pytest

from repro.baselines.prefilter import PreFilterSearcher
from repro.core import HybridSearcher
from repro.engine import QueryBatch, SearchEngine
from repro.predicates import Equals, OneOf
from repro.routing import (
    RoutePlanner,
    RoutedSearchResult,
    RoutingFeedback,
    WalkBudget,
)
from repro.routing.cost import ALL_ROUTES, ROUTE_PRE_FILTER


def _query_stream(rng, n_queries, dim=16):
    return [rng.standard_normal(dim).astype(np.float32)
            for _ in range(n_queries)]


def _predicate_stream(n_queries):
    preds = []
    for i in range(n_queries):
        if i % 2:
            preds.append(Equals("label", i % 6))
        else:
            preds.append(OneOf("label", ((i % 6), (i + 1) % 6, (i + 3) % 6)))
    return preds


class TestConstruction:
    def test_rejects_unknown_policy(self, acorn_index):
        with pytest.raises(ValueError):
            RoutePlanner(acorn_index, policy="greedy")

    def test_rejects_bad_walk_budget(self, acorn_index):
        with pytest.raises(TypeError):
            RoutePlanner(acorn_index, walk_budget=42)

    def test_routes_follow_availability(self, acorn_index, acorn_one_index):
        base = RoutePlanner(acorn_index)
        assert base.routes() == ("pre-filter", "acorn-gamma")
        full = RoutePlanner(acorn_index, acorn_one=acorn_one_index,
                            postfilter=object())
        assert full.routes() == ALL_ROUTES

    def test_rejects_nonpositive_k(self, acorn_index):
        with pytest.raises(ValueError):
            RoutePlanner(acorn_index).search(
                np.zeros(16, dtype=np.float32), Equals("label", 0), 0
            )


class TestStaticByteCompat:
    def test_matches_hybrid_searcher_exactly(self, acorn_index):
        hybrid = HybridSearcher(acorn_index)
        static = RoutePlanner(acorn_index, policy="static")
        rng = np.random.default_rng(11)
        for query, pred in zip(_query_stream(rng, 24),
                               _predicate_stream(24)):
            a = hybrid.search(query, pred, 10, ef_search=48)
            b = static.search(query, pred, 10, ef_search=48)
            assert np.array_equal(a.ids, b.ids)
            assert np.allclose(a.distances, b.distances)
            assert a.distance_computations == b.distance_computations
            assert a.hops == b.hops

    def test_static_route_matches_threshold_rule(self, acorn_index):
        static = RoutePlanner(acorn_index, policy="static")
        rng = np.random.default_rng(12)
        query = rng.standard_normal(16).astype(np.float32)
        for pred in _predicate_stream(12):
            result = static.search(query, pred, 5)
            s = pred.compile(acorn_index.table).selectivity
            expected = ("pre-filter" if s < acorn_index.params.s_min
                        else "acorn-gamma")
            assert result.route_chosen == expected
            assert "static" in result.route_reason

    def test_static_never_uses_monitor(self, acorn_index):
        # Static must not attach a monitor (byte-compat with the legacy
        # router includes never aborting a walk).
        static = RoutePlanner(
            acorn_index, policy="static",
            walk_budget=WalkBudget(hop_budget=1),
        )
        rng = np.random.default_rng(13)
        query = rng.standard_normal(16).astype(np.float32)
        result = static.search(query, OneOf("label", (0, 1, 2, 3)), 5)
        assert result.fallback_triggered is False


class TestAdaptive:
    def test_exhaustive_ef_matches_ground_truth(self, acorn_index):
        """At ef >= n every route is exhaustive over the passing set, so
        the planner must return exactly the brute-force top-k whatever
        route it picks."""
        n = len(acorn_index)
        pre = PreFilterSearcher(
            acorn_index.store.vectors, acorn_index.table,
            metric=acorn_index.metric,
        )
        planner = RoutePlanner(acorn_index, policy="adaptive")
        rng = np.random.default_rng(21)
        for query, pred in zip(_query_stream(rng, 16),
                               _predicate_stream(16)):
            compiled = pred.compile(acorn_index.table)
            expected = pre.search(query, compiled, 10)
            got = planner.search(query, pred, 10, ef_search=n)
            assert np.array_equal(got.ids, expected.ids)
            assert np.allclose(got.distances, expected.distances)

    def test_decisions_deterministic_across_fresh_planners(
        self, acorn_index
    ):
        rng = np.random.default_rng(22)
        queries = _query_stream(rng, 20)
        preds = _predicate_stream(20)

        def decisions():
            planner = RoutePlanner(acorn_index, policy="adaptive")
            return [
                planner.search(q, p, 10, ef_search=32).route_chosen
                for q, p in zip(queries, preds)
            ]

        assert decisions() == decisions()

    def test_returns_routed_result_with_telemetry(self, acorn_index):
        planner = RoutePlanner(acorn_index, policy="adaptive")
        result = planner.search(
            np.zeros(16, dtype=np.float32), Equals("label", 2), 5
        )
        assert isinstance(result, RoutedSearchResult)
        assert result.route_chosen in ALL_ROUTES
        assert "adaptive" in result.route_reason
        # Exact estimator: zero estimation error.
        assert result.estimator_error == pytest.approx(0.0)
        assert result.est_selectivity == pytest.approx(
            Equals("label", 2).compile(acorn_index.table).selectivity
        )

    def test_feedback_learns_and_redirects(self, acorn_index):
        """Once a route's observed cost is recorded, a signature whose
        model guess was wrong must flip to the truly-cheaper route."""
        feedback = RoutingFeedback()
        planner = RoutePlanner(
            acorn_index, policy="adaptive", feedback=feedback,
        )
        rng = np.random.default_rng(23)
        query = rng.standard_normal(16).astype(np.float32)
        pred = OneOf("label", (0, 1, 2, 3, 4))
        first = planner.search(query, pred, 10, ef_search=64)
        second = planner.search(query, pred, 10, ef_search=64)
        sig = pred.fingerprint()
        # The attempted route was billed.
        assert feedback.observation(sig, first.route_chosen) is not None
        # With the observation in place, the second decision predicts
        # from observed cost; whatever it picks must be the argmin of
        # the recorded predictions.
        plan = planner.last_plan
        assert second.route_chosen == min(
            plan.predicted_costs, key=plan.predicted_costs.__getitem__
        )

    def test_selectivity_hint_overrides_estimator(self, acorn_index):
        planner = RoutePlanner(acorn_index, policy="adaptive")
        query = np.zeros(16, dtype=np.float32)
        pred = Equals("label", 1)
        result = planner.search(query, pred, 5, selectivity_hint=0.9)
        assert result.est_selectivity == pytest.approx(0.9)
        exact = pred.compile(acorn_index.table).selectivity
        assert result.estimator_error == pytest.approx(0.9 - exact)

    def test_correlation_signal_charges_no_search_counters(
        self, acorn_index
    ):
        """The correlation probe's distances are planning overhead, not
        search work — the result's counters must not include them."""
        plain = RoutePlanner(acorn_index, policy="adaptive")
        probing = RoutePlanner(
            acorn_index, policy="adaptive", correlation_samples=16,
        )
        query = np.zeros(16, dtype=np.float32)
        pred = Equals("label", 3)
        a = plain.search(query, pred, 5)
        b = probing.search(query, pred, 5)
        if a.route_chosen == b.route_chosen:
            assert a.distance_computations == b.distance_computations


class TestFallback:
    def _fallback_planner(self, acorn_index):
        # Optimistic graph scale forces a graph attempt; a one-hop
        # budget guarantees the walk aborts.
        return RoutePlanner(
            acorn_index,
            policy="adaptive",
            feedback=RoutingFeedback(
                initial_scales={"acorn-gamma": 1e-6}
            ),
            walk_budget=WalkBudget(hop_budget=1),
        )

    def test_fallback_identical_to_prefilter(self, acorn_index):
        planner = self._fallback_planner(acorn_index)
        pre = PreFilterSearcher(
            acorn_index.store.vectors, acorn_index.table,
            metric=acorn_index.metric,
        )
        rng = np.random.default_rng(31)
        triggered = 0
        for query, pred in zip(_query_stream(rng, 12),
                               _predicate_stream(12)):
            result = planner.search(query, pred, 10, ef_search=32)
            if result.fallback_triggered:
                triggered += 1
                expected = pre.search(
                    query, pred.compile(acorn_index.table), 10
                )
                assert np.array_equal(result.ids, expected.ids)
                assert np.allclose(result.distances, expected.distances)
                assert result.route_chosen == ROUTE_PRE_FILTER
                assert "fallback from" in result.route_reason
        assert triggered > 0

    def test_fallback_bills_walk_cost_to_query(self, acorn_index):
        planner = self._fallback_planner(acorn_index)
        pre = PreFilterSearcher(
            acorn_index.store.vectors, acorn_index.table,
            metric=acorn_index.metric,
        )
        rng = np.random.default_rng(32)
        query = rng.standard_normal(16).astype(np.float32)
        pred = OneOf("label", (0, 1, 2))
        result = planner.search(query, pred, 10, ef_search=32)
        assert result.fallback_triggered
        scan = pre.search(query, pred.compile(acorn_index.table), 10)
        # Total includes the aborted walk on top of the fallback scan.
        assert result.distance_computations > scan.distance_computations

    def test_walk_budget_none_disables_fallback(self, acorn_index):
        planner = RoutePlanner(
            acorn_index,
            policy="adaptive",
            feedback=RoutingFeedback(
                initial_scales={"acorn-gamma": 1e-6}
            ),
            walk_budget=None,
        )
        rng = np.random.default_rng(33)
        for query, pred in zip(_query_stream(rng, 8),
                               _predicate_stream(8)):
            assert not planner.search(query, pred, 5).fallback_triggered


class TestEngineIntegration:
    def test_stats_carry_routing_fields(self, acorn_index):
        planner = RoutePlanner(acorn_index, policy="adaptive")
        rng = np.random.default_rng(41)
        queries = np.stack(_query_stream(rng, 12))
        preds = _predicate_stream(12)
        batch = QueryBatch.build(queries, preds, k=5, ef_search=32)
        with SearchEngine(planner, num_workers=1) as engine:
            outcome = engine.search_batch(batch)
        assert all(s.route_chosen in ALL_ROUTES for s in outcome.stats)
        assert all(s.route_reason for s in outcome.stats)
        summary = outcome.summary()
        assert sum(summary["route_counts"].values()) == len(batch)
        assert summary["fallbacks_triggered"] == sum(
            1 for s in outcome.stats if s.fallback_triggered
        )

    def test_engine_calls_begin_batch(self, acorn_index):
        planner = RoutePlanner(acorn_index, policy="adaptive")
        rng = np.random.default_rng(42)
        queries = np.stack(_query_stream(rng, 4))
        batch = QueryBatch.build(
            queries, _predicate_stream(4), k=5, ef_search=32
        )
        with SearchEngine(planner, num_workers=1) as engine:
            engine.search_batch(batch)
            engine.search_batch(batch)
        assert planner.feedback.batches_started == 2

    def test_unrouted_searcher_stats_stay_empty(self, acorn_index):
        rng = np.random.default_rng(43)
        queries = np.stack(_query_stream(rng, 4))
        batch = QueryBatch.build(
            queries, _predicate_stream(4), k=5, ef_search=32
        )
        with SearchEngine(acorn_index, num_workers=1) as engine:
            outcome = engine.search_batch(batch)
        assert all(s.route_chosen == "" for s in outcome.stats)
        assert outcome.summary()["route_counts"] == {}


class TestPlanExplain:
    def test_plan_without_executing(self, acorn_index):
        planner = RoutePlanner(acorn_index, policy="adaptive")
        plan = planner.plan(Equals("label", 0), k=10)
        assert plan.route in planner.routes()
        assert set(plan.predicted_costs) == set(planner.routes())

    def test_static_plan_has_no_costs(self, acorn_index):
        planner = RoutePlanner(acorn_index, policy="static")
        plan = planner.plan(Equals("label", 0), k=10)
        assert plan.predicted_costs == {}
        assert plan.policy == "static"


class TestShardedRouting:
    @pytest.fixture(scope="class")
    def sharded_pair(self, small_vectors, labeled_table):
        from repro.core.params import AcornParams
        from repro.shard import HashPartitioner, ShardedAcornIndex

        params = AcornParams(m=8, gamma=6, m_beta=16, ef_construction=32)
        kwargs = dict(
            partitioner=HashPartitioner(n_shards=3),
            params=params, seed=2,
        )
        plain = ShardedAcornIndex.build(
            small_vectors[0], labeled_table, **kwargs
        )
        routed = ShardedAcornIndex.build(
            small_vectors[0], labeled_table, route_policy="adaptive",
            **kwargs
        )
        return plain, routed

    def test_routed_results_match_plain_at_exhaustive_ef(
        self, sharded_pair, small_vectors
    ):
        plain, routed = sharded_pair
        n = len(plain)
        rng = np.random.default_rng(51)
        for query, pred in zip(_query_stream(rng, 8),
                               _predicate_stream(8)):
            a = plain.search(query, pred, 10, ef_search=n)
            b = routed.search(query, pred, 10, ef_search=n)
            assert np.array_equal(a.ids, b.ids)
            assert np.allclose(a.distances, b.distances)

    def test_route_telemetry_aggregates(self, sharded_pair):
        _, routed = sharded_pair
        result = routed.search(
            np.zeros(16, dtype=np.float32), Equals("label", 1), 5,
        )
        assert result.route_chosen in ALL_ROUTES
        assert result.route_reason.startswith("shards:")
        probed_records = [
            r for r in result.per_shard if not r["pruned"]
        ]
        assert all("route_chosen" in r for r in probed_records)

    def test_plain_sharded_keeps_empty_route_fields(self, sharded_pair):
        plain, _ = sharded_pair
        result = plain.search(
            np.zeros(16, dtype=np.float32), Equals("label", 1), 5,
        )
        assert result.route_chosen == ""
        assert result.fallback_triggered is False
        assert all(
            "route_chosen" not in r for r in result.per_shard
        )

    def test_begin_batch_reaches_shard_planners(self, sharded_pair):
        _, routed = sharded_pair
        before = [p.feedback.batches_started
                  for p in routed._shard_planners]
        routed.begin_batch()
        after = [p.feedback.batches_started
                 for p in routed._shard_planners]
        assert after == [b + 1 for b in before]

    def test_rejects_unknown_route_policy(self, small_vectors,
                                          labeled_table):
        from repro.core.params import AcornParams
        from repro.shard import HashPartitioner, ShardedAcornIndex

        with pytest.raises(ValueError):
            ShardedAcornIndex.build(
                small_vectors[0], labeled_table,
                partitioner=HashPartitioner(n_shards=2),
                params=AcornParams(m=8, gamma=6, m_beta=16,
                                   ef_construction=32),
                seed=2, route_policy="wat",
            )


class TestQuantizedRouting:
    """The planner's cost model knows when a route runs on codes."""

    @pytest.fixture
    def quant_world(self):
        gen = np.random.default_rng(21)
        vectors = gen.standard_normal((300, 16)).astype(np.float32)
        from repro.attributes import AttributeTable

        table = AttributeTable(300)
        table.add_int_column("label", gen.integers(0, 3, size=300))
        from repro.core import AcornIndex, AcornParams

        params = AcornParams(m=6, gamma=6, m_beta=12, ef_construction=24)
        index = AcornIndex.build(vectors, table, params=params, seed=0,
                                 quantization="sq8")
        return vectors, table, index

    def test_default_cost_model_marks_quantized_routes(self, quant_world,
                                                       acorn_index):
        _, _, index = quant_world
        from repro.routing.cost import ROUTE_ACORN_GAMMA

        planner = RoutePlanner(index)
        assert ROUTE_ACORN_GAMMA in planner.cost_model.quantized_routes
        # An unquantized index keeps the undiscounted model.
        plain = RoutePlanner(acorn_index)
        assert not plain.cost_model.quantized_routes

    def test_quantized_counters_thread_through(self, quant_world):
        vectors, _, index = quant_world
        planner = RoutePlanner(index, policy="static")
        seen_quantized = False
        for i in range(10):
            res = planner.search(vectors[i], Equals("label", i % 3), 5,
                                 ef_search=32)
            assert isinstance(res, RoutedSearchResult)
            if res.route_chosen != ROUTE_PRE_FILTER:
                assert res.quantized_distances > 0
                assert res.rerank_distances > 0
                assert res.rerank_factor > 0
                seen_quantized = True
        assert seen_quantized

    def test_quantized_counters_reach_engine_summary(self, quant_world):
        vectors, _, index = quant_world
        planner = RoutePlanner(index, policy="static")
        batch = QueryBatch.build(
            np.stack([vectors[i] for i in range(8)]),
            [Equals("label", i % 3) for i in range(8)],
            k=5, ef_search=32,
        )
        with SearchEngine(planner, num_workers=1) as engine:
            outcome = engine.search_batch(batch)
        summary = outcome.summary()
        assert summary["total_quantized_distances"] > 0
        assert summary["total_rerank_distances"] > 0
        assert any(s.quantized_distances > 0 for s in outcome.stats)
