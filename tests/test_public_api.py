"""Contract tests for the public API surface."""

import numpy as np
import repro


class TestExports:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"__all__ exports missing {name}"

    def test_version_string(self):
        parts = repro.__version__.split(".")
        assert len(parts) == 3
        assert all(p.isdigit() for p in parts)

    def test_key_classes_importable(self):
        from repro import (
            AcornIndex,
            AcornOneIndex,
            AcornParams,
            AttributeTable,
            FlatAcornIndex,
            HnswIndex,
            HybridSearcher,
            load_index,
            save_index,
        )

        assert AcornIndex and AcornOneIndex and FlatAcornIndex
        assert AcornParams and AttributeTable and HnswIndex
        assert HybridSearcher and load_index and save_index

    def test_baselines_namespace(self):
        from repro import baselines

        for name in baselines.__all__:
            assert hasattr(baselines, name)

    def test_predicates_namespace(self):
        from repro import predicates

        for name in predicates.__all__:
            assert hasattr(predicates, name)

    def test_serving_namespace(self):
        from repro import serving

        for name in serving.__all__:
            assert hasattr(serving, name), (
                f"repro.serving.__all__ exports missing {name}"
            )

    def test_lifecycle_namespace(self):
        from repro import lifecycle

        for name in lifecycle.__all__:
            assert hasattr(lifecycle, name), (
                f"repro.lifecycle.__all__ exports missing {name}"
            )

    def test_lifecycle_exports_pinned(self):
        """The lifecycle surface the docs and serving layer rely on."""
        from repro import lifecycle

        expected = {
            "LifecycleIndex", "LifecycleConfig", "EpochSnapshot",
            "BackgroundCompactor", "CompactorFaultPlan",
            "ShardedLifecycleIndex", "DeltaJournal",
            "save_lifecycle", "load_lifecycle",
        }
        missing = expected - set(dir(lifecycle))
        assert not missing, f"repro.lifecycle missing exports: {missing}"
        # The headline names are also re-exported at top level.
        import repro

        for name in ("LifecycleIndex", "LifecycleConfig",
                     "EpochSnapshot", "BackgroundCompactor",
                     "ShardedLifecycleIndex"):
            assert hasattr(repro, name)
            assert name in repro.__all__

    def test_serving_exports_pinned(self):
        """The serving surface other layers and docs rely on."""
        from repro import serving

        expected = {
            "AcornService", "ServingConfig", "ServedResponse",
            "TenantQuota", "TenantRegistry", "TokenBucket",
            "ArrivalSchedule", "Arrival", "generate_arrivals",
            "replay", "replay_realtime", "summarize_load",
        }
        missing = expected - set(dir(serving))
        assert not missing, f"repro.serving missing exports: {missing}"
        # The headline names are also re-exported at top level.
        import repro

        for name in ("AcornService", "ServingConfig", "ServedResponse",
                     "TenantQuota", "ArrivalSchedule"):
            assert name in repro.__all__
            assert hasattr(repro, name)


class TestDeterminism:
    """Identical seeds must give identical indexes and results —
    the property every benchmark and persistence test leans on."""

    def _build(self):
        from repro import AcornIndex, AcornParams, AttributeTable, Equals

        gen = np.random.default_rng(99)
        vectors = gen.standard_normal((150, 8)).astype(np.float32)
        table = AttributeTable(150)
        table.add_int_column("label", gen.integers(0, 3, size=150))
        index = AcornIndex.build(
            vectors, table,
            params=AcornParams(m=6, gamma=4, m_beta=8, ef_construction=24),
            seed=7,
        )
        result = index.search(vectors[0], Equals("label", 1), 5, ef_search=32)
        return index, result

    def test_builds_identical(self):
        index_a, result_a = self._build()
        index_b, result_b = self._build()
        assert index_a.graph.entry_point == index_b.graph.entry_point
        for level in range(index_a.graph.max_level + 1):
            for node in index_a.graph.nodes_at_level(level):
                assert index_a.graph.neighbors(node, level) == (
                    index_b.graph.neighbors(node, level)
                )
        np.testing.assert_array_equal(result_a.ids, result_b.ids)
        assert result_a.distance_computations == result_b.distance_computations

    def test_parallel_namespace(self):
        from repro import parallel

        for name in parallel.__all__:
            assert hasattr(parallel, name), (
                f"repro.parallel.__all__ exports missing {name}"
            )
