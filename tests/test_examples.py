"""Smoke tests: every example imports cleanly and is main-guarded.

Full example runs take tens of seconds; importing them (their entry
points are ``if __name__ == "__main__"``-guarded) catches syntax
errors, missing imports, and API drift cheaply.
"""

import importlib.util
import pathlib

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).parent.parent / "examples"
EXAMPLE_FILES = sorted(EXAMPLES_DIR.glob("*.py"))


def test_examples_exist():
    assert len(EXAMPLE_FILES) >= 5


@pytest.mark.parametrize("path", EXAMPLE_FILES, ids=lambda p: p.stem)
def test_example_imports_and_is_guarded(path):
    source = path.read_text()
    assert 'if __name__ == "__main__":' in source, (
        f"{path.name} must guard its entry point"
    )
    spec = importlib.util.spec_from_file_location(f"example_{path.stem}", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)  # must not run main()
    assert callable(getattr(module, "main", None)), (
        f"{path.name} must expose a main() function"
    )


@pytest.mark.parametrize("path", EXAMPLE_FILES, ids=lambda p: p.stem)
def test_example_has_module_docstring(path):
    source = path.read_text()
    assert source.lstrip().startswith('"""'), (
        f"{path.name} needs a usage docstring"
    )
