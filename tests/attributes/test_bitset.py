"""Unit tests for the packed bitset."""

import numpy as np
import pytest

from repro.attributes.bitset import Bitset


class TestConstruction:
    def test_empty(self):
        bits = Bitset(10)
        assert bits.count() == 0
        assert bits.size == 10

    def test_rejects_negative_size(self):
        with pytest.raises(ValueError):
            Bitset(-1)

    def test_from_bool_array_roundtrip(self):
        mask = np.array([True, False, True, True, False, False, True])
        bits = Bitset.from_bool_array(mask)
        np.testing.assert_array_equal(bits.to_bool_array(), mask)

    def test_from_indices(self):
        bits = Bitset.from_indices([0, 3, 9], size=10)
        assert bits.count() == 3
        np.testing.assert_array_equal(bits.indices(), [0, 3, 9])

    def test_from_indices_out_of_range(self):
        with pytest.raises(IndexError):
            Bitset.from_indices([10], size=10)

    def test_zero_size(self):
        bits = Bitset(0)
        assert bits.count() == 0
        assert bits.to_bool_array().shape == (0,)


class TestGetSet:
    def test_set_and_get(self):
        bits = Bitset(16)
        bits.set(5)
        assert bits.get(5)
        assert not bits.get(6)

    def test_clear(self):
        bits = Bitset(16)
        bits.set(5)
        bits.set(5, False)
        assert not bits.get(5)

    def test_bounds_checked(self):
        bits = Bitset(8)
        with pytest.raises(IndexError):
            bits.get(8)
        with pytest.raises(IndexError):
            bits.set(-1)


class TestAlgebra:
    def test_and(self):
        a = Bitset.from_indices([1, 2, 3], 8)
        b = Bitset.from_indices([2, 3, 4], 8)
        np.testing.assert_array_equal((a & b).indices(), [2, 3])

    def test_or(self):
        a = Bitset.from_indices([1, 2], 8)
        b = Bitset.from_indices([2, 4], 8)
        np.testing.assert_array_equal((a | b).indices(), [1, 2, 4])

    def test_invert_clears_padding(self):
        # size 10 => 6 padding bits in the last byte must stay clear.
        a = Bitset.from_indices([0, 1], 10)
        inverted = ~a
        assert inverted.count() == 8
        assert inverted.indices().max() == 9

    def test_size_mismatch_raises(self):
        with pytest.raises(ValueError, match="sizes differ"):
            Bitset(8) & Bitset(9)

    def test_equality(self):
        a = Bitset.from_indices([1, 5], 8)
        b = Bitset.from_indices([1, 5], 8)
        assert a == b
        b.set(0)
        assert a != b

    def test_repr(self):
        assert "set=2" in repr(Bitset.from_indices([0, 1], 8))
