"""Unit tests for the columnar attribute table."""

import numpy as np
import pytest

from repro.attributes.table import AttributeTable, ColumnKind


@pytest.fixture
def table():
    t = AttributeTable(4)
    t.add_int_column("year", [1999, 2005, 2020, 1980])
    t.add_float_column("price", [9.5, 20.0, 3.25, 100.0])
    t.add_string_column("caption", ["a dog", "a cat", "two dogs", "a bird"])
    t.add_keywords_column("tags", [["x", "y"], ["y"], [], ["x", "z", "y"]])
    return t


class TestColumns:
    def test_kinds(self, table):
        assert table.column_kind("year") is ColumnKind.INT
        assert table.column_kind("price") is ColumnKind.FLOAT
        assert table.column_kind("caption") is ColumnKind.STRING
        assert table.column_kind("tags") is ColumnKind.KEYWORDS

    def test_column_names_ordered(self, table):
        assert table.column_names == ["year", "price", "caption", "tags"]

    def test_duplicate_name_rejected(self, table):
        with pytest.raises(ValueError, match="already exists"):
            table.add_int_column("year", [1, 2, 3, 4])

    def test_length_mismatch_rejected(self, table):
        with pytest.raises(ValueError, match="rows"):
            table.add_int_column("bad", [1, 2])

    def test_missing_column_keyerror(self, table):
        with pytest.raises(KeyError, match="available"):
            table.column("nope")

    def test_has_column(self, table):
        assert table.has_column("year")
        assert not table.has_column("nope")

    def test_negative_rows_rejected(self):
        with pytest.raises(ValueError):
            AttributeTable(-1)


class TestRow:
    def test_row_materializes_tuple(self, table):
        row = table.row(0)
        assert row["year"] == 1999
        assert row["caption"] == "a dog"
        assert row["tags"] == ["x", "y"]

    def test_row_empty_keywords(self, table):
        assert table.row(2)["tags"] == []

    def test_row_bounds(self, table):
        with pytest.raises(IndexError):
            table.row(4)


class TestKeywordColumn:
    def test_rows_containing(self, table):
        col = table.column("tags")
        np.testing.assert_array_equal(np.sort(col.rows_containing("y")), [0, 1, 3])

    def test_rows_containing_unknown(self, table):
        col = table.column("tags")
        assert col.rows_containing("q").size == 0

    def test_mask_containing_any(self, table):
        col = table.column("tags")
        np.testing.assert_array_equal(
            col.mask_containing_any(["z", "q"]), [False, False, False, True]
        )
