"""Unit tests for the keyword inverted index."""

import numpy as np
import pytest

from repro.attributes.inverted import InvertedIndex
from repro.attributes.table import AttributeTable


@pytest.fixture
def index():
    table = AttributeTable(5)
    table.add_keywords_column(
        "areas",
        [["cardio"], ["cardio", "onco"], ["onco"], [], ["cardio", "neuro"]],
    )
    table.add_int_column("year", [1, 2, 3, 4, 5])
    return InvertedIndex(table, "areas")


class TestPostings:
    def test_postings_sorted(self, index):
        np.testing.assert_array_equal(index.postings("cardio"), [0, 1, 4])

    def test_unknown_keyword_empty(self, index):
        assert index.postings("derm").size == 0

    def test_document_frequency(self, index):
        assert index.document_frequency("onco") == 2
        assert index.document_frequency("derm") == 0

    def test_vocabulary(self, index):
        assert set(index.vocabulary) == {"cardio", "onco", "neuro"}


class TestMatching:
    def test_matching_any(self, index):
        got = index.matching_any(["onco", "neuro"])
        np.testing.assert_array_equal(got.indices(), [1, 2, 4])

    def test_matching_all(self, index):
        got = index.matching_all(["cardio", "onco"])
        np.testing.assert_array_equal(got.indices(), [1])

    def test_matching_all_empty_keywords_is_universe(self, index):
        assert index.matching_all([]).count() == 5

    def test_requires_keywords_column(self):
        table = AttributeTable(2)
        table.add_int_column("year", [1, 2])
        with pytest.raises(ValueError, match="keywords column"):
            InvertedIndex(table, "year")
