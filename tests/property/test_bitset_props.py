"""Property-based tests for the packed bitset."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.attributes.bitset import Bitset

bool_arrays = st.integers(min_value=0, max_value=200).flatmap(
    lambda n: st.lists(st.booleans(), min_size=n, max_size=n)
)


@given(bool_arrays)
def test_roundtrip(bits):
    mask = np.asarray(bits, dtype=bool)
    assert np.array_equal(Bitset.from_bool_array(mask).to_bool_array(), mask)


@given(bool_arrays)
def test_count_matches_sum(bits):
    mask = np.asarray(bits, dtype=bool)
    assert Bitset.from_bool_array(mask).count() == int(mask.sum())


@given(bool_arrays)
def test_double_invert_identity(bits):
    mask = np.asarray(bits, dtype=bool)
    bitset = Bitset.from_bool_array(mask)
    assert ~~bitset == bitset


@given(bool_arrays, st.randoms())
def test_and_or_de_morgan(bits, rng):
    mask_a = np.asarray(bits, dtype=bool)
    mask_b = np.asarray([rng.random() < 0.5 for _ in bits], dtype=bool)
    a = Bitset.from_bool_array(mask_a)
    b = Bitset.from_bool_array(mask_b)
    assert ~(a & b) == (~a | ~b)
    assert ~(a | b) == (~a & ~b)


@given(bool_arrays)
def test_invert_partitions_universe(bits):
    mask = np.asarray(bits, dtype=bool)
    bitset = Bitset.from_bool_array(mask)
    assert bitset.count() + (~bitset).count() == bitset.size
    assert (bitset & ~bitset).count() == 0


@settings(max_examples=30)
@given(st.sets(st.integers(min_value=0, max_value=99), max_size=40))
def test_from_indices_roundtrip(indices):
    bitset = Bitset.from_indices(indices, size=100)
    assert set(bitset.indices().tolist()) == indices
