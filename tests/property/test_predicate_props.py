"""Property-based tests for the predicate algebra."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.attributes.table import AttributeTable
from repro.predicates import And, Between, Equals, Not, OneOf, Or, TruePredicate


@pytest.fixture(scope="module")
def table():
    gen = np.random.default_rng(42)
    t = AttributeTable(300)
    t.add_int_column("a", gen.integers(0, 10, size=300))
    t.add_int_column("b", gen.integers(0, 5, size=300))
    return t


atoms = st.one_of(
    st.integers(0, 9).map(lambda v: Equals("a", v)),
    st.integers(0, 4).map(lambda v: Equals("b", v)),
    st.tuples(st.integers(0, 9), st.integers(0, 9)).map(
        lambda p: Between("a", min(p), max(p))
    ),
    st.lists(st.integers(0, 9), min_size=1, max_size=3).map(
        lambda vs: OneOf("a", vs)
    ),
)


def predicates(depth=2):
    if depth == 0:
        return atoms
    sub = predicates(depth - 1)
    return st.one_of(
        atoms,
        st.tuples(sub, sub).map(lambda p: And(*p)),
        st.tuples(sub, sub).map(lambda p: Or(*p)),
        sub.map(Not),
    )


@settings(max_examples=60)
@given(predicates())
def test_matches_agrees_with_mask(table, predicate):
    mask = predicate.mask(table)
    sample = [0, 7, 55, 123, 299]
    for i in sample:
        assert predicate.matches(table, i) == bool(mask[i])


@settings(max_examples=60)
@given(predicates())
def test_mask_idempotent(table, predicate):
    np.testing.assert_array_equal(predicate.mask(table), predicate.mask(table))


@settings(max_examples=60)
@given(predicates())
def test_excluded_middle(table, predicate):
    union = Or(predicate, Not(predicate)).mask(table)
    assert union.all()


@settings(max_examples=60)
@given(predicates(), predicates())
def test_and_is_intersection(table, p, q):
    np.testing.assert_array_equal(
        And(p, q).mask(table), p.mask(table) & q.mask(table)
    )


@settings(max_examples=60)
@given(predicates())
def test_compiled_selectivity_consistent(table, predicate):
    compiled = predicate.compile(table)
    assert compiled.cardinality == int(predicate.mask(table).sum())
    assert compiled.selectivity == pytest.approx(compiled.cardinality / 300)
    assert compiled.passes_many(compiled.passing_ids).all()


@settings(max_examples=30)
@given(predicates())
def test_and_with_true_is_identity(table, predicate):
    np.testing.assert_array_equal(
        And(predicate, TruePredicate()).mask(table), predicate.mask(table)
    )
