"""Property-based tests for the attribute table and estimators."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.attributes.table import AttributeTable
from repro.predicates import Between, Equals
from repro.predicates.selectivity import HistogramSelectivityEstimator

keyword_pool = ["a", "b", "c", "d", "e"]


@st.composite
def random_table(draw):
    n = draw(st.integers(1, 60))
    table = AttributeTable(n)
    ints = draw(st.lists(st.integers(0, 9), min_size=n, max_size=n))
    table.add_int_column("num", ints)
    strings = draw(
        st.lists(st.sampled_from(["dog", "cat", "owl"]), min_size=n, max_size=n)
    )
    table.add_string_column("word", strings)
    lists = draw(
        st.lists(
            st.lists(st.sampled_from(keyword_pool), max_size=3, unique=True),
            min_size=n,
            max_size=n,
        )
    )
    table.add_keywords_column("tags", lists)
    return table, ints, strings, lists


@settings(max_examples=40)
@given(random_table())
def test_row_view_agrees_with_columns(world):
    table, ints, strings, lists = world
    for i in (0, len(table) // 2, len(table) - 1):
        row = table.row(i)
        assert row["num"] == ints[i]
        assert row["word"] == strings[i]
        assert row["tags"] == lists[i]


@settings(max_examples=40)
@given(random_table(), st.integers(0, 9))
def test_equals_mask_counts(world, value):
    table, ints, _, _ = world
    mask = Equals("num", value).mask(table)
    assert mask.sum() == sum(1 for v in ints if v == value)


@settings(max_examples=40)
@given(random_table(), st.sampled_from(keyword_pool))
def test_keyword_postings_consistent(world, keyword):
    table, _, _, lists = world
    column = table.column("tags")
    rows = set(column.rows_containing(keyword).tolist())
    expected = {i for i, kws in enumerate(lists) if keyword in kws}
    assert rows == expected


@settings(max_examples=25, deadline=None)
@given(
    st.lists(st.integers(0, 100), min_size=50, max_size=300),
    st.tuples(st.integers(0, 100), st.integers(0, 100)).filter(
        lambda b: abs(b[0] - b[1]) >= 5
    ),
)
def test_histogram_between_bounded_error(values, bounds):
    """For proper (multi-bucket) ranges the equi-width error is
    bounded by the boundary buckets' mass.  Point queries on skewed
    data legitimately exceed this (classic histogram limitation) and
    are covered by the unit tests instead."""
    low, high = min(bounds), max(bounds)
    table = AttributeTable(len(values))
    table.add_int_column("v", values)
    estimator = HistogramSelectivityEstimator(table, n_buckets=32)
    predicate = Between("v", low, high)
    truth = predicate.mask(table).mean()
    counts, _ = estimator._histograms["v"]
    max_bucket_mass = counts.max() / max(counts.sum(), 1)
    assert abs(estimator.estimate(predicate) - truth) <= (
        2 * max_bucket_mass + 0.05
    )
