"""Property: quantized search with a saturating rerank tail is exact.

With ``ef_search`` large enough to hold every reachable node and a
rerank budget covering every candidate, the quantized path degenerates
to "walk the same predicate subgraph, then re-score everything in
float32" — so its result set must equal the float32 path's exactly
(ids, order, and distances).  Any divergence means the quantized walk
lost a reachable candidate or the rerank tail reordered unequal
distances, both real bugs.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.attributes import AttributeTable
from repro.core import AcornIndex, AcornParams
from repro.hnsw import HnswIndex
from repro.predicates import Equals


def _world(n, dim, seed):
    gen = np.random.default_rng(seed)
    vectors = gen.standard_normal((n, dim)).astype(np.float32)
    table = AttributeTable(n)
    table.add_int_column("label", gen.integers(0, 2, size=n))
    return vectors, table


@settings(max_examples=10, deadline=None)
@given(
    n=st.integers(20, 60),
    dim=st.sampled_from([4, 6, 8]),  # pq_subspaces=2 must divide dim
    k=st.integers(1, 5),
    kind=st.sampled_from(["sq8", "pq"]),
    seed=st.integers(0, 500),
)
def test_acorn_full_rerank_matches_float32(n, dim, k, kind, seed):
    vectors, table = _world(n, dim, seed)
    params = AcornParams(m=4, gamma=2, m_beta=8, ef_construction=16)
    index = AcornIndex.build(vectors, table, params=params, seed=seed)
    query = vectors[seed % n] + 0.01
    predicate = Equals("label", seed % 2)
    exact = index.search(query, predicate, k, ef_search=n)
    index.enable_quantization({
        "kind": kind,
        # Budget >= n re-scores every candidate the walk surfaces.
        "rerank_factor": float(n),
        "pq_subspaces": 2,
        "pq_centroids": 16,
    })
    quant = index.search(query, predicate, k, ef_search=n)
    np.testing.assert_array_equal(quant.ids, exact.ids)
    np.testing.assert_allclose(quant.distances, exact.distances, rtol=1e-6)


@settings(max_examples=10, deadline=None)
@given(
    n=st.integers(20, 60),
    dim=st.integers(4, 8),
    k=st.integers(1, 5),
    seed=st.integers(0, 500),
)
def test_hnsw_full_rerank_matches_float32(n, dim, k, seed):
    vectors, _ = _world(n, dim, seed)
    index = HnswIndex.build(vectors, m=4, ef_construction=16, seed=seed)
    query = vectors[seed % n] + 0.01
    exact = index.search(query, k, ef_search=n)
    index.enable_quantization({"kind": "sq8", "rerank_factor": float(n)})
    quant = index.search(query, k, ef_search=n)
    np.testing.assert_array_equal(quant.ids, exact.ids)
    np.testing.assert_allclose(quant.distances, exact.distances, rtol=1e-6)


@settings(max_examples=8, deadline=None)
@given(
    n=st.integers(20, 50),
    k=st.integers(1, 5),
    seed=st.integers(0, 500),
)
def test_lockstep_batch_full_rerank_matches_float32(n, k, seed):
    """The lockstep kernel under the same saturation is exact too."""
    vectors, table = _world(n, 6, seed)
    params = AcornParams(m=4, gamma=2, m_beta=8, ef_construction=16)
    index = AcornIndex.build(vectors, table, params=params, seed=seed,
                             quantization={"kind": "sq8",
                                           "rerank_factor": float(n)})
    gen = np.random.default_rng(seed)
    queries = vectors[gen.choice(n, size=4, replace=False)] + 0.01
    predicates = [Equals("label", i % 2) for i in range(4)]
    batch = index.search_batch_quantized(queries, predicates, k, ef_search=n)
    index.enable_quantization(None)
    for res, q, p in zip(batch, queries, predicates):
        exact = index.search(q, p, k, ef_search=n)
        np.testing.assert_array_equal(res.ids, exact.ids)
        np.testing.assert_allclose(res.distances, exact.distances, rtol=1e-6)
