"""Property tests: degraded scatter-gather equals the survivors-only
ground truth, for any seeded fault plan with at least one survivor.

Worlds use small-integer vector grids so duplicate distances (exact
ties) occur constantly — the merge-heap's deterministic tie handling is
part of what these properties pin.  Everything runs on a
:class:`~repro.utils.clock.FakeClock`; no real sleeping anywhere.
"""

import functools

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.attributes.table import AttributeTable
from repro.predicates import Between, TruePredicate
from repro.shard import (
    Fault,
    FaultInjector,
    FaultPlan,
    HashPartitioner,
    ResiliencePolicy,
    ShardedAcornIndex,
    merge_topk,
)
from repro.utils.clock import FakeClock

N, DIM = 60, 4
MAX_SHARDS = 4
CLOCK = FakeClock()
POLICY = ResiliencePolicy(
    shard_deadline_s=1.0, max_retries=1, backoff_base_s=0.01,
    breaker_threshold=10_000, breaker_reset_s=1e9, clock=CLOCK,
)
FAULT_KINDS = ("error", "latency", "corrupt", "truncate")


@functools.lru_cache(maxsize=MAX_SHARDS)
def _world(n_shards):
    """One cached flat-variant sharded world per shard count.

    The index is only ever *read* by the tests (fault wrappers and
    breakers are created fresh per example), so sharing it across
    examples and test orderings is safe.
    """
    rng = np.random.default_rng(100 + n_shards)
    # Integer grid vectors: duplicate coordinates => exact distance ties.
    vectors = rng.integers(0, 3, size=(N, DIM)).astype(np.float32)
    table = AttributeTable(N)
    table.add_int_column("year", rng.integers(2000, 2006, size=N))
    index = ShardedAcornIndex.build(
        vectors, table, partitioner=HashPartitioner(n_shards),
        variant="flat", seed=5, resilience=POLICY,
    )
    return vectors, table, index


def _survivor_reference(index, query, compiled, k, ef, dead):
    """Scatter-gather over surviving probed shards, merged exactly as
    the production path merges."""
    plan = index.plan(compiled, k=k, ef_search=ef)
    streams = []
    for decision in plan.decisions:
        if decision.pruned or decision.shard_id in dead:
            continue
        gids = index.assignment.global_ids[decision.shard_id]
        local_mask = compiled.mask[gids]
        if not local_mask.any():
            continue
        found = index.shards[decision.shard_id].search(
            query, type(compiled)(compiled.predicate, local_mask),
            k, ef_search=decision.ef_search,
        )
        streams.append(zip(found.distances.tolist(),
                           gids[found.ids].tolist()))
    return merge_topk(streams, k)


@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    n_shards=st.integers(2, MAX_SHARDS),
    k=st.integers(1, 12),
    query_seed=st.integers(0, 2**16),
    plan_seed=st.integers(0, 2**16),
    predicate_kind=st.sampled_from(["true", "between"]),
    data=st.data(),
)
def test_degraded_equals_survivor_scatter(n_shards, k, query_seed,
                                          plan_seed, predicate_kind, data):
    vectors, table, index = _world(n_shards)
    dead = data.draw(
        st.sets(st.integers(0, n_shards - 1), min_size=1,
                max_size=n_shards - 1),
        label="dead shards",
    )
    kinds = data.draw(
        st.lists(st.sampled_from(FAULT_KINDS), min_size=len(dead),
                 max_size=len(dead)),
        label="fault kinds",
    )
    plan = FaultPlan({
        shard: (Fault(kind=kind,
                      latency_s=5.0 if kind == "latency" else 0.0),)
        for shard, kind in zip(sorted(dead), kinds)
    })
    chaos = index.with_faults(
        FaultInjector(plan, clock=CLOCK, seed=plan_seed)
    )

    rng = np.random.default_rng(query_seed)
    query = rng.integers(0, 3, size=DIM).astype(np.float32)
    predicate = (TruePredicate() if predicate_kind == "true"
                 else Between("year", 2001, 2004))
    compiled = predicate.compile(table)

    result = chaos.search(query, compiled, k, ef_search=N)
    expected = _survivor_reference(index, query, compiled, k, N, dead)

    assert result.ids.tolist() == [gid for _, gid in expected]
    assert result.distances.tolist() == pytest.approx(
        [d for d, _ in expected]
    )
    probed_dead = sum(
        1 for rec in result.per_shard
        if not rec["pruned"] and rec["shard"] in dead
    )
    assert result.shards_failed + result.shards_timed_out == probed_dead
    assert result.degraded == (probed_dead > 0)
    assert 0.0 <= result.recall_ceiling <= 1.0
    assert result.shards_probed + result.shards_pruned == n_shards


@settings(max_examples=60, deadline=None)
@given(
    streams=st.lists(
        st.lists(
            st.tuples(
                st.sampled_from([0.0, 0.25, 0.5, 0.5, 1.0, 2.0]),
                st.integers(0, 99),
            ),
            max_size=8,
        ),
        max_size=5,
    ),
    k=st.integers(0, 12),
)
def test_merge_topk_matches_global_sort_under_ties(streams, k):
    """The streaming merge equals sorting the concatenation by
    (distance, id) — including duplicate distances across and within
    streams — then truncating to k."""
    sorted_streams = [sorted(s) for s in streams]
    merged = merge_topk([iter(s) for s in sorted_streams], k)
    flat = sorted(pair for s in sorted_streams for pair in s)
    assert merged == flat[:k]


def test_merge_topk_tie_break_is_deterministic_across_stream_order():
    streams_a = [[(0.5, 7), (1.0, 1)], [(0.5, 3), (0.5, 9)]]
    streams_b = [[(0.5, 3), (0.5, 9)], [(0.5, 7), (1.0, 1)]]
    assert (merge_topk([iter(s) for s in streams_a], 3)
            == merge_topk([iter(s) for s in streams_b], 3))
