"""Property-based tests: sharded search equals the single-index reference.

For random data, predicates, k, and shard counts 1-8, the sharded
index must return exactly the ids and distances of an unsharded index
built from the same rows, and its routing must account for every shard
(``shards_probed + shards_pruned == n_shards``).

Runs in the exhaustive regime: ``ef_search = n`` with ``M * gamma >= n``
so predicate subgraphs stay connected and graph search is exact over
passing rows on both sides — making exact equality a theorem, not a
statistical accident.  ``derandomize=True`` keeps example selection
deterministic: the suite's verdict never depends on hypothesis' RNG.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.attributes.table import AttributeTable
from repro.core.acorn import AcornIndex
from repro.core.params import AcornParams
from repro.predicates import (
    Between,
    ContainsAny,
    Equals,
    Not,
    TruePredicate,
)
from repro.shard import (
    AttributeRangePartitioner,
    HashPartitioner,
    ShardedAcornIndex,
)

PARAMS = AcornParams(m=8, gamma=8, m_beta=16, ef_construction=48)
DIM = 8
TOKENS = ["a", "b", "c", "d", "e"]


def make_random_world(seed: int, n: int):
    """Random vectors + a table with an int and a keywords column."""
    rng = np.random.default_rng(seed)
    vectors = rng.standard_normal((n, DIM)).astype(np.float32)
    table = AttributeTable(n)
    table.add_int_column("v", rng.integers(0, 4, size=n))
    table.add_keywords_column(
        "kw",
        [list(rng.choice(TOKENS, size=2, replace=False)) for _ in range(n)],
    )
    return vectors, table, rng


predicate_specs = st.one_of(
    st.just(("true",)),
    st.integers(0, 3).map(lambda v: ("equals", v)),
    st.tuples(st.integers(0, 3), st.integers(0, 3)).map(
        lambda ab: ("between", min(ab), max(ab))
    ),
    st.lists(st.sampled_from(TOKENS), min_size=1, max_size=2,
             unique=True).map(lambda kws: ("contains", tuple(kws))),
    st.integers(0, 3).map(lambda v: ("not-equals", v)),
)


def build_predicate(spec):
    """Materialize one drawn predicate spec."""
    kind = spec[0]
    if kind == "true":
        return TruePredicate()
    if kind == "equals":
        return Equals("v", spec[1])
    if kind == "between":
        return Between("v", spec[1], spec[2])
    if kind == "contains":
        return ContainsAny("kw", spec[1])
    return Not(Equals("v", spec[1]))


@settings(max_examples=8, deadline=None, derandomize=True)
@given(
    seed=st.integers(0, 2**16),
    n=st.integers(30, 60),
    n_shards=st.integers(1, 8),
    k=st.integers(1, 8),
    use_range=st.booleans(),
    spec=predicate_specs,
)
def test_sharded_equals_reference(seed, n, n_shards, k, use_range, spec):
    vectors, table, _ = make_random_world(seed, n)
    predicate = build_predicate(spec)
    partitioner = (
        AttributeRangePartitioner("v", n_shards=n_shards)
        if use_range else HashPartitioner(n_shards, seed=seed)
    )
    reference = AcornIndex.build(vectors, table, params=PARAMS, seed=seed)
    sharded = ShardedAcornIndex.build(
        vectors, table, partitioner=partitioner, params=PARAMS, seed=seed
    )
    query = np.random.default_rng(seed + 1).standard_normal(
        DIM
    ).astype(np.float32)

    expected = reference.search(query, predicate, k, ef_search=n)
    got = sharded.search(query, predicate, k, ef_search=n)

    assert got.shards_probed + got.shards_pruned == n_shards
    assert np.array_equal(got.ids, expected.ids)
    assert np.allclose(got.distances, expected.distances)


@settings(max_examples=8, deadline=None, derandomize=True)
@given(
    seed=st.integers(0, 2**16),
    n=st.integers(20, 50),
    n_shards=st.integers(1, 8),
    spec=predicate_specs,
)
def test_plan_accounting_invariant(seed, n, n_shards, spec):
    """Every plan covers each shard exactly once, probe xor prune."""
    vectors, table, _ = make_random_world(seed, n)
    sharded = ShardedAcornIndex.build(
        vectors, table,
        partitioner=AttributeRangePartitioner("v", n_shards=n_shards),
        params=PARAMS, seed=seed,
    )
    plan = sharded.plan(build_predicate(spec), k=5, ef_search=32)
    assert plan.n_shards == n_shards
    assert plan.n_probed + plan.n_pruned == n_shards
    assert sorted(d.shard_id for d in plan.decisions) == list(range(n_shards))
