"""Property-based tests for ACORN's neighbor-lookup strategies."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.search import (
    compressed_neighbors,
    expanded_neighbors,
    filtered_neighbors,
    freeze_graph,
)
from repro.hnsw.graph import LayeredGraph


@st.composite
def frozen_level(draw):
    """A random single-level adjacency plus a random predicate mask."""
    n = draw(st.integers(2, 25))
    graph = LayeredGraph()
    for node in range(n):
        graph.add_node(node, 0)
    for node in range(n):
        degree = draw(st.integers(0, min(6, n - 1)))
        others = [v for v in range(n) if v != node]
        neighbors = draw(
            st.lists(st.sampled_from(others), min_size=degree,
                     max_size=degree, unique=True)
        )
        graph.set_neighbors(node, 0, neighbors)
    mask = np.asarray(
        draw(st.lists(st.booleans(), min_size=n, max_size=n)), dtype=bool
    )
    return freeze_graph(graph)[0], mask


@settings(max_examples=60)
@given(frozen_level(), st.integers(0, 24))
def test_all_lookup_outputs_pass_mask(world, node_pick):
    adjacency, mask = world
    node = node_pick % len(adjacency)
    for out in (
        filtered_neighbors(adjacency, node, mask),
        compressed_neighbors(adjacency, node, mask, m_beta=2),
        expanded_neighbors(adjacency, node, mask),
    ):
        assert all(mask[v] for v in out)
        assert len(out) == len(set(out))


@settings(max_examples=60)
@given(frozen_level(), st.integers(0, 24))
def test_filtered_matches_bruteforce(world, node_pick):
    adjacency, mask = world
    node = node_pick % len(adjacency)
    got = filtered_neighbors(adjacency, node, mask)
    want = [v for v in adjacency[node].tolist() if mask[v]]
    assert got.tolist() == want


@settings(max_examples=60)
@given(frozen_level(), st.integers(0, 24), st.integers(0, 8))
def test_compressed_superset_of_filtered_head(world, node_pick, m_beta):
    """Phase 1 passing entries always appear in the compressed output."""
    adjacency, mask = world
    node = node_pick % len(adjacency)
    head = adjacency[node][:m_beta]
    head_passing = [v for v in head.tolist() if mask[v]]
    got = compressed_neighbors(adjacency, node, mask, m_beta=m_beta)
    assert set(head_passing) <= set(got)


@settings(max_examples=60)
@given(frozen_level(), st.integers(0, 24))
def test_expansion_covers_passing_two_hop(world, node_pick):
    """ACORN-1's lookup must return exactly the passing 1-hop + 2-hop set."""
    adjacency, mask = world
    node = node_pick % len(adjacency)
    got = set(expanded_neighbors(adjacency, node, mask))
    want = set()
    for hop in adjacency[node].tolist():
        if mask[hop]:
            want.add(hop)
        for two in adjacency[hop].tolist():
            if mask[two]:
                want.add(two)
    assert got == want