"""Property-based round-trip tests for persistence."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.attributes import AttributeTable
from repro.core import AcornIndex, AcornParams
from repro.persistence import load_index, save_index
from repro.predicates import Equals


@settings(max_examples=6, deadline=None)
@given(
    n=st.integers(5, 40),
    m=st.integers(2, 5),
    gamma=st.integers(1, 3),
    seed=st.integers(0, 500),
)
def test_acorn_roundtrip_preserves_graph(tmp_path_factory, n, m, gamma, seed):
    gen = np.random.default_rng(seed)
    vectors = gen.standard_normal((n, 4)).astype(np.float32)
    table = AttributeTable(n)
    table.add_int_column("label", gen.integers(0, 3, size=n))
    params = AcornParams(m=m, gamma=gamma, m_beta=m, ef_construction=12)
    index = AcornIndex.build(vectors, table, params=params, seed=seed)

    path = tmp_path_factory.mktemp("rt") / "index.npz"
    save_index(index, path)
    restored = load_index(path)

    assert restored.graph.entry_point == index.graph.entry_point
    assert restored.graph.max_level == index.graph.max_level
    for level in range(index.graph.max_level + 1):
        for node in index.graph.nodes_at_level(level):
            assert restored.graph.neighbors(node, level) == (
                index.graph.neighbors(node, level)
            )
            np.testing.assert_allclose(
                restored._edge_dists[level][node],
                index._edge_dists[level][node],
            )
    np.testing.assert_array_equal(restored.store.vectors, index.store.vectors)

    query = gen.standard_normal(4).astype(np.float32)
    a = index.search(query, Equals("label", 1), 5, ef_search=16)
    b = restored.search(query, Equals("label", 1), 5, ef_search=16)
    np.testing.assert_array_equal(a.ids, b.ids)
