"""Property-based tests for index invariants under random builds."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.attributes import AttributeTable
from repro.core import AcornIndex, AcornParams
from repro.hnsw import HnswIndex
from repro.predicates import Equals


def _build_inputs(n, dim, n_labels, seed):
    gen = np.random.default_rng(seed)
    vectors = gen.standard_normal((n, dim)).astype(np.float32)
    table = AttributeTable(n)
    table.add_int_column("label", gen.integers(0, n_labels, size=n))
    return vectors, table


@settings(max_examples=8, deadline=None)
@given(
    n=st.integers(5, 60),
    dim=st.integers(2, 8),
    m=st.integers(2, 6),
    seed=st.integers(0, 1000),
)
def test_hnsw_structural_invariants(n, dim, m, seed):
    vectors, _ = _build_inputs(n, dim, 3, seed)
    index = HnswIndex.build(vectors, m=m, ef_construction=12, seed=seed)
    index.graph.validate()
    graph = index.graph
    assert graph.entry_point >= 0
    assert graph.node_level(graph.entry_point) == graph.max_level
    for node in graph.nodes_at_level(0):
        assert len(graph.neighbors(node, 0)) <= 2 * m
    for level in range(1, graph.max_level + 1):
        for node in graph.nodes_at_level(level):
            assert len(graph.neighbors(node, level)) <= m


@settings(max_examples=6, deadline=None)
@given(
    n=st.integers(10, 50),
    m=st.integers(2, 5),
    gamma=st.integers(1, 4),
    seed=st.integers(0, 1000),
)
def test_acorn_structural_invariants(n, m, gamma, seed):
    vectors, table = _build_inputs(n, 4, 3, seed)
    params = AcornParams(m=m, gamma=gamma, m_beta=m, ef_construction=12)
    index = AcornIndex.build(vectors, table, params=params, seed=seed)
    index.graph.validate()
    graph = index.graph
    for node in graph.nodes_at_level(0):
        assert len(graph.neighbors(node, 0)) <= index._cap0
    for level in range(1, graph.max_level + 1):
        for node in graph.nodes_at_level(level):
            assert len(graph.neighbors(node, level)) <= params.max_degree


@settings(max_examples=6, deadline=None)
@given(
    seed=st.integers(0, 1000),
    k=st.integers(1, 8),
    label=st.integers(0, 2),
    ef=st.integers(4, 64),
)
def test_acorn_search_contract(seed, k, label, ef):
    """For any query: results pass the predicate, are unique, sorted by
    distance, and at most k."""
    vectors, table = _build_inputs(60, 4, 3, seed=99)
    params = AcornParams(m=4, gamma=3, m_beta=6, ef_construction=16)
    index = AcornIndex.build(vectors, table, params=params, seed=7)
    gen = np.random.default_rng(seed)
    query = gen.standard_normal(4).astype(np.float32)
    predicate = Equals("label", label)
    compiled = predicate.compile(table)
    result = index.search(query, predicate, k, ef_search=ef)
    assert len(result) <= k
    assert len(set(result.ids.tolist())) == len(result)
    assert compiled.passes_many(result.ids).all()
    assert (np.diff(result.distances) >= -1e-6).all()


@settings(max_examples=6, deadline=None)
@given(seed=st.integers(0, 1000))
def test_hnsw_search_finds_inserted_point(seed):
    gen = np.random.default_rng(seed)
    vectors = gen.standard_normal((40, 4)).astype(np.float32)
    index = HnswIndex.build(vectors, m=4, ef_construction=16, seed=seed)
    target = int(gen.integers(0, 40))
    result = index.search(vectors[target], 1, ef_search=40)
    assert result.ids[0] == target
