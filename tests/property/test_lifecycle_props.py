"""Property-based tests: lifecycle reads respect the tombstone ledger.

Two safety properties over random op tapes, predicates, and
compaction points, in the exhaustive regime (``M * gamma >= n``,
``ef_search`` above any live-set size) where graph search is exact:

* **no ghosts** — a tombstoned external id never appears in any
  result, from the graph base, a sealed delta, or the active delta;
* **no holes** — every id the brute-force oracle returns over the live
  set is returned, in the same order (exactness makes recall@k == 1 a
  theorem, so a miss is a bug, not noise).

``derandomize=True`` keeps example selection deterministic: the
suite's verdict never depends on hypothesis' RNG.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.attributes.table import AttributeTable
from repro.core.params import AcornParams
from repro.lifecycle import LifecycleConfig, LifecycleIndex
from repro.predicates import Between, Equals, TruePredicate

pytestmark = pytest.mark.lifecycle

PARAMS = AcornParams(m=8, gamma=8, m_beta=16, ef_construction=48)
DIM = 6
EF = 512


def make_world(seed, n):
    rng = np.random.default_rng(seed)
    vectors = rng.standard_normal((n, DIM)).astype(np.float32)
    table = AttributeTable(n)
    table.add_int_column("v", rng.integers(0, 3, size=n))
    return vectors, table, rng


def brute_force_ids(entries, deleted, query, predicate, k):
    """Oracle top-k ids over the live entries dict {id: (vec, row)}."""
    live = sorted(g for g in entries if g not in deleted)
    if not live:
        return []
    table = AttributeTable(len(live))
    table.add_int_column(
        "v", np.asarray([entries[g][1]["v"] for g in live])
    )
    mask = np.asarray(predicate.mask(table), dtype=bool)
    passing = np.asarray(live, dtype=np.int64)[mask]
    if passing.shape[0] == 0:
        return []
    mat = np.stack([entries[g][0] for g in passing.tolist()])
    dists = np.sum((mat - np.asarray(query)[None, :]) ** 2, axis=1)
    order = np.lexsort((passing, dists))[:k]
    return [int(passing[i]) for i in order.tolist()]


op_tapes = st.lists(
    st.one_of(
        st.tuples(st.just("insert"), st.integers(0, 2**20),
                  st.integers(0, 2)),
        st.tuples(st.just("delete"), st.integers(0, 60)),
    ),
    min_size=1, max_size=25,
)


@settings(max_examples=20, deadline=None, derandomize=True)
@given(
    seed=st.integers(0, 2**16),
    n_initial=st.integers(4, 16),
    tape=op_tapes,
    compact_every=st.integers(0, 9),
    k=st.integers(1, 8),
)
def test_no_ghosts_and_no_holes(seed, n_initial, tape, compact_every, k):
    vectors, table, rng = make_world(seed, n_initial)
    lc = LifecycleIndex.build(
        vectors, table, params=PARAMS, seed=seed % 31,
        config=LifecycleConfig(build_seed=seed % 31),
    )
    entries = {
        i: (vectors[i], table.row(i)) for i in range(n_initial)
    }
    deleted = set()
    queries = rng.standard_normal((2, DIM)).astype(np.float32)
    predicates = [TruePredicate(), Equals("v", 1), Between("v", 0, 1)]

    for i, op in enumerate(tape):
        if op[0] == "insert":
            vec_seed, v = op[1], op[2]
            vec = np.random.default_rng(vec_seed).standard_normal(
                DIM
            ).astype(np.float32)
            ext = lc.insert(vec, {"v": v})
            entries[ext] = (vec, {"v": v})
        else:
            target = op[1]
            if target < lc.next_external_id:
                lc.delete(target)
                if target in entries:
                    deleted.add(target)
        if compact_every and i % compact_every == 0:
            lc.compact(seed=seed % 31)

        for q in queries:
            for pred in predicates:
                res = lc.search(q, pred, k, ef_search=EF)
                got = res.ids.tolist()
                # no ghosts: tombstoned ids never surface
                assert not (set(got) & deleted), (
                    f"tombstoned ids {set(got) & deleted} surfaced "
                    f"at epoch {res.epoch}"
                )
                # no holes: exactly the oracle's ids, in order
                want = brute_force_ids(entries, deleted, q, pred, k)
                assert got == want, (
                    f"lifecycle {got} != oracle {want} at epoch "
                    f"{res.epoch}"
                )


@settings(max_examples=15, deadline=None, derandomize=True)
@given(seed=st.integers(0, 2**16), n=st.integers(4, 14))
def test_snapshot_exact_search_is_self_consistent(seed, n):
    """The snapshot's built-in oracle agrees with its graph search in
    the exhaustive regime — the invariant that makes it a valid
    ground-truth source for the bench."""
    vectors, table, rng = make_world(seed, n)
    lc = LifecycleIndex.build(vectors, table, params=PARAMS,
                              seed=seed % 31)
    for i in range(4):
        lc.insert(rng.standard_normal(DIM).astype(np.float32),
                  {"v": i % 3})
    lc.delete(int(rng.integers(0, n)))
    snap = lc.acquire_read_snapshot()
    try:
        q = rng.standard_normal(DIM).astype(np.float32)
        for pred in (TruePredicate(), Equals("v", 1)):
            walk = snap.search(q, pred, 5, ef_search=EF)
            oracle = snap.exact_search(q, pred, 5)
            assert walk.ids.tolist() == oracle.ids.tolist()
            assert np.allclose(walk.distances, oracle.distances)
    finally:
        lc.release_read_snapshot(snap)
