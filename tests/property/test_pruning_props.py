"""Property tests: vectorized pruning rules equal their scalar references.

The bulk-construction pipeline replaces the per-pair kernel calls of
the scalar pruning rules with candidate-distance-matrix variants
(``repro.core.construction``'s ``*_matrix`` / ``*_arrays`` functions
and ``select_neighbors_heuristic_matrix``).  Construction determinism
rests on those variants keeping *exactly* the scalar edge set, so this
suite pins edge-set equality — and equality of the recorded
``PruningStats`` — across every :class:`PruningStrategy`'s rule pair.

Integer-valued vectors make every kernel exact, so equality holds for
all three metrics; a separate case pins the L2 kernel on continuous
floats (bitwise-identical per-row einsum reductions).
``derandomize=True`` keeps example selection deterministic: the
suite's verdict never depends on hypothesis' RNG.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.construction import (
    PruningStats,
    candidate_distance_matrix,
    prune_predicate_agnostic,
    prune_predicate_agnostic_arrays,
    prune_rng_blind,
    prune_rng_blind_matrix,
    prune_rng_metadata,
    prune_rng_metadata_matrix,
)
from repro.hnsw.heuristics import (
    select_neighbors_heuristic,
    select_neighbors_heuristic_matrix,
)
from repro.vectors.distance import _KERNELS, Metric

SETTINGS = settings(max_examples=120, deadline=None, derandomize=True)

METRICS = [Metric.L2, Metric.INNER_PRODUCT, Metric.COSINE]


@st.composite
def pruning_worlds(draw, integer_vectors: bool = True):
    """A candidate list plus the world it was drawn from.

    Returns ``(vectors, candidates, labels, adjacency)`` where
    ``candidates`` is an ascending (distance, id) list over distinct
    ids, ``labels`` is a low-cardinality label row per vector, and
    ``adjacency`` maps each id to a duplicate-free neighbor list (the
    stored-list invariant ``LayeredGraph.validate`` enforces).
    """
    n = draw(st.integers(min_value=1, max_value=16))
    dim = draw(st.integers(min_value=1, max_value=6))
    metric = draw(st.sampled_from(METRICS if integer_vectors else [Metric.L2]))
    seed = draw(st.integers(min_value=0, max_value=2**16))
    gen = np.random.default_rng(seed)
    if integer_vectors:
        vectors = gen.integers(-3, 4, size=(n, dim)).astype(np.float32)
    else:
        vectors = gen.standard_normal((n, dim)).astype(np.float32)
    labels = gen.integers(0, 3, size=n)
    n_cand = draw(st.integers(min_value=0, max_value=n))
    ids = gen.choice(n, size=n_cand, replace=False)
    query = vectors[gen.integers(0, n)]
    kernel = _KERNELS[metric]
    dists = kernel(vectors[ids], query) if n_cand else np.zeros(0)
    candidates = sorted(
        (float(d), int(i)) for d, i in zip(dists, ids)
    )
    adjacency = {
        int(i): gen.choice(n, size=gen.integers(0, min(n, 5)),
                           replace=False).tolist()
        for i in range(n)
    }
    return vectors, candidates, labels, adjacency, metric


class _StubGraph:
    """Duck-typed stand-in for LayeredGraph's ``neighbors`` read."""

    def __init__(self, adjacency):
        self._adjacency = adjacency

    def neighbors(self, node, level):
        assert level == 0
        return self._adjacency[node]


@given(world=pruning_worlds(), m_beta=st.integers(0, 6),
       budget=st.integers(0, 24))
@SETTINGS
def test_predicate_agnostic_arrays_equals_scalar(world, m_beta, budget):
    vectors, candidates, _, adjacency, _ = world
    stats_a = PruningStats()
    stats_b = PruningStats()
    scalar = prune_predicate_agnostic(
        candidates, _StubGraph(adjacency), level=0, m_beta=m_beta,
        max_degree=budget, stats=stats_a,
    )
    arrays = prune_predicate_agnostic_arrays(
        candidates, lambda node: adjacency[node], num_ids=len(vectors),
        m_beta=m_beta, max_degree=budget, stats=stats_b,
    )
    assert scalar == arrays
    assert (stats_a.nodes_pruned, stats_a.candidates_seen,
            stats_a.candidates_dropped) == (
        stats_b.nodes_pruned, stats_b.candidates_seen,
        stats_b.candidates_dropped)


@given(world=pruning_worlds(), max_keep=st.integers(0, 12))
@SETTINGS
def test_rng_blind_matrix_equals_scalar(world, max_keep):
    vectors, candidates, _, _, metric = world
    stats_a = PruningStats()
    stats_b = PruningStats()
    scalar = prune_rng_blind(candidates, vectors, max_keep, metric,
                             stats=stats_a)
    matrix = prune_rng_blind_matrix(candidates, vectors, max_keep, metric,
                                    stats=stats_b)
    assert scalar == matrix
    assert stats_a.candidates_dropped == stats_b.candidates_dropped


@given(world=pruning_worlds(), max_keep=st.integers(0, 12))
@SETTINGS
def test_rng_metadata_matrix_equals_scalar(world, max_keep):
    vectors, candidates, labels, _, metric = world
    owner = 0
    stats_a = PruningStats()
    stats_b = PruningStats()
    scalar = prune_rng_metadata(candidates, vectors, labels, owner,
                                max_keep, metric, stats=stats_a)
    matrix = prune_rng_metadata_matrix(candidates, vectors, labels, owner,
                                       max_keep, metric, stats=stats_b)
    assert scalar == matrix
    assert stats_a.candidates_dropped == stats_b.candidates_dropped


@given(world=pruning_worlds(), m=st.integers(1, 8))
@SETTINGS
def test_heuristic_matrix_equals_scalar(world, m):
    vectors, candidates, _, _, metric = world
    scalar = select_neighbors_heuristic(vectors, candidates, m, metric)
    matrix = select_neighbors_heuristic_matrix(vectors, candidates, m, metric)
    assert scalar == matrix


@given(world=pruning_worlds(integer_vectors=False),
       max_keep=st.integers(0, 12), m=st.integers(1, 8))
@SETTINGS
def test_l2_float_vectors_bitwise_equal(world, max_keep, m):
    """On continuous floats the L2 kernel is a per-row einsum either
    way, so the matrix variants stay bitwise-equal to the scalars."""
    vectors, candidates, labels, _, metric = world
    assert metric is Metric.L2
    assert prune_rng_blind(candidates, vectors, max_keep, metric) == \
        prune_rng_blind_matrix(candidates, vectors, max_keep, metric)
    assert prune_rng_metadata(candidates, vectors, labels, 0, max_keep,
                              metric) == \
        prune_rng_metadata_matrix(candidates, vectors, labels, 0, max_keep,
                                  metric)
    assert select_neighbors_heuristic(vectors, candidates, m, metric) == \
        select_neighbors_heuristic_matrix(vectors, candidates, m, metric)


@given(world=pruning_worlds(), max_keep=st.integers(0, 12))
@SETTINGS
def test_shared_dmatrix_equals_private(world, max_keep):
    """Passing a precomputed candidate matrix must not change the edge
    set — the bulk pipeline shares one matrix across rule calls."""
    vectors, candidates, labels, _, metric = world
    ids = np.asarray([cand for _, cand in candidates], dtype=np.intp)
    dmatrix = candidate_distance_matrix(vectors, ids, metric)
    assert prune_rng_blind_matrix(candidates, vectors, max_keep, metric) == \
        prune_rng_blind_matrix(candidates, vectors, max_keep, metric,
                               dmatrix=dmatrix)
    assert prune_rng_metadata_matrix(candidates, vectors, labels, 0,
                                     max_keep, metric) == \
        prune_rng_metadata_matrix(candidates, vectors, labels, 0, max_keep,
                                  metric, dmatrix=dmatrix)
