"""Property-based tests for the adaptive route planner.

Two invariants pin the planner's safety story (ISSUE satellites):

1. At exhaustive ``ef_search`` the adaptive planner returns exactly the
   brute-force top-k restricted to passing entities — whichever route
   its cost model picked.
2. Whenever ``fallback_triggered`` is set, the results are identical to
   the pre-filter baseline (the RACORN-1 recovery is exact, not merely
   approximate).
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.attributes import AttributeTable
from repro.baselines.prefilter import PreFilterSearcher
from repro.core import AcornIndex, AcornParams
from repro.predicates import Equals, OneOf
from repro.routing import RoutePlanner, RoutingFeedback, WalkBudget

N, DIM, N_LABELS = 80, 6, 4

_gen = np.random.default_rng(5)
_vectors = _gen.standard_normal((N, DIM)).astype(np.float32)
_table = AttributeTable(N)
_table.add_int_column("label", _gen.integers(0, N_LABELS, size=N))
_index = AcornIndex.build(
    _vectors, _table,
    params=AcornParams(m=4, gamma=3, m_beta=8, ef_construction=16),
    seed=5,
)
_prefilter = PreFilterSearcher(_vectors, _table, metric=_index.metric)

predicates = st.one_of(
    st.integers(0, N_LABELS - 1).map(lambda v: Equals("label", v)),
    st.sets(st.integers(0, N_LABELS - 1), min_size=1, max_size=3).map(
        lambda vs: OneOf("label", tuple(sorted(vs)))
    ),
)


def _query(seed):
    return np.random.default_rng(seed).standard_normal(DIM).astype(np.float32)


@settings(max_examples=40, deadline=None)
@given(seed=st.integers(0, 10_000), k=st.integers(1, 8), pred=predicates)
def test_exhaustive_ef_matches_brute_force(seed, k, pred):
    planner = RoutePlanner(_index, policy="adaptive")
    query = _query(seed)
    result = planner.search(query, pred, k, ef_search=N)

    mask = pred.compile(_table).mask
    passing = np.nonzero(mask)[0]
    # Independent oracle: full scan over the passing set.
    diffs = _vectors[passing] - query
    dists = np.einsum("ij,ij->i", diffs, diffs)
    order = np.argsort(dists, kind="stable")[:k]

    assert len(result) == min(k, passing.size)
    assert np.allclose(np.sort(result.distances), np.sort(dists[order]))
    assert mask[result.ids].all()
    assert len(set(result.ids.tolist())) == len(result)
    assert (np.diff(result.distances) >= -1e-5).all()


@settings(max_examples=40, deadline=None)
@given(seed=st.integers(0, 10_000), k=st.integers(1, 8), pred=predicates)
def test_fallback_is_identical_to_prefilter(seed, k, pred):
    # Optimistic graph scales plus a one-hop budget force a monitored
    # graph attempt that immediately aborts for most draws.
    planner = RoutePlanner(
        _index,
        policy="adaptive",
        feedback=RoutingFeedback(
            initial_scales={"acorn-gamma": 1e-6, "acorn-1": 1e-6}
        ),
        walk_budget=WalkBudget(hop_budget=1),
    )
    query = _query(seed)
    result = planner.search(query, pred, k, ef_search=24)
    if result.fallback_triggered:
        expected = _prefilter.search(query, pred.compile(_table), k)
        assert np.array_equal(result.ids, expected.ids)
        assert np.allclose(result.distances, expected.distances)
        assert result.route_chosen == "pre-filter"
        assert "fallback from" in result.route_reason


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 10_000), k=st.integers(1, 6),
       ef=st.integers(4, 64), pred=predicates)
def test_search_contract_holds_on_every_route(seed, k, ef, pred):
    """Whatever the planner decides: unique, predicate-passing,
    distance-sorted results, at most k of them."""
    planner = RoutePlanner(_index, policy="adaptive")
    result = planner.search(_query(seed), pred, k, ef_search=ef)
    compiled = pred.compile(_table)
    assert result.route_chosen in planner.routes()
    assert len(result) <= k
    assert len(set(result.ids.tolist())) == len(result)
    if len(result):
        assert compiled.passes_many(result.ids).all()
        assert (np.diff(result.distances) >= -1e-5).all()
