"""Property-based tests for distance kernels."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.vectors.distance import DistanceComputer, pairwise_distances

finite_floats = st.floats(
    min_value=-100, max_value=100, allow_nan=False, width=32
)
matrices = hnp.arrays(
    np.float32,
    st.tuples(st.integers(2, 12), st.integers(1, 6)),
    elements=finite_floats,
)


@settings(max_examples=40)
@given(matrices)
def test_l2_symmetry(base):
    d_ab = pairwise_distances(base, base)
    np.testing.assert_allclose(d_ab, d_ab.T, rtol=1e-3, atol=1e-2)


@settings(max_examples=40)
@given(matrices)
def test_l2_identity(base):
    d = pairwise_distances(base, base)
    np.testing.assert_allclose(np.diag(d), 0.0, atol=1e-2)


@settings(max_examples=40)
@given(matrices)
def test_l2_nonnegative(base):
    assert (pairwise_distances(base, base) >= 0).all()


@settings(max_examples=40)
@given(matrices)
def test_counter_accumulates_exactly(base):
    computer = DistanceComputer(base)
    total = 0
    for take in (1, 2, base.shape[0]):
        computer.distances_to(base[0], np.arange(take))
        total += take
    assert computer.count == total


@settings(max_examples=40)
@given(matrices)
def test_batched_matches_single(base):
    computer = DistanceComputer(base)
    query = base[0] + 1.0
    batch = computer.distances_to(query, np.arange(base.shape[0]))
    singles = [computer.distance_one(query, i) for i in range(base.shape[0])]
    np.testing.assert_allclose(batch, singles, rtol=1e-4, atol=1e-4)
