"""Tests for the flat (single-level) ACORN variant."""

import numpy as np
import pytest

from repro.attributes import AttributeTable
from repro.core import AcornParams
from repro.core.flat import FlatAcornIndex
from repro.datasets.ground_truth import filtered_knn
from repro.predicates import Equals, TruePredicate


@pytest.fixture(scope="module")
def flat_world(small_vectors, labeled_table):
    vectors, _ = small_vectors
    params = AcornParams(m=8, gamma=6, m_beta=16, ef_construction=32)
    index = FlatAcornIndex.build(vectors, labeled_table, params=params, seed=2)
    return vectors, index


class TestStructure:
    def test_single_level(self, flat_world):
        _, index = flat_world
        assert index.graph.max_level == 0

    def test_entry_is_medoid(self, flat_world):
        vectors, index = flat_world
        centroid = vectors.mean(axis=0)
        dists = ((vectors - centroid) ** 2).sum(axis=1)
        assert index.graph.entry_point == int(np.argmin(dists))

    def test_graph_invariants(self, flat_world):
        _, index = flat_world
        index.graph.validate()

    def test_level0_compressed(self, flat_world):
        _, index = flat_world
        assert index.graph.average_out_degree(0) < index.params.max_degree


class TestSearch:
    def test_hybrid_recall(self, flat_world, labeled_table):
        vectors, index = flat_world
        gen = np.random.default_rng(17)
        queries = vectors[gen.integers(0, len(vectors), 30)] + 0.05
        labels = gen.integers(0, 6, size=30)
        masks = [Equals("label", int(l)).mask(labeled_table) for l in labels]
        gt = filtered_knn(vectors, list(queries), masks, k=10)
        recalls = []
        for q, label, truth in zip(queries, labels, gt):
            result = index.search(q, Equals("label", int(label)), 10,
                                  ef_search=64)
            recalls.append(
                len(set(result.ids.tolist()) & set(truth.tolist())) / len(truth)
            )
        assert np.mean(recalls) > 0.85

    def test_results_pass_predicate(self, flat_world):
        vectors, index = flat_world
        predicate = Equals("label", 3)
        compiled = predicate.compile(index.table)
        result = index.search(vectors[0], predicate, 10, ef_search=32)
        assert compiled.passes_many(result.ids).all()

    def test_exact_ann(self, flat_world):
        vectors, index = flat_world
        result = index.search(vectors[11], TruePredicate(), 1, ef_search=32)
        assert result.ids[0] == 11

    def test_empty_index_reanchor_noop(self, labeled_table):
        index = FlatAcornIndex(16, labeled_table,
                               params=AcornParams(m=4, gamma=2))
        index.reanchor_entry_point()
        assert index.graph.entry_point == -1

    def test_incremental_add_after_build(self, labeled_table, small_vectors):
        vectors, _ = small_vectors
        n = 100
        table = AttributeTable(n + 1)
        table.add_int_column(
            "label",
            np.append(np.asarray(labeled_table.column("label"))[:n], 2),
        )
        params = AcornParams(m=6, gamma=4, m_beta=8, ef_construction=24)
        index = FlatAcornIndex.build(vectors[:n], table, params=params, seed=0)
        new_id = index.add(np.zeros(16, dtype=np.float32))
        assert new_id == n
        assert index.graph.max_level == 0
        result = index.search(np.zeros(16, dtype=np.float32), Equals("label", 2),
                              5, ef_search=32)
        assert new_id in result.ids
