"""Failure-injection tests: malformed inputs and degenerate workloads."""

import numpy as np
import pytest

from repro.attributes import AttributeTable
from repro.core import AcornIndex, AcornParams, HybridSearcher
from repro.persistence import load_index, save_index
from repro.predicates import Equals, RegexMatch


class TestMalformedQueries:
    def test_missing_column_raises_cleanly(self, acorn_index, small_vectors):
        vectors, _ = small_vectors
        with pytest.raises(KeyError, match="no column"):
            acorn_index.search(vectors[0], Equals("nope", 1), 5)

    def test_wrong_column_kind_raises_cleanly(self, acorn_index, small_vectors):
        vectors, _ = small_vectors
        with pytest.raises(ValueError, match="string column"):
            acorn_index.search(vectors[0], RegexMatch("label", "x"), 5)

    def test_wrong_query_dim(self, acorn_index):
        with pytest.raises(ValueError, match="dim"):
            acorn_index.search(np.zeros(3), Equals("label", 1), 5)

    def test_router_empty_predicate_returns_empty(
        self, acorn_index, small_vectors
    ):
        vectors, _ = small_vectors
        searcher = HybridSearcher(acorn_index)
        result = searcher.search(vectors[0], Equals("label", 777), 5)
        assert len(result) == 0
        # Empty predicate estimates s=0 < s_min, so routing prefilters.
        assert searcher.last_decision.used_prefilter


class TestDegenerateDatasets:
    def test_single_point_index(self):
        table = AttributeTable(1)
        table.add_int_column("label", [3])
        index = AcornIndex(4, table, params=AcornParams(m=4, gamma=2), seed=0)
        index.add(np.ones(4))
        result = index.search(np.ones(4), Equals("label", 3), 5)
        assert result.ids.tolist() == [0]

    def test_two_points_one_passing(self):
        table = AttributeTable(2)
        table.add_int_column("label", [1, 2])
        index = AcornIndex(4, table, params=AcornParams(m=4, gamma=2), seed=0)
        index.add(np.zeros(4))
        index.add(np.ones(4))
        result = index.search(np.zeros(4), Equals("label", 2), 5)
        assert result.ids.tolist() == [1]

    def test_all_identical_vectors(self):
        table = AttributeTable(20)
        table.add_int_column("label", [i % 2 for i in range(20)])
        index = AcornIndex(4, table, params=AcornParams(m=4, gamma=2), seed=0)
        for _ in range(20):
            index.add(np.ones(4))
        result = index.search(np.ones(4), Equals("label", 0), 5)
        # Duplicates prune aggressively (every candidate is 2-hop
        # reachable at distance 0), so fewer than k results is valid;
        # whatever returns must pass the predicate at distance 0.
        assert len(result) >= 1
        assert (result.distances == 0).all()
        assert all(int(i) % 2 == 0 for i in result.ids)


class TestPersistenceErrors:
    def test_version_mismatch_rejected(self, tmp_path):
        table = AttributeTable(3)
        table.add_int_column("label", [1, 2, 3])
        index = AcornIndex(2, table, params=AcornParams(m=4, gamma=2), seed=0)
        for _ in range(3):
            index.add(np.zeros(2))
        path = tmp_path / "x.npz"
        save_index(index, path)
        # Corrupt the version marker.
        data = dict(np.load(path, allow_pickle=True))
        data["format_version"] = np.asarray([999])
        np.savez_compressed(path, **data)
        with pytest.raises(ValueError, match="version"):
            load_index(path)
