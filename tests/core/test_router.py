"""Unit tests for the selectivity-based hybrid router."""

import numpy as np
import pytest

from repro.core import HybridSearcher
from repro.predicates import Equals, OneOf
from repro.predicates.selectivity import SelectivityEstimator


class FixedEstimator(SelectivityEstimator):
    """Test double returning a canned selectivity."""

    def __init__(self, value: float) -> None:
        self.value = value

    def estimate(self, predicate) -> float:
        return self.value


class TestRouting:
    def test_low_selectivity_prefilters(self, acorn_index, small_vectors):
        vectors, _ = small_vectors
        searcher = HybridSearcher(acorn_index, estimator=FixedEstimator(0.01))
        searcher.search(vectors[0], Equals("label", 2), 5)
        assert searcher.last_decision.used_prefilter

    def test_high_selectivity_uses_graph(self, acorn_index, small_vectors):
        vectors, _ = small_vectors
        searcher = HybridSearcher(acorn_index, estimator=FixedEstimator(0.5))
        searcher.search(vectors[0], Equals("label", 2), 5)
        assert not searcher.last_decision.used_prefilter

    def test_s_min_defaults_to_index(self, acorn_index):
        searcher = HybridSearcher(acorn_index)
        assert searcher.s_min == pytest.approx(acorn_index.params.s_min)

    def test_compiled_predicate_uses_exact_selectivity(
        self, acorn_index, small_vectors
    ):
        vectors, _ = small_vectors
        compiled = Equals("label", 2).compile(acorn_index.table)
        searcher = HybridSearcher(acorn_index, estimator=FixedEstimator(0.0))
        searcher.search(vectors[0], compiled, 5)
        # Compiled predicates carry exact selectivity; estimator ignored.
        assert searcher.last_decision.estimated_selectivity == pytest.approx(
            compiled.selectivity
        )

    def test_prefilter_route_has_perfect_results(self, acorn_index, small_vectors):
        vectors, _ = small_vectors
        predicate = Equals("label", 3)
        compiled = predicate.compile(acorn_index.table)
        searcher = HybridSearcher(acorn_index, s_min=1.1)  # force prefilter
        result = searcher.search(vectors[0], predicate, 5)
        assert searcher.last_decision.used_prefilter
        assert compiled.passes_many(result.ids).all()
        assert (np.diff(result.distances) >= 0).all()

    def test_misestimate_degrades_only_efficiency(
        self, acorn_index, small_vectors
    ):
        """Paper §5.2: a wrong route still returns valid passing results."""
        vectors, _ = small_vectors
        predicate = OneOf("label", [0, 1, 2])  # actually high selectivity
        compiled = predicate.compile(acorn_index.table)
        wrong = HybridSearcher(acorn_index, estimator=FixedEstimator(0.001))
        result = wrong.search(vectors[0], predicate, 5)
        assert wrong.last_decision.used_prefilter
        assert compiled.passes_many(result.ids).all()
        assert len(result) == 5


class TestExplain:
    def test_prefilter_plan(self, acorn_index):
        from repro.core import HybridSearcher

        searcher = HybridSearcher(acorn_index, estimator=FixedEstimator(0.01))
        plan = searcher.explain(Equals("label", 2))
        assert plan.route == "pre-filter"
        assert plan.estimated_distance_computations == pytest.approx(
            0.01 * len(acorn_index)
        )

    def test_graph_plan(self, acorn_index):
        from repro.core import HybridSearcher

        searcher = HybridSearcher(acorn_index, estimator=FixedEstimator(0.5))
        plan = searcher.explain(Equals("label", 2))
        assert plan.route == "acorn-graph"
        # Sublinear estimate: far below the full scan.
        assert plan.estimated_distance_computations < 0.5 * len(acorn_index)

    def test_compiled_predicate_uses_exact(self, acorn_index):
        from repro.core import HybridSearcher

        compiled = Equals("label", 2).compile(acorn_index.table)
        searcher = HybridSearcher(acorn_index, estimator=FixedEstimator(0.0))
        plan = searcher.explain(compiled)
        assert plan.estimated_selectivity == pytest.approx(compiled.selectivity)


class TestStats:
    def test_stats_fields(self, acorn_index):
        stats = acorn_index.stats()
        assert stats["num_vectors"] == len(acorn_index)
        assert stats["levels"] == acorn_index.graph.max_level + 1
        assert stats["params"]["gamma"] == acorn_index.params.gamma
        assert stats["level_population"][0] == len(acorn_index)
        assert stats["nbytes"] > 0


class TestRouterBatch:
    def test_shared_predicate(self, acorn_index, small_vectors):
        from repro.core import HybridSearcher

        vectors, _ = small_vectors
        searcher = HybridSearcher(acorn_index)
        results = searcher.search_batch(vectors[:4], Equals("label", 1), k=3)
        assert len(results) == 4
        compiled = Equals("label", 1).compile(acorn_index.table)
        for result in results:
            assert compiled.passes_many(result.ids).all()

    def test_length_mismatch(self, acorn_index, small_vectors):
        from repro.core import HybridSearcher

        vectors, _ = small_vectors
        searcher = HybridSearcher(acorn_index)
        with pytest.raises(ValueError, match="predicates"):
            searcher.search_batch(vectors[:3], [Equals("label", 1)], k=3)
