"""Tests for workload-driven parameter suggestion."""

import numpy as np
import pytest

from repro.core.tuning import suggest_params, suggest_params_from_predicates
from repro.predicates import Equals


class TestSuggestParams:
    def test_gamma_follows_s_min(self):
        # 5th percentile of these samples interpolates to 0.12, so
        # gamma = ceil(1/0.12) = 9.
        params = suggest_params([0.1, 0.2, 0.3, 0.4, 0.5], m=16)
        assert params.gamma == 9
        assert params.m_beta == 32

    def test_percentile_controls_target(self):
        samples = list(np.linspace(0.05, 0.5, 100))
        low = suggest_params(samples, target_percentile=1.0)
        high = suggest_params(samples, target_percentile=50.0)
        assert low.gamma > high.gamma

    def test_gamma_cap_binds(self):
        params = suggest_params([0.001, 0.5], m=8, gamma_cap=20)
        assert params.gamma == 20

    def test_validation(self):
        with pytest.raises(ValueError, match="at least one"):
            suggest_params([])
        with pytest.raises(ValueError, match="lie in"):
            suggest_params([1.5])

    def test_serves_the_workload(self):
        """The prescribed gamma must cover (1 - percentile) of queries."""
        gen = np.random.default_rng(0)
        samples = gen.uniform(0.05, 0.6, size=200)
        params = suggest_params(samples, target_percentile=5.0)
        served = (samples >= params.s_min).mean()
        assert served >= 0.90


class TestSuggestFromPredicates:
    def test_end_to_end(self, labeled_table):
        predicates = [Equals("label", v) for v in range(6)]
        params = suggest_params_from_predicates(
            labeled_table, predicates, m=8, target_percentile=10.0, seed=0
        )
        # Each label has selectivity ~1/6: gamma should land near 6-9.
        assert 4 <= params.gamma <= 12
