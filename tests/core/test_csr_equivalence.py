"""CSR kernel vs the legacy dict kernel: byte-identical results.

The CSR flattening is a pure performance change; these tests pin the
contract that makes it safe: for every index type and every neighbor
strategy, the production search path returns *exactly* what the
pre-CSR dict-of-arrays kernel (:mod:`repro.core.dictsearch`) returned —
same ids, same distance bytes, same distance-computation counts, same
hop and visited-node counters.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import AcornParams, FlatAcornIndex
from repro.core.dictsearch import (
    LegacySearcherAdapter,
    compressed_neighbors_dict,
    expanded_neighbors_dict,
    filtered_neighbors_dict,
    freeze_graph_dict,
    legacy_acorn_search,
    legacy_hnsw_search,
    truncated_neighbors_dict,
)
from repro.core.search import (
    attach_expansion,
    compressed_neighbors,
    expanded_neighbors,
    filtered_neighbors,
    freeze_graph,
    truncated_neighbors,
)
from repro.engine import QueryBatch, SearchEngine
from repro.predicates import Equals, TruePredicate

K = 10
EF = 48


@pytest.fixture(scope="module")
def flat_index(small_vectors, labeled_table):
    params = AcornParams(m=8, gamma=6, m_beta=16, ef_construction=32)
    return FlatAcornIndex.build(
        small_vectors[0], labeled_table, params=params, seed=3
    )


def _queries(small_vectors, n=12, seed=424):
    vectors, _ = small_vectors
    gen = np.random.default_rng(seed)
    picks = gen.choice(vectors.shape[0], size=n, replace=False)
    return vectors[picks] + 0.05 * gen.standard_normal(
        (n, vectors.shape[1])
    ).astype(np.float32)


def _predicates(n=12):
    preds = [Equals("label", i % 6) for i in range(n - 1)]
    preds.append(TruePredicate())
    return preds


def assert_results_identical(csr, legacy):
    assert csr.ids.dtype == legacy.ids.dtype
    assert csr.ids.tobytes() == legacy.ids.tobytes()
    assert csr.distances.dtype == legacy.distances.dtype
    assert csr.distances.tobytes() == legacy.distances.tobytes()
    assert csr.distance_computations == legacy.distance_computations
    assert csr.hops == legacy.hops
    assert csr.visited_nodes == legacy.visited_nodes


class TestSearchEquivalence:
    """Full searches through both kernels, compared byte for byte."""

    def test_acorn_gamma(self, acorn_index, small_vectors):
        for query, pred in zip(_queries(small_vectors), _predicates()):
            csr = acorn_index.search(query, pred, K, ef_search=EF)
            legacy = legacy_acorn_search(acorn_index, query, pred, K,
                                         ef_search=EF)
            assert_results_identical(csr, legacy)

    def test_acorn_one(self, acorn_one_index, small_vectors):
        for query, pred in zip(_queries(small_vectors), _predicates()):
            csr = acorn_one_index.search(query, pred, K, ef_search=EF)
            legacy = legacy_acorn_search(acorn_one_index, query, pred, K,
                                         ef_search=EF)
            assert_results_identical(csr, legacy)

    def test_flat_acorn(self, flat_index, small_vectors):
        for query, pred in zip(_queries(small_vectors), _predicates()):
            csr = flat_index.search(query, pred, K, ef_search=EF)
            legacy = legacy_acorn_search(flat_index, query, pred, K,
                                         ef_search=EF)
            assert_results_identical(csr, legacy)

    def test_hnsw(self, hnsw_index, small_vectors):
        for query in _queries(small_vectors):
            csr = hnsw_index.search(query, K, ef_search=EF)
            legacy = legacy_hnsw_search(hnsw_index, query, K, ef_search=EF)
            assert csr.ids.tobytes() == legacy.ids.tobytes()
            assert csr.distances.tobytes() == legacy.distances.tobytes()
            assert csr.distance_computations == legacy.distance_computations

    def test_acorn_with_tombstones(self, small_vectors, labeled_table):
        params = AcornParams(m=8, gamma=6, m_beta=16, ef_construction=32)
        from repro.core import AcornIndex

        # A table larger than the vector set is allowed (spare rows
        # serve later inserts), so the 600-row table works for 200 nodes.
        index = AcornIndex.build(
            small_vectors[0][:200], labeled_table, params=params, seed=4,
        )
        for node in (3, 17, 42, 99):
            index.mark_deleted(node)
        for query, pred in zip(_queries(small_vectors, n=6),
                               _predicates(n=6)):
            csr = index.search(query, pred, K, ef_search=EF)
            legacy = legacy_acorn_search(index, query, pred, K, ef_search=EF)
            assert_results_identical(csr, legacy)

    def test_batched_legacy_adapter_matches_csr_engine(
        self, acorn_index, small_vectors
    ):
        """The engine fanning the dict kernel equals the CSR kernel."""
        queries = _queries(small_vectors)
        batch = QueryBatch.build(queries, _predicates(), k=K, ef_search=EF)
        with SearchEngine(acorn_index, num_workers=2) as engine:
            csr_results = engine.search_batch(batch)
        adapter = LegacySearcherAdapter(acorn_index)
        with SearchEngine(adapter, num_workers=2) as engine:
            legacy_results = engine.search_batch(batch)
        for csr, legacy in zip(csr_results, legacy_results):
            assert_results_identical(csr, legacy)


class TestStrategyEquivalence:
    """Vectorized CSR strategies vs the per-entry dict loops."""

    @pytest.fixture(scope="class")
    def levels(self, acorn_index):
        csr = freeze_graph(acorn_index.graph)
        dicts = freeze_graph_dict(acorn_index.graph)
        return csr, dicts

    def _masks(self, acorn_index):
        n = len(acorn_index)
        gen = np.random.default_rng(5)
        yield np.ones(n, dtype=bool)
        yield np.zeros(n, dtype=bool)
        for density in (0.05, 0.3, 0.7):
            yield gen.random(n) < density

    def test_filtered(self, acorn_index, levels):
        csr, dicts = levels
        for mask in self._masks(acorn_index):
            for node in dicts[0]:
                assert (
                    filtered_neighbors(csr[0], node, mask).tolist()
                    == filtered_neighbors_dict(dicts[0], node, mask)
                )

    @pytest.mark.parametrize("m_beta", [0, 2, 8, 16, 64])
    def test_compressed(self, acorn_index, levels, m_beta):
        csr, dicts = levels
        for mask in self._masks(acorn_index):
            for node in list(dicts[0])[::7]:
                assert (
                    compressed_neighbors(csr[0], node, mask, m_beta).tolist()
                    == compressed_neighbors_dict(dicts[0], node, mask, m_beta)
                )

    def test_expanded(self, acorn_index, levels):
        csr, dicts = levels
        for mask in self._masks(acorn_index):
            for node in list(dicts[0])[::7]:
                assert (
                    expanded_neighbors(csr[0], node, mask).tolist()
                    == expanded_neighbors_dict(dicts[0], node, mask)
                )

    @pytest.mark.parametrize("m", [0, 1, 4, 99])
    def test_truncated(self, levels, m):
        csr, dicts = levels
        for node in dicts[0]:
            assert (
                truncated_neighbors(csr[0], node, m).tolist()
                == truncated_neighbors_dict(dicts[0], node, m)
            )

    def test_upper_levels_too(self, acorn_index, levels):
        csr, dicts = levels
        mask = np.ones(len(acorn_index), dtype=bool)
        for lev in range(1, len(dicts)):
            for node in dicts[lev]:
                assert (
                    filtered_neighbors(csr[lev], node, mask).tolist()
                    == filtered_neighbors_dict(dicts[lev], node, mask)
                )


class TestFrozenLevelContract:
    def test_csr_arrays_read_only(self, acorn_index):
        for level in acorn_index.freeze():
            assert not level.indptr.flags.writeable
            assert not level.indices.flags.writeable
            assert not level.node_ids.flags.writeable

    def test_level_len_and_contains(self, acorn_index):
        csr = freeze_graph(acorn_index.graph)
        dicts = freeze_graph_dict(acorn_index.graph)
        for level_csr, level_dict in zip(csr, dicts):
            assert len(level_csr) == len(level_dict)
            for node in level_dict:
                assert node in level_csr

    def test_absent_nodes_have_empty_slices(self, acorn_index):
        csr = freeze_graph(acorn_index.graph)
        if len(csr) < 2:
            pytest.skip("graph has a single level")
        top = csr[-1]
        dicts = freeze_graph_dict(acorn_index.graph)
        absent = set(dicts[0]) - set(dicts[-1])
        if not absent:
            pytest.skip("all nodes reach the top level")
        node = next(iter(absent))
        assert node not in top
        assert top[node].size == 0


class TestMaterializedExpansion:
    """attach_expansion's fast path vs the dynamic path vs the dict loop.

    The materialized lists must be invisible at the result level: for
    every mask, slicing the precomputed deduplicated sequence and
    gathering the mask yields exactly what the dynamic per-hop
    expansion (and the legacy dict loop) yields.
    """

    @pytest.fixture()
    def fresh_level(self, acorn_index):
        # A private snapshot so attaching here never leaks into the
        # module-scoped fixtures used by the other test classes.
        return freeze_graph(acorn_index.graph)[0]

    @pytest.mark.parametrize("m_beta", [0, 2, 8, 16])
    def test_fast_path_matches_dynamic_and_dict(
        self, acorn_index, fresh_level, m_beta
    ):
        dict_level = freeze_graph_dict(acorn_index.graph)[0]
        dynamic = {}
        n = len(acorn_index)
        gen = np.random.default_rng(11)
        masks = [np.ones(n, dtype=bool), np.zeros(n, dtype=bool),
                 gen.random(n) < 0.3]
        nodes = list(dict_level)[::5]
        for i, mask in enumerate(masks):
            for node in nodes:
                dynamic[i, node] = compressed_neighbors(
                    fresh_level, node, mask, m_beta
                ).tolist()
        assert attach_expansion(fresh_level, m_beta)
        assert m_beta in fresh_level._expansions
        for i, mask in enumerate(masks):
            for node in nodes:
                fast = compressed_neighbors(
                    fresh_level, node, mask, m_beta
                ).tolist()
                assert fast == dynamic[i, node]
                assert fast == compressed_neighbors_dict(
                    dict_level, node, mask, m_beta
                )

    def test_attach_is_idempotent(self, fresh_level):
        assert attach_expansion(fresh_level, 4)
        first = fresh_level._expansions[4]
        assert attach_expansion(fresh_level, 4)
        assert fresh_level._expansions[4] is first

    def test_budget_rejection_leaves_level_unchanged(self, fresh_level):
        # An absurdly small bound must refuse to materialize; the
        # dynamic path still answers correctly afterwards.
        assert not attach_expansion(fresh_level, 4, max_ratio=0.01)
        assert 4 not in fresh_level._expansions
        mask = np.ones(fresh_level.num_ids, dtype=bool)
        node = int(fresh_level.node_ids[0])
        got = compressed_neighbors(fresh_level, node, mask, 4)
        assert isinstance(got, np.ndarray)

    def test_expansion_arrays_read_only(self, fresh_level):
        assert attach_expansion(fresh_level, 8)
        exp_indptr, exp_indices = fresh_level._expansions[8]
        assert not exp_indptr.flags.writeable
        assert not exp_indices.flags.writeable

    def test_production_acorn_gamma_attaches(self, acorn_index):
        frozen = acorn_index.freeze()
        assert acorn_index.params.m_beta in frozen[0]._expansions
