"""Tests for tombstone compaction (rebuild)."""

import numpy as np
import pytest

from repro.attributes import AttributeTable
from repro.core import AcornIndex, AcornOneIndex, AcornParams
from repro.core.maintenance import rebuild
from repro.predicates import Equals, TruePredicate


@pytest.fixture
def deleted_world():
    gen = np.random.default_rng(71)
    n = 250
    vectors = gen.standard_normal((n, 8)).astype(np.float32)
    table = AttributeTable(n)
    table.add_int_column("label", gen.integers(0, 3, size=n))
    table.add_string_column("name", [f"item-{i}" for i in range(n)])
    table.add_keywords_column(
        "tags", [["even" if i % 2 == 0 else "odd"] for i in range(n)]
    )
    index = AcornIndex.build(
        vectors, table,
        params=AcornParams(m=6, gamma=4, m_beta=8, ef_construction=24),
        seed=0,
    )
    victims = [5, 17, 100, 249]
    for victim in victims:
        index.mark_deleted(victim)
    return index, vectors, victims


class TestRebuild:
    def test_size_and_tombstones(self, deleted_world):
        index, vectors, victims = deleted_world
        new_index, id_map = rebuild(index, seed=1)
        assert len(new_index) == len(vectors) - len(victims)
        assert new_index.num_deleted == 0

    def test_id_map_semantics(self, deleted_world):
        index, vectors, victims = deleted_world
        new_index, id_map = rebuild(index, seed=1)
        for victim in victims:
            assert id_map[victim] == -1
        survivors = [i for i in range(len(vectors)) if i not in victims]
        mapped = id_map[survivors]
        assert (mapped >= 0).all()
        assert sorted(mapped.tolist()) == list(range(len(survivors)))

    def test_vectors_and_attributes_follow(self, deleted_world):
        index, vectors, victims = deleted_world
        new_index, id_map = rebuild(index, seed=1)
        old_id = 42
        new_id = int(id_map[old_id])
        np.testing.assert_array_equal(
            new_index.store.vectors[new_id], vectors[old_id]
        )
        assert new_index.table.row(new_id)["name"] == f"item-{old_id}"
        assert new_index.table.row(new_id)["tags"] == ["even"]

    def test_search_equivalent_after_rebuild(self, deleted_world):
        index, vectors, victims = deleted_world
        new_index, id_map = rebuild(index, seed=1)
        query = vectors[42]
        old = index.search(query, TruePredicate(), 5, ef_search=48)
        new = new_index.search(query, TruePredicate(), 5, ef_search=48)
        old_translated = [int(id_map[i]) for i in old.ids]
        # The top result (the exact point) must agree; deeper ranks may
        # shuffle between independently built graphs.
        assert new.ids[0] == old_translated[0]

    def test_predicates_work_on_new_index(self, deleted_world):
        index, vectors, _ = deleted_world
        new_index, _ = rebuild(index, seed=1)
        predicate = Equals("label", 1)
        compiled = predicate.compile(new_index.table)
        result = new_index.search(vectors[0], predicate, 5, ef_search=32)
        assert compiled.passes_many(result.ids).all()

    def test_rebuild_acorn_one(self):
        gen = np.random.default_rng(3)
        n = 120
        vectors = gen.standard_normal((n, 6)).astype(np.float32)
        table = AttributeTable(n)
        table.add_int_column("label", gen.integers(0, 2, size=n))
        index = AcornOneIndex.build(vectors, table, m=8, ef_construction=24,
                                    seed=0)
        index.mark_deleted(0)
        new_index, id_map = rebuild(index, seed=1)
        assert isinstance(new_index, AcornOneIndex)
        assert len(new_index) == n - 1
        assert id_map[0] == -1

    def test_rebuild_without_deletions_is_copy(self, deleted_world):
        index, vectors, victims = deleted_world
        for victim in victims:
            index.unmark_deleted(victim)
        new_index, id_map = rebuild(index, seed=1)
        assert len(new_index) == len(vectors)
        np.testing.assert_array_equal(id_map, np.arange(len(vectors)))


class TestRebuildQuantization:
    """Rebuilding a quantized index must preserve the quantized path."""

    def _quantized_world(self):
        gen = np.random.default_rng(97)
        n = 200
        vectors = gen.standard_normal((n, 10)).astype(np.float32)
        table = AttributeTable(n)
        table.add_int_column("label", gen.integers(0, 3, size=n))
        params = AcornParams(m=6, gamma=4, m_beta=8, ef_construction=24)
        index = AcornIndex.build(vectors, table, params=params, seed=0,
                                 quantization="sq8")
        for victim in (3, 50, 50 + 1, 199):
            index.mark_deleted(victim)
        return index, vectors, table, params, gen

    def test_config_survives_rebuild(self):
        index, *_ = self._quantized_world()
        new_index, _ = rebuild(index, seed=1)
        assert new_index.quantization is not None
        assert new_index.quantization.to_json() == index.quantization.to_json()

    def test_quantized_search_equals_fresh_build(self):
        """rebuild() of a quantized index answers search_batch_quantized
        identically to an index freshly built (same seed) over the live
        subset with quantization enabled up front — the codec retrain is
        not allowed to drift from the build-time path."""
        from repro.core.maintenance import live_subset

        index, vectors, table, params, gen = self._quantized_world()
        new_index, id_map = rebuild(index, seed=1)

        _, live_vectors, live_table = live_subset(index)
        fresh = AcornIndex.build(live_vectors, live_table, params=params,
                                 seed=1, quantization="sq8")

        queries = vectors[gen.choice(len(vectors), size=8, replace=False)]
        predicates = [Equals("label", int(i % 3)) for i in range(8)]
        got = new_index.search_batch_quantized(queries, predicates, 5,
                                               ef_search=48)
        want = fresh.search_batch_quantized(queries, predicates, 5,
                                            ef_search=48)
        for a, b in zip(got, want):
            np.testing.assert_array_equal(a.ids, b.ids)
            np.testing.assert_allclose(a.distances, b.distances)

    def test_unquantized_rebuild_stays_unquantized(self, deleted_world):
        index, _, _ = deleted_world
        new_index, _ = rebuild(index, seed=1)
        assert new_index.quantization is None


class TestRebuildPersistenceRoundtrip:
    """The (new_index, id_map) contract must survive save/load."""

    def test_id_map_roundtrips_through_persistence(self, deleted_world,
                                                   tmp_path):
        from repro.persistence import load_index, save_index

        index, vectors, victims = deleted_world
        new_index, id_map = rebuild(index, seed=1)

        save_index(new_index, tmp_path / "rebuilt.npz")
        np.save(tmp_path / "id_map.npy", id_map)

        restored = load_index(tmp_path / "rebuilt.npz")
        restored_map = np.load(tmp_path / "id_map.npy")
        np.testing.assert_array_equal(restored_map, id_map)

        # Translating an old id through the persisted map lands on the
        # same entity in the restored index.
        for old_id in (0, 42, 128):
            new_id = int(restored_map[old_id])
            assert new_id >= 0
            np.testing.assert_array_equal(
                restored.store.vectors[new_id], vectors[old_id]
            )
            assert (restored.table.row(new_id)["name"]
                    == f"item-{old_id}")
        for victim in victims:
            assert restored_map[victim] == -1

        # And the restored index searches exactly like the one we saved.
        for q in vectors[:5]:
            a = new_index.search(q, TruePredicate(), 5, ef_search=48)
            b = restored.search(q, TruePredicate(), 5, ef_search=48)
            np.testing.assert_array_equal(a.ids, b.ids)
            np.testing.assert_allclose(a.distances, b.distances)

    def test_quantized_rebuild_roundtrips(self, tmp_path):
        from repro.persistence import load_index, save_index

        gen = np.random.default_rng(101)
        n = 150
        vectors = gen.standard_normal((n, 8)).astype(np.float32)
        table = AttributeTable(n)
        table.add_int_column("label", gen.integers(0, 3, size=n))
        index = AcornIndex.build(
            vectors, table,
            params=AcornParams(m=6, gamma=4, m_beta=8, ef_construction=24),
            seed=0, quantization="sq8",
        )
        index.mark_deleted(7)
        new_index, _ = rebuild(index, seed=1)
        save_index(new_index, tmp_path / "q.npz")
        restored = load_index(tmp_path / "q.npz")
        assert restored.quantization is not None
        queries = vectors[:4]
        predicates = [Equals("label", 0)] * 4
        a = new_index.search_batch_quantized(queries, predicates, 5)
        b = restored.search_batch_quantized(queries, predicates, 5)
        for x, y in zip(a, b):
            np.testing.assert_array_equal(x.ids, y.ids)
