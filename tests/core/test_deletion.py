"""Tests for tombstone deletion."""

import numpy as np
import pytest

from repro.attributes import AttributeTable
from repro.core import AcornIndex, AcornParams, HybridSearcher
from repro.predicates import Equals, TruePredicate


@pytest.fixture
def index():
    gen = np.random.default_rng(51)
    n = 300
    vectors = gen.standard_normal((n, 8)).astype(np.float32)
    table = AttributeTable(n)
    table.add_int_column("label", gen.integers(0, 3, size=n))
    idx = AcornIndex.build(
        vectors, table, params=AcornParams(m=6, gamma=4, m_beta=8,
                                           ef_construction=24),
        seed=0,
    )
    return idx, vectors


class TestTombstones:
    def test_deleted_node_never_returned(self, index):
        idx, vectors = index
        top = idx.search(vectors[42], TruePredicate(), 1, ef_search=32)
        assert top.ids[0] == 42
        idx.mark_deleted(42)
        after = idx.search(vectors[42], TruePredicate(), 5, ef_search=32)
        assert 42 not in after.ids

    def test_unmark_restores(self, index):
        idx, vectors = index
        idx.mark_deleted(42)
        idx.unmark_deleted(42)
        top = idx.search(vectors[42], TruePredicate(), 1, ef_search=32)
        assert top.ids[0] == 42

    def test_composes_with_predicates(self, index):
        idx, vectors = index
        predicate = Equals("label", 1)
        compiled = predicate.compile(idx.table)
        baseline = idx.search(vectors[0], predicate, 5, ef_search=32)
        victim = int(baseline.ids[0])
        idx.mark_deleted(victim)
        after = idx.search(vectors[0], predicate, 5, ef_search=32)
        assert victim not in after.ids
        assert compiled.passes_many(after.ids).all()
        idx.unmark_deleted(victim)

    def test_shared_compiled_mask_not_mutated(self, index):
        idx, vectors = index
        compiled = TruePredicate().compile(idx.table)
        idx.mark_deleted(10)
        idx.search(vectors[0], compiled, 5, ef_search=16)
        assert compiled.mask.all(), "search must not mutate cached masks"
        idx.unmark_deleted(10)

    def test_counters_and_bounds(self, index):
        idx, _ = index
        idx.mark_deleted(0)
        idx.mark_deleted(0)
        assert idx.num_deleted == 1
        assert idx.is_deleted(0)
        idx.unmark_deleted(0)
        assert idx.num_deleted == 0
        with pytest.raises(IndexError):
            idx.mark_deleted(10_000)

    def test_router_prefilter_path_respects_tombstones(self, index):
        idx, vectors = index
        searcher = HybridSearcher(idx, s_min=1.1)  # force pre-filter route
        top = searcher.search(vectors[7], TruePredicate(), 1)
        assert top.ids[0] == 7
        idx.mark_deleted(7)
        after = searcher.search(vectors[7], TruePredicate(), 5)
        assert searcher.last_decision.used_prefilter
        assert 7 not in after.ids
        idx.unmark_deleted(7)


class TestTombstoneMaskCache:
    def test_composed_mask_reused_across_queries(self, index):
        idx, vectors = index
        idx.mark_deleted(7)
        pred = Equals("label", 1)
        compiled = pred.compile(idx.table)
        first = idx._effective_mask(compiled.mask)
        second = idx._effective_mask(compiled.mask)
        assert first is second
        assert not first.flags.writeable
        assert not first[7]

    def test_cache_invalidated_by_deletion_changes(self, index):
        idx, vectors = index
        idx.mark_deleted(7)
        compiled = Equals("label", 1).compile(idx.table)
        first = idx._effective_mask(compiled.mask)
        idx.mark_deleted(9)
        second = idx._effective_mask(compiled.mask)
        assert second is not first
        assert not second[9]
        idx.unmark_deleted(9)
        third = idx._effective_mask(compiled.mask)
        assert third is not second
        assert third[9] or not compiled.mask[9]

    def test_no_tombstones_passthrough(self, index):
        idx, vectors = index
        compiled = Equals("label", 0).compile(idx.table)
        assert idx._effective_mask(compiled.mask) is compiled.mask

    def test_source_mask_never_mutated(self, index):
        idx, vectors = index
        compiled = Equals("label", 2).compile(idx.table)
        before = compiled.mask.copy()
        idx.mark_deleted(int(np.flatnonzero(compiled.mask)[0]))
        idx._effective_mask(compiled.mask)
        np.testing.assert_array_equal(compiled.mask, before)

    def test_cache_bounded(self, index):
        idx, vectors = index
        idx.mark_deleted(3)
        masks = [np.ones(len(idx), dtype=bool) for _ in range(12)]
        for mask in masks:
            idx._effective_mask(mask)
        assert len(idx._mask_cache) <= 8
