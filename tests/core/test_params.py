"""Unit tests for ACORN parameter validation."""

import math

import pytest

from repro.core.params import AcornParams, PruningStrategy


class TestValidation:
    def test_defaults(self):
        params = AcornParams()
        assert params.m == 32
        assert params.gamma == 12
        assert params.m_beta == 32  # defaults to M
        assert params.pruning is PruningStrategy.ACORN

    def test_rejects_small_m(self):
        with pytest.raises(ValueError, match="M"):
            AcornParams(m=1)

    def test_rejects_small_gamma(self):
        with pytest.raises(ValueError, match="gamma"):
            AcornParams(gamma=0)

    def test_rejects_m_beta_above_budget(self):
        with pytest.raises(ValueError, match="M_beta"):
            AcornParams(m=8, gamma=2, m_beta=17)

    def test_m_beta_zero_allowed(self):
        assert AcornParams(m=8, gamma=2, m_beta=0).m_beta == 0

    def test_rejects_bad_efc(self):
        with pytest.raises(ValueError, match="efc"):
            AcornParams(ef_construction=0)

    def test_pruning_coerced_from_string(self):
        params = AcornParams(pruning="rng-blind")
        assert params.pruning is PruningStrategy.RNG_BLIND


class TestDerived:
    def test_max_degree(self):
        assert AcornParams(m=16, gamma=5).max_degree == 80

    def test_s_min(self):
        assert AcornParams(gamma=10).s_min == pytest.approx(0.1)

    def test_m_l_matches_hnsw(self):
        assert AcornParams(m=16).m_l == pytest.approx(1 / math.log(16))

    def test_effective_efc_covers_expansion(self):
        params = AcornParams(m=16, gamma=8, ef_construction=40)
        assert params.effective_ef_construction == 128

    def test_effective_efc_keeps_large_efc(self):
        params = AcornParams(m=4, gamma=2, ef_construction=100)
        assert params.effective_ef_construction == 100


class TestFactories:
    def test_from_s_min(self):
        params = AcornParams.from_s_min(0.1, m=16)
        assert params.gamma == 10
        assert params.s_min <= 0.1

    def test_from_s_min_rounds_up(self):
        assert AcornParams.from_s_min(0.3).gamma == 4

    def test_from_s_min_validates(self):
        with pytest.raises(ValueError):
            AcornParams.from_s_min(0.0)
        with pytest.raises(ValueError):
            AcornParams.from_s_min(1.5)

    def test_acorn_1(self):
        params = AcornParams.acorn_1(m=24)
        assert params.gamma == 1
        assert params.m_beta == 24
        assert params.pruning is PruningStrategy.NONE
        assert params.max_degree == 24
