"""Behavioural tests for the ACORN-1 index."""

from repro.attributes import AttributeTable

import numpy as np
import pytest

from repro.core import AcornOneIndex
from repro.core.params import PruningStrategy
from repro.datasets.ground_truth import filtered_knn
from repro.predicates import Equals


class TestConstruction:
    def test_params_fixed_to_acorn_1(self, acorn_one_index):
        params = acorn_one_index.params
        assert params.gamma == 1
        assert params.m_beta == params.m
        assert params.pruning is PruningStrategy.NONE

    def test_graph_invariants(self, acorn_one_index):
        acorn_one_index.graph.validate()

    def test_lists_bounded_like_hnsw(self, acorn_one_index):
        graph = acorn_one_index.graph
        m = acorn_one_index.params.m
        for node in graph.nodes_at_level(0):
            assert len(graph.neighbors(node, 0)) <= 2 * m
        for level in range(1, graph.max_level + 1):
            for node in graph.nodes_at_level(level):
                assert len(graph.neighbors(node, level)) <= m

    def test_smaller_than_acorn_gamma_at_matched_m(
        self, small_vectors, labeled_table
    ):
        # The paper's Table 5 claim: at equal M, ACORN-1's index is
        # smaller than ACORN-γ's (no γ-expanded upper levels).
        from repro.core import AcornIndex, AcornParams

        vectors, _ = small_vectors
        n = 250
        table = AttributeTable(n)
        table.add_int_column(
            "label", np.asarray(labeled_table.column("label"))[:n]
        )
        gamma_index = AcornIndex.build(
            vectors[:n], table,
            params=AcornParams(m=8, gamma=6, m_beta=8, ef_construction=32),
            seed=5,
        )
        one_index = AcornOneIndex.build(
            vectors[:n], table, m=8, ef_construction=32, seed=5
        )
        assert one_index.nbytes() < gamma_index.nbytes()


class TestSearch:
    def test_recall_above_threshold(
        self, acorn_one_index, small_vectors, labeled_table
    ):
        vectors, _ = small_vectors
        gen = np.random.default_rng(13)
        queries = vectors[gen.integers(0, len(vectors), 40)] + 0.05
        labels = gen.integers(0, 6, size=40)
        masks = [Equals("label", int(l)).mask(labeled_table) for l in labels]
        gt = filtered_knn(vectors, list(queries), masks, k=10)
        recalls = []
        for q, label, g in zip(queries, labels, gt):
            result = acorn_one_index.search(
                q, Equals("label", int(label)), 10, ef_search=64
            )
            recalls.append(
                len(set(result.ids.tolist()) & set(g.tolist())) / len(g)
            )
        assert np.mean(recalls) > 0.8

    def test_all_results_pass_predicate(self, acorn_one_index, small_vectors):
        vectors, _ = small_vectors
        predicate = Equals("label", 1)
        compiled = predicate.compile(acorn_one_index.table)
        for q in vectors[:10]:
            result = acorn_one_index.search(q, predicate, 5, ef_search=32)
            assert compiled.passes_many(result.ids).all()

    def test_expansion_recovers_two_hop_targets(self, acorn_one_index):
        # ACORN-1's lookup must reach 2-hop neighbors: with gamma=1 its
        # stored lists are M-sparse, so a highly-selective predicate is
        # only searchable through expansion.  Verify the lookup returns
        # nodes absent from the stored one-hop list.
        graph = acorn_one_index.graph
        adjacency = acorn_one_index._adjacency()[0]
        node = graph.entry_point
        one_hop = set(graph.neighbors(node, 0))
        two_hop = set()
        for hop in one_hop:
            two_hop.update(graph.neighbors(hop, 0))
        strict_two_hop = two_hop - one_hop - {node}
        if not strict_two_hop:
            pytest.skip("entry point has no strict 2-hop neighborhood")
        target = next(iter(strict_two_hop))
        mask = np.zeros(len(acorn_one_index), dtype=bool)
        mask[target] = True
        from repro.core.search import expanded_neighbors

        got = expanded_neighbors(adjacency, node, mask)
        assert got.tolist() == [target]
