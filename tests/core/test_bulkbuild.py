"""Tests for the wave-parallel, GEMM-batched bulk construction pipeline.

The determinism contract under test (Table 4 TTI reproduction):

- ``n_workers=1`` dispatches to the legacy sequential insert loop, so
  the graph is byte-identical to a pre-pipeline build.
- ``wave_cap=1`` forces solo waves, where the pipeline replays the
  sequential traversal and reverse-edge order exactly — the graph must
  be *edge-identical* to the sequential build for every index family.
- ``n_workers>1`` with a fixed seed is run-to-run deterministic (same
  graph checksum every build), structurally valid, and recall-
  equivalent to the sequential graph even though not edge-identical.
"""

import numpy as np
import pytest

from repro.attributes.table import AttributeTable
from repro.core.acorn import AcornIndex, AcornOneIndex, AcornParams
from repro.core.bulkbuild import graph_checksum, wave_schedule
from repro.hnsw.hnsw import HnswIndex
from repro.predicates import Equals
from repro.shard import HashPartitioner, ShardedAcornIndex


def _world(n=300, dim=12, seed=5, n_labels=4):
    gen = np.random.default_rng(seed)
    vectors = gen.standard_normal((n, dim)).astype(np.float32)
    labels = gen.integers(0, n_labels, size=n)
    table = AttributeTable(n)
    table.add_int_column("label", labels)
    return vectors, table, labels


PARAMS = AcornParams(m=6, gamma=4, ef_construction=24)


class TestWaveSchedule:
    def test_covers_every_insert_exactly_once(self):
        for n in (0, 1, 2, 7, 63, 500):
            assert sum(wave_schedule(n, cap=64)) == n

    def test_ramp_doubles_up_to_cap(self):
        waves = wave_schedule(500, cap=64)
        ramp = waves[: waves.index(64) + 1]
        assert ramp == [1, 2, 4, 8, 16, 32, 64]
        assert all(w == 64 for w in waves[len(ramp):-1])

    def test_cap_respected(self):
        assert max(wave_schedule(1000, cap=16)) == 16
        assert wave_schedule(5, cap=1) == [1] * 5


class TestGraphChecksum:
    def test_identical_builds_share_checksum(self):
        vectors, table, _ = _world()
        a = AcornIndex.build(vectors, table, params=PARAMS, seed=1)
        b = AcornIndex.build(vectors, table, params=PARAMS, seed=1)
        assert graph_checksum(a.graph) == graph_checksum(b.graph)

    def test_checksum_sees_single_edge_change(self):
        vectors, table, _ = _world()
        index = AcornIndex.build(vectors, table, params=PARAMS, seed=1)
        before = graph_checksum(index.graph)
        node = index.graph.entry_point
        neighbors = list(index.graph.neighbors(node, 0))
        index.graph.set_neighbors(node, 0, neighbors[:-1])
        assert graph_checksum(index.graph) != before


class TestSequentialEquivalence:
    """wave_cap=1 (solo waves) must replay the sequential build exactly."""

    def test_acorn_gamma_edge_identical(self):
        vectors, table, _ = _world()
        legacy = AcornIndex.build(vectors, table, params=PARAMS, seed=2)
        solo = AcornIndex.build(vectors, table, params=PARAMS, seed=2,
                                n_workers=2, wave_cap=1)
        assert graph_checksum(legacy.graph) == graph_checksum(solo.graph)

    def test_acorn_one_edge_identical(self):
        vectors, table, _ = _world()
        legacy = AcornOneIndex.build(vectors, table, m=6,
                                     ef_construction=24, seed=2)
        solo = AcornOneIndex.build(vectors, table, m=6, ef_construction=24,
                                   seed=2, n_workers=2, wave_cap=1)
        assert graph_checksum(legacy.graph) == graph_checksum(solo.graph)

    def test_hnsw_edge_identical(self):
        vectors, _, _ = _world()
        legacy = HnswIndex.build(vectors, m=6, ef_construction=24, seed=2)
        solo = HnswIndex.build(vectors, m=6, ef_construction=24, seed=2,
                               n_workers=2, wave_cap=1)
        assert graph_checksum(legacy.graph) == graph_checksum(solo.graph)

    def test_compressed_level_config_edge_identical(self):
        # The reverse-edge order regression config: compressed levels
        # re-prune against other owners' live lists, so application
        # order is observable.  m_beta < m*gamma keeps compression on.
        gen = np.random.default_rng(3)
        vectors = gen.standard_normal((600, 16)).astype(np.float32)
        table = AttributeTable(600)
        table.add_int_column("label", gen.integers(0, 4, size=600))
        params = AcornParams(m=8, gamma=6, ef_construction=48)
        legacy = AcornIndex.build(vectors, table, params=params, seed=3)
        solo = AcornIndex.build(vectors, table, params=params, seed=3,
                                n_workers=2, wave_cap=1)
        assert graph_checksum(legacy.graph) == graph_checksum(solo.graph)


class TestParallelDeterminism:
    def test_run_to_run_deterministic(self):
        vectors, table, _ = _world()
        first = AcornIndex.build(vectors, table, params=PARAMS, seed=4,
                                 n_workers=4)
        second = AcornIndex.build(vectors, table, params=PARAMS, seed=4,
                                  n_workers=4)
        assert graph_checksum(first.graph) == graph_checksum(second.graph)

    def test_worker_count_does_not_change_graph(self):
        # Wave composition is fixed by (n, wave_cap); workers only split
        # the deterministic work, so 2 and 4 workers agree.
        vectors, table, _ = _world()
        two = AcornIndex.build(vectors, table, params=PARAMS, seed=4,
                               n_workers=2)
        four = AcornIndex.build(vectors, table, params=PARAMS, seed=4,
                                n_workers=4)
        assert graph_checksum(two.graph) == graph_checksum(four.graph)

    def test_parallel_graph_validates(self):
        vectors, table, _ = _world()
        index = AcornIndex.build(vectors, table, params=PARAMS, seed=4,
                                 n_workers=4)
        index.graph.validate()

    def test_levels_match_sequential(self):
        # Pre-drawn levels consume the same RNG stream as the
        # sequential loop, so every node keeps its level assignment.
        vectors, table, _ = _world()
        legacy = AcornIndex.build(vectors, table, params=PARAMS, seed=4)
        parallel = AcornIndex.build(vectors, table, params=PARAMS, seed=4,
                                    n_workers=4)
        for node in range(len(vectors)):
            assert (legacy.graph.node_level(node)
                    == parallel.graph.node_level(node))


class TestRecallParity:
    def test_parallel_recall_matches_sequential(self):
        vectors, table, labels = _world(n=500, dim=16, seed=6)
        legacy = AcornIndex.build(vectors, table, params=PARAMS, seed=6)
        parallel = AcornIndex.build(vectors, table, params=PARAMS, seed=6,
                                    n_workers=4)
        gen = np.random.default_rng(7)
        queries = gen.standard_normal((20, 16)).astype(np.float32)
        k = 10
        hits = {"seq": 0, "par": 0}
        total = 0
        for qi, query in enumerate(queries):
            predicate = Equals("label", int(labels[qi % 4]))
            passing = predicate.compile(table).passing_ids
            dists = np.linalg.norm(
                vectors[passing].astype(np.float64) - query.astype(np.float64),
                axis=1,
            )
            truth = set(passing[np.argsort(dists, kind="stable")[:k]].tolist())
            total += k
            for key, index in (("seq", legacy), ("par", parallel)):
                found = index.search(query, predicate, k=k, ef_search=80).ids
                hits[key] += len(truth & set(found.tolist()))
        recall_seq = hits["seq"] / total
        recall_par = hits["par"] / total
        assert abs(recall_seq - recall_par) <= 0.01


class TestShardedParallelBuild:
    def test_build_workers_shard_identical(self):
        vectors, table, _ = _world(n=240)
        sequential = ShardedAcornIndex.build(
            vectors, table, partitioner=HashPartitioner(n_shards=3),
            params=PARAMS, seed=8,
        )
        threaded = ShardedAcornIndex.build(
            vectors, table, partitioner=HashPartitioner(n_shards=3),
            params=PARAMS, seed=8, build_workers=3,
        )
        for a, b in zip(sequential.shards, threaded.shards):
            assert graph_checksum(a.graph) == graph_checksum(b.graph)

    def test_shard_builds_can_use_wave_pipeline(self):
        vectors, table, _ = _world(n=240)
        index = ShardedAcornIndex.build(
            vectors, table, partitioner=HashPartitioner(n_shards=3),
            params=PARAMS, seed=8, build_workers=3, n_workers=2,
        )
        for shard in index.shards:
            shard.graph.validate()


class TestDispatch:
    def test_one_worker_is_the_legacy_path(self):
        # n_workers=1 must dispatch to the sequential insert loop:
        # graphs byte-identical to a build that never names the knob.
        vectors, table, _ = _world(n=200)
        for build_legacy, build_one in (
            (lambda: AcornIndex.build(vectors, table, params=PARAMS, seed=9),
             lambda: AcornIndex.build(vectors, table, params=PARAMS, seed=9,
                                      n_workers=1)),
            (lambda: AcornOneIndex.build(vectors, table, m=6,
                                         ef_construction=24, seed=9),
             lambda: AcornOneIndex.build(vectors, table, m=6,
                                         ef_construction=24, seed=9,
                                         n_workers=1)),
            (lambda: HnswIndex.build(vectors, m=6, ef_construction=24,
                                     seed=9),
             lambda: HnswIndex.build(vectors, m=6, ef_construction=24,
                                     seed=9, n_workers=1)),
        ):
            assert (graph_checksum(build_legacy().graph)
                    == graph_checksum(build_one().graph))

    def test_invalid_worker_count_rejected(self):
        vectors, table, _ = _world(n=40)
        with pytest.raises((ValueError, TypeError)):
            AcornIndex.build(vectors, table, params=PARAMS, seed=0,
                             n_workers=0)
