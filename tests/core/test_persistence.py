"""Round-trip tests for index persistence."""

import numpy as np
import pytest

from repro.attributes import AttributeTable
from repro.core import AcornIndex, AcornOneIndex, AcornParams
from repro.hnsw import HnswIndex
from repro.persistence import load_index, save_index
from repro.predicates import ContainsAny, Equals


@pytest.fixture
def world():
    gen = np.random.default_rng(31)
    n, dim = 200, 8
    vectors = gen.standard_normal((n, dim)).astype(np.float32)
    table = AttributeTable(n)
    table.add_int_column("label", gen.integers(0, 3, size=n))
    table.add_float_column("price", gen.uniform(1, 10, size=n))
    table.add_string_column("caption", [f"item {i} of kind" for i in range(n)])
    table.add_keywords_column(
        "tags", [["a", "b"] if i % 2 else ["c"] for i in range(n)]
    )
    return vectors, table


class TestHnswRoundtrip:
    def test_search_identical(self, world, tmp_path):
        vectors, _ = world
        index = HnswIndex.build(vectors, m=6, ef_construction=24, seed=0)
        path = tmp_path / "hnsw.npz"
        save_index(index, path)
        restored = load_index(path)
        for q in vectors[:10]:
            a = index.search(q, 5, ef_search=32)
            b = restored.search(q, 5, ef_search=32)
            np.testing.assert_array_equal(a.ids, b.ids)

    def test_structure_preserved(self, world, tmp_path):
        vectors, _ = world
        index = HnswIndex.build(vectors, m=6, ef_construction=24, seed=0)
        path = tmp_path / "hnsw.npz"
        save_index(index, path)
        restored = load_index(path)
        assert restored.graph.entry_point == index.graph.entry_point
        assert restored.graph.max_level == index.graph.max_level
        assert restored.m == index.m
        restored.graph.validate()


class TestAcornRoundtrip:
    @pytest.fixture
    def index(self, world):
        vectors, table = world
        params = AcornParams(m=6, gamma=4, m_beta=8, ef_construction=24)
        return AcornIndex.build(vectors, table, params=params, seed=0)

    def test_search_identical(self, world, index, tmp_path):
        vectors, table = world
        path = tmp_path / "acorn.npz"
        save_index(index, path)
        restored = load_index(path)
        for q in vectors[:10]:
            for predicate in (Equals("label", 1), ContainsAny("tags", ["c"])):
                a = index.search(q, predicate, 5, ef_search=32)
                b = restored.search(q, predicate, 5, ef_search=32)
                np.testing.assert_array_equal(a.ids, b.ids)

    def test_params_preserved(self, index, tmp_path):
        path = tmp_path / "acorn.npz"
        save_index(index, path)
        restored = load_index(path)
        assert restored.params == index.params

    def test_table_preserved(self, world, index, tmp_path):
        _, table = world
        path = tmp_path / "acorn.npz"
        save_index(index, path)
        restored = load_index(path)
        assert restored.table.column_names == table.column_names
        for i in (0, 7, 199):
            assert restored.table.row(i) == table.row(i)

    def test_incremental_insert_after_load(self, world, index, tmp_path):
        """Edge distances survive, so adds can resume post-load."""
        vectors, table = world
        path = tmp_path / "acorn.npz"
        save_index(index, path)
        restored = load_index(path)
        # Grow the table and insert a new vector.
        bigger = AttributeTable(len(table) + 1)
        bigger.add_int_column(
            "label", np.append(np.asarray(table.column("label")), 1)
        )
        restored.table = bigger
        new_id = restored.add(np.zeros(8, dtype=np.float32))
        assert new_id == len(vectors)
        restored.graph.validate()

    def test_acorn_one_kind_restored(self, world, tmp_path):
        vectors, table = world
        index = AcornOneIndex.build(vectors, table, m=8, ef_construction=24,
                                    seed=0)
        path = tmp_path / "acorn1.npz"
        save_index(index, path)
        restored = load_index(path)
        assert isinstance(restored, AcornOneIndex)
        q = vectors[3]
        a = index.search(q, Equals("label", 2), 5, ef_search=32)
        b = restored.search(q, Equals("label", 2), 5, ef_search=32)
        np.testing.assert_array_equal(a.ids, b.ids)


class TestErrors:
    def test_unsupported_type(self, tmp_path):
        with pytest.raises(TypeError, match="serialize"):
            save_index(object(), tmp_path / "x.npz")


class TestFlatAndTombstoneRoundtrip:
    def test_flat_kind_restored(self, world, tmp_path):
        from repro.core.flat import FlatAcornIndex

        vectors, table = world
        params = AcornParams(m=6, gamma=4, m_beta=8, ef_construction=24)
        index = FlatAcornIndex.build(vectors, table, params=params, seed=0)
        path = tmp_path / "flat.npz"
        save_index(index, path)
        restored = load_index(path)
        assert isinstance(restored, FlatAcornIndex)
        assert restored.graph.max_level == 0
        assert restored.graph.entry_point == index.graph.entry_point
        q = vectors[5]
        a = index.search(q, Equals("label", 1), 5, ef_search=32)
        b = restored.search(q, Equals("label", 1), 5, ef_search=32)
        np.testing.assert_array_equal(a.ids, b.ids)

    def test_tombstones_survive_roundtrip(self, world, tmp_path):
        vectors, table = world
        params = AcornParams(m=6, gamma=4, m_beta=8, ef_construction=24)
        index = AcornIndex.build(vectors, table, params=params, seed=0)
        index.mark_deleted(3)
        index.mark_deleted(17)
        path = tmp_path / "with-deletes.npz"
        save_index(index, path)
        restored = load_index(path)
        assert restored.num_deleted == 2
        assert restored.is_deleted(3) and restored.is_deleted(17)
        from repro.predicates import TruePredicate

        result = restored.search(vectors[3], TruePredicate(), 5, ef_search=32)
        assert 3 not in result.ids


class TestQuantizedRoundtrip:
    """Quantized codes persist alongside the floats and are verified."""

    @pytest.fixture
    def index(self, world):
        vectors, table = world
        params = AcornParams(m=6, gamma=4, m_beta=8, ef_construction=24)
        return AcornIndex.build(vectors, table, params=params, seed=0,
                                quantization="sq8")

    def test_sq8_roundtrip_search_identical(self, world, index, tmp_path):
        vectors, _ = world
        path = tmp_path / "quant-sq8.npz"
        save_index(index, path)
        restored = load_index(path)
        assert restored.quantization == index.quantization
        np.testing.assert_array_equal(
            restored._quant_store().codes, index._quant_store().codes
        )
        for q in vectors[:10]:
            a = index.search(q, Equals("label", 1), 5, ef_search=32)
            b = restored.search(q, Equals("label", 1), 5, ef_search=32)
            np.testing.assert_array_equal(a.ids, b.ids)
            np.testing.assert_array_equal(a.distances, b.distances)
            assert a.quantized_distances == b.quantized_distances

    def test_pq_roundtrip_search_identical(self, world, tmp_path):
        vectors, table = world
        params = AcornParams(m=6, gamma=4, m_beta=8, ef_construction=24)
        index = AcornIndex.build(
            vectors, table, params=params, seed=0,
            quantization={"kind": "pq", "pq_subspaces": 4,
                          "pq_centroids": 32},
        )
        path = tmp_path / "quant-pq.npz"
        save_index(index, path)
        restored = load_index(path)
        assert restored.quantization.kind == "pq"
        for q in vectors[:10]:
            a = index.search(q, Equals("label", 1), 5, ef_search=32)
            b = restored.search(q, Equals("label", 1), 5, ef_search=32)
            np.testing.assert_array_equal(a.ids, b.ids)

    def test_hnsw_quantized_roundtrip(self, world, tmp_path):
        vectors, _ = world
        index = HnswIndex.build(vectors, m=6, ef_construction=24, seed=0,
                                quantization="sq8")
        path = tmp_path / "hnsw-quant.npz"
        save_index(index, path)
        restored = load_index(path)
        for q in vectors[:10]:
            np.testing.assert_array_equal(
                index.search(q, 5, ef_search=32).ids,
                restored.search(q, 5, ef_search=32).ids,
            )

    def test_unquantized_archive_loads_unquantized(self, world, tmp_path):
        vectors, table = world
        params = AcornParams(m=6, gamma=4, m_beta=8, ef_construction=24)
        index = AcornIndex.build(vectors, table, params=params, seed=0)
        path = tmp_path / "plain.npz"
        save_index(index, path)
        restored = load_index(path)
        assert restored.quantization is None
        assert restored._quant_store() is None

    def _resave(self, path, mutate):
        """Round-trip the npz payload through ``mutate``."""
        with np.load(path, allow_pickle=True) as archive:
            payload = {name: archive[name] for name in archive.files}
        mutate(payload)
        np.savez_compressed(path, **payload)

    def test_corrupt_codes_named_in_error(self, index, tmp_path):
        from repro.persistence import QuantLoadError

        path = tmp_path / "corrupt.npz"
        save_index(index, path)

        def flip(payload):
            codes = payload["quant_codes"].copy()
            codes[0, 0] ^= 0xFF
            payload["quant_codes"] = codes

        self._resave(path, flip)
        with pytest.raises(QuantLoadError, match="quant_codes"):
            load_index(path)

    def test_missing_artifact_named_in_error(self, index, tmp_path):
        from repro.persistence import QuantLoadError

        path = tmp_path / "missing.npz"
        save_index(index, path)
        self._resave(path, lambda p: p.pop("quant_sq_scale"))
        with pytest.raises(QuantLoadError, match="quant_sq_scale"):
            load_index(path)
