"""Behavioural tests for the ACORN-γ index."""

import numpy as np
import pytest

from repro.attributes import AttributeTable
from repro.core import AcornIndex, AcornParams
from repro.datasets.ground_truth import filtered_knn
from repro.predicates import Equals, TruePredicate


class TestConstruction:
    def test_graph_invariants(self, acorn_index):
        acorn_index.graph.validate()

    def test_level_zero_lists_bounded_by_trigger(self, acorn_index):
        cap = acorn_index._cap0
        graph = acorn_index.graph
        for node in graph.nodes_at_level(0):
            assert len(graph.neighbors(node, 0)) <= cap

    def test_upper_levels_bounded_by_max_degree(self, acorn_index):
        graph = acorn_index.graph
        budget = acorn_index.params.max_degree
        for level in range(1, graph.max_level + 1):
            for node in graph.nodes_at_level(level):
                assert len(graph.neighbors(node, level)) <= budget

    def test_upper_levels_denser_than_m(self, acorn_index):
        # Neighbor expansion must produce lists beyond M on level 1.
        graph = acorn_index.graph
        avg = graph.average_out_degree(1)
        assert avg > acorn_index.params.m

    def test_edge_distance_lists_aligned(self, acorn_index):
        graph = acorn_index.graph
        for level in range(graph.max_level + 1):
            for node in graph.nodes_at_level(level):
                ids = graph.neighbors(node, level)
                dists = acorn_index._edge_dists[level][node]
                assert len(ids) == len(dists)
                assert dists == sorted(dists)

    def test_undersized_table_rejected(self, small_vectors):
        vectors, _ = small_vectors
        tiny = AttributeTable(3)
        tiny.add_int_column("label", [1, 2, 3])
        with pytest.raises(ValueError, match="rows"):
            AcornIndex.build(vectors[:10], tiny)

    def test_oversized_table_allowed_for_later_inserts(
        self, small_vectors, labeled_table
    ):
        vectors, _ = small_vectors
        index = AcornIndex.build(
            vectors[:20], labeled_table,
            params=AcornParams(m=4, gamma=2, ef_construction=12), seed=0,
        )
        assert len(index) == 20
        assert index.add(vectors[20]) == 20

    def test_add_without_attribute_row_rejected(self):
        table = AttributeTable(1)
        table.add_int_column("label", [0])
        index = AcornIndex(4, table, params=AcornParams(m=4, gamma=2))
        index.add(np.zeros(4))
        with pytest.raises(ValueError, match="attribute row"):
            index.add(np.ones(4))

    def test_metadata_pruning_requires_labels(self, labeled_table):
        with pytest.raises(ValueError, match="labels"):
            AcornIndex(
                4, labeled_table,
                params=AcornParams(m=4, gamma=2, pruning="rng-metadata"),
            )

    def test_pruning_stats_populated(self, acorn_index):
        assert acorn_index.pruning_stats.nodes_pruned > 0


class TestHybridSearch:
    @pytest.fixture(scope="class")
    def workload(self, small_vectors, labeled_table):
        vectors, _ = small_vectors
        gen = np.random.default_rng(11)
        queries = vectors[gen.integers(0, len(vectors), 40)] + 0.05
        labels = gen.integers(0, 6, size=40)
        masks = [Equals("label", int(l)).mask(labeled_table) for l in labels]
        gt = filtered_knn(vectors, list(queries), masks, k=10)
        return queries, labels, gt

    def test_recall_above_threshold(self, acorn_index, workload):
        queries, labels, gt = workload
        recalls = []
        for q, label, g in zip(queries, labels, gt):
            result = acorn_index.search(q, Equals("label", int(label)), 10,
                                        ef_search=64)
            recalls.append(
                len(set(result.ids.tolist()) & set(g.tolist())) / len(g)
            )
        assert np.mean(recalls) > 0.85

    def test_all_results_pass_predicate(self, acorn_index, workload):
        queries, labels, _ = workload
        for q, label in zip(queries, labels):
            predicate = Equals("label", int(label))
            compiled = predicate.compile(acorn_index.table)
            result = acorn_index.search(q, predicate, 10, ef_search=32)
            assert compiled.passes_many(result.ids).all()

    def test_results_sorted_by_distance(self, acorn_index, workload):
        queries, labels, _ = workload
        result = acorn_index.search(
            queries[0], Equals("label", int(labels[0])), 10, ef_search=32
        )
        assert (np.diff(result.distances) >= 0).all()

    def test_true_predicate_is_plain_ann(self, acorn_index, small_vectors):
        vectors, _ = small_vectors
        result = acorn_index.search(vectors[7], TruePredicate(), 1, ef_search=32)
        assert result.ids[0] == 7

    def test_empty_predicate_returns_empty(self, acorn_index, small_vectors):
        vectors, _ = small_vectors
        result = acorn_index.search(vectors[0], Equals("label", 999), 5)
        assert len(result) == 0

    def test_accepts_precompiled_predicate(self, acorn_index, small_vectors):
        vectors, _ = small_vectors
        compiled = Equals("label", 3).compile(acorn_index.table)
        result = acorn_index.search(vectors[0], compiled, 5, ef_search=32)
        assert compiled.passes_many(result.ids).all()

    def test_rejects_foreign_compiled_predicate(self, acorn_index, small_vectors):
        vectors, _ = small_vectors
        other = AttributeTable(3)
        other.add_int_column("label", [1, 2, 3])
        compiled = Equals("label", 1).compile(other)
        with pytest.raises(ValueError, match="entities"):
            acorn_index.search(vectors[0], compiled, 5)

    def test_rejects_non_positive_k(self, acorn_index, small_vectors):
        vectors, _ = small_vectors
        with pytest.raises(ValueError, match="k"):
            acorn_index.search(vectors[0], TruePredicate(), 0)

    def test_distance_computations_counted(self, acorn_index, small_vectors):
        vectors, _ = small_vectors
        result = acorn_index.search(vectors[0], Equals("label", 2), 5,
                                    ef_search=32)
        assert result.distance_computations > 0


class TestIntrospection:
    def test_out_degree_by_level(self, acorn_index):
        degrees = acorn_index.out_degree_by_level()
        assert degrees[0] > 0

    def test_nbytes_exceeds_vectors(self, acorn_index, small_vectors):
        vectors, _ = small_vectors
        assert acorn_index.nbytes() > vectors.nbytes

    def test_compressed_level0_smaller_than_uncompressed(
        self, small_vectors, labeled_table
    ):
        vectors, _ = small_vectors
        compressed = AcornIndex.build(
            vectors[:300], _subtable(labeled_table, 300),
            params=AcornParams(m=8, gamma=6, m_beta=8, ef_construction=32),
            seed=4,
        )
        uncompressed = AcornIndex.build(
            vectors[:300], _subtable(labeled_table, 300),
            params=AcornParams(
                m=8, gamma=6, m_beta=48, ef_construction=32, pruning="none"
            ),
            seed=4,
        )
        assert (
            compressed.graph.average_out_degree(0)
            < uncompressed.graph.average_out_degree(0)
        )


def _subtable(table: AttributeTable, n: int) -> AttributeTable:
    sub = AttributeTable(n)
    sub.add_int_column("label", np.asarray(table.column("label"))[:n])
    return sub
