"""End-to-end hybrid search under inner-product and cosine metrics."""

import numpy as np
import pytest

from repro.attributes import AttributeTable
from repro.core import AcornIndex, AcornParams
from repro.predicates import Equals
from repro.vectors.distance import pairwise_distances


def _world(metric, seed=61):
    gen = np.random.default_rng(seed)
    n = 400
    vectors = gen.standard_normal((n, 12)).astype(np.float32)
    if metric == "ip":
        # Inner-product search is only well-posed on non-degenerate
        # norms; keep vectors away from zero.
        vectors += np.sign(vectors) * 0.1
    table = AttributeTable(n)
    table.add_int_column("label", gen.integers(0, 3, size=n))
    return vectors, table


@pytest.mark.parametrize("metric", ["ip", "cosine"])
class TestAlternativeMetrics:
    def test_recall_against_bruteforce(self, metric):
        vectors, table = _world(metric)
        index = AcornIndex.build(
            vectors, table,
            params=AcornParams(m=8, gamma=6, m_beta=16, ef_construction=32),
            metric=metric, seed=0,
        )
        gen = np.random.default_rng(5)
        recalls = []
        for _ in range(20):
            q = gen.standard_normal(12).astype(np.float32)
            label = int(gen.integers(0, 3))
            mask = Equals("label", label).mask(table)
            passing = np.flatnonzero(mask)
            dists = pairwise_distances(vectors[passing], q, metric=metric)[0]
            truth = set(passing[np.argsort(dists)[:10]].tolist())
            result = index.search(q, Equals("label", label), 10, ef_search=64)
            recalls.append(len(set(result.ids.tolist()) & truth) / 10)
        assert np.mean(recalls) > 0.8

    def test_distances_ascending(self, metric):
        vectors, table = _world(metric)
        index = AcornIndex.build(
            vectors, table,
            params=AcornParams(m=8, gamma=6, m_beta=16, ef_construction=32),
            metric=metric, seed=0,
        )
        result = index.search(vectors[0], Equals("label", 1), 10, ef_search=32)
        assert (np.diff(result.distances) >= -1e-6).all()
