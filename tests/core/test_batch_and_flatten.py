"""Tests for the batch-search API and the flattening ablation switch."""

import numpy as np
import pytest

from repro.attributes import AttributeTable
from repro.core import AcornIndex, AcornParams
from repro.predicates import Equals


class TestSearchBatch:
    def test_shared_predicate(self, acorn_index, small_vectors):
        vectors, _ = small_vectors
        results = acorn_index.search_batch(
            vectors[:5], Equals("label", 2), k=3, ef_search=32
        )
        assert len(results) == 5
        singles = [
            acorn_index.search(q, Equals("label", 2), 3, ef_search=32)
            for q in vectors[:5]
        ]
        for batch, single in zip(results, singles):
            np.testing.assert_array_equal(batch.ids, single.ids)

    def test_per_query_predicates(self, acorn_index, small_vectors):
        vectors, _ = small_vectors
        predicates = [Equals("label", i % 6) for i in range(4)]
        results = acorn_index.search_batch(vectors[:4], predicates, k=3)
        for predicate, result in zip(predicates, results):
            compiled = predicate.compile(acorn_index.table)
            assert compiled.passes_many(result.ids).all()

    def test_length_mismatch(self, acorn_index, small_vectors):
        vectors, _ = small_vectors
        with pytest.raises(ValueError, match="predicates"):
            acorn_index.search_batch(
                vectors[:3], [Equals("label", 1)], k=3
            )


class TestFlattening:
    @pytest.fixture(scope="class")
    def world(self):
        gen = np.random.default_rng(41)
        n = 600
        vectors = gen.standard_normal((n, 12)).astype(np.float32)
        table = AttributeTable(n)
        table.add_int_column("label", gen.integers(0, 3, size=n))
        return vectors, table

    def test_flattened_has_fewer_levels(self, world):
        vectors, table = world
        base = AcornParams(m=8, gamma=8, m_beta=16, ef_construction=24)
        flat = AcornParams(m=8, gamma=8, m_beta=16, ef_construction=24,
                           flatten_levels=True)
        hier_index = AcornIndex.build(vectors, table, params=base, seed=0)
        flat_index = AcornIndex.build(vectors, table, params=flat, seed=0)
        assert flat_index.graph.max_level < hier_index.graph.max_level

    def test_m_l_changes(self):
        base = AcornParams(m=8, gamma=8)
        flat = AcornParams(m=8, gamma=8, flatten_levels=True)
        assert flat.m_l < base.m_l

    def test_flattened_search_still_correct(self, world):
        vectors, table = world
        flat = AcornParams(m=8, gamma=8, m_beta=16, ef_construction=24,
                           flatten_levels=True)
        index = AcornIndex.build(vectors, table, params=flat, seed=0)
        predicate = Equals("label", 1)
        compiled = predicate.compile(table)
        result = index.search(vectors[0], predicate, 5, ef_search=32)
        assert compiled.passes_many(result.ids).all()
