"""HybridSearcher over every index variant, plus metric round-trips."""

import numpy as np
import pytest

from repro.attributes import AttributeTable
from repro.core import AcornOneIndex, AcornParams, HybridSearcher
from repro.core.flat import FlatAcornIndex
from repro.persistence import load_index, save_index
from repro.predicates import Equals


@pytest.fixture(scope="module")
def world():
    gen = np.random.default_rng(81)
    n = 300
    vectors = gen.standard_normal((n, 10)).astype(np.float32)
    table = AttributeTable(n)
    table.add_int_column("label", gen.integers(0, 3, size=n))
    return vectors, table


class TestRouterOverVariants:
    def test_acorn_one(self, world):
        vectors, table = world
        index = AcornOneIndex.build(vectors, table, m=12, ef_construction=24,
                                    seed=0)
        searcher = HybridSearcher(index)
        predicate = Equals("label", 1)
        compiled = predicate.compile(table)
        result = searcher.search(vectors[0], predicate, 5, ef_search=48)
        assert compiled.passes_many(result.ids).all()
        # gamma=1 -> s_min=1.0: every real predicate pre-filters, which
        # is the honest routing for an index that cannot promise
        # sub-s_min coverage.
        assert searcher.s_min == pytest.approx(1.0)

    def test_flat(self, world):
        vectors, table = world
        index = FlatAcornIndex.build(
            vectors, table,
            params=AcornParams(m=8, gamma=6, m_beta=12, ef_construction=24),
            seed=0,
        )
        searcher = HybridSearcher(index, s_min=0.05)
        predicate = Equals("label", 2)
        compiled = predicate.compile(table)
        result = searcher.search(vectors[3], predicate, 5, ef_search=48)
        assert not searcher.last_decision.used_prefilter
        assert compiled.passes_many(result.ids).all()


class TestCosinePersistence:
    def test_cosine_index_roundtrip(self, world, tmp_path):
        from repro.core import AcornIndex

        vectors, table = world
        index = AcornIndex.build(
            vectors, table,
            params=AcornParams(m=8, gamma=4, m_beta=12, ef_construction=24),
            metric="cosine", seed=0,
        )
        path = tmp_path / "cosine.npz"
        save_index(index, path)
        restored = load_index(path)
        assert restored.metric.value == "cosine"
        q = vectors[9]
        a = index.search(q, Equals("label", 0), 5, ef_search=32)
        b = restored.search(q, Equals("label", 0), 5, ef_search=32)
        np.testing.assert_array_equal(a.ids, b.ids)
