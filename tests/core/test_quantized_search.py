"""End-to-end tests for the quantized traversal hot path.

Two invariants anchor the whole feature:

1. **Recall parity tripwire** — at matched effort, the quantized path
   (codes rank the walk, float32 reranks the tail) must stay within a
   small recall delta of the float32 path on every index family.  A
   codec or kernel regression shows up here before it shows up in a
   benchmark.
2. **``quantization=None`` is byte-identical** — the default search
   path must not change at all: same ids, same distances, same
   counters, zero quantized evaluations.
"""

import numpy as np
import pytest

from repro.attributes import AttributeTable
from repro.baselines.prefilter import PreFilterSearcher
from repro.core import AcornIndex, AcornOneIndex, AcornParams
from repro.hnsw import HnswIndex
from repro.predicates import Equals


N, DIM, K = 240, 12, 5


@pytest.fixture(scope="module")
def world():
    gen = np.random.default_rng(11)
    vectors = gen.standard_normal((N, DIM)).astype(np.float32)
    table = AttributeTable(N)
    table.add_int_column("label", gen.integers(0, 3, size=N))
    queries = vectors[gen.choice(N, size=20, replace=False)] + 0.05
    predicates = [Equals("label", int(i % 3)) for i in range(20)]
    return vectors, table, queries, predicates


@pytest.fixture(scope="module")
def acorn_params():
    return AcornParams(m=6, gamma=3, m_beta=12, ef_construction=32)


def mean_recall(results, truths):
    return float(np.mean([
        len(set(r.ids.tolist()) & set(t.tolist())) / max(len(t), 1)
        for r, t in zip(results, truths)
    ]))


class TestRecallParityTripwire:
    """Quantized recall tracks float32 recall on every index family."""

    @pytest.mark.parametrize("kind", ["sq8", "pq"])
    def test_acorn_gamma(self, world, acorn_params, kind):
        vectors, table, queries, predicates = world
        index = AcornIndex.build(vectors, table, params=acorn_params, seed=0)
        pre = PreFilterSearcher(vectors, table)
        truths = [pre.search(q, p, K).ids
                  for q, p in zip(queries, predicates)]
        base = mean_recall(
            [index.search(q, p, K, ef_search=48)
             for q, p in zip(queries, predicates)], truths)
        index.enable_quantization(
            {"kind": kind, "pq_subspaces": 4, "pq_centroids": 64}
        )
        quant = mean_recall(
            [index.search(q, p, K, ef_search=48)
             for q, p in zip(queries, predicates)], truths)
        assert quant >= base - 0.1

    def test_acorn_one(self, world):
        vectors, table, queries, predicates = world
        index = AcornOneIndex.build(vectors, table, m=8,
                                    ef_construction=32, seed=0)
        pre = PreFilterSearcher(vectors, table)
        truths = [pre.search(q, p, K).ids
                  for q, p in zip(queries, predicates)]
        base = mean_recall(
            [index.search(q, p, K, ef_search=48)
             for q, p in zip(queries, predicates)], truths)
        index.enable_quantization("sq8")
        quant = mean_recall(
            [index.search(q, p, K, ef_search=48)
             for q, p in zip(queries, predicates)], truths)
        assert quant >= base - 0.1

    def test_hnsw(self, world):
        vectors, _, queries, _ = world
        index = HnswIndex.build(vectors, m=8, ef_construction=32, seed=0)
        truths = [
            np.argsort(((vectors - q) ** 2).sum(axis=1))[:K]
            for q in queries
        ]
        base = mean_recall(
            [index.search(q, K, ef_search=48) for q in queries], truths)
        index.enable_quantization("sq8")
        quant = mean_recall(
            [index.search(q, K, ef_search=48) for q in queries], truths)
        assert quant >= base - 0.1


class TestFloatPathUnchanged:
    """``quantization=None`` must leave the default path byte-identical."""

    def test_acorn_results_and_counters_pinned(self, world, acorn_params):
        vectors, table, queries, predicates = world
        default = AcornIndex.build(vectors, table, params=acorn_params,
                                   seed=0)
        explicit = AcornIndex.build(vectors, table, params=acorn_params,
                                    seed=0, quantization=None)
        for q, p in zip(queries, predicates):
            a = default.search(q, p, K, ef_search=32)
            b = explicit.search(q, p, K, ef_search=32)
            np.testing.assert_array_equal(a.ids, b.ids)
            np.testing.assert_array_equal(a.distances, b.distances)
            assert a.distance_computations == b.distance_computations
            assert a.hops == b.hops
            assert a.visited_nodes == b.visited_nodes
            assert a.quantized_distances == 0
            assert a.rerank_distances == 0
            assert a.rerank_factor == 0.0

    def test_disable_restores_float_results(self, world, acorn_params):
        vectors, table, queries, predicates = world
        index = AcornIndex.build(vectors, table, params=acorn_params, seed=0)
        before = [index.search(q, p, K, ef_search=32)
                  for q, p in zip(queries, predicates)]
        index.enable_quantization("sq8")
        index.enable_quantization(None)
        after = [index.search(q, p, K, ef_search=32)
                 for q, p in zip(queries, predicates)]
        for a, b in zip(before, after):
            np.testing.assert_array_equal(a.ids, b.ids)
            assert a.distance_computations == b.distance_computations


class TestQuantizedCounters:
    def test_counter_discipline(self, world, acorn_params):
        """Quantized and exact evaluations are disjoint counters; the
        rerank tail is bounded by its budget and bills as exact."""
        vectors, table, queries, predicates = world
        index = AcornIndex.build(vectors, table, params=acorn_params, seed=0)
        float_dc = [index.search(q, p, K, ef_search=48).distance_computations
                    for q, p in zip(queries, predicates)]
        index.enable_quantization({"kind": "sq8", "rerank_factor": 2.0})
        for (q, p), fdc in zip(zip(queries, predicates), float_dc):
            res = index.search(q, p, K, ef_search=48)
            assert res.quantized_distances > 0
            assert res.rerank_factor == 2.0
            assert 0 < res.rerank_distances <= 2.0 * K
            # Exact evaluations = descent + rerank tail only.
            assert res.rerank_distances <= res.distance_computations < fdc

    def test_deterministic_across_runs(self, world, acorn_params):
        vectors, table, queries, predicates = world
        index = AcornIndex.build(vectors, table, params=acorn_params, seed=0,
                                 quantization="sq8")
        for q, p in zip(queries, predicates):
            a = index.search(q, p, K, ef_search=48)
            b = index.search(q, p, K, ef_search=48)
            np.testing.assert_array_equal(a.ids, b.ids)
            np.testing.assert_array_equal(a.distances, b.distances)
            assert a.quantized_distances == b.quantized_distances


class TestQuantizedMaintenance:
    def test_tombstones_respected(self, world, acorn_params):
        vectors, table, queries, predicates = world
        index = AcornIndex.build(vectors, table, params=acorn_params, seed=0,
                                 quantization="sq8")
        victim = int(index.search(queries[0], predicates[0], K,
                                  ef_search=48).ids[0])
        index.mark_deleted(victim)
        res = index.search(queries[0], predicates[0], K, ef_search=48)
        assert victim not in res.ids

    def test_monitor_early_stop(self, world, acorn_params):
        vectors, table, queries, predicates = world
        index = AcornIndex.build(vectors, table, params=acorn_params, seed=0,
                                 quantization="sq8")

        class Budget:
            def __init__(self, hops):
                self.left = hops

            def observe(self, _n):
                self.left -= 1
                return self.left > 0

        full = index.search(queries[0], predicates[0], K, ef_search=48)
        capped = index.search(queries[0], predicates[0], K, ef_search=48,
                              monitor=Budget(2))
        assert capped.quantized_distances <= full.quantized_distances
        assert len(capped.ids) <= K

    def test_incremental_insert_syncs_codes(self, world, acorn_params):
        """Rows added after quantization are encoded with the frozen
        codec at the next search — and are findable."""
        vectors, table, queries, predicates = world
        labels = np.asarray(table.column("label"))
        small = AttributeTable(200)
        small.add_int_column("label", labels[:200])
        index = AcornIndex.build(vectors[:200], small,
                                 params=acorn_params, seed=0,
                                 quantization="sq8")
        grown = AttributeTable(220)
        grown.add_int_column("label", labels[:220])
        index.table = grown
        for i in range(200, 220):
            index.add(vectors[i])
        target = vectors[205]
        res = index.search(target, Equals("label", int(labels[205])), K,
                           ef_search=64)
        assert 205 in res.ids


class TestBulkBuildQuantized:
    def test_parallel_quantized_build_searches(self, world, acorn_params):
        vectors, table, queries, predicates = world
        index = AcornIndex.build(vectors, table, params=acorn_params, seed=0,
                                 n_workers=2, quantization="sq8")
        pre = PreFilterSearcher(vectors, table)
        truths = [pre.search(q, p, K).ids
                  for q, p in zip(queries, predicates)]
        recall = mean_recall(
            [index.search(q, p, K, ef_search=48)
             for q, p in zip(queries, predicates)], truths)
        assert recall >= 0.7

    def test_parallel_float_build_unaffected(self, world, acorn_params):
        """An unquantized parallel build must not consult the codec."""
        vectors, table, queries, predicates = world
        a = AcornIndex.build(vectors, table, params=acorn_params, seed=0,
                             n_workers=2)
        b = AcornIndex.build(vectors, table, params=acorn_params, seed=0,
                             n_workers=2)
        for q, p in zip(queries, predicates):
            np.testing.assert_array_equal(
                a.search(q, p, K, ef_search=32).ids,
                b.search(q, p, K, ef_search=32).ids,
            )


class TestLockstepBatch:
    @pytest.fixture(scope="class")
    def index(self, world, acorn_params):
        vectors, table, _, _ = world
        return AcornIndex.build(vectors, table, params=acorn_params, seed=0,
                                quantization="sq8")

    def test_requires_quantization(self, world, acorn_params):
        vectors, table, queries, predicates = world
        plain = AcornIndex.build(vectors, table, params=acorn_params, seed=0)
        with pytest.raises(RuntimeError, match="quantization"):
            plain.search_batch_quantized(queries, predicates, K)

    def test_input_validation(self, world, index):
        _, _, queries, predicates = world
        with pytest.raises(ValueError, match="k must be positive"):
            index.search_batch_quantized(queries, predicates, 0)
        with pytest.raises(ValueError, match="2-D"):
            index.search_batch_quantized(queries[0], predicates, K)
        with pytest.raises(ValueError, match="predicates"):
            index.search_batch_quantized(queries, predicates[:3], K)

    def test_empty_batch(self, world, index):
        _, _, queries, predicates = world
        out = index.search_batch_quantized(queries[:0], [], K)
        assert out == []

    def test_deterministic_and_counted(self, world, index):
        _, _, queries, predicates = world
        first = index.search_batch_quantized(queries, predicates, K,
                                             ef_search=48)
        second = index.search_batch_quantized(queries, predicates, K,
                                              ef_search=48)
        for a, b in zip(first, second):
            np.testing.assert_array_equal(a.ids, b.ids)
            np.testing.assert_array_equal(a.distances, b.distances)
            assert a.quantized_distances == b.quantized_distances
            assert a.quantized_distances > 0
            assert a.rerank_distances > 0

    def test_recall_parity_with_per_query(self, world, index):
        vectors, table, queries, predicates = world
        pre = PreFilterSearcher(vectors, table)
        truths = [pre.search(q, p, K).ids
                  for q, p in zip(queries, predicates)]
        solo = mean_recall(
            [index.search(q, p, K, ef_search=48)
             for q, p in zip(queries, predicates)], truths)
        batch = mean_recall(
            index.search_batch_quantized(queries, predicates, K,
                                         ef_search=48), truths)
        assert batch >= solo - 0.1

    def test_results_pass_predicate(self, world, index):
        _, table, queries, predicates = world
        results = index.search_batch_quantized(queries, predicates, K,
                                               ef_search=48)
        labels = np.asarray(table.column("label"))
        for res, p in zip(results, predicates):
            assert (labels[res.ids] == p.value).all()

    def test_masked_csr_cache_bounded(self, world, index):
        _, _, queries, predicates = world
        index.search_batch_quantized(queries, predicates, K, ef_search=48)
        assert len(index._masked_csr_cache) <= 8
