"""Unit tests for ACORN's neighbor-lookup strategies (Figure 4)."""

import numpy as np
import pytest

from repro.core.search import (
    compressed_neighbors,
    expanded_neighbors,
    filtered_neighbors,
    freeze_graph,
    truncated_neighbors,
)
from repro.hnsw.graph import LayeredGraph


@pytest.fixture
def adjacency():
    """Frozen level-0 adjacency of a small hand-built graph."""
    graph = LayeredGraph()
    for node in range(8):
        graph.add_node(node, 0)
    graph.set_neighbors(0, 0, [1, 2, 3, 4])
    graph.set_neighbors(1, 0, [0, 5])
    graph.set_neighbors(2, 0, [6])
    graph.set_neighbors(3, 0, [7, 5])
    graph.set_neighbors(4, 0, [])
    graph.set_neighbors(5, 0, [1])
    graph.set_neighbors(6, 0, [2])
    graph.set_neighbors(7, 0, [3])
    return freeze_graph(graph)[0]


def _mask(size, passing):
    mask = np.zeros(size, dtype=bool)
    mask[list(passing)] = True
    return mask


class TestFilteredNeighbors:
    def test_keeps_passing_in_list_order(self, adjacency):
        mask = _mask(8, {2, 4})
        assert filtered_neighbors(adjacency, 0, mask).tolist() == [2, 4]

    def test_all_pass_returns_whole_list(self, adjacency):
        mask = _mask(8, set(range(8)))
        assert filtered_neighbors(adjacency, 0, mask).tolist() == [1, 2, 3, 4]

    def test_all_fail(self, adjacency):
        mask = _mask(8, set())
        assert filtered_neighbors(adjacency, 0, mask).tolist() == []

    def test_empty_list(self, adjacency):
        mask = _mask(8, {0, 1})
        assert filtered_neighbors(adjacency, 4, mask).tolist() == []


class TestCompressedNeighbors:
    def test_phase1_filters_head_directly(self, adjacency):
        # With m_beta covering the whole list there is no expansion.
        mask = _mask(8, {1, 2})
        got = compressed_neighbors(adjacency, 0, mask, m_beta=4)
        assert got.tolist() == [1, 2]

    def test_two_hop_recovery_past_m_beta(self, adjacency):
        # With m_beta=2, entries 3 and 4 are expansion sources; node 7
        # (a neighbor of 3) passes and must be recovered.
        mask = _mask(8, {7})
        got = compressed_neighbors(adjacency, 0, mask, m_beta=2)
        assert 7 in got

    def test_head_entries_not_expanded(self, adjacency):
        # Node 5 is reachable only via node 1 (a head entry with
        # m_beta=4): head entries are filtered, never expanded.
        mask = _mask(8, {5})
        got = compressed_neighbors(adjacency, 0, mask, m_beta=4)
        assert got.tolist() == []

    def test_expansion_source_itself_included_when_passing(self, adjacency):
        mask = _mask(8, {3})
        got = compressed_neighbors(adjacency, 0, mask, m_beta=2)
        assert got.tolist() == [3]

    def test_no_duplicates(self, adjacency):
        mask = _mask(8, {1, 3, 5, 7})
        got = compressed_neighbors(adjacency, 0, mask, m_beta=0)
        assert len(got) == len(set(got))

    def test_phase1_results_lead(self, adjacency):
        # Passing head entries appear before expansion discoveries.
        mask = _mask(8, {1, 7})
        got = compressed_neighbors(adjacency, 0, mask, m_beta=2)
        assert got[0] == 1
        assert 7 in got

    def test_empty_list(self, adjacency):
        mask = _mask(8, {0})
        assert compressed_neighbors(adjacency, 4, mask, m_beta=2).tolist() == []


class TestExpandedNeighbors:
    def test_reaches_two_hops(self, adjacency):
        # From node 5: one-hop {1}, two-hop {0, 5}. Node 0 passes.
        mask = _mask(8, {0})
        assert expanded_neighbors(adjacency, 5, mask).tolist() == [0]

    def test_equivalent_to_compressed_beta_zero(self, adjacency):
        mask = _mask(8, {1, 5, 7})
        a = expanded_neighbors(adjacency, 0, mask)
        b = compressed_neighbors(adjacency, 0, mask, m_beta=0)
        assert a.tolist() == b.tolist()

    def test_collects_full_two_hop_set(self, adjacency):
        mask = _mask(8, set(range(8)))
        got = expanded_neighbors(adjacency, 0, mask)
        # one-hop {1,2,3,4} plus their neighbors {0,5,6,7} minus dups.
        assert set(got) == {0, 1, 2, 3, 4, 5, 6, 7}


class TestTruncatedNeighbors:
    def test_first_m_regardless_of_predicate(self, adjacency):
        assert truncated_neighbors(adjacency, 0, m=2).tolist() == [1, 2]

    def test_shorter_list_returned_whole(self, adjacency):
        assert truncated_neighbors(adjacency, 2, m=5).tolist() == [6]
