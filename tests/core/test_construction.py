"""Unit tests for ACORN construction internals (pruning rules)."""

import numpy as np
import pytest

from repro.core.construction import (
    PruningStats,
    prune_predicate_agnostic,
    prune_rng_blind,
    prune_rng_metadata,
)
from repro.hnsw.graph import LayeredGraph


def _graph_with_level0(adjacency: dict[int, list[int]]) -> LayeredGraph:
    graph = LayeredGraph()
    for node in sorted(adjacency):
        graph.add_node(node, 0)
    for node, neighbors in adjacency.items():
        graph.set_neighbors(node, 0, neighbors)
    return graph


class TestPredicateAgnosticPruning:
    def test_first_m_beta_kept_verbatim(self):
        graph = _graph_with_level0({i: [] for i in range(6)})
        candidates = [(float(i), i) for i in range(1, 6)]
        kept = prune_predicate_agnostic(
            candidates, graph, level=0, m_beta=2, max_degree=100
        )
        assert [nid for _, nid in kept][:2] == [1, 2]

    def test_two_hop_reachable_candidate_pruned(self):
        # Candidate 3 is a neighbor of kept candidate 2 (index >= m_beta),
        # so it lands in H and gets pruned.
        graph = _graph_with_level0({0: [], 1: [], 2: [3], 3: [], 4: []})
        candidates = [(1.0, 1), (2.0, 2), (3.0, 3), (4.0, 4)]
        kept = prune_predicate_agnostic(
            candidates, graph, level=0, m_beta=1, max_degree=100
        )
        assert [nid for _, nid in kept] == [1, 2, 4]

    def test_recoverability_invariant(self):
        """Every pruned candidate is in the neighbor list of some kept
        candidate with index >= m_beta (paper §5.2's recovery argument)."""
        gen = np.random.default_rng(0)
        adjacency = {
            i: gen.choice(20, size=4, replace=False).tolist() for i in range(20)
        }
        graph = _graph_with_level0(adjacency)
        candidates = [(float(i), i) for i in range(20)]
        m_beta = 3
        kept = prune_predicate_agnostic(
            candidates, graph, level=0, m_beta=m_beta, max_degree=1000
        )
        kept_ids = [nid for _, nid in kept]
        pruned = [nid for _, nid in candidates if nid not in kept_ids]
        expansion_sources = kept_ids[m_beta:]
        for dropped in pruned:
            assert any(
                dropped in adjacency[src] for src in expansion_sources
            ), f"pruned candidate {dropped} is not 2-hop recoverable"

    def test_budget_stops_pruning(self):
        graph = _graph_with_level0({i: list(range(10)) for i in range(10)})
        candidates = [(float(i), i) for i in range(10)]
        kept = prune_predicate_agnostic(
            candidates, graph, level=0, m_beta=1, max_degree=5
        )
        # After keeping one expansion candidate, |H| ~ 10 > budget: stop.
        assert len(kept) <= 3

    def test_m_beta_zero_prunes_from_start(self):
        graph = _graph_with_level0({0: [], 1: [2], 2: [], 3: []})
        candidates = [(1.0, 1), (2.0, 2), (3.0, 3)]
        kept = prune_predicate_agnostic(
            candidates, graph, level=0, m_beta=0, max_degree=100
        )
        assert [nid for _, nid in kept] == [1, 3]

    def test_stats_recorded(self):
        graph = _graph_with_level0({0: [], 1: [2], 2: [], 3: []})
        stats = PruningStats()
        prune_predicate_agnostic(
            [(1.0, 1), (2.0, 2), (3.0, 3)], graph, level=0, m_beta=0,
            max_degree=100, stats=stats,
        )
        assert stats.nodes_pruned == 1
        assert stats.candidates_seen == 3
        assert stats.candidates_dropped == 1
        assert stats.dropped_per_node == pytest.approx(1.0)


class TestRngBlindPruning:
    def test_matches_hnsw_heuristic_semantics(self):
        vectors = np.array(
            [[0.0, 0.0], [1.0, 0.0], [2.0, 0.0], [0.0, 1.5]], dtype=np.float32
        )
        candidates = [(1.0, 1), (4.0, 2), (2.25, 3)]
        kept = prune_rng_blind(candidates, vectors, max_keep=10)
        assert [nid for _, nid in kept] == [1, 3]

    def test_respects_cap(self):
        gen = np.random.default_rng(1)
        vectors = gen.standard_normal((30, 4)).astype(np.float32)
        dists = ((vectors - vectors[0]) ** 2).sum(axis=1)
        candidates = sorted((float(dists[i]), i) for i in range(1, 30))
        kept = prune_rng_blind(candidates, vectors, max_keep=4)
        assert len(kept) <= 4


class TestRngMetadataPruning:
    def test_label_mismatch_blocks_pruning(self):
        # Same geometry as the blind test, but the relay (node 1) has a
        # different label, so node 2 must survive (paper Figure 5's
        # motivating scenario).
        vectors = np.array(
            [[0.0, 0.0], [1.0, 0.0], [2.0, 0.0]], dtype=np.float32
        )
        labels = np.array([7, 3, 7])
        candidates = [(1.0, 1), (4.0, 2)]
        kept = prune_rng_metadata(
            candidates, vectors, labels, owner=0, max_keep=10
        )
        assert [nid for _, nid in kept] == [1, 2]

    def test_same_label_triangle_pruned(self):
        vectors = np.array(
            [[0.0, 0.0], [1.0, 0.0], [2.0, 0.0]], dtype=np.float32
        )
        labels = np.array([7, 7, 7])
        candidates = [(1.0, 1), (4.0, 2)]
        kept = prune_rng_metadata(
            candidates, vectors, labels, owner=0, max_keep=10
        )
        assert [nid for _, nid in kept] == [1]


class TestPruningStatsThreadSafety:
    def test_concurrent_record_loses_no_counts(self):
        import threading

        stats = PruningStats()
        n_threads, per_thread = 8, 2000

        def worker():
            for _ in range(per_thread):
                stats.record(seen=5, kept=2)

        threads = [threading.Thread(target=worker) for _ in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        calls = n_threads * per_thread
        assert stats.nodes_pruned == calls
        assert stats.candidates_seen == 5 * calls
        assert stats.candidates_dropped == 3 * calls

    def test_concurrent_merge_loses_no_counts(self):
        import threading

        total = PruningStats()

        def worker():
            local = PruningStats()
            for _ in range(2000):
                local.record(seen=4, kept=1)
            total.merge(local)

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert total.nodes_pruned == 16000
        assert total.candidates_seen == 64000
        assert total.candidates_dropped == 48000
