"""Tests for §6.1's generalized multi-level compression (nc levels)."""

import numpy as np
import pytest

from repro.attributes import AttributeTable
from repro.core import AcornIndex, AcornParams
from repro.datasets.ground_truth import filtered_knn
from repro.predicates import Equals


@pytest.fixture(scope="module")
def world():
    gen = np.random.default_rng(21)
    n, dim = 500, 16
    vectors = gen.standard_normal((n, dim)).astype(np.float32)
    table = AttributeTable(n)
    table.add_int_column("label", gen.integers(0, 4, size=n))
    return vectors, table


def _build(world, compressed_levels):
    vectors, table = world
    params = AcornParams(
        m=8, gamma=6, m_beta=8, ef_construction=32,
        compressed_levels=compressed_levels,
    )
    return AcornIndex.build(vectors, table, params=params, seed=1)


class TestMultiLevelCompression:
    def test_validation(self):
        with pytest.raises(ValueError, match="compressed_levels"):
            AcornParams(compressed_levels=-1)

    def test_nc2_compresses_level_one(self, world):
        nc1 = _build(world, compressed_levels=1)
        nc2 = _build(world, compressed_levels=2)
        # Level 1 lists shrink when compression extends upward.
        assert (
            nc2.graph.average_out_degree(1)
            < nc1.graph.average_out_degree(1)
        )

    def test_nc2_reduces_footprint(self, world):
        nc1 = _build(world, compressed_levels=1)
        nc2 = _build(world, compressed_levels=2)
        assert nc2.graph.nbytes() < nc1.graph.nbytes()

    def test_nc0_disables_compression(self, world):
        nc0 = _build(world, compressed_levels=0)
        # With no compressed level, level-0 lists keep nearest
        # candidates up to the cap, and pruning never runs.
        assert nc0.pruning_stats.nodes_pruned == 0

    def test_search_still_accurate_with_nc2(self, world):
        vectors, table = world
        index = _build(world, compressed_levels=2)
        gen = np.random.default_rng(3)
        queries = vectors[gen.integers(0, len(vectors), 25)] + 0.05
        labels = gen.integers(0, 4, size=25)
        masks = [Equals("label", int(l)).mask(table) for l in labels]
        gt = filtered_knn(vectors, list(queries), masks, k=10)
        recalls = []
        for q, label, g in zip(queries, labels, gt):
            result = index.search(q, Equals("label", int(label)), 10,
                                  ef_search=64)
            recalls.append(
                len(set(result.ids.tolist()) & set(g.tolist())) / len(g)
            )
        assert np.mean(recalls) > 0.85

    def test_graph_invariants_hold(self, world):
        _build(world, compressed_levels=2).graph.validate()
