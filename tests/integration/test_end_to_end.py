"""End-to-end pipeline tests: dataset → index → sweep → report."""

import pytest

from repro.core import AcornIndex, AcornOneIndex, AcornParams, HybridSearcher
from repro.datasets import make_laion_like, make_tripclick_like
from repro.eval import SweepRunner, render_sweeps


class TestSiftPipeline:
    @pytest.fixture(scope="class")
    def pieces(self, sift_tiny):
        params = AcornParams(m=8, gamma=12, m_beta=16, ef_construction=32)
        index = AcornIndex.build(
            sift_tiny.vectors, sift_tiny.table, params=params, seed=0
        )
        return sift_tiny, index

    def test_acorn_reaches_high_recall(self, pieces):
        dataset, index = pieces
        runner = SweepRunner(dataset, k=10)
        sweep = runner.sweep("acorn", index, efforts=[16, 64, 128])
        assert sweep.max_recall() > 0.9

    def test_report_renders(self, pieces):
        dataset, index = pieces
        runner = SweepRunner(dataset, k=10)
        sweep = runner.sweep("acorn", index, efforts=[32])
        out = render_sweeps([sweep], recall_target=0.5)
        assert "acorn" in out


class TestRouterPipeline:
    def test_router_serves_mixed_selectivity(self, sift_tiny):
        params = AcornParams(m=8, gamma=4, m_beta=16, ef_construction=32)
        index = AcornIndex.build(
            sift_tiny.vectors, sift_tiny.table, params=params, seed=0
        )
        searcher = HybridSearcher(index)
        routes = set()
        for query, compiled in zip(
            sift_tiny.queries, sift_tiny.compiled_predicates()
        ):
            searcher.search(query.vector, compiled, 10, ef_search=48)
            routes.add(searcher.last_decision.used_prefilter)
        # s_min = 0.25 > label selectivity 1/12: every query prefilters.
        assert routes == {True}

    def test_router_uses_graph_when_selective_enough(self, sift_tiny):
        params = AcornParams(m=8, gamma=24, m_beta=16, ef_construction=32)
        index = AcornIndex.build(
            sift_tiny.vectors, sift_tiny.table, params=params, seed=0
        )
        searcher = HybridSearcher(index)
        searcher.search(
            sift_tiny.queries[0].vector,
            sift_tiny.compiled_predicates()[0],
            10,
        )
        assert not searcher.last_decision.used_prefilter


class TestTripclickPipeline:
    def test_contains_predicates_end_to_end(self):
        dataset = make_tripclick_like(
            n=400, dim=16, n_queries=25, workload="areas", seed=2
        )
        params = AcornParams(m=8, gamma=6, m_beta=16, ef_construction=32)
        index = AcornIndex.build(
            dataset.vectors, dataset.table, params=params, seed=1
        )
        runner = SweepRunner(dataset, k=10)
        sweep = runner.sweep("acorn", index, efforts=[64])
        assert sweep.max_recall() > 0.8

    def test_between_predicates_end_to_end(self):
        dataset = make_tripclick_like(
            n=400, dim=16, n_queries=25, workload="dates", seed=2
        )
        index = AcornOneIndex.build(
            dataset.vectors, dataset.table, m=16, ef_construction=48, seed=1
        )
        runner = SweepRunner(dataset, k=10)
        sweep = runner.sweep("acorn-1", index, efforts=[64])
        assert sweep.max_recall() > 0.75


class TestRegexPipeline:
    def test_regex_predicates_end_to_end(self):
        dataset = make_laion_like(
            n=400, dim=16, n_queries=20, workload="regex", seed=3
        )
        params = AcornParams(m=8, gamma=8, m_beta=16, ef_construction=32)
        index = AcornIndex.build(
            dataset.vectors, dataset.table, params=params, seed=1
        )
        searcher = HybridSearcher(index)
        runner = SweepRunner(dataset, k=10)
        sweep = runner.sweep("acorn+router", searcher, efforts=[64])
        assert sweep.max_recall() > 0.8
