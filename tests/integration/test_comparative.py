"""Comparative behaviour tests: the paper's qualitative claims in miniature.

These assert the *shape* of the evaluation results — who wins, where —
on tiny datasets, using distance computations (the paper's §3.2 cost
model) so the assertions are hardware- and interpreter-independent.
"""

import pytest

from repro.baselines import PostFilterSearcher, PreFilterSearcher
from repro.core import AcornIndex, AcornParams
from repro.datasets import make_laion_like
from repro.eval import SweepRunner
from repro.hnsw import HnswIndex


@pytest.fixture(scope="module")
def neg_cor_world():
    dataset = make_laion_like(
        n=1600, dim=24, n_queries=30, workload="neg-cor", seed=3
    )
    params = AcornParams(m=8, gamma=10, m_beta=16, ef_construction=32)
    acorn = AcornIndex.build(dataset.vectors, dataset.table, params=params,
                             seed=1)
    hnsw = HnswIndex.build(dataset.vectors, m=8, ef_construction=32, seed=1)
    return dataset, acorn, hnsw


class TestNegativeCorrelation:
    """Figure 10's hardest regime: passing points sit far from queries."""

    def test_acorn_reaches_recall_postfilter_struggles(self, neg_cor_world):
        dataset, acorn, hnsw = neg_cor_world
        runner = SweepRunner(dataset, k=10)
        acorn_sweep = runner.sweep("acorn", acorn, efforts=[32, 96])
        post = PostFilterSearcher(hnsw, dataset.table, max_oversearch=0.25)
        post_sweep = runner.sweep("post", post, efforts=[32, 96])
        assert acorn_sweep.max_recall() > post_sweep.max_recall()
        assert acorn_sweep.max_recall() > 0.85

    def test_acorn_cheaper_than_prefilter_on_wide_predicates(self,
                                                             neg_cor_world):
        """Pre-filtering costs s·n distance computations; ACORN stays
        sublinear.  The crossover (paper Figure 9) favors ACORN once
        predicates are wide, so compare on a high-selectivity workload
        over the same index."""
        from repro.datasets import HybridDataset, HybridQuery
        from repro.datasets.laion import GENERIC_KEYWORDS
        from repro.predicates import ContainsAny

        dataset, acorn, _ = neg_cor_world
        wide = HybridDataset(
            name="laion-wide",
            vectors=dataset.vectors,
            table=dataset.table,
            queries=[
                HybridQuery(
                    vector=q.vector,
                    predicate=ContainsAny("keywords", GENERIC_KEYWORDS[:5]),
                )
                for q in dataset.queries
            ],
        )
        assert wide.selectivities().mean() > 0.3
        runner = SweepRunner(wide, k=10)
        acorn_sweep = runner.sweep("acorn", acorn, efforts=[32, 96])
        pre = PreFilterSearcher(dataset.vectors, dataset.table)
        pre_sweep = runner.sweep("pre", pre, efforts=[32])
        acorn_cost = acorn_sweep.distance_computations_at_recall(0.8)
        pre_cost = pre_sweep.distance_computations_at_recall(0.8)
        assert acorn_cost is not None
        assert acorn_cost < pre_cost


class TestSelectivityRegimes:
    def test_prefilter_cost_scales_with_selectivity(
        self, small_vectors, labeled_table
    ):
        from repro.predicates import Equals, OneOf

        vectors, _ = small_vectors
        pre = PreFilterSearcher(vectors, labeled_table)
        narrow = pre.search(vectors[0], Equals("label", 0), 5)
        wide = pre.search(vectors[0], OneOf("label", [0, 1, 2, 3]), 5)
        assert wide.distance_computations > narrow.distance_computations

    def test_acorn_sublinear_in_passing_set(self, acorn_index, small_vectors):
        """ACORN's key property vs pre-filtering: cost does not grow
        linearly with |X_p| (oracle-partition emulation, paper §4)."""
        from repro.predicates import OneOf

        vectors, _ = small_vectors
        predicate = OneOf("label", [0, 1, 2, 3, 4])
        compiled = predicate.compile(acorn_index.table)
        result = acorn_index.search(vectors[0], predicate, 10, ef_search=24)
        assert result.distance_computations < 0.7 * compiled.cardinality
