"""Integration matrix: every dataset surrogate × every index variant.

One compact contract per combination: the index builds, answers the
dataset's own workload above a recall floor, and never returns a
non-passing entity.  Catches cross-cutting regressions (a predicate
type breaking one variant, a generator change starving another).
"""

import numpy as np
import pytest

from repro.core import AcornIndex, AcornOneIndex, AcornParams
from repro.core.flat import FlatAcornIndex
from repro.datasets import (
    make_laion_like,
    make_sift1m_like,
    make_tripclick_like,
)
from repro.eval.metrics import recall_at_k

DATASETS = {
    "sift": lambda: make_sift1m_like(n=700, dim=24, n_queries=25, seed=0),
    "tripclick-areas": lambda: make_tripclick_like(
        n=700, dim=24, n_queries=25, workload="areas", seed=2
    ),
    "tripclick-dates": lambda: make_tripclick_like(
        n=700, dim=24, n_queries=25, workload="dates", seed=2
    ),
    "laion-regex": lambda: make_laion_like(
        n=700, dim=24, n_queries=25, workload="regex", seed=3
    ),
}

PARAMS = AcornParams(m=8, gamma=10, m_beta=16, ef_construction=32)

VARIANTS = {
    "acorn-gamma": lambda ds: AcornIndex.build(
        ds.vectors, ds.table, params=PARAMS, seed=1
    ),
    "acorn-1": lambda ds: AcornOneIndex.build(
        ds.vectors, ds.table, m=16, ef_construction=32, seed=1
    ),
    "acorn-flat": lambda ds: FlatAcornIndex.build(
        ds.vectors, ds.table, params=PARAMS, seed=1
    ),
}

# Recall floors are variant-aware: ACORN-1 and the flat substrate are
# approximations (paper §5.3 / §5 framework note) and these workloads
# include selectivities below gamma's design point.
FLOORS = {"acorn-gamma": 0.85, "acorn-1": 0.70, "acorn-flat": 0.80}


@pytest.fixture(scope="module")
def datasets():
    return {name: maker() for name, maker in DATASETS.items()}


@pytest.mark.parametrize("variant", sorted(VARIANTS))
@pytest.mark.parametrize("dataset_name", sorted(DATASETS))
def test_variant_serves_dataset(datasets, dataset_name, variant):
    dataset = datasets[dataset_name]
    index = VARIANTS[variant](dataset)
    gt = dataset.ground_truth(10)
    recalls = []
    for query, compiled, truth in zip(
        dataset.queries, dataset.compiled_predicates(), gt
    ):
        result = index.search(query.vector, compiled, 10, ef_search=64)
        assert compiled.passes_many(result.ids).all(), (
            f"{variant} on {dataset_name}: returned non-passing entity"
        )
        recalls.append(recall_at_k(result.ids, truth, 10))
    mean_recall = float(np.mean(recalls))
    assert mean_recall >= FLOORS[variant], (
        f"{variant} on {dataset_name}: recall {mean_recall:.3f}"
    )
