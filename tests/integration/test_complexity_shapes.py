"""Empirical checks of the §6 complexity analysis.

The paper's Discussion section derives scaling shapes rather than
plotting figures; these tests verify the measurable ones:

- §6.3.2 stage 1: the predicate subgraph's expected maximum level
  tracks O(log(s·n)) — i.e. grows with selectivity at fixed n.
- §6.3.1 degree lower bound: expected filtered degree ≈ s·M·γ.
- §6.2 construction: TTI grows superlinearly in γ (the γ·log γ factor)
  — covered by bench_ablation_gamma; here we check the per-node
  candidate budget that drives it.
- §6.1 memory: per-node bytes track O(Mβ + M + m_L·M·γ).
"""

import math

import numpy as np
import pytest

from repro.attributes import AttributeTable
from repro.core import AcornIndex, AcornParams
from repro.predicates import Equals


@pytest.fixture(scope="module")
def world():
    gen = np.random.default_rng(91)
    n = 1200
    vectors = gen.standard_normal((n, 12)).astype(np.float32)
    table = AttributeTable(n)
    # Two attribute columns giving a wide and a narrow predicate.
    table.add_int_column("coarse", gen.integers(0, 2, size=n))   # s ~ 0.5
    table.add_int_column("fine", gen.integers(0, 20, size=n))    # s ~ 0.05
    params = AcornParams(m=8, gamma=12, m_beta=16, ef_construction=32)
    index = AcornIndex.build(vectors, table, params=params, seed=3)
    return index, table


class TestSubgraphHeight:
    def test_height_grows_with_selectivity(self, world):
        """§6.3.2: predicate-subgraph max level ~ O(log(s·n))."""
        index, table = world
        graph = index.graph

        def subgraph_height(mask):
            height = 0
            for level in range(graph.max_level + 1):
                if any(mask[v] for v in graph.nodes_at_level(level)):
                    height = level
            return height

        wide = Equals("coarse", 0).compile(table)
        narrow = Equals("fine", 3).compile(table)
        assert wide.cardinality > 5 * narrow.cardinality
        assert subgraph_height(wide.mask) >= subgraph_height(narrow.mask)

    def test_full_graph_height_logarithmic(self, world):
        index, _ = world
        n = len(index)
        expected = math.log(n) / math.log(index.params.m)
        assert index.graph.max_level <= expected + 2


class TestFilteredDegree:
    def test_expected_filtered_degree_tracks_s_m_gamma(self, world):
        """§6.3.1: E[|N_p(v)|] = s·|N(v)| for uncorrelated predicates."""
        index, table = world
        graph = index.graph
        predicate = Equals("coarse", 0)
        mask = predicate.compile(table).mask
        s = mask.mean()
        ratios = []
        for node in range(0, len(index), 7):
            neighbors = graph.neighbors(node, 0)
            if len(neighbors) < 10:
                continue
            passing = sum(1 for v in neighbors if mask[v])
            ratios.append(passing / len(neighbors))
        assert np.mean(ratios) == pytest.approx(s, abs=0.08)


class TestMemoryShape:
    def test_per_node_bytes_track_formula(self, world):
        """§6.1: per-node memory ~ O(Mβ + M + m_L·M·γ) edges."""
        index, _ = world
        params = index.params
        edges_per_node = index.graph.num_edges() / len(index)
        formula = (
            params.m_beta + params.m + params.m_l * params.max_degree
        )
        # Same order of magnitude: within a factor of 3 either way.
        assert formula / 3 <= edges_per_node <= formula * 3

    def test_construction_budget_is_m_gamma(self, world):
        """§6.2's per-node candidate budget: every stored list is within
        the M·γ candidate bound (uncompressed levels may reach it)."""
        index, _ = world
        graph = index.graph
        budget = index.params.max_degree
        longest = max(
            len(graph.neighbors(node, level))
            for level in range(graph.max_level + 1)
            for node in graph.nodes_at_level(level)
        )
        assert longest <= budget
