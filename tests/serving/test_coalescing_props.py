"""Property: coalescing is invisible to results.

Whatever batches the serving layer composes — full ``max_batch``
flushes, deadline-triggered partial flushes, interleaved tenants — the
(ids, distances) each caller gets back must be exactly what a direct
single-query search returns.  Batching is a throughput optimization,
never a semantics change.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.serving import Arrival
from repro.serving.loadgen import replay
from repro.utils.clock import FakeClock

from tests.serving.conftest import make_service, run

# Gaps straddle the 10ms budget: same-instant coalescing, mid-window
# arrivals, and gaps long enough to force a deadline flush in between.
GAPS_S = [0.0, 0.001, 0.004, 0.012]

arrival_specs = st.lists(
    st.tuples(
        st.sampled_from(GAPS_S),
        st.integers(min_value=0, max_value=11),  # query-pool index
        st.integers(min_value=0, max_value=2),   # tenant
    ),
    min_size=1,
    max_size=10,
)


@settings(max_examples=30, deadline=None)
@given(arrival_specs, st.integers(min_value=1, max_value=4))
def test_batched_results_equal_per_query(serving_world, specs, max_batch):
    _, _, index, queries, predicates = serving_world
    clock = FakeClock()
    service = make_service(
        index, clock=clock, max_batch=max_batch, latency_budget_ms=10.0
    )

    t = 0.0
    arrivals = []
    for gap_s, query_index, tenant in specs:
        t += gap_s
        arrivals.append(
            Arrival(
                time_s=t,
                tenant_id=f"tenant-{tenant}",
                query_index=query_index,
            )
        )

    responses = run(replay(service, arrivals, queries, predicates))

    assert len(responses) == len(arrivals)
    assert all(not r.rejected for r in responses)  # quotas are unlimited
    for arrival, response in zip(arrivals, responses):
        direct = index.search(
            queries[arrival.query_index],
            predicates[arrival.query_index],
            service.config.k,
            ef_search=service.config.ef_search,
        )
        np.testing.assert_array_equal(response.result.ids, direct.ids)
        np.testing.assert_array_equal(
            response.result.distances, direct.distances
        )
        assert response.tenant_id == arrival.tenant_id
        assert 1 <= response.batch_size_served <= max_batch
        assert response.stats.batch_size_served == (
            response.batch_size_served
        )
