"""The open-loop load harness: seeded traces, deterministic replay.

Two layers of pinning:

- trace generation is a pure function of the schedule (same spec + seed
  → byte-identical arrivals, different seed → different trace), with
  the structural properties (sorted, in-range, flash density, Zipf
  head-heaviness) asserted on a concrete trace;
- replay on a FakeClock is bit-for-bit deterministic (identical
  admission logs and summaries across runs), and ``summarize_load`` is
  pinned against a hand-crafted trace whose every number is
  arithmetically forced.
"""

import pytest

from repro.serving import (
    AcornService,
    Arrival,
    ArrivalSchedule,
    ServingConfig,
    TenantQuota,
    generate_arrivals,
    replay,
    summarize_load,
)
from repro.utils.clock import FakeClock

from tests.serving.conftest import make_service, run


class TestGenerateArrivals:
    SCHEDULE = ArrivalSchedule(
        rate_qps=300.0, duration_s=1.0, n_tenants=4,
        tenant_skew=1.1, query_pool=8, seed=12,
    )

    def test_same_seed_same_trace(self):
        assert generate_arrivals(self.SCHEDULE) == (
            generate_arrivals(self.SCHEDULE)
        )

    def test_different_seed_different_trace(self):
        other = ArrivalSchedule(
            rate_qps=300.0, duration_s=1.0, n_tenants=4,
            tenant_skew=1.1, query_pool=8, seed=13,
        )
        assert generate_arrivals(self.SCHEDULE) != generate_arrivals(other)

    def test_structural_properties(self):
        arrivals = generate_arrivals(self.SCHEDULE)
        times = [a.time_s for a in arrivals]
        assert times == sorted(times)
        assert all(0.0 < t < 1.0 for t in times)
        assert all(
            a.tenant_id in {f"tenant-{i}" for i in range(4)}
            for a in arrivals
        )
        assert all(0 <= a.query_index < 8 for a in arrivals)
        # ~300 arrivals expected; Poisson jitter stays well inside this.
        assert 200 <= len(arrivals) <= 400

    def test_zipf_skew_is_head_heavy(self):
        arrivals = generate_arrivals(self.SCHEDULE)
        counts = {
            tid: sum(1 for a in arrivals if a.tenant_id == tid)
            for tid in (f"tenant-{i}" for i in range(4))
        }
        assert counts["tenant-0"] > counts["tenant-3"]
        weights = self.SCHEDULE.tenant_weights()
        assert weights.sum() == pytest.approx(1.0)
        assert list(weights) == sorted(weights, reverse=True)

    def test_flash_window_densifies_arrivals(self):
        schedule = ArrivalSchedule.flash_crowd(
            rate_qps=200.0, duration_s=1.0,
            flash_start_s=0.4, flash_duration_s=0.3, flash_multiplier=5.0,
            seed=12,
        )
        assert schedule.rate_at(0.1) == 200.0
        assert schedule.rate_at(0.5) == 1000.0
        assert schedule.rate_at(0.8) == 200.0
        arrivals = generate_arrivals(schedule)
        inside = sum(1 for a in arrivals if 0.4 <= a.time_s < 0.7)
        outside = len(arrivals) - inside
        # 0.3s at 5x rate vs 0.7s at 1x: the window holds the majority
        # of the trace despite covering 30% of the duration.
        assert inside > outside

    @pytest.mark.parametrize("kwargs", [
        {"rate_qps": 0.0}, {"duration_s": 0.0}, {"n_tenants": 0},
        {"query_pool": 0}, {"flash_multiplier": 0.5},
    ])
    def test_bad_schedule_rejected(self, kwargs):
        spec = dict(rate_qps=10.0, duration_s=1.0)
        spec.update(kwargs)
        with pytest.raises(ValueError):
            ArrivalSchedule(**spec)


class TestReplay:
    def _trace(self):
        return generate_arrivals(ArrivalSchedule(
            rate_qps=200.0, duration_s=0.3, n_tenants=3,
            query_pool=12, seed=5,
        ))

    def _run_once(self, serving_world, arrivals):
        _, _, index, queries, predicates = serving_world
        service = make_service(
            index, clock=FakeClock(), max_batch=4, latency_budget_ms=10.0,
            default_quota=TenantQuota(rate_qps=50.0, burst=3.0),
        )
        responses = run(replay(service, arrivals, queries, predicates))
        return service, responses

    def test_replay_is_deterministic(self, serving_world):
        arrivals = self._trace()
        service_a, responses_a = self._run_once(serving_world, arrivals)
        service_b, responses_b = self._run_once(serving_world, arrivals)
        assert service_a.admission_log == service_b.admission_log
        assert service_a.summary() == service_b.summary()
        assert summarize_load(arrivals, responses_a) == (
            summarize_load(arrivals, responses_b)
        )
        # The quota is tight enough that the trace actually exercises
        # shedding — determinism over an all-admit run proves little.
        assert any(r.rejected for r in responses_a)
        assert any(r.ok for r in responses_a)

    def test_accounting_sums_to_offered(self, serving_world):
        arrivals = self._trace()
        service, responses = self._run_once(serving_world, arrivals)
        summary = summarize_load(arrivals, responses)
        assert summary["offered"] == len(arrivals)
        assert (
            summary["ok"] + summary["degraded"] + summary["rejected"]
            == summary["offered"]
        )
        per_tenant = sum(
            t["offered"] for t in summary["tenants"].values()
        )
        assert per_tenant == summary["offered"]
        assert service.summary()["offered"] == len(arrivals)

    def test_replay_requires_virtual_clock(self, serving_world):
        _, _, index, queries, predicates = serving_world
        service = AcornService(index, ServingConfig())  # SystemClock
        with pytest.raises(ValueError, match="FakeClock"):
            run(replay(service, [], queries, predicates))


class TestGoldenSummary:
    """Every number below is forced by the hand-crafted trace.

    Times are exact binary fractions (0.25, 0.5) against a 1000ms
    budget, so the queue-wait arithmetic — and therefore the whole
    summary — pins exactly.  Tenant ``a`` has a burst of 1 and a
    near-zero refill rate, so its second arrival is the one shed.
    """

    def _summary(self, serving_world):
        _, _, index, queries, predicates = serving_world
        service = make_service(
            index, clock=FakeClock(), max_batch=2,
            latency_budget_ms=1000.0,
            quotas={"a": TenantQuota(rate_qps=1e-9, burst=1.0)},
        )
        arrivals = [
            Arrival(time_s=0.0, tenant_id="a", query_index=0),
            Arrival(time_s=0.25, tenant_id="a", query_index=1),
            Arrival(time_s=0.5, tenant_id="b", query_index=1),
        ]
        responses = run(replay(service, arrivals, queries, predicates))
        return summarize_load(arrivals, responses), responses

    def test_golden_dict(self, serving_world):
        summary, responses = self._summary(serving_world)
        # a@0.0 admitted; a@0.25 shed on quota; b@0.5 fills the batch
        # of 2, which dispatches at 0.5 → waits of 500ms and 0ms.
        assert [r.status for r in responses] == ["ok", "rejected", "ok"]
        wait_stats = {
            "count": 2, "mean": 250.0, "p50": 250.0,
            "p95": pytest.approx(475.0), "p99": pytest.approx(495.0),
            "min": 0.0, "max": 500.0,
        }
        assert summary == {
            "offered": 3,
            "ok": 2,
            "degraded": 0,
            "rejected": 1,
            "shed_fraction": pytest.approx(1 / 3),
            "goodput_qps": None,
            "latency_ms": wait_stats,
            "queue_wait_ms": wait_stats,
            "mean_batch_size": 2.0,
            "min_recall_ceiling": 1.0,
            "tenants": {
                "a": {"offered": 2, "rejected": 1},
                "b": {"offered": 1, "rejected": 0},
            },
        }

    def test_goodput_uses_wall_time(self, serving_world):
        summary, responses = self._summary(serving_world)
        arrivals_count = summary["offered"]
        with_wall = summarize_load(
            [Arrival(0.0, "a", 0)] * arrivals_count, responses, wall_s=2.0
        )
        assert with_wall["goodput_qps"] == pytest.approx(1.0)  # 2 ok / 2s

    def test_all_shed_summary_has_none_latency(self, serving_world):
        _, _, index, queries, predicates = serving_world
        service = make_service(index, clock=FakeClock())
        arrivals = [
            Arrival(time_s=0.0, tenant_id="a", query_index=0),
            Arrival(time_s=0.1, tenant_id="b", query_index=1),
        ]

        async def drive():
            await service.aclose()  # everything after this is shed
            return await replay(service, arrivals, queries, predicates)

        responses = run(drive())
        summary = summarize_load(arrivals, responses)
        assert summary["rejected"] == 2 and summary["ok"] == 0
        assert summary["shed_fraction"] == 1.0
        none_stats = {
            "count": 0, "mean": None, "p50": None, "p95": None,
            "p99": None, "min": None, "max": None,
        }
        assert summary["latency_ms"] == none_stats
        assert summary["queue_wait_ms"] == none_stats
        assert summary["mean_batch_size"] == 0.0
        assert summary["min_recall_ceiling"] == 1.0
        assert summary["goodput_qps"] is None
