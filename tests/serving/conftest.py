"""Shared fixtures for the serving suite.

Everything here runs on virtual time: an autouse fixture bans real
``time.sleep`` *and* positive-delay ``asyncio.sleep`` (the asyncio
extension of the chaos suite's no-real-sleep guard — the serving layer
must coordinate purely through the injected FakeClock and zero-delay
event-loop hops).  One session-scoped world keeps the per-test index
build cost down.
"""

import asyncio
import time as time_module

import numpy as np
import pytest

from repro.attributes.table import AttributeTable
from repro.core import AcornIndex, AcornParams
from repro.predicates import Equals, TruePredicate
from repro.serving import AcornService, ServingConfig
from repro.utils.clock import FakeClock

N, DIM, SEED = 160, 10, 17
K = 5


@pytest.fixture(autouse=True)
def forbid_real_sleep(monkeypatch):
    """Any real wait in this suite is a bug — fail loudly.

    ``time.sleep`` raises outright; ``asyncio.sleep`` raises for any
    positive delay but still permits the zero-delay hop
    (``asyncio.sleep(0)``) the virtual replay uses to let submissions
    reach the coalescing buffer.
    """

    def _no_sleep(seconds):
        raise AssertionError(
            f"real time.sleep({seconds}) called inside the serving suite; "
            "all waiting must go through the injected FakeClock"
        )

    real_async_sleep = asyncio.sleep

    async def _no_async_sleep(delay, result=None):
        if delay > 0:
            raise AssertionError(
                f"positive asyncio.sleep({delay}) called inside the "
                "serving suite; virtual-clock code may only take "
                "zero-delay hops"
            )
        return await real_async_sleep(0, result)

    monkeypatch.setattr(time_module, "sleep", _no_sleep)
    monkeypatch.setattr(asyncio, "sleep", _no_async_sleep)


def make_world(n=N, dim=DIM, seed=SEED):
    """Clustered vectors + a table with the columns the suite filters on."""
    rng = np.random.default_rng(seed)
    centers = rng.standard_normal((5, dim)).astype(np.float32)
    assign = rng.integers(0, 5, size=n)
    vectors = (centers[assign]
               + 0.3 * rng.standard_normal((n, dim))).astype(np.float32)
    table = AttributeTable(n)
    table.add_int_column("year", rng.integers(2000, 2010, size=n))
    table.add_string_column("cat", [f"c{i % 4}" for i in range(n)])
    return vectors, table


@pytest.fixture(scope="session")
def serving_world():
    """(vectors, table, index, queries, predicates) shared by the suite."""
    vectors, table = make_world()
    index = AcornIndex.build(
        vectors, table,
        params=AcornParams(m=8, gamma=6, m_beta=12, ef_construction=24),
        seed=3,
    )
    rng = np.random.default_rng(99)
    queries = rng.standard_normal((12, DIM)).astype(np.float32)
    predicates = [
        Equals("cat", f"c{i % 4}") if i % 3 else TruePredicate()
        for i in range(12)
    ]
    return vectors, table, index, queries, predicates


def make_service(index, clock=None, **overrides):
    """A virtual-mode service with test-friendly defaults."""
    defaults = dict(k=K, ef_search=32, max_batch=4,
                    latency_budget_ms=10.0, engine_workers=1)
    defaults.update(overrides)
    return AcornService(
        index, ServingConfig(**defaults), clock=clock or FakeClock()
    )


def run(coro):
    """Run one coroutine to completion on a fresh event loop."""
    return asyncio.run(coro)
