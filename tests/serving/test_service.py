"""Unit contracts of the serving layer: admission, coalescing, tenancy.

Every test drives an :class:`AcornService` on a FakeClock — admission
decisions, batch composition, and queue-wait accounting are asserted
as exact values, never via timing margins.
"""

import asyncio
import math

import numpy as np
import pytest

from repro.predicates import Equals, TruePredicate
from repro.serving import TenantQuota, TokenBucket
from repro.serving.service import (
    REJECT_BREAKERS,
    REJECT_CLOSED,
    REJECT_OVERLOAD,
    REJECT_TENANT_QUEUE,
    REJECT_TENANT_QUOTA,
    ServingConfig,
)
from repro.utils.clock import FakeClock

from tests.serving.conftest import make_service, run


class _BreakerStub:
    """Delegates to a real index but reports a chosen breaker fraction."""

    def __init__(self, index, fraction):
        self._index = index
        self.fraction = fraction

    def open_breaker_fraction(self):
        return self.fraction

    def __getattr__(self, name):
        return getattr(self._index, name)


class TestTokenBucket:
    def test_burst_then_deny(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=2.0, burst=4.0, clock=clock)
        assert [bucket.try_take() for _ in range(5)] == (
            [True, True, True, True, False]
        )

    def test_refill_arithmetic_is_exact(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=2.0, burst=4.0, clock=clock)
        for _ in range(4):
            assert bucket.try_take()
        clock.advance(1.0)  # exactly 2 tokens back
        assert bucket.try_take()
        assert bucket.try_take()
        assert not bucket.try_take()

    def test_refill_caps_at_burst(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=100.0, burst=3.0, clock=clock)
        clock.advance(1000.0)
        assert bucket.tokens == pytest.approx(3.0)

    def test_infinite_rate_never_denies(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=math.inf, burst=2.0, clock=clock)
        assert all(bucket.try_take() for _ in range(50))


class TestValidation:
    @pytest.mark.parametrize("kwargs", [
        {"rate_qps": 0.0}, {"rate_qps": -1.0}, {"burst": 0.5},
        {"max_queue": 0}, {"cache_size": 0},
    ])
    def test_bad_quota_rejected(self, kwargs):
        with pytest.raises(ValueError):
            TenantQuota(**kwargs)

    @pytest.mark.parametrize("kwargs", [
        {"k": 0}, {"max_batch": 0}, {"latency_budget_ms": -1.0},
        {"max_pending": 0}, {"shed_breaker_fraction": 0.0},
        {"shed_breaker_fraction": 1.5},
    ])
    def test_bad_config_rejected(self, kwargs):
        with pytest.raises(ValueError):
            ServingConfig(**kwargs)


class TestCoalescing:
    def test_full_batch_dispatches_immediately(self, serving_world):
        _, _, index, queries, predicates = serving_world
        service = make_service(index, max_batch=3)

        async def drive():
            tasks = [
                asyncio.ensure_future(
                    service.submit(queries[i], predicates[i])
                )
                for i in range(3)
            ]
            await asyncio.sleep(0)
            await service.drain()
            return await asyncio.gather(*tasks)

        responses = run(drive())
        for r in responses:
            assert r.ok
            assert r.batch_size_served == 3
            assert r.queue_wait_ms == 0.0  # flushed at arrival time
            assert r.stats.batch_size_served == 3
        assert service.summary()["batches_dispatched"] == 1

    def test_deadline_flushes_partial_batch(self, serving_world):
        _, _, index, queries, predicates = serving_world
        clock = FakeClock()
        service = make_service(
            index, clock=clock, max_batch=8, latency_budget_ms=10.0
        )

        async def drive():
            t1 = asyncio.ensure_future(
                service.submit(queries[0], predicates[0])
            )
            await asyncio.sleep(0)
            clock.advance(0.002)
            t2 = asyncio.ensure_future(
                service.submit(queries[1], predicates[1])
            )
            await asyncio.sleep(0)
            assert service.pending_count == 2
            clock.advance(0.008)  # oldest deadline (10ms) now due
            await service.pump()
            assert service.pending_count == 0
            return await asyncio.gather(t1, t2)

        first, second = run(drive())
        assert first.batch_size_served == 2
        assert first.queue_wait_ms == pytest.approx(10.0)
        assert second.queue_wait_ms == pytest.approx(8.0)

    def test_late_observation_billed_at_deadline(self, serving_world):
        """A flush observed long after the deadline (virtual clock
        jumped past it) bills queue wait at the deadline, not the
        observation time."""
        _, _, index, queries, predicates = serving_world
        clock = FakeClock()
        service = make_service(
            index, clock=clock, max_batch=8, latency_budget_ms=10.0
        )

        async def drive():
            task = asyncio.ensure_future(
                service.submit(queries[0], predicates[0])
            )
            await asyncio.sleep(0)
            clock.advance(5.0)  # way past the 10ms deadline
            await service.pump()
            return await task

        response = run(drive())
        assert response.queue_wait_ms == pytest.approx(10.0)
        assert response.latency_ms == pytest.approx(10.0)

    def test_oversized_drain_splits_into_max_batch_chunks(
        self, serving_world
    ):
        _, _, index, queries, predicates = serving_world
        service = make_service(index, max_batch=2, max_pending=100)

        async def drive():
            tasks = [
                asyncio.ensure_future(
                    service.submit(queries[i % 12], predicates[i % 12])
                )
                for i in range(5)
            ]
            await asyncio.sleep(0)
            await service.drain()
            return await asyncio.gather(*tasks)

        responses = run(drive())
        assert [r.batch_size_served for r in responses] == [2, 2, 2, 2, 1]
        assert service.summary()["batches_dispatched"] == 3


class TestAdmission:
    def test_tenant_quota_exhaustion_then_refill(self, serving_world):
        _, _, index, queries, predicates = serving_world
        clock = FakeClock()
        quota = TenantQuota(rate_qps=0.5, burst=2.0)
        service = make_service(
            index, clock=clock, max_batch=1, default_quota=quota
        )

        async def drive():
            out = []
            for _ in range(3):
                out.append(await service.submit(queries[0], predicates[0]))
                await service.pump()
            clock.advance(2.0)  # exactly one token back at 0.5 qps
            out.append(await service.submit(queries[0], predicates[0]))
            await service.pump()
            out.append(await service.submit(queries[0], predicates[0]))
            await service.drain()
            return out

        r = run(drive())
        assert [x.status for x in r] == (
            ["ok", "ok", "rejected", "ok", "rejected"]
        )
        assert r[2].reason == REJECT_TENANT_QUOTA
        assert r[2].result is None and r[2].stats is None

    def test_tenant_queue_bound_is_per_tenant(self, serving_world):
        _, _, index, queries, predicates = serving_world
        quota = TenantQuota(max_queue=2)
        service = make_service(
            index, max_batch=100, max_pending=100, default_quota=quota
        )

        async def drive():
            tasks = [
                asyncio.ensure_future(
                    service.submit(queries[i], predicates[i], tenant_id="a")
                )
                for i in range(3)
            ]
            await asyncio.sleep(0)
            other = asyncio.ensure_future(
                service.submit(queries[3], predicates[3], tenant_id="b")
            )
            await asyncio.sleep(0)
            await service.drain()
            return await asyncio.gather(*tasks), await other

        (a1, a2, a3), b = run(drive())
        assert a1.ok and a2.ok
        assert a3.rejected and a3.reason == REJECT_TENANT_QUEUE
        assert b.ok  # one tenant's full queue never blocks another

    def test_global_backlog_bound(self, serving_world):
        _, _, index, queries, predicates = serving_world
        service = make_service(index, max_batch=100, max_pending=3)

        async def drive():
            tasks = [
                asyncio.ensure_future(
                    service.submit(
                        queries[i], predicates[i], tenant_id=f"t{i}"
                    )
                )
                for i in range(4)
            ]
            await asyncio.sleep(0)
            await service.drain()
            return await asyncio.gather(*tasks)

        responses = run(drive())
        assert [r.status for r in responses] == (
            ["ok", "ok", "ok", "rejected"]
        )
        assert responses[3].reason == REJECT_OVERLOAD

    def test_breaker_shedding_and_check_order(self, serving_world):
        _, _, index, queries, predicates = serving_world
        stub = _BreakerStub(index, fraction=0.5)
        service = make_service(
            stub, shed_breaker_fraction=0.25, max_batch=1,
            default_quota=TenantQuota(rate_qps=1e-6, burst=4.0),
        )

        async def drive():
            shed = await service.submit(queries[0], predicates[0], "acme")
            stub.fraction = 0.0
            served = await service.submit(queries[0], predicates[0], "acme")
            await service.drain()
            return shed, served

        shed, served = run(drive())
        assert shed.rejected and shed.reason == REJECT_BREAKERS
        assert served.ok
        # Breaker shedding precedes the token bucket: the shed request
        # spent no token (contractual admission-check order).
        bucket = service.tenants.get("acme").bucket
        assert bucket.tokens == pytest.approx(3.0)

    def test_closed_service_rejects(self, serving_world):
        _, _, index, queries, predicates = serving_world
        service = make_service(index)

        # max_batch=4 default: the lone query flushes on aclose's drain.
        async def drive():
            task = asyncio.ensure_future(
                service.submit(queries[0], predicates[0])
            )
            await asyncio.sleep(0)
            await service.aclose()
            first = await task
            late = await service.submit(queries[0], predicates[0])
            return first, late

        first, late = run(drive())
        assert first.ok
        assert late.rejected and late.reason == REJECT_CLOSED

    def test_service_binds_to_one_loop(self, serving_world):
        _, _, index, queries, predicates = serving_world
        service = make_service(index, max_batch=1)

        async def first_loop():
            await service.submit(queries[0], predicates[0])
            await service.drain()

        run(first_loop())
        with pytest.raises(RuntimeError, match="another event loop"):
            run(service.submit(queries[0], predicates[0]))


class TestTenantCacheIsolation:
    def test_partitioned_namespaces(self, serving_world):
        _, _, index, queries, _ = serving_world
        service = make_service(index, max_batch=1)
        pred = Equals("cat", "c1")

        async def drive():
            ra1 = await service.submit(queries[0], pred, tenant_id="a")
            rb1 = await service.submit(queries[0], pred, tenant_id="b")
            ra2 = await service.submit(queries[1], pred, tenant_id="a")
            await service.drain()
            return ra1, rb1, ra2

        ra1, rb1, ra2 = run(drive())
        # Same predicate, separate namespaces: each tenant pays its own
        # compile; only the repeat within a namespace hits.
        assert ra1.stats.predicate_cache_hit is False
        assert rb1.stats.predicate_cache_hit is False
        assert ra2.stats.predicate_cache_hit is True
        info_a = service.tenants.cache_info("a")
        info_b = service.tenants.cache_info("b")
        assert (info_a.hits, info_a.misses) == (1, 1)
        assert (info_b.hits, info_b.misses) == (0, 1)

    def test_churn_cannot_evict_another_tenant(self, serving_world):
        _, _, index, queries, _ = serving_world
        service = make_service(
            index, max_batch=1,
            quotas={"churn": TenantQuota(cache_size=1)},
        )

        async def drive():
            await service.submit(queries[0], Equals("cat", "c0"), "stable")
            # Churn floods its size-1 namespace with distinct predicates.
            for year in range(2000, 2006):
                await service.submit(
                    queries[1], Equals("year", year), "churn"
                )
            again = await service.submit(
                queries[2], Equals("cat", "c0"), "stable"
            )
            await service.drain()
            return again

        again = run(drive())
        assert again.stats.predicate_cache_hit is True
        assert service.tenants.cache_info("churn").size == 1


class TestAccounting:
    def test_summary_sums_to_offered(self, serving_world):
        _, _, index, queries, predicates = serving_world
        quota = TenantQuota(rate_qps=1e-6, burst=2.0)
        service = make_service(
            index, max_batch=2, quotas={"limited": TenantQuota(
                rate_qps=1e-6, burst=1.0)},
            default_quota=quota,
        )

        async def drive_simple():
            tenants = ["a", "a", "a", "limited", "limited", "b"]
            tasks = []
            for i, tid in enumerate(tenants):
                tasks.append(asyncio.ensure_future(
                    service.submit(queries[i], predicates[i], tenant_id=tid)
                ))
                await asyncio.sleep(0)
            await service.drain()
            return await asyncio.gather(*tasks)

        responses = run(drive_simple())
        summary = service.summary()
        assert summary["offered"] == 6
        assert summary["admitted"] + summary["rejected"] == 6
        assert (
            summary["ok"] + summary["degraded"] + summary["rejected"] == 6
        )
        assert summary["pending"] == 0 and summary["inflight"] == 0
        # Tenant "a" ran into its burst of 2; "limited" into its burst
        # of 1 — the rejects are attributed per tenant.
        assert summary["tenants"]["a"]["rejected"] == 1
        assert summary["tenants"]["limited"]["rejected"] == 1
        assert summary["tenants"]["b"]["rejected"] == 0
        assert sum(1 for r in responses if r.rejected) == 2
        assert service.admission_log == [
            ("a", "admit"), ("a", "admit"), ("a", REJECT_TENANT_QUOTA),
            ("limited", "admit"), ("limited", REJECT_TENANT_QUOTA),
            ("b", "admit"),
        ]

    def test_results_match_direct_search(self, serving_world):
        _, _, index, queries, predicates = serving_world
        service = make_service(index, max_batch=3)

        async def drive():
            tasks = [
                asyncio.ensure_future(
                    service.submit(queries[i], predicates[i], "acme")
                )
                for i in range(3)
            ]
            await asyncio.sleep(0)
            await service.drain()
            return await asyncio.gather(*tasks)

        responses = run(drive())
        for i, r in enumerate(responses):
            direct = index.search(
                queries[i], predicates[i],
                service.config.k, ef_search=service.config.ef_search,
            )
            np.testing.assert_array_equal(r.result.ids, direct.ids)
            np.testing.assert_allclose(r.result.distances, direct.distances)
            assert r.stats.tenant_id == "acme"
