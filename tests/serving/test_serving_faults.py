"""Chaos composition: the serving layer over a faulted sharded index.

The contracts pinned here (all on a single shared FakeClock — the
autouse conftest fixture fails the suite on any real sleep):

- queries touching broken shards resolve as ``degraded`` with the
  engine's *exact* ``recall_ceiling``, identical to a direct search on
  an identically-faulted index;
- once enough failures open circuit breakers, breaker-aware shedding
  rejects new arrivals with ``breakers-open`` instead of queueing them;
- ``drain()`` resolves every admitted future even when every shard is
  on fire — degradation never becomes a hang;
- virtual latency faults flow into the service's latency accounting
  through the shared clock.
"""

import asyncio

import numpy as np
import pytest

from repro.predicates import Equals, TruePredicate

from repro.serving import TenantQuota
from repro.serving.service import REJECT_BREAKERS
from repro.shard.faults import Fault, FaultInjector, FaultPlan
from repro.shard.partition import HashPartitioner
from repro.shard.resilience import BreakerState, ResiliencePolicy
from repro.shard.sharded import ShardedAcornIndex
from repro.utils.clock import FakeClock

from tests.serving.conftest import make_service, make_world, run

N, DIM, SEED = 144, 8, 5
N_SHARDS = 4


def _policy(clock, **overrides):
    kwargs = dict(
        shard_deadline_s=1.0,
        max_retries=1,
        backoff_base_s=0.05,
        breaker_threshold=100,
        breaker_reset_s=50.0,
        clock=clock,
    )
    kwargs.update(overrides)
    return ResiliencePolicy(**kwargs)


def _build(policy):
    vectors, table = make_world(n=N, dim=DIM, seed=SEED)
    return ShardedAcornIndex.build(
        vectors, table,
        partitioner=HashPartitioner(N_SHARDS),
        variant="flat",
        seed=7,
        resilience=policy,
    )


def _chaos(index, plan, clock):
    return index.with_faults(FaultInjector(plan, clock=clock, seed=3))


@pytest.fixture(scope="module")
def fault_world():
    """Queries/predicates matching the DIM-8 sharded fault world."""
    rng = np.random.default_rng(31)
    queries = rng.standard_normal((6, DIM)).astype(np.float32)
    predicates = [
        Equals("cat", f"c{i % 4}") if i % 3 else TruePredicate()
        for i in range(6)
    ]
    return queries, predicates


class TestDegradedAccounting:
    def test_dead_shard_serves_degraded_with_exact_ceiling(
        self, fault_world
    ):
        queries, predicates = fault_world
        clock = FakeClock()
        plan = FaultPlan({1: (Fault(kind="error"),)})
        chaos = _chaos(_build(_policy(clock)), plan, clock)
        service = make_service(chaos, clock=clock, max_batch=3)

        async def drive():
            tasks = [
                asyncio.ensure_future(
                    service.submit(queries[i], predicates[i])
                )
                for i in range(3)
            ]
            await asyncio.sleep(0)
            await service.drain()
            return await asyncio.gather(*tasks)

        responses = run(drive())
        # Same plan + fresh injector/breakers = the reference run the
        # served stats must match number-for-number.
        reference = _chaos(_build(_policy(clock)), plan, clock)
        for i, r in enumerate(responses):
            assert r.degraded and not r.rejected
            assert r.result is not None and len(r.result.ids) > 0
            direct = reference.search(
                queries[i], predicates[i],
                service.config.k, ef_search=service.config.ef_search,
            )
            assert direct.degraded
            assert r.stats.recall_ceiling == direct.recall_ceiling
            assert r.stats.recall_ceiling < 1.0
            assert r.stats.shards_failed == direct.shards_failed >= 1
        summary = service.summary()
        assert summary["degraded"] == 3 and summary["ok"] == 0
        assert summary["tenants"]["default"]["degraded"] == 3

    def test_healthy_shards_still_serve_ok(self, fault_world):
        queries, predicates = fault_world
        clock = FakeClock()
        chaos = _chaos(_build(_policy(clock)), FaultPlan({}), clock)
        service = make_service(chaos, clock=clock, max_batch=2)

        async def drive():
            tasks = [
                asyncio.ensure_future(
                    service.submit(queries[i], predicates[i])
                )
                for i in range(2)
            ]
            await asyncio.sleep(0)
            await service.drain()
            return await asyncio.gather(*tasks)

        responses = run(drive())
        assert all(r.ok for r in responses)
        assert all(r.stats.recall_ceiling == 1.0 for r in responses)


class TestBreakerShedding:
    def test_open_breakers_shed_new_arrivals(self, fault_world):
        queries, predicates = fault_world
        clock = FakeClock()
        plan = FaultPlan({1: (Fault(kind="error"),)})
        # threshold 1 + fail-fast: the first degraded query opens the
        # dead shard's breaker.
        chaos = _chaos(
            _build(_policy(clock, breaker_threshold=1, max_retries=0)),
            plan, clock,
        )
        service = make_service(
            chaos, clock=clock, max_batch=1, shed_breaker_fraction=0.25
        )

        async def drive():
            first = await service.submit(queries[0], predicates[0])
            await service.pump()
            second = await service.submit(queries[1], predicates[1])
            await service.drain()
            return first, second

        first, second = run(drive())
        assert first.degraded
        assert chaos.open_breaker_fraction() == pytest.approx(0.25)
        assert chaos.breaker_states()[1] == BreakerState.OPEN.value
        assert second.rejected and second.reason == REJECT_BREAKERS
        summary = service.summary()
        assert summary["offered"] == 2
        assert summary["degraded"] == 1 and summary["rejected"] == 1

    def test_breaker_reset_readmits(self, fault_world):
        queries, predicates = fault_world
        clock = FakeClock()
        # Shard 1 fails only on its first call, then recovers.
        plan = FaultPlan(
            {1: (Fault(kind="error", first_call=0, last_call=0),)}
        )
        chaos = _chaos(
            _build(_policy(
                clock, breaker_threshold=1, max_retries=0,
                breaker_reset_s=50.0,
            )),
            plan, clock,
        )
        service = make_service(
            chaos, clock=clock, max_batch=1, shed_breaker_fraction=0.25
        )

        async def drive():
            first = await service.submit(queries[0], predicates[0])
            await service.pump()
            shed = await service.submit(queries[1], predicates[1])
            clock.advance(60.0)  # past breaker_reset_s: half-open
            readmitted = await service.submit(queries[1], predicates[1])
            await service.drain()
            return first, shed, readmitted

        first, shed, readmitted = run(drive())
        assert first.degraded
        assert shed.rejected and shed.reason == REJECT_BREAKERS
        assert readmitted.ok  # shard recovered, probe succeeded


class TestNoHang:
    def test_drain_resolves_everything_when_all_shards_fail(
        self, fault_world
    ):
        queries, predicates = fault_world
        clock = FakeClock()
        plan = FaultPlan(
            {s: (Fault(kind="error"),) for s in range(N_SHARDS)}
        )
        chaos = _chaos(_build(_policy(clock)), plan, clock)
        service = make_service(chaos, clock=clock, max_batch=4)

        async def drive():
            tasks = [
                asyncio.ensure_future(
                    service.submit(queries[i], predicates[i])
                )
                for i in range(4)
            ]
            await asyncio.sleep(0)
            await asyncio.wait_for(service.drain(), timeout=30.0)
            return await asyncio.gather(*tasks)

        responses = run(drive())
        # No survivors anywhere: every future still resolves, as a
        # degraded empty result with a zero recall ceiling.
        for r in responses:
            assert r.degraded
            assert len(r.result.ids) == 0
            assert r.stats.recall_ceiling == 0.0
        assert service.summary()["degraded"] == 4

    def test_latency_faults_flow_into_latency_accounting(
        self, fault_world
    ):
        queries, predicates = fault_world
        clock = FakeClock()
        # 5 virtual seconds of shard latency against a 1s deadline:
        # the shard times out (degraded) and the virtual seconds the
        # searcher slept show up in the served latency, not in any
        # real wall clock.
        plan = FaultPlan({2: (Fault(kind="latency", latency_s=5.0),)})
        chaos = _chaos(
            _build(_policy(clock, max_retries=0)), plan, clock
        )
        service = make_service(chaos, clock=clock, max_batch=1)

        async def drive():
            response = await service.submit(queries[0], predicates[0])
            await service.drain()
            return response

        response = run(drive())
        assert response.degraded
        assert response.stats.shards_timed_out >= 1
        assert response.latency_ms >= 5000.0
        assert clock.total_slept >= 5.0
