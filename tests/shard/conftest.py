"""Shared fixtures for the sharding test suite.

One session-scoped world (clustered vectors + a table exercising every
column kind) keeps the per-test build cost down; tests that need custom
shapes build their own small worlds inline.
"""

import numpy as np
import pytest

from repro.attributes.table import AttributeTable

N_ROWS = 240
DIM = 12


def make_world(n=N_ROWS, dim=DIM, seed=42):
    """Clustered vectors + a table with int/float/string/keyword columns."""
    rng = np.random.default_rng(seed)
    centers = rng.standard_normal((6, dim)).astype(np.float32)
    assign = rng.integers(0, 6, size=n)
    vectors = (centers[assign]
               + 0.3 * rng.standard_normal((n, dim))).astype(np.float32)
    table = AttributeTable(n)
    table.add_int_column("year", rng.integers(2000, 2020, size=n))
    table.add_float_column("score", rng.uniform(0.0, 1.0, size=n))
    table.add_string_column("cat", [f"c{i % 5}" for i in range(n)])
    table.add_keywords_column(
        "tags",
        [["common"] + [f"t{i % 7}", f"u{i % 11}"] for i in range(n)],
    )
    return vectors, table


@pytest.fixture(scope="session")
def shard_world():
    """The default (vectors, table) world shared across shard tests."""
    return make_world()
