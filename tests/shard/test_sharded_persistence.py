"""Sharded save/load: manifest round-trips, corruption is loud."""

import json
import os

import numpy as np
import pytest

from repro.core.params import AcornParams
from repro.persistence import load_index, save_index
from repro.predicates import Between, TruePredicate
from repro.shard import (
    AttributeRangePartitioner,
    HashPartitioner,
    ShardLoadError,
    ShardedAcornIndex,
)
from repro.shard.persistence import load_sharded, save_sharded

from tests.shard.conftest import make_world

PARAMS = AcornParams(m=8, gamma=6, m_beta=12, ef_construction=40)
N, DIM, SEED = 150, 10, 3


@pytest.fixture(scope="module")
def sharded_index():
    """A 3-shard range-partitioned index with two tombstones."""
    vectors, table = make_world(n=N, dim=DIM, seed=SEED)
    index = ShardedAcornIndex.build(
        vectors, table,
        partitioner=AttributeRangePartitioner("year", n_shards=3),
        params=PARAMS, seed=SEED,
    )
    index.mark_deleted(17)
    index.mark_deleted(42)
    return index


@pytest.fixture()
def query():
    return np.random.default_rng(5).standard_normal(DIM).astype(np.float32)


class TestRoundTrip:
    def test_layout(self, sharded_index, tmp_path):
        root = tmp_path / "idx"
        save_sharded(sharded_index, root)
        names = sorted(os.listdir(root))
        assert names == [
            "assignment.npz", "manifest.json", "shard_00000.npz",
            "shard_00001.npz", "shard_00002.npz", "table.npz",
        ]
        manifest = json.loads((root / "manifest.json").read_text())
        assert manifest["n_shards"] == 3
        assert manifest["n_rows"] == N
        assert manifest["partitioner"]["type"] == "attribute-range"
        assert set(manifest["checksums"]) == set(names) - {"manifest.json"}

    def test_results_preserved(self, sharded_index, tmp_path, query):
        save_sharded(sharded_index, tmp_path / "idx")
        loaded = load_sharded(tmp_path / "idx")
        for predicate in (TruePredicate(), Between("year", 2002, 2008)):
            before = sharded_index.search(query, predicate, 8, ef_search=N)
            after = loaded.search(query, predicate, 8, ef_search=N)
            assert np.array_equal(before.ids, after.ids)
            assert np.allclose(before.distances, after.distances)
            assert after.shards_probed == before.shards_probed
            assert after.shards_pruned == before.shards_pruned

    def test_tombstones_preserved(self, sharded_index, tmp_path):
        save_sharded(sharded_index, tmp_path / "idx")
        loaded = load_sharded(tmp_path / "idx")
        assert loaded.is_deleted(17)
        assert loaded.is_deleted(42)
        assert loaded.num_deleted == 2

    def test_partitioner_and_router_preserved(self, sharded_index, tmp_path):
        save_sharded(sharded_index, tmp_path / "idx")
        loaded = load_sharded(tmp_path / "idx")
        assert loaded.partitioner.spec() == sharded_index.partitioner.spec()
        plan_before = sharded_index.plan(Between("year", 2002, 2004), k=5)
        plan_after = loaded.plan(Between("year", 2002, 2004), k=5)
        assert [d.pruned for d in plan_after.decisions] == [
            d.pruned for d in plan_before.decisions
        ]

    def test_save_index_load_index_dispatch(self, sharded_index, tmp_path,
                                            query):
        """The generic persistence entry points route sharded indexes."""
        save_index(sharded_index, tmp_path / "idx")
        loaded = load_index(tmp_path / "idx")
        assert isinstance(loaded, ShardedAcornIndex)
        before = sharded_index.search(query, TruePredicate(), 5, ef_search=N)
        after = loaded.search(query, TruePredicate(), 5, ef_search=N)
        assert np.array_equal(before.ids, after.ids)

    def test_hash_partitioned_roundtrip(self, tmp_path, query):
        vectors, table = make_world(n=80, dim=DIM, seed=11)
        index = ShardedAcornIndex.build(
            vectors, table, partitioner=HashPartitioner(4, seed=2),
            params=PARAMS, seed=11,
        )
        save_sharded(index, tmp_path / "idx")
        loaded = load_sharded(tmp_path / "idx")
        before = index.search(query, TruePredicate(), 6, ef_search=80)
        after = loaded.search(query, TruePredicate(), 6, ef_search=80)
        assert np.array_equal(before.ids, after.ids)


class TestCorruption:
    def _saved(self, sharded_index, tmp_path):
        root = tmp_path / "idx"
        save_sharded(sharded_index, root)
        return root

    def test_missing_shard_file_names_it(self, sharded_index, tmp_path):
        root = self._saved(sharded_index, tmp_path)
        (root / "shard_00001.npz").unlink()
        with pytest.raises(ShardLoadError, match="shard_00001.npz"):
            load_sharded(root)

    def test_corrupt_shard_file_names_it(self, sharded_index, tmp_path):
        root = self._saved(sharded_index, tmp_path)
        target = root / "shard_00002.npz"
        blob = bytearray(target.read_bytes())
        blob[20:24] = b"\x00\x01\x02\x03"
        target.write_bytes(bytes(blob))
        with pytest.raises(ShardLoadError, match="shard_00002.npz"):
            load_sharded(root)

    def test_corrupt_assignment(self, sharded_index, tmp_path):
        root = self._saved(sharded_index, tmp_path)
        (root / "assignment.npz").write_bytes(b"not an archive")
        with pytest.raises(ShardLoadError, match="assignment.npz"):
            load_sharded(root)

    def test_missing_manifest(self, sharded_index, tmp_path):
        root = self._saved(sharded_index, tmp_path)
        (root / "manifest.json").unlink()
        with pytest.raises(ShardLoadError, match="manifest.json"):
            load_sharded(root)

    def test_corrupt_manifest_json(self, sharded_index, tmp_path):
        root = self._saved(sharded_index, tmp_path)
        (root / "manifest.json").write_text("{not json")
        with pytest.raises(ShardLoadError, match="corrupt"):
            load_sharded(root)

    def test_wrong_format_version(self, sharded_index, tmp_path):
        root = self._saved(sharded_index, tmp_path)
        manifest = json.loads((root / "manifest.json").read_text())
        manifest["format_version"] = 99
        (root / "manifest.json").write_text(json.dumps(manifest))
        with pytest.raises(ShardLoadError, match="version"):
            load_sharded(root)

    def test_no_partial_index_on_failure(self, sharded_index, tmp_path):
        """A failed load raises; it never returns a half-built index."""
        root = self._saved(sharded_index, tmp_path)
        (root / "table.npz").unlink()
        with pytest.raises(ShardLoadError, match="table.npz"):
            load_sharded(root)
