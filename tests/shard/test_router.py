"""Router and summary tests: pruning soundness and plan accounting."""

import numpy as np
import pytest

from repro.attributes.table import AttributeTable
from repro.predicates import (
    And,
    Between,
    ContainsAll,
    ContainsAny,
    Equals,
    Not,
    OneOf,
    Or,
    RegexMatch,
    TruePredicate,
)
from repro.shard.partition import AttributeRangePartitioner, subset_table
from repro.shard.router import ShardRouter
from repro.shard.summary import (
    KeywordDigest,
    ShardSummary,
    summarize_table,
)

from tests.shard.conftest import make_world


def make_shard_summaries(table, partitioner):
    """Partition ``table`` and summarize each shard, returning both."""
    assignment = partitioner.partition(table)
    tables = [subset_table(table, gids) for gids in assignment.global_ids]
    return assignment, tables, [summarize_table(t) for t in tables]


class TestKeywordDigest:
    def test_no_false_negatives(self):
        words = [f"word{i}" for i in range(300)]
        digest = KeywordDigest.build(words)
        assert all(digest.might_contain(w) for w in words)

    def test_misses_prune(self):
        digest = KeywordDigest.build(["alpha", "beta"])
        # With 2048 bits and 2 words, an arbitrary probe word is
        # overwhelmingly likely to miss; assert a known miss exists.
        assert not all(
            digest.might_contain(f"probe{i}") for i in range(50)
        )

    def test_hex_roundtrip(self):
        digest = KeywordDigest.build(["x", "y", "z"])
        clone = KeywordDigest.from_hex(digest.to_hex(), digest.bits.size)
        assert np.array_equal(clone.bits, digest.bits)


class TestSummaryRoundtrip:
    def test_to_from_dict(self, shard_world):
        _, table = shard_world
        summary = summarize_table(table)
        clone = ShardSummary.from_dict(summary.to_dict())
        assert clone.n_rows == summary.n_rows
        for name, numeric in summary.numeric.items():
            other = clone.numeric[name]
            assert other.min == numeric.min
            assert other.max == numeric.max
            assert other.value_counts == numeric.value_counts
            assert np.array_equal(other.hist_counts, numeric.hist_counts)
        for name, kw in summary.keywords.items():
            other = clone.keywords[name]
            assert np.array_equal(other.digest.bits, kw.digest.bits)
            assert other.n_distinct == kw.n_distinct


class TestPruningSoundness:
    """Every pruned shard must have a provably-empty local mask."""

    PREDICATES = [
        TruePredicate(),
        Equals("year", 2003),
        Equals("year", 1950),
        Equals("cat", "c2"),
        OneOf("year", (2001, 2002)),
        OneOf("year", (1800, 1801)),
        Between("year", 2000, 2004),
        Between("year", 1900, 1901),
        Between("score", 0.0, 0.2),
        ContainsAny("tags", ("t3", "zzz-missing")),
        ContainsAny("tags", ("zzz-missing",)),
        ContainsAll("tags", ("common", "t1")),
        ContainsAll("tags", ("common", "zzz-missing")),
        RegexMatch("cat", r"c[12]"),
        And(Between("year", 2000, 2005), ContainsAny("tags", ("t1",))),
        Or(Between("year", 1900, 1901), Equals("year", 1800)),
        Not(TruePredicate()),
        Not(Between("year", 1000, 3000)),
    ]

    @pytest.mark.parametrize(
        "predicate", PREDICATES, ids=[repr(p)[:50] for p in PREDICATES]
    )
    def test_pruned_shards_are_truly_empty(self, predicate):
        _, table = make_world(n=200, seed=9)
        assignment, tables, summaries = make_shard_summaries(
            table, AttributeRangePartitioner("year", n_shards=4)
        )
        router = ShardRouter(summaries)
        plan = router.plan(predicate, k=5, ef_search=32)
        assert plan.n_pruned + plan.n_probed == plan.n_shards == 4
        for decision in plan.decisions:
            if decision.pruned:
                local_mask = predicate.compile(
                    tables[decision.shard_id]
                ).mask
                assert not local_mask.any(), (
                    f"router pruned shard {decision.shard_id} "
                    f"({decision.reason!r}) but {int(local_mask.sum())} "
                    "rows pass"
                )

    def test_disjoint_range_prunes(self):
        _, table = make_world(n=200, seed=9)
        _, _, summaries = make_shard_summaries(
            table, AttributeRangePartitioner("year", n_shards=4)
        )
        router = ShardRouter(summaries)
        plan = router.plan(Between("year", 2000, 2002), k=5, ef_search=32)
        assert plan.n_pruned >= 1

    def test_empty_shard_always_pruned(self):
        empty = summarize_table(AttributeTable(0))
        router = ShardRouter([empty])
        plan = router.plan(TruePredicate(), k=5, ef_search=32)
        assert plan.decisions[0].pruned
        assert plan.decisions[0].reason == "empty shard"

    def test_regex_never_pruned(self):
        _, table = make_world(n=100, seed=2)
        _, _, summaries = make_shard_summaries(
            table, AttributeRangePartitioner("year", n_shards=3)
        )
        plan = ShardRouter(summaries).plan(
            RegexMatch("cat", r"nothing-matches"), k=5, ef_search=32
        )
        assert plan.n_pruned == 0


class TestEstimates:
    def test_estimates_in_unit_interval(self):
        _, table = make_world(n=150, seed=4)
        _, _, summaries = make_shard_summaries(
            table, AttributeRangePartitioner("year", n_shards=3)
        )
        router = ShardRouter(summaries)
        predicates = TestPruningSoundness.PREDICATES
        for predicate in predicates:
            for shard_id in range(3):
                est = router.estimate(shard_id, predicate)
                assert 0.0 <= est <= 1.0, (predicate, est)

    def test_true_predicate_estimates_full(self):
        _, table = make_world(n=60, seed=4)
        summary = summarize_table(table)
        router = ShardRouter([summary])
        assert router.estimate(0, TruePredicate()) == 1.0


class TestEfScaling:
    def _router(self):
        _, table = make_world(n=200, seed=9)
        _, _, summaries = make_shard_summaries(
            table, AttributeRangePartitioner("year", n_shards=4)
        )
        return ShardRouter(summaries, min_ef=8)

    def test_scaling_off_keeps_caller_ef(self):
        plan = self._router().plan(
            Between("year", 2000, 2010), k=5, ef_search=64, scale_ef=False
        )
        assert all(d.ef_search == 64 for d in plan.probed)

    def test_scaling_bounded(self):
        plan = self._router().plan(
            Between("year", 2000, 2004), k=5, ef_search=64, scale_ef=True
        )
        for decision in plan.probed:
            assert 8 <= decision.ef_search <= 64
        # the most selective probed shard drives the scale: at least
        # one shard runs at the caller's full effort
        assert any(d.ef_search == 64 for d in plan.probed)

    def test_floor_respects_k(self):
        plan = self._router().plan(
            Between("year", 2000, 2004), k=40, ef_search=64, scale_ef=True
        )
        assert all(d.ef_search >= 40 for d in plan.probed)
