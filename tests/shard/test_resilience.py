"""Chaos suite: fault-tolerant scatter-gather under injected failures.

Every test runs on an injected :class:`~repro.utils.clock.FakeClock` —
an autouse fixture turns any real ``time.sleep`` into a test failure,
so the whole suite is wall-clock free and deterministic.  Tests build
their own small flat-variant worlds (cheap graphs) and create a fresh
fault-injected view per test, so nothing leaks between tests and the
suite passes under any execution order.
"""

import time as time_module

import numpy as np
import pytest

from repro.attributes.table import AttributeTable
from repro.predicates import Between, TruePredicate
from repro.shard import (
    AttributeRangePartitioner,
    BreakerState,
    CircuitBreaker,
    Fault,
    FaultInjector,
    FaultPlan,
    HashPartitioner,
    ResiliencePolicy,
    ShardedAcornIndex,
    merge_topk,
)
from repro.shard.faults import ShardFault
from repro.shard.resilience import (
    recall_ceiling,
    validate_shard_result,
)
from repro.utils.clock import FakeClock

N, DIM, SEED = 120, 8, 11
N_SHARDS = 4
K = 8


@pytest.fixture(autouse=True)
def forbid_real_sleep(monkeypatch):
    """Any real time.sleep in this suite is a bug — fail loudly."""

    def _no_sleep(seconds):
        raise AssertionError(
            f"real time.sleep({seconds}) called inside the chaos suite; "
            "all waiting must go through the injected FakeClock"
        )

    monkeypatch.setattr(time_module, "sleep", _no_sleep)


def _world(seed=SEED):
    rng = np.random.default_rng(seed)
    vectors = rng.standard_normal((N, DIM)).astype(np.float32)
    table = AttributeTable(N)
    table.add_int_column("year", rng.integers(2000, 2012, size=N))
    return vectors, table


PARTITIONERS = {
    "hash": lambda: HashPartitioner(N_SHARDS),
    "range": lambda: AttributeRangePartitioner("year", n_shards=N_SHARDS),
}


def _build(partitioner_name, policy):
    vectors, table = _world()
    index = ShardedAcornIndex.build(
        vectors, table,
        partitioner=PARTITIONERS[partitioner_name](),
        variant="flat", seed=SEED, resilience=policy,
    )
    return vectors, table, index


def _policy(clock, **overrides):
    kwargs = dict(
        shard_deadline_s=1.0,
        max_retries=1,
        backoff_base_s=0.05,
        breaker_threshold=100,  # keep breakers out of the matrix tests
        breaker_reset_s=50.0,
        clock=clock,
    )
    kwargs.update(overrides)
    return ResiliencePolicy(**kwargs)


def _survivor_reference(index, query, predicate, k, ef, dead):
    """Ground-truth scatter-gather restricted to surviving shards."""
    compiled = predicate.compile(index.table)
    plan = index.plan(compiled, k=k, ef_search=ef)
    streams = []
    for decision in plan.decisions:
        if decision.pruned or decision.shard_id in dead:
            continue
        gids = index.assignment.global_ids[decision.shard_id]
        local_mask = compiled.mask[gids]
        if not local_mask.any():
            continue
        shard = index.shards[decision.shard_id]
        found = shard.search(
            query, type(compiled)(compiled.predicate, local_mask),
            k, ef_search=decision.ef_search,
        )
        streams.append(zip(found.distances.tolist(),
                           gids[found.ids].tolist()))
    return merge_topk(streams, k)


FAULT_MATRIX = {
    "timeout": Fault(kind="latency", latency_s=5.0),
    "exception": Fault(kind="error"),
    "corrupt": Fault(kind="corrupt"),
    "truncate": Fault(kind="truncate"),
}


class TestFailureMatrix:
    """(fault kind) x (partitioner): partial results stay correct and
    the failure accounting is exact."""

    @pytest.mark.parametrize("partitioner_name", sorted(PARTITIONERS))
    @pytest.mark.parametrize("fault_name", sorted(FAULT_MATRIX))
    def test_degraded_matches_survivors(self, fault_name, partitioner_name):
        clock = FakeClock()
        policy = _policy(clock)
        vectors, table, index = _build(partitioner_name, policy)
        dead = {1}
        plan = FaultPlan({1: (FAULT_MATRIX[fault_name],)})
        chaos = index.with_faults(FaultInjector(plan, clock=clock, seed=3))

        queries = vectors[[5, 40, 77]]
        for predicate in (TruePredicate(), Between("year", 2003, 2008)):
            for query in queries:
                result = chaos.search(query, predicate, K, ef_search=N)
                expected = _survivor_reference(
                    index, query, predicate, K, N, dead
                )
                assert result.ids.tolist() == [g for _, g in expected]
                assert result.distances.tolist() == pytest.approx(
                    [d for d, _ in expected]
                )

                # Exact accounting: the one dead shard, when probed,
                # lands in exactly one failure bucket.
                probed_dead = sum(
                    1 for rec in result.per_shard
                    if not rec["pruned"] and rec["shard"] in dead
                )
                assert result.shards_probed + result.shards_pruned == N_SHARDS
                assert (result.shards_failed + result.shards_timed_out
                        == probed_dead)
                if probed_dead:
                    assert result.degraded
                    if fault_name == "timeout":
                        assert result.shards_timed_out == 1
                        assert result.shards_failed == 0
                    else:
                        assert result.shards_failed == 1
                        assert result.shards_timed_out == 0
                    assert 0.0 <= result.recall_ceiling < 1.0
                else:
                    assert not result.degraded
                    assert result.recall_ceiling == 1.0

    @pytest.mark.parametrize("partitioner_name", sorted(PARTITIONERS))
    def test_per_shard_records_carry_failure_details(self, partitioner_name):
        clock = FakeClock()
        policy = _policy(clock)
        vectors, _, index = _build(partitioner_name, policy)
        plan = FaultPlan({2: (Fault(kind="error"),)})
        chaos = index.with_faults(FaultInjector(plan, clock=clock))
        result = chaos.search(vectors[0], TruePredicate(), K, ef_search=N)
        record = next(r for r in result.per_shard if r["shard"] == 2)
        assert record["status"] == "failed"
        assert record["attempts"] == policy.max_retries + 1
        assert "ShardFault" in record["failure"]
        for rec in result.per_shard:
            if rec["shard"] != 2 and not rec["pruned"]:
                assert rec["status"] == "ok"
                assert rec["failure"] is None


class TestFlakyRecovery:
    def test_flaky_shard_recovers_on_schedule(self):
        clock = FakeClock()
        policy = _policy(clock)
        vectors, _, index = _build("hash", policy)
        # First two calls to shard 0 fail, then it recovers.  With one
        # retry, query 1 burns both faulty calls and degrades; query 2
        # hits the recovered shard and must match the full reference.
        plan = FaultPlan({0: (Fault(kind="error", last_call=1),)})
        injector = FaultInjector(plan, clock=clock)
        chaos = index.with_faults(injector)

        first = chaos.search(vectors[9], TruePredicate(), K, ef_search=N)
        assert first.degraded
        assert first.shards_failed == 1
        assert injector.calls_to(0) == 2

        second = chaos.search(vectors[9], TruePredicate(), K, ef_search=N)
        assert not second.degraded
        assert second.shards_failed == 0
        assert second.recall_ceiling == 1.0
        healthy = index.search(vectors[9], TruePredicate(), K, ef_search=N)
        assert second.ids.tolist() == healthy.ids.tolist()

    def test_retry_consumes_backoff_on_the_injected_clock(self):
        clock = FakeClock()
        policy = _policy(clock, max_retries=2, backoff_base_s=0.25,
                         backoff_multiplier=2.0)
        vectors, _, index = _build("hash", policy)
        plan = FaultPlan({0: (Fault(kind="error"),)})
        chaos = index.with_faults(FaultInjector(plan, clock=clock))
        before = clock.monotonic()
        chaos.search(vectors[0], TruePredicate(), K, ef_search=N)
        elapsed = clock.monotonic() - before
        # Two retries: backoffs of 0.25 and 0.5 virtual seconds.
        assert elapsed == pytest.approx(0.75)


class TestCircuitBreaker:
    def _breaker_setup(self, fault_window):
        clock = FakeClock()
        policy = _policy(clock, max_retries=0, breaker_threshold=2,
                         breaker_reset_s=10.0)
        vectors, _, index = _build("hash", policy)
        plan = FaultPlan({0: (Fault(kind="error", last_call=fault_window),)})
        injector = FaultInjector(plan, clock=clock)
        chaos = index.with_faults(injector)
        return clock, vectors, injector, chaos

    def test_breaker_opens_rejects_then_recloses_on_schedule(self):
        clock, vectors, injector, chaos = self._breaker_setup(fault_window=1)
        query = vectors[3]

        chaos.search(query, TruePredicate(), K, ef_search=N)  # failure 1
        assert chaos.breakers[0].state is BreakerState.CLOSED
        chaos.search(query, TruePredicate(), K, ef_search=N)  # failure 2
        assert chaos.breakers[0].state is BreakerState.OPEN

        # Open breaker rejects without touching the shard at all.
        rejected = chaos.search(query, TruePredicate(), K, ef_search=N)
        record = next(r for r in rejected.per_shard if r["shard"] == 0)
        assert record["status"] == "failed"
        assert record["attempts"] == 0
        assert record["failure"] == "circuit breaker open"
        assert injector.calls_to(0) == 2

        # Not yet: one virtual second short of the reset window.
        clock.advance(9.0)
        assert chaos.breakers[0].state is BreakerState.OPEN
        clock.advance(1.0)
        assert chaos.breakers[0].state is BreakerState.HALF_OPEN

        # Half-open trial hits the now-recovered shard and recloses.
        healed = chaos.search(query, TruePredicate(), K, ef_search=N)
        assert not healed.degraded
        assert chaos.breakers[0].state is BreakerState.CLOSED

    def test_half_open_failure_reopens(self):
        clock, vectors, injector, chaos = self._breaker_setup(fault_window=10)
        query = vectors[3]
        chaos.search(query, TruePredicate(), K, ef_search=N)
        chaos.search(query, TruePredicate(), K, ef_search=N)
        assert chaos.breakers[0].state is BreakerState.OPEN
        clock.advance(10.0)
        assert chaos.breakers[0].state is BreakerState.HALF_OPEN
        failed = chaos.search(query, TruePredicate(), K, ef_search=N)
        assert failed.shards_failed == 1
        assert chaos.breakers[0].state is BreakerState.OPEN

    def test_breaker_unit_state_machine(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=3, reset_timeout_s=5.0,
                                 clock=clock)
        assert breaker.state is BreakerState.CLOSED
        for _ in range(2):
            breaker.record_failure()
        assert breaker.state is BreakerState.CLOSED
        breaker.record_failure()
        assert breaker.state is BreakerState.OPEN
        assert not breaker.allow()
        clock.advance(5.0)
        assert breaker.allow()  # the half-open trial slot
        assert not breaker.allow()  # only one trial in flight
        breaker.record_success()
        assert breaker.state is BreakerState.CLOSED
        assert breaker.consecutive_failures == 0


class TestBaseExceptionPropagation:
    """Poisoned shards raising BaseException must never be folded into
    failure accounting — interrupts propagate."""

    class PoisonShard:
        """A shard whose search raises a BaseException subclass."""

        def __init__(self, inner, exc_type):
            self.inner = inner
            self.exc_type = exc_type

        def search(self, *args, **kwargs):
            raise self.exc_type("poisoned shard")

        def __len__(self):
            return len(self.inner)

        def __getattr__(self, name):
            return getattr(self.inner, name)

    @pytest.mark.parametrize("exc_type", [KeyboardInterrupt, SystemExit])
    @pytest.mark.parametrize("shard_workers", [1, 2])
    @pytest.mark.parametrize("with_policy", [True, False])
    def test_base_exception_propagates(self, exc_type, shard_workers,
                                       with_policy):
        clock = FakeClock()
        policy = _policy(clock) if with_policy else None
        vectors, table = _world()
        index = ShardedAcornIndex.build(
            vectors, table, partitioner=HashPartitioner(N_SHARDS),
            variant="flat", seed=SEED, resilience=policy,
            shard_workers=shard_workers,
        )
        index.shards[1] = self.PoisonShard(index.shards[1], exc_type)
        with pytest.raises(exc_type):
            index.search(vectors[0], TruePredicate(), K, ef_search=N)
        index.close()

    def test_plain_exception_still_propagates_without_policy(self):
        vectors, table = _world()
        index = ShardedAcornIndex.build(
            vectors, table, partitioner=HashPartitioner(N_SHARDS),
            variant="flat", seed=SEED,
        )
        clock = FakeClock()
        plan = FaultPlan({1: (Fault(kind="error"),)})
        chaos = index.with_faults(FaultInjector(plan, clock=clock))
        with pytest.raises(ShardFault):
            chaos.search(vectors[0], TruePredicate(), K, ef_search=N)


class TestValidation:
    def _result(self, ids, distances):
        from repro.hnsw.hnsw import SearchResult

        return SearchResult(
            ids=np.asarray(ids, dtype=np.intp),
            distances=np.asarray(distances, dtype=np.float32),
            distance_computations=0,
        )

    def test_valid_payload_passes(self):
        assert validate_shard_result(
            self._result([0, 2], [0.1, 0.4]), shard_len=5
        ) is None

    def test_empty_payload_passes(self):
        assert validate_shard_result(self._result([], []), shard_len=5) is None

    def test_length_mismatch_rejected(self):
        reason = validate_shard_result(
            self._result([0, 1], [0.1, 0.2, 0.3]), shard_len=5
        )
        assert "length mismatch" in reason

    def test_out_of_range_ids_rejected(self):
        assert "outside" in validate_shard_result(
            self._result([0, 7], [0.1, 0.2]), shard_len=5
        )

    def test_nan_distances_rejected(self):
        assert "non-finite" in validate_shard_result(
            self._result([0, 1], [0.1, np.nan]), shard_len=5
        )

    def test_unsorted_distances_rejected(self):
        assert "not sorted" in validate_shard_result(
            self._result([0, 1], [0.5, 0.2]), shard_len=5
        )


class TestRecallCeiling:
    def test_all_surviving_is_one(self):
        assert recall_ceiling([3.0, 5.0], [True, True]) == 1.0

    def test_share_of_estimated_rows(self):
        assert recall_ceiling([3.0, 1.0], [True, False]) == pytest.approx(0.75)

    def test_nothing_expected_is_one(self):
        assert recall_ceiling([0.0, 0.0], [False, True]) == 1.0

    def test_engine_threads_failure_fields_through_stats(self):
        from repro.engine import QueryBatch, SearchEngine

        clock = FakeClock()
        policy = _policy(clock)
        vectors, _, index = _build("hash", policy)
        plan = FaultPlan({2: (Fault(kind="error"),)})
        chaos = index.with_faults(FaultInjector(plan, clock=clock))
        batch = QueryBatch.build(vectors[:4], TruePredicate(), k=K,
                                 ef_search=N)
        with SearchEngine(chaos, num_workers=1) as engine:
            outcome = engine.search_batch(batch)
        assert all(s.degraded for s in outcome.stats)
        assert outcome.degraded_queries == 4
        assert outcome.total_shards_failed == 4
        assert outcome.total_shards_timed_out == 0
        assert 0.0 < outcome.min_recall_ceiling < 1.0
        summary = outcome.summary()
        assert summary["shards_failed"] == 4
        assert summary["degraded_queries"] == 4


class TestDeterminism:
    def _run_once(self):
        clock = FakeClock()
        policy = _policy(clock)
        vectors, _, index = _build("hash", policy)
        plan = FaultPlan.seeded(N_SHARDS, 0.5, seed=9,
                                kinds=("error", "latency", "corrupt"),
                                latency_s=5.0)
        chaos = index.with_faults(FaultInjector(plan, clock=clock, seed=9))
        trace = []
        for query in vectors[:5]:
            r = chaos.search(query, TruePredicate(), K, ef_search=N)
            trace.append((
                r.ids.tolist(), r.shards_failed, r.shards_timed_out,
                r.degraded, round(r.recall_ceiling, 9),
                tuple(rec["status"] for rec in r.per_shard),
            ))
        trace.append(clock.monotonic())
        return trace

    def test_three_consecutive_runs_identical(self):
        first = self._run_once()
        assert self._run_once() == first
        assert self._run_once() == first
