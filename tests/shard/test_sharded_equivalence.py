"""Sharded search must equal the single-index reference.

The matrix covers every ACORN variant, both partitioners, every
predicate type, and a configurable set of shard counts
(``REPRO_SHARD_COUNTS`` env var, default ``1,2,3`` — CI's shard-matrix
job sweeps it).  Comparisons run in the exhaustive regime (per-shard
``ef_search >= n``): there the scatter-gather merge provably returns
the global top-k over passing rows, byte-identical to the unsharded
index's own exhaustive answer (ties are measure-zero for continuous
random vectors; the merge tie-breaks on global id).

The ``n_shards=1`` hash case is stronger: a single shard preserves
global insertion order and reuses the seed, so the shard's graph is
*identical* to the unsharded build and results match at any effort.
"""

import os

import numpy as np
import pytest

from repro.core.acorn import AcornIndex, AcornOneIndex
from repro.core.flat import FlatAcornIndex
from repro.core.params import AcornParams
from repro.engine import QueryBatch, SearchEngine
from repro.predicates import (
    And,
    Between,
    ContainsAll,
    ContainsAny,
    Equals,
    Not,
    OneOf,
    Or,
    RegexMatch,
    TruePredicate,
)
from repro.shard import (
    AttributeRangePartitioner,
    HashPartitioner,
    ShardedAcornIndex,
)

from tests.shard.conftest import make_world

SHARD_COUNTS = [
    int(s) for s in os.environ.get("REPRO_SHARD_COUNTS", "1,2,3").split(",")
]
N, DIM, SEED = 160, 10, 7
PARAMS = AcornParams(m=8, gamma=8, m_beta=16, ef_construction=48)
ACORN1_M, ACORN1_EF = 16, 48
K = 10

PREDICATES = {
    "true": TruePredicate(),
    "equals-int": Equals("year", 2004),
    "equals-str": Equals("cat", "c2"),
    # Wide enough that ACORN-1's 1-hop predicate subgraph stays
    # connected on this world; narrower sets make the *unsharded*
    # reference itself miss the exact answer (the exhaustive-regime
    # contract needs connected subgraphs on both sides).
    "oneof": OneOf("year", (2001, 2002, 2007, 2015)),
    "between": Between("year", 2003, 2008),
    "contains-any": ContainsAny("tags", ("t1", "t4")),
    "contains-all": ContainsAll("tags", ("common", "t2")),
    "regex": RegexMatch("cat", r"c[13]"),
    "and": And(Between("year", 2002, 2012), ContainsAny("tags", ("common",))),
    "or": Or(Equals("year", 2001), Between("score", 0.0, 0.3)),
    "not": Not(Between("year", 2010, 2019)),
}

PARTITIONERS = {
    "hash": lambda n_shards: HashPartitioner(n_shards, seed=1),
    "range": lambda n_shards: AttributeRangePartitioner(
        "year", n_shards=n_shards
    ),
}

_world = make_world(n=N, dim=DIM, seed=SEED)
_queries = np.random.default_rng(99).standard_normal(
    (5, DIM)
).astype(np.float32)

_reference_cache: dict = {}
_sharded_cache: dict = {}


def build_reference(variant):
    """The unsharded index for one variant (module-level cache)."""
    if variant not in _reference_cache:
        vectors, table = _world
        if variant == "acorn":
            index = AcornIndex.build(vectors, table, params=PARAMS, seed=SEED)
        elif variant == "acorn1":
            index = AcornOneIndex.build(
                vectors, table, m=ACORN1_M, ef_construction=ACORN1_EF,
                seed=SEED,
            )
        else:
            index = FlatAcornIndex.build(
                vectors, table, params=PARAMS, seed=SEED
            )
        _reference_cache[variant] = index
    return _reference_cache[variant]


def build_sharded(variant, part_kind, n_shards):
    """The sharded index for one matrix cell (module-level cache)."""
    key = (variant, part_kind, n_shards)
    if key not in _sharded_cache:
        vectors, table = _world
        _sharded_cache[key] = ShardedAcornIndex.build(
            vectors, table,
            partitioner=PARTITIONERS[part_kind](n_shards),
            params=PARAMS, seed=SEED, variant=variant,
            acorn1_m=ACORN1_M, acorn1_ef_construction=ACORN1_EF,
        )
    return _sharded_cache[key]


@pytest.mark.parametrize("variant", ["acorn", "acorn1", "flat"])
@pytest.mark.parametrize("part_kind", sorted(PARTITIONERS))
@pytest.mark.parametrize("n_shards", SHARD_COUNTS)
@pytest.mark.parametrize("pred_name", sorted(PREDICATES))
def test_exhaustive_equivalence(variant, part_kind, n_shards, pred_name):
    reference = build_reference(variant)
    sharded = build_sharded(variant, part_kind, n_shards)
    predicate = PREDICATES[pred_name]
    for query in _queries:
        expected = reference.search(query, predicate, K, ef_search=N)
        got = sharded.search(query, predicate, K, ef_search=N)
        assert got.shards_probed + got.shards_pruned == n_shards
        assert np.array_equal(got.ids, expected.ids), (
            f"{variant}/{part_kind}/{n_shards}/{pred_name}: "
            f"{got.ids} != {expected.ids}"
        )
        assert np.allclose(got.distances, expected.distances)


@pytest.mark.parametrize("variant", ["acorn", "acorn1", "flat"])
def test_single_shard_matches_at_any_effort(variant):
    """n_shards=1 + same seed ⇒ graph-identical, equal even at low ef."""
    reference = build_reference(variant)
    sharded = build_sharded(variant, "hash", 1)
    for ef in (16, 32):
        for pred_name in ("true", "between", "regex"):
            predicate = PREDICATES[pred_name]
            for query in _queries:
                expected = reference.search(query, predicate, K, ef_search=ef)
                got = sharded.search(query, predicate, K, ef_search=ef)
                assert np.array_equal(got.ids, expected.ids)
                assert np.allclose(got.distances, expected.distances)


def test_range_partitioner_prunes_selective_predicates():
    """Acceptance: ≥1 shard pruned on range-partitioned data, visible
    in the engine's QueryStats."""
    sharded = build_sharded("acorn", "range", 3)
    predicate = Between("year", 2000, 2003)
    plan = sharded.plan(predicate, k=K, ef_search=64)
    assert plan.n_pruned >= 1
    with SearchEngine(sharded, num_workers=2) as engine:
        batch = QueryBatch.build(_queries, predicate, k=K, ef_search=64)
        outcome = engine.search_batch(batch)
    for stats in outcome.stats:
        assert stats.shards_pruned >= 1
        assert stats.shards_probed + stats.shards_pruned == 3
    assert outcome.total_shards_pruned >= len(_queries)


def test_scaled_ef_keeps_recall_reasonable():
    """scale_ef trades effort for recall but never empties results."""
    vectors, table = _world
    scaled = ShardedAcornIndex.build(
        vectors, table,
        partitioner=AttributeRangePartitioner("year", n_shards=3),
        params=PARAMS, seed=SEED, scale_ef=True,
    )
    predicate = Between("year", 2002, 2012)
    exact = build_reference("acorn")
    for query in _queries:
        expected = set(exact.search(query, predicate, K, ef_search=N).ids.tolist())
        got = scaled.search(query, predicate, K, ef_search=64)
        assert len(got) > 0
        overlap = len(set(got.ids.tolist()) & expected)
        assert overlap >= K // 2


def test_sharded_results_are_sorted_and_pass_predicate():
    sharded = build_sharded("acorn", "range", 3)
    predicate = And(Between("year", 2002, 2012), ContainsAny("tags", ("t1",)))
    mask = predicate.compile(_world[1]).mask
    for query in _queries:
        result = sharded.search(query, predicate, K, ef_search=N)
        distances = result.distances
        assert np.all(distances[:-1] <= distances[1:])
        assert mask[result.ids].all()


def test_tombstones_respected_across_shards():
    vectors, table = _world
    sharded = ShardedAcornIndex.build(
        vectors, table, partitioner=HashPartitioner(3, seed=2),
        params=PARAMS, seed=SEED,
    )
    query = _queries[0]
    first = sharded.search(query, TruePredicate(), K, ef_search=N)
    victim = int(first.ids[0])
    sharded.mark_deleted(victim)
    assert sharded.is_deleted(victim)
    assert sharded.num_deleted == 1
    second = sharded.search(query, TruePredicate(), K, ef_search=N)
    assert victim not in second.ids.tolist()
    sharded.unmark_deleted(victim)
    third = sharded.search(query, TruePredicate(), K, ef_search=N)
    assert np.array_equal(third.ids, first.ids)
