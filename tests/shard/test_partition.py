"""Unit tests for partitioners, assignments, and table subsetting."""

import numpy as np
import pytest

from repro.attributes.table import AttributeTable, ColumnKind
from repro.shard.partition import (
    AttributeRangePartitioner,
    HashPartitioner,
    ShardAssignment,
    partitioner_from_spec,
    subset_table,
)

from tests.shard.conftest import make_world


class TestHashPartitioner:
    def test_deterministic(self, shard_world):
        _, table = shard_world
        a = HashPartitioner(4, seed=7).assign(table)
        b = HashPartitioner(4, seed=7).assign(table)
        assert np.array_equal(a, b)

    def test_seed_changes_placement(self, shard_world):
        _, table = shard_world
        a = HashPartitioner(4, seed=1).assign(table)
        b = HashPartitioner(4, seed=2).assign(table)
        assert not np.array_equal(a, b)

    def test_single_shard_preserves_global_order(self, shard_world):
        _, table = shard_world
        assignment = HashPartitioner(1).partition(table)
        assert np.array_equal(
            assignment.global_ids[0], np.arange(len(table))
        )

    def test_roughly_balanced(self, shard_world):
        _, table = shard_world
        assignment = HashPartitioner(3, seed=0).partition(table)
        sizes = [g.shape[0] for g in assignment.global_ids]
        assert sum(sizes) == len(table)
        assert min(sizes) > len(table) // 6

    def test_rejects_nonpositive_shards(self):
        with pytest.raises(ValueError, match="positive"):
            HashPartitioner(0)


class TestAttributeRangePartitioner:
    def test_quantile_boundaries_frozen_after_first_use(self, shard_world):
        _, table = shard_world
        part = AttributeRangePartitioner("year", n_shards=3)
        assert part.boundaries is None
        first = part.assign(table)
        frozen = list(part.boundaries)
        assert np.array_equal(part.assign(table), first)
        assert part.boundaries == frozen

    def test_explicit_boundaries_respected(self, shard_world):
        _, table = shard_world
        part = AttributeRangePartitioner("year", boundaries=[2005, 2012])
        assert part.n_shards == 3
        shard_of = part.assign(table)
        years = np.asarray(table.column("year"))
        assert np.array_equal(shard_of == 0, years <= 2005)
        assert np.array_equal(shard_of == 2, years > 2012)

    def test_rejects_unsorted_boundaries(self):
        with pytest.raises(ValueError, match="ascend"):
            AttributeRangePartitioner("year", boundaries=[5, 2])

    def test_rejects_inconsistent_shard_count(self):
        with pytest.raises(ValueError, match="imply"):
            AttributeRangePartitioner("year", n_shards=5, boundaries=[1.0])

    def test_rejects_non_numeric_column(self, shard_world):
        _, table = shard_world
        part = AttributeRangePartitioner("cat", n_shards=2)
        with pytest.raises(ValueError, match="int or float"):
            part.assign(table)

    def test_requires_shards_or_boundaries(self):
        with pytest.raises(ValueError, match="n_shards or"):
            AttributeRangePartitioner("year")


class TestShardAssignment:
    def test_local_global_roundtrip(self, shard_world):
        _, table = shard_world
        assignment = HashPartitioner(4, seed=3).partition(table)
        for gid in range(len(table)):
            shard, local = assignment.to_local(gid)
            assert assignment.to_global(shard, local) == gid

    def test_global_ids_ascend_per_shard(self, shard_world):
        _, table = shard_world
        assignment = HashPartitioner(5, seed=9).partition(table)
        for gids in assignment.global_ids:
            assert np.array_equal(gids, np.sort(gids))

    def test_out_of_range_global_id(self, shard_world):
        _, table = shard_world
        assignment = HashPartitioner(2).partition(table)
        with pytest.raises(IndexError):
            assignment.to_local(len(table))

    def test_from_shard_of_rejects_bad_ids(self):
        with pytest.raises(ValueError, match="shard ids"):
            ShardAssignment.from_shard_of(np.asarray([0, 3]), n_shards=2)


class TestSpecRoundtrip:
    def test_hash_spec(self):
        part = HashPartitioner(6, seed=11)
        clone = partitioner_from_spec(part.spec())
        assert isinstance(clone, HashPartitioner)
        assert (clone.n_shards, clone.seed) == (6, 11)

    def test_range_spec_preserves_realized_boundaries(self, shard_world):
        _, table = shard_world
        part = AttributeRangePartitioner("score", n_shards=4)
        before = part.assign(table)
        clone = partitioner_from_spec(part.spec())
        assert np.array_equal(clone.assign(table), before)

    def test_unknown_spec_type(self):
        with pytest.raises(ValueError, match="unknown partitioner"):
            partitioner_from_spec({"type": "consistent-hash"})


class TestSubsetTable:
    def test_preserves_all_column_kinds_and_values(self):
        _, table = make_world(n=40, seed=5)
        rows = np.asarray([3, 7, 8, 21, 39])
        sub = subset_table(table, rows)
        assert len(sub) == 5
        for name in table.column_names:
            assert sub.column_kind(name) == table.column_kind(name)
        assert np.array_equal(
            np.asarray(sub.column("year")),
            np.asarray(table.column("year"))[rows],
        )
        full_tags = table.column("tags")
        sub_tags = sub.column("tags")
        for j, i in enumerate(rows.tolist()):
            assert set(sub_tags.rows_containing("common")) == set(range(5))
            expected = sorted(
                kw for kw in full_tags.vocab
                if i in full_tags.rows_containing(kw)
            )
            got = sorted(
                kw for kw in sub_tags.vocab
                if j in sub_tags.rows_containing(kw)
            )
            assert got == expected

    def test_empty_subset(self):
        table = AttributeTable(3)
        table.add_int_column("x", [1, 2, 3])
        sub = subset_table(table, np.asarray([], dtype=np.int64))
        assert len(sub) == 0
        assert sub.column_kind("x") is ColumnKind.INT
