"""Golden regression: pinned instrumentation counters across shard counts.

These totals are a tripwire, not a spec: any change to graph
construction, traversal, routing, or shard accounting moves them and
should be *noticed*.  If a deliberate algorithm change shifts the
numbers, regenerate the table by running this file's ``main`` guard::

    PYTHONPATH=src:. python tests/shard/test_golden_stats.py

and paste the printed ``GOLDEN`` block over the one below, explaining
the shift in the commit message.
"""

import dataclasses

import numpy as np
import pytest

from repro.core.params import AcornParams
from repro.predicates import Between, ContainsAny, Equals, TruePredicate
from repro.shard import AttributeRangePartitioner, ShardedAcornIndex

from tests.shard.conftest import make_world

PARAMS = AcornParams(m=8, gamma=6, m_beta=12, ef_construction=40)
N, DIM, SEED = 180, 10, 1234
K, EF = 10, 48


@dataclasses.dataclass(frozen=True)
class GoldenCounters:
    """Aggregated per-batch counters pinned for one shard count."""

    distance_computations: int
    hops: int
    shards_probed: int
    shards_pruned: int


GOLDEN = {
    1: GoldenCounters(distance_computations=1443, hops=766,
                      shards_probed=16, shards_pruned=0),
    2: GoldenCounters(distance_computations=1408, hops=1003,
                      shards_probed=28, shards_pruned=4),
    3: GoldenCounters(distance_computations=1377, hops=1224,
                      shards_probed=40, shards_pruned=8),
}


def _workload():
    vectors, table = make_world(n=N, dim=DIM, seed=SEED)
    queries = np.random.default_rng(77).standard_normal(
        (4, DIM)
    ).astype(np.float32)
    predicates = [
        TruePredicate(),
        Between("year", 2002, 2006),
        Equals("cat", "c1"),
        ContainsAny("tags", ("t2", "t5")),
    ]
    return vectors, table, queries, predicates


def _measure(n_shards: int) -> GoldenCounters:
    vectors, table, queries, predicates = _workload()
    index = ShardedAcornIndex.build(
        vectors, table,
        partitioner=AttributeRangePartitioner("year", n_shards=n_shards),
        params=PARAMS, seed=SEED,
    )
    comps = hops = probed = pruned = 0
    for predicate in predicates:
        for query in queries:
            result = index.search(query, predicate, K, ef_search=EF)
            comps += result.distance_computations
            hops += result.hops
            probed += result.shards_probed
            pruned += result.shards_pruned
    return GoldenCounters(
        distance_computations=comps, hops=hops,
        shards_probed=probed, shards_pruned=pruned,
    )


@pytest.mark.parametrize("n_shards", sorted(GOLDEN))
def test_counters_match_golden(n_shards):
    measured = _measure(n_shards)
    assert measured == GOLDEN[n_shards], (
        f"instrumentation counters drifted for n_shards={n_shards}: "
        f"measured {measured}, pinned {GOLDEN[n_shards]}; if the change "
        "is deliberate, regenerate via this file's __main__ guard"
    )


def test_golden_accounting_balances():
    """The pinned values themselves must satisfy the shard invariant."""
    n_queries = 16  # 4 predicates x 4 queries
    for n_shards, golden in GOLDEN.items():
        assert golden.shards_probed + golden.shards_pruned == (
            n_queries * n_shards
        )


def main() -> None:
    """Regenerate and print the GOLDEN table."""
    print("GOLDEN = {")
    for n_shards in sorted(GOLDEN):
        print(f"    {n_shards}: {_measure(n_shards)!r},")
    print("}")


if __name__ == "__main__":
    main()
