"""Tests for shared utilities (rng helpers, timer)."""

import time

import numpy as np

from repro.utils import Timer, default_rng, spawn_rngs


class TestDefaultRng:
    def test_int_seed_deterministic(self):
        assert default_rng(5).random() == default_rng(5).random()

    def test_generator_passthrough(self):
        gen = np.random.default_rng(0)
        assert default_rng(gen) is gen

    def test_none_gives_generator(self):
        assert isinstance(default_rng(None), np.random.Generator)


class TestSpawnRngs:
    def test_children_independent(self):
        a, b = spawn_rngs(7, 2)
        assert a.random() != b.random()

    def test_deterministic_given_seed(self):
        first = [g.random() for g in spawn_rngs(9, 3)]
        second = [g.random() for g in spawn_rngs(9, 3)]
        assert first == second

    def test_count(self):
        assert len(spawn_rngs(0, 5)) == 5


class TestTimer:
    def test_measures_elapsed(self):
        with Timer() as t:
            time.sleep(0.01)
        assert t.elapsed >= 0.009

    def test_zero_before_use(self):
        assert Timer().elapsed == 0.0
