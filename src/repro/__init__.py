"""ACORN: performant, predicate-agnostic hybrid search (SIGMOD 2024).

A from-scratch Python reproduction of *ACORN: Performant and
Predicate-Agnostic Search Over Vector Embeddings and Structured Data*
(Patel, Kraft, Guestrin, Zaharia), including the HNSW substrate, the
ACORN-gamma and ACORN-1 indices, every baseline the paper benchmarks,
the four evaluation-dataset surrogates, and the measurement harness.

Quickstart::

    import numpy as np
    from repro import AcornIndex, AcornParams, AttributeTable, Equals

    vectors = np.random.rand(1000, 64).astype("float32")
    table = AttributeTable(1000)
    table.add_int_column("price", np.random.randint(10, 500, size=1000))

    index = AcornIndex.build(
        vectors, table, params=AcornParams(m=16, gamma=8, m_beta=32)
    )
    result = index.search(vectors[0], Equals("price", 42), k=10)

    # Batched, concurrent execution with per-query instrumentation:
    batch = index.search_batch(
        vectors[:8], [Equals("price", 42)] * 8, 10,
        num_workers=4, with_stats=True,
    )
"""

from repro.attributes import AttributeTable, Bitset, InvertedIndex
from repro.core import (
    AcornIndex,
    AcornOneIndex,
    AcornParams,
    FlatAcornIndex,
    HybridSearcher,
)
from repro.core.params import PruningStrategy
from repro.engine import (
    BatchResult,
    PredicateCache,
    QueryBatch,
    QueryStats,
    SearchEngine,
)
from repro.datasets import (
    HybridDataset,
    HybridQuery,
    make_laion_like,
    make_paper_like,
    make_sift1m_like,
    make_tripclick_like,
)
from repro.hnsw import HnswIndex
from repro.lifecycle import (
    BackgroundCompactor,
    EpochSnapshot,
    LifecycleConfig,
    LifecycleIndex,
    ShardedLifecycleIndex,
)
from repro.persistence import load_index, save_index
from repro.hnsw.hnsw import SearchResult
from repro.predicates import (
    And,
    Between,
    ContainsAll,
    ContainsAny,
    Equals,
    Not,
    OneOf,
    Or,
    Predicate,
    RegexMatch,
    TruePredicate,
)
from repro.routing import (
    CostModel,
    RoutePlanner,
    RoutedSearchResult,
    RoutingFeedback,
    WalkBudget,
    WalkMonitor,
)
from repro.serving import (
    AcornService,
    ArrivalSchedule,
    ServedResponse,
    ServingConfig,
    TenantQuota,
)
from repro.shard import (
    AttributeRangePartitioner,
    HashPartitioner,
    ShardLoadError,
    ShardRouter,
    ShardedAcornIndex,
)
from repro.vectors import Metric, VectorStore

__version__ = "1.0.0"

__all__ = [
    "AcornIndex",
    "AcornOneIndex",
    "AcornParams",
    "AcornService",
    "And",
    "ArrivalSchedule",
    "AttributeRangePartitioner",
    "AttributeTable",
    "BackgroundCompactor",
    "BatchResult",
    "Between",
    "Bitset",
    "ContainsAll",
    "CostModel",
    "ContainsAny",
    "EpochSnapshot",
    "Equals",
    "FlatAcornIndex",
    "HashPartitioner",
    "HnswIndex",
    "HybridDataset",
    "HybridQuery",
    "HybridSearcher",
    "InvertedIndex",
    "LifecycleConfig",
    "LifecycleIndex",
    "Metric",
    "Not",
    "OneOf",
    "Or",
    "Predicate",
    "PredicateCache",
    "PruningStrategy",
    "QueryBatch",
    "QueryStats",
    "RegexMatch",
    "RoutePlanner",
    "RoutedSearchResult",
    "RoutingFeedback",
    "SearchEngine",
    "SearchResult",
    "ServedResponse",
    "ServingConfig",
    "ShardLoadError",
    "ShardRouter",
    "ShardedAcornIndex",
    "ShardedLifecycleIndex",
    "TenantQuota",
    "TruePredicate",
    "VectorStore",
    "WalkBudget",
    "WalkMonitor",
    "__version__",
    "load_index",
    "make_laion_like",
    "make_paper_like",
    "make_sift1m_like",
    "make_tripclick_like",
    "save_index",
]
