"""Accuracy metrics for hybrid search."""

from __future__ import annotations

import numpy as np


def recall_at_k(retrieved: np.ndarray, ground_truth: np.ndarray, k: int) -> float:
    """``recall@K = |G ∩ R| / K`` (paper §3.1).

    ``K`` is clamped to the ground-truth size: when fewer than K
    entities pass the predicate, retrieving all of them counts as
    perfect recall (matching how the paper's harness scores truncated
    answer sets).
    """
    if k <= 0:
        raise ValueError(f"k must be positive, got {k}")
    gt = np.asarray(ground_truth).reshape(-1)[:k]
    if gt.size == 0:
        return 1.0
    hits = np.intersect1d(np.asarray(retrieved).reshape(-1), gt).size
    return hits / min(k, gt.size)


def mean_recall_at_k(
    retrieved_lists: list[np.ndarray], ground_truths: list[np.ndarray], k: int
) -> float:
    """Mean recall@K over a workload."""
    if len(retrieved_lists) != len(ground_truths):
        raise ValueError(
            f"{len(retrieved_lists)} result lists but {len(ground_truths)} "
            "ground truths"
        )
    if not retrieved_lists:
        raise ValueError("empty workload")
    return float(
        np.mean(
            [recall_at_k(r, g, k) for r, g in zip(retrieved_lists, ground_truths)]
        )
    )
