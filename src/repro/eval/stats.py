"""Evaluation statistics: percentile aggregation and graph quality.

Two families live here.  :func:`percentile_summary` condenses any
per-query measure (wall-time, distance computations) into the
p50/p95/p99 summaries the batch engine and sweep runner report —
the per-query latency breakdowns concurrent-workload evaluations
(NaviX, the PostgreSQL filter-agnostic study) present.

The rest reproduces paper Figure 13: ACORN-γ's predicate subgraphs vs
HNSW oracle partitions on (a) strongly connected components per level,
(b) graph height, and (c) average out-degree after search-time
filtering, with a dependency-free iterative Tarjan SCC implementation.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Iterable

import numpy as np

from repro.core.acorn import AcornIndex
from repro.hnsw.hnsw import HnswIndex


@dataclasses.dataclass(frozen=True)
class PercentileSummary:
    """p50/p95/p99 (plus mean and extremes) of one per-query measure.

    Attributes:
        count: number of observations summarized.
        mean: arithmetic mean (``None`` for an empty sample).
        p50: median.
        p95: 95th percentile.
        p99: 99th percentile.
        min: smallest observation.
        max: largest observation.

    An empty sample (count 0) carries ``None`` in every statistic —
    the serving layer hits this when an entire load window is shed,
    and ``None`` serializes honestly where a fake 0.0 would read as
    "zero latency".
    """

    count: int
    mean: float | None
    p50: float | None
    p95: float | None
    p99: float | None
    min: float | None
    max: float | None


def percentile_summary(values: Iterable[float]) -> PercentileSummary:
    """Summarize per-query observations into a :class:`PercentileSummary`.

    Accepts any iterable of numbers; an empty sample (e.g. a load
    window in which every request was shed) yields ``count=0`` with
    ``None`` statistics rather than NaNs or misleading zeros, so
    callers can serialize unconditionally.
    """
    arr = np.asarray(list(values), dtype=np.float64)
    if arr.size == 0:
        return PercentileSummary(0, None, None, None, None, None, None)
    p50, p95, p99 = np.percentile(arr, (50, 95, 99))
    return PercentileSummary(
        count=int(arr.size),
        mean=float(arr.mean()),
        p50=float(p50),
        p95=float(p95),
        p99=float(p99),
        min=float(arr.min()),
        max=float(arr.max()),
    )


def strongly_connected_components(adjacency: dict[int, list[int]]) -> list[set[int]]:
    """Tarjan's SCC algorithm, iterative (safe for deep graphs).

    Args:
        adjacency: node -> successor list; every successor must itself
            be a key.

    Returns:
        The strongly connected components as sets of nodes.
    """
    index_of: dict[int, int] = {}
    lowlink: dict[int, int] = {}
    on_stack: set[int] = set()
    stack: list[int] = []
    components: list[set[int]] = []
    counter = 0

    for root in adjacency:
        if root in index_of:
            continue
        work = [(root, iter(adjacency[root]))]
        index_of[root] = lowlink[root] = counter
        counter += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, successors = work[-1]
            advanced = False
            for succ in successors:
                if succ not in index_of:
                    index_of[succ] = lowlink[succ] = counter
                    counter += 1
                    stack.append(succ)
                    on_stack.add(succ)
                    work.append((succ, iter(adjacency[succ])))
                    advanced = True
                    break
                if succ in on_stack:
                    lowlink[node] = min(lowlink[node], index_of[succ])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == index_of[node]:
                component: set[int] = set()
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.add(member)
                    if member == node:
                        break
                components.append(component)
    return components


@dataclasses.dataclass
class GraphQuality:
    """Figure 13's three statistics for one (sub)graph."""

    scc_per_level: list[int]
    height: int
    avg_filtered_out_degree_by_level: list[float]

    @property
    def mean_scc(self) -> float:
        """Average SCC count across populated levels."""
        populated = [c for c in self.scc_per_level if c > 0]
        return float(np.mean(populated)) if populated else 0.0


def acorn_subgraph_quality(
    index: AcornIndex, mask: np.ndarray, m: int | None = None
) -> GraphQuality:
    """Quality of the *effective* predicate subgraph induced by ``mask``.

    The subgraph contains the passing nodes of every level, with the
    edges the search actually traverses: each node's neighborhood is
    recovered through the index's own lookup strategy (filter on
    uncompressed levels, Mβ + 2-hop expansion on compressed ones —
    Figure 4), so compression-recovered edges count toward connectivity
    exactly as they do during search.  The out-degree statistic reports
    the recovered neighborhood size capped at M, matching Figure 13c's
    "search-time filtering" semantics.
    """
    m = m if m is not None else index.params.m
    graph = index.graph
    scc_counts: list[int] = []
    degrees: list[float] = []
    height = 0
    for level in range(graph.max_level + 1):
        nodes = [v for v in graph.nodes_at_level(level) if mask[v]]
        if nodes:
            height = level
        lookup = index._neighbor_fn(level, mask)
        adjacency = {v: [u for u in lookup(v) if u != v] for v in nodes}
        scc_counts.append(
            len(strongly_connected_components(adjacency)) if nodes else 0
        )
        if nodes:
            degrees.append(
                float(
                    np.mean([min(len(nbrs), m) for nbrs in adjacency.values()])
                )
            )
        else:
            degrees.append(0.0)
    return GraphQuality(
        scc_per_level=scc_counts,
        height=height,
        avg_filtered_out_degree_by_level=degrees,
    )


def hnsw_graph_quality(index: HnswIndex) -> GraphQuality:
    """The same statistics for a whole HNSW graph (oracle partitions)."""
    graph = index.graph
    scc_counts: list[int] = []
    degrees: list[float] = []
    height = 0
    for level in range(graph.max_level + 1):
        nodes = graph.nodes_at_level(level)
        if nodes:
            height = level
        adjacency = {v: list(graph.neighbors(v, level)) for v in nodes}
        scc_counts.append(
            len(strongly_connected_components(adjacency)) if nodes else 0
        )
        degrees.append(
            float(np.mean([len(nbrs) for nbrs in adjacency.values()]))
            if nodes
            else 0.0
        )
    return GraphQuality(
        scc_per_level=scc_counts,
        height=height,
        avg_filtered_out_degree_by_level=degrees,
    )
