"""Plain-text rendering of benchmark tables and curves.

The benchmark harness prints the same rows/series the paper reports;
these helpers format them as aligned fixed-width tables so benchmark
output is diffable and readable in CI logs.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.eval.runner import MethodSweep


def _format_cell(value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 10:
            return f"{value:.1f}"
        return f"{value:.3f}"
    return str(value)


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render an aligned fixed-width text table."""
    cells = [[_format_cell(v) for v in row] for row in rows]
    widths = [
        max(len(str(headers[col])), *(len(row[col]) for row in cells))
        if cells
        else len(str(headers[col]))
        for col in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def render_curve(sweep: MethodSweep) -> str:
    """Render one method's recall-QPS curve as a table."""
    rows = [
        (p.effort, p.recall, p.qps, p.mean_distance_computations)
        for p in sweep.points
    ]
    return render_table(
        ["effort", "recall", "QPS", "dist-comps"], rows, title=sweep.method
    )


def render_sweeps(sweeps: Sequence[MethodSweep], recall_target: float = 0.9) -> str:
    """Summarize several methods: QPS and dist-comps at a recall target."""
    rows = []
    for sweep in sweeps:
        qps = sweep.qps_at_recall(recall_target)
        ncomp = sweep.distance_computations_at_recall(recall_target)
        rows.append(
            (
                sweep.method,
                sweep.max_recall(),
                qps if qps is not None else "n/a",
                ncomp if ncomp is not None else "n/a",
            )
        )
    return render_table(
        ["method", "max recall", f"QPS@{recall_target}", f"dist@{recall_target}"],
        rows,
    )
