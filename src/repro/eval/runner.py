"""Recall-QPS sweep runner.

The paper's figures plot recall@10 against queries-per-second, tracing
one curve per method by sweeping the search-effort parameter (efs for
the graph methods, L for the Vamana family, nprobe for IVF; §7.2).
:class:`SweepRunner` reproduces that protocol for any object exposing
``search(query, predicate, k, ef_search=...) -> SearchResult``.

Because pure-Python wall-clock QPS also measures interpreter overhead,
each sweep point additionally records mean *distance computations per
query* — the paper's own dominant-cost model (§3.2) — and comparative
assertions in the benchmark suite may consult either measure
(see DESIGN.md §3).
"""

from __future__ import annotations

import dataclasses
import time
from collections.abc import Sequence

import numpy as np

from repro.datasets.base import HybridDataset
from repro.eval.metrics import recall_at_k


@dataclasses.dataclass
class SweepPoint:
    """One operating point of a method's recall-QPS curve."""

    effort: int
    recall: float
    qps: float
    mean_distance_computations: float
    mean_latency_s: float
    p50_latency_s: float = 0.0
    p95_latency_s: float = 0.0


@dataclasses.dataclass
class MethodSweep:
    """A method's full curve plus convenience lookups."""

    method: str
    points: list[SweepPoint]

    def to_csv(self) -> str:
        """The curve as CSV (header + one row per operating point),
        ready for external plotting tools."""
        lines = [
            "method,effort,recall,qps,mean_distance_computations,"
            "mean_latency_s,p50_latency_s,p95_latency_s"
        ]
        for p in self.points:
            lines.append(
                f"{self.method},{p.effort},{p.recall:.6f},{p.qps:.3f},"
                f"{p.mean_distance_computations:.2f},{p.mean_latency_s:.6f},"
                f"{p.p50_latency_s:.6f},{p.p95_latency_s:.6f}"
            )
        return "\n".join(lines)

    def qps_at_recall(self, target: float) -> float | None:
        """Best QPS among points meeting ``recall >= target`` (paper's
        "QPS at 0.9 recall" headline metric); None if never reached."""
        eligible = [p.qps for p in self.points if p.recall >= target]
        return max(eligible) if eligible else None

    def distance_computations_at_recall(self, target: float) -> float | None:
        """Fewest distance computations reaching ``target`` recall
        (Table 3's metric); None if never reached."""
        eligible = [
            p.mean_distance_computations
            for p in self.points
            if p.recall >= target
        ]
        return min(eligible) if eligible else None

    def max_recall(self) -> float:
        """Highest recall the method attains anywhere on its curve."""
        return max(p.recall for p in self.points)


class SweepRunner:
    """Runs recall-QPS sweeps for one dataset and K.

    Predicates are compiled once per workload and shared across methods
    and sweep points, so curves differ only in search behaviour (the
    paper's baselines likewise amortize filter bitmaps; §7.2).
    """

    def __init__(self, dataset: HybridDataset, k: int = 10) -> None:
        self.dataset = dataset
        self.k = int(k)
        self.ground_truth = dataset.ground_truth(self.k)
        self.compiled = dataset.compiled_predicates()

    def sweep(
        self,
        method_name: str,
        searcher,
        efforts: Sequence[int] = (10, 20, 40, 80, 160, 320),
    ) -> MethodSweep:
        """Trace one method's curve over the effort values."""
        points = [self.run_point(searcher, effort) for effort in efforts]
        return MethodSweep(method=method_name, points=points)

    def run_point(self, searcher, effort: int) -> SweepPoint:
        """Measure one operating point (all queries once)."""
        recalls: list[float] = []
        ncomps: list[int] = []
        latencies: list[float] = []
        start = time.perf_counter()
        for query, predicate, gt in zip(
            self.dataset.queries, self.compiled, self.ground_truth
        ):
            begin = time.perf_counter()
            result = searcher.search(
                query.vector, predicate, self.k, ef_search=effort
            )
            latencies.append(time.perf_counter() - begin)
            recalls.append(recall_at_k(result.ids, gt, self.k))
            ncomps.append(result.distance_computations)
        elapsed = time.perf_counter() - start
        n_queries = len(self.dataset.queries)
        return SweepPoint(
            effort=int(effort),
            recall=float(np.mean(recalls)),
            qps=n_queries / elapsed if elapsed > 0 else float("inf"),
            mean_distance_computations=float(np.mean(ncomps)),
            mean_latency_s=elapsed / n_queries,
            p50_latency_s=float(np.percentile(latencies, 50)),
            p95_latency_s=float(np.percentile(latencies, 95)),
        )
