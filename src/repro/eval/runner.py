"""Recall-QPS sweep runner.

The paper's figures plot recall@10 against queries-per-second, tracing
one curve per method by sweeping the search-effort parameter (efs for
the graph methods, L for the Vamana family, nprobe for IVF; §7.2).
:class:`SweepRunner` reproduces that protocol for any object exposing
``search(query, predicate, k, ef_search=...) -> SearchResult``.

Every operating point executes through the batch engine
(:class:`repro.engine.SearchEngine`), so per-query costs come from the
engine's ``QueryStats`` instrumentation — in particular, Table 3's
distance-computation counts are read from ``QueryStats`` rather than
re-derived from raw results — and latency percentiles use the shared
:func:`repro.eval.stats.percentile_summary` aggregation.  A
``num_workers`` knob turns the same sweep into a concurrent-throughput
measurement.

Because pure-Python wall-clock QPS also measures interpreter overhead,
each sweep point additionally records mean *distance computations per
query* — the paper's own dominant-cost model (§3.2) — and comparative
assertions in the benchmark suite may consult either measure
(see DESIGN.md §3).
"""

from __future__ import annotations

import dataclasses
import time
from collections.abc import Sequence

import numpy as np

from repro.datasets.base import HybridDataset
from repro.engine.engine import QueryBatch, SearchEngine
from repro.eval.metrics import recall_at_k
from repro.eval.stats import percentile_summary


@dataclasses.dataclass
class SweepPoint:
    """One operating point of a method's recall-QPS curve."""

    effort: int
    recall: float
    qps: float
    mean_distance_computations: float
    mean_latency_s: float
    p50_latency_s: float = 0.0
    p95_latency_s: float = 0.0
    p99_latency_s: float = 0.0
    mean_shards_probed: float = 0.0
    mean_shards_pruned: float = 0.0
    mean_shards_failed: float = 0.0
    mean_shards_timed_out: float = 0.0
    degraded_fraction: float = 0.0
    mean_recall_ceiling: float = 1.0
    fallback_fraction: float = 0.0
    mean_abs_estimator_error: float = 0.0
    mean_quantized_distances: float = 0.0
    mean_rerank_distances: float = 0.0
    mean_queue_wait_ms: float = 0.0
    mean_batch_size_served: float = 0.0


@dataclasses.dataclass
class MethodSweep:
    """A method's full curve plus convenience lookups."""

    method: str
    points: list[SweepPoint]

    def to_csv(self) -> str:
        """The curve as CSV (header + one row per operating point),
        ready for external plotting tools."""
        lines = [
            "method,effort,recall,qps,mean_distance_computations,"
            "mean_latency_s,p50_latency_s,p95_latency_s,p99_latency_s,"
            "mean_shards_probed,mean_shards_pruned,mean_shards_failed,"
            "mean_shards_timed_out,degraded_fraction,mean_recall_ceiling,"
            "fallback_fraction,mean_abs_estimator_error,"
            "mean_quantized_distances,mean_rerank_distances,"
            "mean_queue_wait_ms,mean_batch_size_served"
        ]
        for p in self.points:
            lines.append(
                f"{self.method},{p.effort},{p.recall:.6f},{p.qps:.3f},"
                f"{p.mean_distance_computations:.2f},{p.mean_latency_s:.6f},"
                f"{p.p50_latency_s:.6f},{p.p95_latency_s:.6f},"
                f"{p.p99_latency_s:.6f},{p.mean_shards_probed:.2f},"
                f"{p.mean_shards_pruned:.2f},{p.mean_shards_failed:.2f},"
                f"{p.mean_shards_timed_out:.2f},{p.degraded_fraction:.4f},"
                f"{p.mean_recall_ceiling:.4f},{p.fallback_fraction:.4f},"
                f"{p.mean_abs_estimator_error:.6f},"
                f"{p.mean_quantized_distances:.2f},"
                f"{p.mean_rerank_distances:.2f},"
                f"{p.mean_queue_wait_ms:.3f},"
                f"{p.mean_batch_size_served:.2f}"
            )
        return "\n".join(lines)

    def qps_at_recall(self, target: float) -> float | None:
        """Best QPS among points meeting ``recall >= target`` (paper's
        "QPS at 0.9 recall" headline metric); None if never reached."""
        eligible = [p.qps for p in self.points if p.recall >= target]
        return max(eligible) if eligible else None

    def distance_computations_at_recall(self, target: float) -> float | None:
        """Fewest distance computations reaching ``target`` recall
        (Table 3's metric); None if never reached."""
        eligible = [
            p.mean_distance_computations
            for p in self.points
            if p.recall >= target
        ]
        return min(eligible) if eligible else None

    def max_recall(self) -> float:
        """Highest recall the method attains anywhere on its curve."""
        return max(p.recall for p in self.points)


class SweepRunner:
    """Runs recall-QPS sweeps for one dataset and K.

    Predicates are compiled once per workload and shared across methods
    and sweep points, so curves differ only in search behaviour (the
    paper's baselines likewise amortize filter bitmaps; §7.2).

    Args:
        dataset: the hybrid workload to sweep.
        k: neighbors per query.
        num_workers: engine worker threads per operating point; the
            default 1 preserves the paper's single-threaded QPS
            semantics, higher values measure concurrent throughput.
    """

    def __init__(
        self, dataset: HybridDataset, k: int = 10, num_workers: int = 1
    ) -> None:
        self.dataset = dataset
        self.k = int(k)
        self.num_workers = int(num_workers)
        self.ground_truth = dataset.ground_truth(self.k)
        self.compiled = dataset.compiled_predicates()
        self._query_matrix = np.stack(
            [np.asarray(q.vector, dtype=np.float32) for q in dataset.queries]
        )

    def sweep(
        self,
        method_name: str,
        searcher,
        efforts: Sequence[int] = (10, 20, 40, 80, 160, 320),
    ) -> MethodSweep:
        """Trace one method's curve over the effort values."""
        points = [self.run_point(searcher, effort) for effort in efforts]
        return MethodSweep(method=method_name, points=points)

    def run_point(self, searcher, effort: int) -> SweepPoint:
        """Measure one operating point (all queries once, via the engine)."""
        batch = QueryBatch.build(
            self._query_matrix, list(self.compiled),
            k=self.k, ef_search=int(effort),
        )
        start = time.perf_counter()
        with SearchEngine(searcher, num_workers=self.num_workers) as engine:
            outcome = engine.search_batch(batch)
        elapsed = time.perf_counter() - start

        recalls = [
            recall_at_k(result.ids, gt, self.k)
            for result, gt in zip(outcome.results, self.ground_truth)
        ]
        # Table 3's cost measure comes from the engine's per-query
        # instrumentation, not from re-reading raw results.
        ncomps = [s.distance_computations for s in outcome.stats]
        latency = percentile_summary(s.wall_time_s for s in outcome.stats)
        n_queries = len(batch)
        return SweepPoint(
            effort=int(effort),
            recall=float(np.mean(recalls)),
            qps=n_queries / elapsed if elapsed > 0 else float("inf"),
            mean_distance_computations=float(np.mean(ncomps)),
            mean_latency_s=elapsed / n_queries,
            p50_latency_s=latency.p50,
            p95_latency_s=latency.p95,
            p99_latency_s=latency.p99,
            mean_shards_probed=float(
                np.mean([s.shards_probed for s in outcome.stats])
            ),
            mean_shards_pruned=float(
                np.mean([s.shards_pruned for s in outcome.stats])
            ),
            mean_shards_failed=float(
                np.mean([s.shards_failed for s in outcome.stats])
            ),
            mean_shards_timed_out=float(
                np.mean([s.shards_timed_out for s in outcome.stats])
            ),
            degraded_fraction=float(
                np.mean([1.0 if s.degraded else 0.0 for s in outcome.stats])
            ),
            mean_recall_ceiling=float(
                np.mean([s.recall_ceiling for s in outcome.stats])
            ),
            fallback_fraction=float(
                np.mean([
                    1.0 if s.fallback_triggered else 0.0
                    for s in outcome.stats
                ])
            ),
            mean_abs_estimator_error=float(
                np.mean([abs(s.estimator_error) for s in outcome.stats])
            ),
            mean_quantized_distances=float(
                np.mean([s.quantized_distances for s in outcome.stats])
            ),
            mean_rerank_distances=float(
                np.mean([s.rerank_distances for s in outcome.stats])
            ),
            mean_queue_wait_ms=float(
                np.mean([s.queue_wait_ms for s in outcome.stats])
            ),
            mean_batch_size_served=float(
                np.mean([s.batch_size_served for s in outcome.stats])
            ),
        )
