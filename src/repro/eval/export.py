"""Structured experiment records: JSON export and reload.

Benchmark runs are worth keeping: a JSON record per experiment lets
plots be regenerated, runs diffed across commits, and results cited
without re-running anything.  The schema is flat and stable —
experiment metadata plus one row per (method, operating point).
"""

from __future__ import annotations

import json
from collections.abc import Sequence
from pathlib import Path

from repro.eval.runner import MethodSweep, SweepPoint

_SCHEMA_VERSION = 1


def sweeps_to_record(
    experiment: str,
    sweeps: Sequence[MethodSweep],
    metadata: dict | None = None,
) -> dict:
    """Bundle sweeps into a JSON-serializable experiment record."""
    return {
        "schema_version": _SCHEMA_VERSION,
        "experiment": experiment,
        "metadata": dict(metadata or {}),
        "methods": [
            {
                "method": sweep.method,
                "points": [
                    {
                        "effort": p.effort,
                        "recall": p.recall,
                        "qps": p.qps,
                        "mean_distance_computations": p.mean_distance_computations,
                        "mean_latency_s": p.mean_latency_s,
                        "p50_latency_s": p.p50_latency_s,
                        "p95_latency_s": p.p95_latency_s,
                        "p99_latency_s": p.p99_latency_s,
                    }
                    for p in sweep.points
                ],
            }
            for sweep in sweeps
        ],
    }


def save_results(path, experiment: str, sweeps: Sequence[MethodSweep],
                 metadata: dict | None = None) -> None:
    """Write an experiment record as pretty-printed JSON."""
    record = sweeps_to_record(experiment, sweeps, metadata)
    Path(path).write_text(json.dumps(record, indent=2) + "\n")


def load_results(path) -> tuple[str, list[MethodSweep], dict]:
    """Reload an experiment record written by :func:`save_results`.

    Returns:
        (experiment name, sweeps, metadata).
    """
    record = json.loads(Path(path).read_text())
    version = record.get("schema_version")
    if version != _SCHEMA_VERSION:
        raise ValueError(
            f"unsupported results schema version {version!r} "
            f"(expected {_SCHEMA_VERSION})"
        )
    sweeps = [
        MethodSweep(
            method=entry["method"],
            points=[SweepPoint(**point) for point in entry["points"]],
        )
        for entry in record["methods"]
    ]
    return record["experiment"], sweeps, record.get("metadata", {})
