"""Schemas and validators for the repo's BENCH_*.json result files.

Every benchmark CLI (``bench``, ``bench-traversal``, ``bench-shard``,
``bench-chaos``, ``bench-build``, ``bench-route``, ``bench-quant``,
``bench-serving``)
appends one JSON
object per run to its result file; CI smoke jobs and ``tests/test_cli.py`` re-validate those
records with the functions here.  Each validator checks key presence,
basic types, and the benchmark's accounting invariants — the properties
a regression in the writer would silently break.

Validators used to live inside :mod:`repro.cli`; they are re-exported
from there for backward compatibility, but new call sites should import
from this module (which pulls in none of the CLI's dependencies).
"""

from __future__ import annotations

TRAVERSAL_SCHEMA_KEYS = {
    "bench", "timestamp", "n", "dim", "queries", "k", "ef_search", "m",
    "gamma", "workers", "smoke", "dict_kernel", "csr_kernel",
    "hops_per_s_speedup", "single_query_speedup", "batch_qps_speedup",
}

_TRAVERSAL_KERNEL_KEYS = {
    "p50_ms", "p99_ms", "batch_qps", "hops_per_s", "total_hops",
    "total_seconds",
}


def validate_traversal_entry(entry: dict) -> None:
    """Check one BENCH_traversal.json record against the schema.

    Raises:
        ValueError: if required keys are missing or mis-typed.  Used by
            the CI smoke job and ``tests/test_cli.py``.
    """
    missing = TRAVERSAL_SCHEMA_KEYS - entry.keys()
    if missing:
        raise ValueError(f"bench-traversal entry missing keys: {sorted(missing)}")
    for kernel in ("dict_kernel", "csr_kernel"):
        sub = entry[kernel]
        if not isinstance(sub, dict):
            raise ValueError(f"{kernel} must be an object, got {type(sub)}")
        sub_missing = _TRAVERSAL_KERNEL_KEYS - sub.keys()
        if sub_missing:
            raise ValueError(f"{kernel} missing keys: {sorted(sub_missing)}")
        for key in _TRAVERSAL_KERNEL_KEYS:
            if not isinstance(sub[key], (int, float)):
                raise ValueError(f"{kernel}.{key} must be numeric")
    for key in ("hops_per_s_speedup", "single_query_speedup",
                "batch_qps_speedup"):
        if not isinstance(entry[key], (int, float)):
            raise ValueError(f"{key} must be numeric")


SHARD_SCHEMA_KEYS = {
    "bench", "timestamp", "n", "dim", "queries", "k", "ef_search", "m",
    "gamma", "n_shards", "workers", "smoke", "partitioner",
    "unsharded_qps", "sharded_qps", "qps_ratio", "shards_probed",
    "shards_pruned", "prune_fraction", "results_identical",
    "latency_s",
}


def validate_shard_entry(entry: dict) -> None:
    """Check one BENCH_shard.json record against the schema.

    Beyond key presence and types, enforces the router's accounting
    invariant: every query either probes or prunes each shard, so
    ``shards_probed + shards_pruned == queries * n_shards``.

    Raises:
        ValueError: if required keys are missing, mis-typed, or the
            shard accounting does not balance.  Used by the CI smoke
            job and ``tests/test_cli.py``.
    """
    missing = SHARD_SCHEMA_KEYS - entry.keys()
    if missing:
        raise ValueError(f"bench-shard entry missing keys: {sorted(missing)}")
    for key in ("n", "dim", "queries", "k", "ef_search", "m", "gamma",
                "n_shards", "workers", "shards_probed", "shards_pruned"):
        if not isinstance(entry[key], int):
            raise ValueError(f"{key} must be an int")
    for key in ("unsharded_qps", "sharded_qps", "qps_ratio",
                "prune_fraction"):
        if not isinstance(entry[key], (int, float)):
            raise ValueError(f"{key} must be numeric")
    if not isinstance(entry["results_identical"], bool):
        raise ValueError("results_identical must be a bool")
    if not isinstance(entry["latency_s"], dict):
        raise ValueError("latency_s must be an object")
    expected = entry["queries"] * entry["n_shards"]
    actual = entry["shards_probed"] + entry["shards_pruned"]
    if actual != expected:
        raise ValueError(
            f"shard accounting does not balance: probed + pruned = "
            f"{actual}, expected queries * n_shards = {expected}"
        )


CHAOS_SCHEMA_KEYS = {
    "bench", "timestamp", "n", "dim", "queries", "k", "ef_search", "m",
    "gamma", "n_shards", "workers", "smoke", "failure_rate",
    "faulty_shards", "shard_deadline_s", "max_retries",
    "degraded_queries", "shards_failed", "shards_timed_out",
    "min_recall_ceiling", "mean_recall_ceiling",
    "ground_truth_matches", "within_deadline", "max_query_clock_s",
    "query_budget_s", "breaker_states",
}


def validate_chaos_entry(entry: dict) -> None:
    """Check one BENCH_chaos.json record against the schema.

    Beyond key presence and types, enforces the failure-accounting
    invariants: failed + timed-out shard visits cannot exceed total
    probe opportunities (``queries * n_shards``), degraded queries
    cannot exceed the query count, and recall ceilings live in [0, 1].

    Raises:
        ValueError: if required keys are missing, mis-typed, or the
            accounting invariants are violated.  Used by the CI chaos
            job and ``tests/test_cli.py``.
    """
    missing = CHAOS_SCHEMA_KEYS - entry.keys()
    if missing:
        raise ValueError(f"bench-chaos entry missing keys: {sorted(missing)}")
    for key in ("n", "dim", "queries", "k", "ef_search", "m", "gamma",
                "n_shards", "workers", "max_retries", "degraded_queries",
                "shards_failed", "shards_timed_out"):
        if not isinstance(entry[key], int):
            raise ValueError(f"{key} must be an int")
    for key in ("failure_rate", "shard_deadline_s", "min_recall_ceiling",
                "mean_recall_ceiling", "max_query_clock_s",
                "query_budget_s"):
        if not isinstance(entry[key], (int, float)):
            raise ValueError(f"{key} must be numeric")
    for key in ("ground_truth_matches", "within_deadline", "smoke"):
        if not isinstance(entry[key], bool):
            raise ValueError(f"{key} must be a bool")
    if not isinstance(entry["faulty_shards"], list):
        raise ValueError("faulty_shards must be a list")
    if not isinstance(entry["breaker_states"], list):
        raise ValueError("breaker_states must be a list")
    budget = entry["queries"] * entry["n_shards"]
    dropped = entry["shards_failed"] + entry["shards_timed_out"]
    if dropped > budget:
        raise ValueError(
            f"failure accounting exceeds probe opportunities: "
            f"{dropped} > queries * n_shards = {budget}"
        )
    if entry["degraded_queries"] > entry["queries"]:
        raise ValueError("degraded_queries exceeds query count")
    for key in ("min_recall_ceiling", "mean_recall_ceiling"):
        if not 0.0 <= entry[key] <= 1.0:
            raise ValueError(f"{key} must be in [0, 1]")


ROUTE_SCHEMA_KEYS = {
    "bench", "timestamp", "n", "dim", "queries", "k", "ef_search", "m",
    "gamma", "workers", "smoke", "s_min", "policies",
    "adaptive_qps_speedup", "adaptive_dc_speedup", "recall_delta",
}

_ROUTE_POLICY_KEYS = {
    "qps", "recall_at_k", "mean_distance_computations", "route_counts",
    "fallbacks_triggered", "mean_abs_estimator_error", "latency_s",
}


def validate_route_entry(entry: dict) -> None:
    """Check one BENCH_route.json record against the schema.

    Beyond key presence and types, enforces the router's accounting
    invariants: every query is attributed to exactly one final route
    (per-policy ``route_counts`` values sum to ``queries``), fallback
    counts are non-negative and bounded by the query count, recalls
    live in [0, 1], and the reported speedups equal the adaptive/static
    ratios (within rounding).

    Raises:
        ValueError: if required keys are missing, mis-typed, or the
            invariants are violated.  Used by the CI routing job and
            ``tests/test_cli.py``.
    """
    missing = ROUTE_SCHEMA_KEYS - entry.keys()
    if missing:
        raise ValueError(f"bench-route entry missing keys: {sorted(missing)}")
    for key in ("n", "dim", "queries", "k", "ef_search", "m", "gamma",
                "workers"):
        if not isinstance(entry[key], int):
            raise ValueError(f"{key} must be an int")
    for key in ("s_min", "adaptive_qps_speedup", "adaptive_dc_speedup",
                "recall_delta"):
        if not isinstance(entry[key], (int, float)):
            raise ValueError(f"{key} must be numeric")
    if not isinstance(entry["smoke"], bool):
        raise ValueError("smoke must be a bool")
    policies = entry["policies"]
    if not isinstance(policies, dict):
        raise ValueError("policies must be an object")
    pol_missing = {"static", "adaptive"} - policies.keys()
    if pol_missing:
        raise ValueError(f"policies missing entries: {sorted(pol_missing)}")
    for name, sub in policies.items():
        if not isinstance(sub, dict):
            raise ValueError(f"policies.{name} must be an object")
        sub_missing = _ROUTE_POLICY_KEYS - sub.keys()
        if sub_missing:
            raise ValueError(
                f"policies.{name} missing keys: {sorted(sub_missing)}"
            )
        for key in ("qps", "recall_at_k", "mean_distance_computations",
                    "mean_abs_estimator_error"):
            if not isinstance(sub[key], (int, float)):
                raise ValueError(f"policies.{name}.{key} must be numeric")
        if not isinstance(sub["fallbacks_triggered"], int):
            raise ValueError(f"policies.{name}.fallbacks_triggered must be an int")
        if not isinstance(sub["latency_s"], dict):
            raise ValueError(f"policies.{name}.latency_s must be an object")
        counts = sub["route_counts"]
        if not isinstance(counts, dict):
            raise ValueError(f"policies.{name}.route_counts must be an object")
        if any(not isinstance(v, int) or v < 0 for v in counts.values()):
            raise ValueError(
                f"policies.{name}.route_counts values must be ints >= 0"
            )
        total = sum(counts.values())
        if total != entry["queries"]:
            raise ValueError(
                f"policies.{name} route accounting does not balance: "
                f"route_counts sum to {total}, expected queries = "
                f"{entry['queries']}"
            )
        if not 0.0 <= sub["recall_at_k"] <= 1.0:
            raise ValueError(f"policies.{name}.recall_at_k must be in [0, 1]")
        if not 0 <= sub["fallbacks_triggered"] <= entry["queries"]:
            raise ValueError(
                f"policies.{name}.fallbacks_triggered must be in "
                f"[0, queries]"
            )
    static, adaptive = policies["static"], policies["adaptive"]
    if static["qps"] > 0:
        ratio = adaptive["qps"] / static["qps"]
        if abs(entry["adaptive_qps_speedup"] - ratio) > 0.02 * max(ratio, 1.0):
            raise ValueError(
                f"adaptive_qps_speedup {entry['adaptive_qps_speedup']} does "
                f"not match adaptive/static qps ratio {ratio:.3f}"
            )
    delta = adaptive["recall_at_k"] - static["recall_at_k"]
    if abs(entry["recall_delta"] - delta) > 1e-6:
        raise ValueError(
            "recall_delta must equal adaptive recall minus static recall"
        )


BUILD_SCHEMA_KEYS = {
    "bench", "timestamp", "n", "dim", "m", "gamma", "ef_construction",
    "n_workers", "wave_cap", "smoke", "sequential_s", "parallel_s",
    "speedup", "sequential_distance_comps", "parallel_distance_comps",
    "sequential_checksum", "parallel_checksum",
    "parallel_rebuild_checksum_match", "recall_at_10_sequential",
    "recall_at_10_parallel", "recall_gap", "graphs_valid",
}


def validate_build_entry(entry: dict) -> None:
    """Check one BENCH_build.json record against the schema.

    Beyond key presence and types, enforces the build benchmark's
    invariants: timings are positive, the speedup equals their ratio
    (within rounding), recalls live in [0, 1], and the recall gap is
    the absolute difference of the two recalls.

    Raises:
        ValueError: if required keys are missing, mis-typed, or the
            invariants are violated.  Used by the CI build job and
            ``tests/test_cli.py``.
    """
    missing = BUILD_SCHEMA_KEYS - entry.keys()
    if missing:
        raise ValueError(f"bench-build entry missing keys: {sorted(missing)}")
    for key in ("n", "dim", "m", "gamma", "ef_construction", "n_workers",
                "sequential_distance_comps", "parallel_distance_comps"):
        if not isinstance(entry[key], int):
            raise ValueError(f"{key} must be an int")
    if entry["wave_cap"] is not None and not isinstance(entry["wave_cap"], int):
        raise ValueError("wave_cap must be an int or null")
    for key in ("sequential_s", "parallel_s", "speedup",
                "recall_at_10_sequential", "recall_at_10_parallel",
                "recall_gap"):
        if not isinstance(entry[key], (int, float)):
            raise ValueError(f"{key} must be numeric")
    for key in ("smoke", "parallel_rebuild_checksum_match", "graphs_valid"):
        if not isinstance(entry[key], bool):
            raise ValueError(f"{key} must be a bool")
    for key in ("sequential_checksum", "parallel_checksum"):
        if not isinstance(entry[key], str):
            raise ValueError(f"{key} must be a string")
    if entry["sequential_s"] <= 0 or entry["parallel_s"] <= 0:
        raise ValueError("timings must be positive")
    ratio = entry["sequential_s"] / entry["parallel_s"]
    if abs(entry["speedup"] - ratio) > 0.02 * max(ratio, 1.0):
        raise ValueError(
            f"speedup {entry['speedup']} does not match "
            f"sequential_s / parallel_s = {ratio:.3f}"
        )
    for key in ("recall_at_10_sequential", "recall_at_10_parallel"):
        if not 0.0 <= entry[key] <= 1.0:
            raise ValueError(f"{key} must be in [0, 1]")
    gap = abs(entry["recall_at_10_sequential"] - entry["recall_at_10_parallel"])
    if abs(entry["recall_gap"] - gap) > 1e-6:
        raise ValueError("recall_gap must equal |recall_seq - recall_par|")


QUANT_SCHEMA_KEYS = {
    "bench", "timestamp", "n", "dim", "queries", "k", "ef_search", "m",
    "gamma", "workers", "beam", "smoke", "quantization", "rerank_factor",
    "float32", "quantized", "batch_qps_speedup", "recall_floor",
    "recall_ok", "deterministic",
}

_QUANT_ARM_KEYS = {
    "qps", "recall_at_k", "mean_distance_computations",
    "mean_quantized_distances", "mean_rerank_distances", "latency_s",
}


def validate_quant_entry(entry: dict) -> None:
    """Check one BENCH_quant.json record against the schema.

    Beyond key presence and types, enforces the quantized benchmark's
    accounting invariants: both arms report the full per-arm metric set,
    recalls live in [0, 1], the float32 arm performs zero quantized
    evaluations, the quantized arm performs some (and reranks at most
    ``rerank_factor * k`` candidates per query on average), and the
    reported speedup equals the quantized/float32 batch-QPS ratio
    (within rounding).

    Raises:
        ValueError: if required keys are missing, mis-typed, or the
            invariants are violated.  Used by the CI quant job and
            ``tests/test_cli.py``.
    """
    missing = QUANT_SCHEMA_KEYS - entry.keys()
    if missing:
        raise ValueError(f"bench-quant entry missing keys: {sorted(missing)}")
    for key in ("n", "dim", "queries", "k", "ef_search", "m", "gamma",
                "workers", "beam"):
        if not isinstance(entry[key], int):
            raise ValueError(f"{key} must be an int")
    for key in ("rerank_factor", "batch_qps_speedup", "recall_floor"):
        if not isinstance(entry[key], (int, float)):
            raise ValueError(f"{key} must be numeric")
    for key in ("smoke", "recall_ok", "deterministic"):
        if not isinstance(entry[key], bool):
            raise ValueError(f"{key} must be a bool")
    if entry["quantization"] not in ("sq8", "pq"):
        raise ValueError(
            f"quantization must be 'sq8' or 'pq', got {entry['quantization']!r}"
        )
    for arm in ("float32", "quantized"):
        sub = entry[arm]
        if not isinstance(sub, dict):
            raise ValueError(f"{arm} must be an object, got {type(sub)}")
        sub_missing = _QUANT_ARM_KEYS - sub.keys()
        if sub_missing:
            raise ValueError(f"{arm} missing keys: {sorted(sub_missing)}")
        for key in _QUANT_ARM_KEYS:
            if not isinstance(sub[key], (int, float)):
                raise ValueError(f"{arm}.{key} must be numeric")
        if sub["latency_s"] < 0:
            raise ValueError(f"{arm}.latency_s must be non-negative")
        if not 0.0 <= sub["recall_at_k"] <= 1.0:
            raise ValueError(f"{arm}.recall_at_k must be in [0, 1]")
    if entry["float32"]["mean_quantized_distances"] != 0:
        raise ValueError(
            "float32 arm must perform zero quantized distance evaluations"
        )
    if entry["quantized"]["mean_quantized_distances"] <= 0:
        raise ValueError(
            "quantized arm performed no quantized distance evaluations"
        )
    max_rerank = entry["rerank_factor"] * entry["k"] + 1e-9
    if entry["quantized"]["mean_rerank_distances"] > max_rerank:
        raise ValueError(
            f"quantized arm reranked "
            f"{entry['quantized']['mean_rerank_distances']} candidates per "
            f"query on average, above rerank_factor * k = {max_rerank:.1f}"
        )
    if entry["float32"]["qps"] > 0:
        ratio = entry["quantized"]["qps"] / entry["float32"]["qps"]
        if abs(entry["batch_qps_speedup"] - ratio) > 0.02 * max(ratio, 1.0):
            raise ValueError(
                f"batch_qps_speedup {entry['batch_qps_speedup']} does not "
                f"match quantized/float32 qps ratio {ratio:.3f}"
            )


SERVING_SCHEMA_KEYS = {
    "bench", "timestamp", "n", "dim", "k", "ef_search", "m", "gamma",
    "engine_workers", "smoke", "max_batch", "latency_budget_ms",
    "max_pending", "n_tenants", "tenant_rate_qps", "tenant_burst",
    "rate_qps", "duration_s", "schedules", "deterministic",
}

_SERVING_SCHEDULE_KEYS = {
    "offered", "ok", "degraded", "rejected", "shed_fraction",
    "mean_batch_size", "min_recall_ceiling", "latency_ms",
    "queue_wait_ms", "tenants", "realtime",
}

_SERVING_REALTIME_KEYS = {
    "wall_s", "goodput_qps", "served", "rejected",
    "p50_latency_ms", "p99_latency_ms",
}

_SERVING_PERCENTILE_KEYS = {
    "count", "mean", "p50", "p95", "p99", "min", "max",
}


def _check_percentiles(label: str, sub: dict) -> None:
    """A percentile block: count int; stats all-None iff count == 0."""
    if not isinstance(sub, dict):
        raise ValueError(f"{label} must be an object, got {type(sub)}")
    sub_missing = _SERVING_PERCENTILE_KEYS - sub.keys()
    if sub_missing:
        raise ValueError(f"{label} missing keys: {sorted(sub_missing)}")
    if not isinstance(sub["count"], int) or sub["count"] < 0:
        raise ValueError(f"{label}.count must be an int >= 0")
    stats = [sub[key] for key in ("mean", "p50", "p95", "p99", "min", "max")]
    if sub["count"] == 0:
        if any(value is not None for value in stats):
            raise ValueError(
                f"{label} has count 0 but non-None statistics (an "
                "all-shed window must report None, not fake zeros)"
            )
    elif any(not isinstance(value, (int, float)) for value in stats):
        raise ValueError(f"{label} statistics must be numeric when count > 0")


def validate_serving_entry(entry: dict) -> None:
    """Check one BENCH_serving.json record against the schema.

    Beyond key presence and types, enforces the serving accounting
    invariants for every arrival schedule: the deterministic virtual
    replay's ``ok + degraded + rejected`` must equal the offered load
    exactly (nothing is lost or double-counted under shedding),
    ``shed_fraction`` must equal ``rejected / offered`` and live in
    [0, 1], per-tenant offers must sum to the schedule's offered load,
    the realtime arm's ``served + rejected`` must also equal its
    offered load, and percentile blocks must be ``None``-consistent
    (all-``None`` exactly when the sample is empty).

    Raises:
        ValueError: if required keys are missing, mis-typed, or the
            invariants are violated.  Used by the CI serving job and
            ``tests/test_cli.py``.
    """
    missing = SERVING_SCHEMA_KEYS - entry.keys()
    if missing:
        raise ValueError(f"bench-serving entry missing keys: {sorted(missing)}")
    for key in ("n", "dim", "k", "ef_search", "m", "gamma",
                "engine_workers", "max_batch", "max_pending", "n_tenants"):
        if not isinstance(entry[key], int):
            raise ValueError(f"{key} must be an int")
    for key in ("latency_budget_ms", "tenant_rate_qps", "tenant_burst",
                "rate_qps", "duration_s"):
        if not isinstance(entry[key], (int, float)):
            raise ValueError(f"{key} must be numeric")
    for key in ("smoke", "deterministic"):
        if not isinstance(entry[key], bool):
            raise ValueError(f"{key} must be a bool")
    schedules = entry["schedules"]
    if not isinstance(schedules, dict):
        raise ValueError("schedules must be an object")
    sched_missing = {"poisson", "flash"} - schedules.keys()
    if sched_missing:
        raise ValueError(f"schedules missing entries: {sorted(sched_missing)}")
    for name, sub in schedules.items():
        if not isinstance(sub, dict):
            raise ValueError(f"schedules.{name} must be an object")
        sub_missing = _SERVING_SCHEDULE_KEYS - sub.keys()
        if sub_missing:
            raise ValueError(
                f"schedules.{name} missing keys: {sorted(sub_missing)}"
            )
        for key in ("offered", "ok", "degraded", "rejected"):
            if not isinstance(sub[key], int) or sub[key] < 0:
                raise ValueError(f"schedules.{name}.{key} must be an int >= 0")
        balance = sub["ok"] + sub["degraded"] + sub["rejected"]
        if balance != sub["offered"]:
            raise ValueError(
                f"schedules.{name} accounting does not balance: "
                f"ok + degraded + rejected = {balance}, expected offered "
                f"= {sub['offered']}"
            )
        if not isinstance(sub["shed_fraction"], (int, float)):
            raise ValueError(f"schedules.{name}.shed_fraction must be numeric")
        if not 0.0 <= sub["shed_fraction"] <= 1.0:
            raise ValueError(
                f"schedules.{name}.shed_fraction must be in [0, 1]"
            )
        if sub["offered"] > 0:
            expected = sub["rejected"] / sub["offered"]
            if abs(sub["shed_fraction"] - expected) > 1e-9:
                raise ValueError(
                    f"schedules.{name}.shed_fraction must equal "
                    f"rejected / offered = {expected:.6f}"
                )
        if not isinstance(sub["mean_batch_size"], (int, float)):
            raise ValueError(
                f"schedules.{name}.mean_batch_size must be numeric"
            )
        if not 0.0 <= sub["min_recall_ceiling"] <= 1.0:
            raise ValueError(
                f"schedules.{name}.min_recall_ceiling must be in [0, 1]"
            )
        _check_percentiles(f"schedules.{name}.latency_ms", sub["latency_ms"])
        _check_percentiles(
            f"schedules.{name}.queue_wait_ms", sub["queue_wait_ms"]
        )
        tenants = sub["tenants"]
        if not isinstance(tenants, dict):
            raise ValueError(f"schedules.{name}.tenants must be an object")
        tenant_offered = sum(t.get("offered", 0) for t in tenants.values())
        if tenant_offered != sub["offered"]:
            raise ValueError(
                f"schedules.{name} per-tenant offers sum to "
                f"{tenant_offered}, expected offered = {sub['offered']}"
            )
        realtime = sub["realtime"]
        if not isinstance(realtime, dict):
            raise ValueError(f"schedules.{name}.realtime must be an object")
        rt_missing = _SERVING_REALTIME_KEYS - realtime.keys()
        if rt_missing:
            raise ValueError(
                f"schedules.{name}.realtime missing keys: {sorted(rt_missing)}"
            )
        for key in ("served", "rejected"):
            if not isinstance(realtime[key], int) or realtime[key] < 0:
                raise ValueError(
                    f"schedules.{name}.realtime.{key} must be an int >= 0"
                )
        if realtime["served"] + realtime["rejected"] != sub["offered"]:
            raise ValueError(
                f"schedules.{name}.realtime accounting does not balance: "
                f"served + rejected = "
                f"{realtime['served'] + realtime['rejected']}, expected "
                f"offered = {sub['offered']}"
            )
        if not isinstance(realtime["wall_s"], (int, float)) or (
            realtime["wall_s"] <= 0
        ):
            raise ValueError(
                f"schedules.{name}.realtime.wall_s must be positive"
            )
        for key in ("goodput_qps", "p50_latency_ms", "p99_latency_ms"):
            value = realtime[key]
            if value is not None and not isinstance(value, (int, float)):
                raise ValueError(
                    f"schedules.{name}.realtime.{key} must be numeric or "
                    "null (all requests shed)"
                )
        if realtime["served"] > 0 and realtime["goodput_qps"] is None:
            raise ValueError(
                f"schedules.{name}.realtime served requests but reports "
                "no goodput"
            )


LIFECYCLE_SCHEMA_KEYS = {
    "bench", "timestamp", "n", "dim", "k", "ef_search", "m", "gamma",
    "smoke", "seed", "n_ops", "insert_fraction", "delete_fraction",
    "reads", "read_qps", "recall_at_k",
    "failed_reads_during_compaction", "blocked_reads",
    "epochs_published", "compactions", "compactor_crashes",
    "writes_applied", "writes_rejected",
    "final_live", "final_delta", "tombstones_remaining",
    "determinism",
}


def validate_lifecycle_entry(entry: dict) -> None:
    """Check one BENCH_lifecycle.json record against the schema.

    Beyond key presence and types, enforces the streaming-lifecycle
    guarantees the bench exists to witness: no read failed or blocked
    while compaction ran (readers always hold a published snapshot),
    recall stays a probability, at least one online compaction actually
    happened during the run (otherwise "reads during compaction" is
    vacuous), epochs published can't trail compactions (every
    compaction publishes), the write ledger balances, and the seeded
    double-run determinism gate passed.

    Raises:
        ValueError: if required keys are missing, mis-typed, or the
            invariants are violated.  Used by the CI lifecycle job and
            ``tests/test_cli.py``.
    """
    missing = LIFECYCLE_SCHEMA_KEYS - entry.keys()
    if missing:
        raise ValueError(
            f"bench-lifecycle entry missing keys: {sorted(missing)}"
        )
    for key in ("n", "dim", "k", "ef_search", "m", "gamma", "seed",
                "n_ops", "reads", "failed_reads_during_compaction",
                "blocked_reads", "epochs_published", "compactions",
                "compactor_crashes", "writes_applied", "writes_rejected",
                "final_live", "final_delta", "tombstones_remaining"):
        if not isinstance(entry[key], int):
            raise ValueError(f"{key} must be an int")
    for key in ("insert_fraction", "delete_fraction", "read_qps",
                "recall_at_k"):
        if not isinstance(entry[key], (int, float)):
            raise ValueError(f"{key} must be numeric")
    if not isinstance(entry["smoke"], bool):
        raise ValueError("smoke must be a bool")
    if entry["failed_reads_during_compaction"] != 0:
        raise ValueError(
            f"{entry['failed_reads_during_compaction']} reads failed "
            "during compaction — snapshot isolation is broken"
        )
    if entry["blocked_reads"] != 0:
        raise ValueError(
            f"{entry['blocked_reads']} reads blocked on the writer — "
            "the read path must never wait on compaction"
        )
    if not 0.0 <= entry["recall_at_k"] <= 1.0:
        raise ValueError(
            f"recall_at_k must be in [0, 1], got {entry['recall_at_k']}"
        )
    if entry["compactions"] < 1:
        raise ValueError(
            "no compaction ran during the bench — the concurrent-read "
            "guarantee was never exercised"
        )
    if entry["epochs_published"] < entry["compactions"]:
        raise ValueError(
            f"epochs_published ({entry['epochs_published']}) < "
            f"compactions ({entry['compactions']}): every compaction "
            "must publish an epoch"
        )
    if entry["writes_applied"] + entry["writes_rejected"] != entry["n_ops"]:
        raise ValueError(
            "write ledger does not balance: applied + rejected = "
            f"{entry['writes_applied'] + entry['writes_rejected']}, "
            f"expected n_ops = {entry['n_ops']}"
        )
    if entry["read_qps"] <= 0:
        raise ValueError(f"read_qps must be positive, got {entry['read_qps']}")
    if entry["determinism"] != "pass":
        raise ValueError(
            f"determinism gate did not pass: {entry['determinism']!r} "
            "(two seeded runs must produce identical read results)"
        )


PARALLEL_SCHEMA_KEYS = {
    "bench", "timestamp", "n", "dim", "queries", "k", "ef_search", "m",
    "gamma", "smoke", "cpus", "index", "sync_qps",
    "thread_qps_by_workers", "process_qps_by_workers",
    "process_vs_thread_at_4", "best_process_vs_thread",
    "results_identical", "deterministic", "zero_copy", "arena_nbytes",
    "fixup_copies", "pool", "gate_enforced",
}


def validate_parallel_entry(entry: dict) -> None:
    """Check one BENCH_parallel.json record against the schema.

    Beyond key presence and types, enforces the process-executor
    contract the bench exists to witness: results byte-identical to the
    sequential loop, deterministic across a double run, workers reading
    the index through shared memory with zero one-time canonicalization
    copies, and — when ``gate_enforced`` (>= 4 CPUs, full run) — the
    >= 2x process-vs-thread batch-QPS floor at 4 workers.

    Raises:
        ValueError: if required keys are missing, mis-typed, or the
            invariants are violated.  Used by the CI parallel job and
            ``tests/test_cli.py``.
    """
    missing = PARALLEL_SCHEMA_KEYS - entry.keys()
    if missing:
        raise ValueError(
            f"bench-parallel entry missing keys: {sorted(missing)}"
        )
    for key in ("n", "dim", "queries", "k", "ef_search", "m", "gamma",
                "cpus", "arena_nbytes", "fixup_copies"):
        if not isinstance(entry[key], int):
            raise ValueError(f"{key} must be an int")
    for key in ("sync_qps", "process_vs_thread_at_4",
                "best_process_vs_thread"):
        if not isinstance(entry[key], (int, float)):
            raise ValueError(f"{key} must be numeric")
    for key in ("smoke", "results_identical", "deterministic",
                "zero_copy", "gate_enforced"):
        if not isinstance(entry[key], bool):
            raise ValueError(f"{key} must be a bool")
    for key in ("thread_qps_by_workers", "process_qps_by_workers"):
        sub = entry[key]
        if not isinstance(sub, dict) or not sub:
            raise ValueError(f"{key} must be a non-empty object")
        for workers, qps in sub.items():
            if not isinstance(qps, (int, float)) or qps <= 0:
                raise ValueError(
                    f"{key}[{workers!r}] must be positive, got {qps!r}"
                )
    if not isinstance(entry["pool"], dict):
        raise ValueError("pool must be an object")
    for key in ("spawns", "deaths"):
        if not isinstance(entry["pool"].get(key), int):
            raise ValueError(f"pool.{key} must be an int")
    if not entry["results_identical"]:
        raise ValueError(
            "process results diverged from the sequential loop — the "
            "byte-identity contract is broken"
        )
    if not entry["deterministic"]:
        raise ValueError(
            "two identical process runs diverged — the executor is "
            "reading non-deterministic state"
        )
    if not entry["zero_copy"]:
        raise ValueError(
            "workers are not reading the index through shared memory — "
            "the zero-copy contract is broken"
        )
    if entry["fixup_copies"] != 0:
        raise ValueError(
            f"{entry['fixup_copies']} arrays needed canonicalization "
            "copies at freeze — the hot path is producing non-C-"
            "contiguous or mis-typed arrays"
        )
    if entry["arena_nbytes"] <= 0:
        raise ValueError("arena_nbytes must be positive")
    if entry["gate_enforced"] and entry["process_vs_thread_at_4"] < 2.0:
        raise ValueError(
            "process executor did not reach 2x thread batch QPS at 4 "
            f"workers (got {entry['process_vs_thread_at_4']:.2f}x) on a "
            "machine with >= 4 CPUs"
        )
