"""Dependency-free ASCII plots of recall-QPS curves.

The paper's figures are recall-vs-QPS scatter curves; in a text-only
harness the closest faithful rendering is an ASCII scatter.  One call
plots several methods on shared axes (log-scaled y, like the paper's
QPS axes), each with its own marker — enough to eyeball crossovers in
benchmark logs without leaving the terminal.
"""

from __future__ import annotations

import math
from collections.abc import Sequence

from repro.eval.runner import MethodSweep

MARKERS = "ox+*#@%&"


def _log(value: float) -> float:
    return math.log10(max(value, 1e-12))


def ascii_curves(
    sweeps: Sequence[MethodSweep],
    width: int = 64,
    height: int = 18,
    y_metric: str = "qps",
    title: str | None = None,
) -> str:
    """Render recall (x) vs QPS or distance computations (y, log) curves.

    Args:
        sweeps: one or more method curves.
        width / height: plot area in characters.
        y_metric: ``"qps"`` or ``"dist"`` (mean distance computations).
        title: optional heading line.

    Returns:
        A multi-line string: plot grid, axes, and a marker legend.
    """
    if not sweeps:
        raise ValueError("need at least one sweep to plot")
    if y_metric not in ("qps", "dist"):
        raise ValueError(f"y_metric must be 'qps' or 'dist', got {y_metric!r}")

    def y_of(point):
        return point.qps if y_metric == "qps" else point.mean_distance_computations

    xs = [p.recall for sweep in sweeps for p in sweep.points]
    ys = [_log(y_of(p)) for sweep in sweeps for p in sweep.points]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0

    grid = [[" "] * width for _ in range(height)]
    for index, sweep in enumerate(sweeps):
        marker = MARKERS[index % len(MARKERS)]
        for point in sweep.points:
            col = int((point.recall - x_lo) / x_span * (width - 1))
            row = int((_log(y_of(point)) - y_lo) / y_span * (height - 1))
            grid[height - 1 - row][col] = marker

    y_label = "QPS" if y_metric == "qps" else "dist comps"
    lines = []
    if title:
        lines.append(title)
    lines.append(f"{y_label} (log scale)")
    top = f"{10 ** y_hi:,.0f}"
    bottom = f"{10 ** y_lo:,.0f}"
    label_width = max(len(top), len(bottom))
    for row_index, row in enumerate(grid):
        if row_index == 0:
            label = top.rjust(label_width)
        elif row_index == height - 1:
            label = bottom.rjust(label_width)
        else:
            label = " " * label_width
        lines.append(f"{label} |{''.join(row)}|")
    axis = " " * label_width + " +" + "-" * width + "+"
    lines.append(axis)
    lines.append(
        " " * label_width
        + f"  {x_lo:.2f}"
        + " " * max(width - 12, 1)
        + f"{x_hi:.2f}"
    )
    lines.append(" " * label_width + "  recall@K")
    legend = "   ".join(
        f"{MARKERS[i % len(MARKERS)]} {sweep.method}"
        for i, sweep in enumerate(sweeps)
    )
    lines.append(legend)
    return "\n".join(lines)
