"""Vector storage and distance computation.

This subpackage is the lowest substrate of the reproduction: a
numpy-backed float32 vector store and a :class:`DistanceComputer` that
performs batched metric computations while counting every distance it
evaluates.  The counter is load-bearing — Table 3 of the paper reports
*number of distance computations to reach 0.8 recall*, and §3.2 argues
distance computations dominate search cost, so all indexes in this
library route their distance math through one computer per query.
"""

from repro.vectors.distance import (
    METRICS,
    DistanceComputer,
    Metric,
    pairwise_distances,
    resolve_metric,
)
from repro.vectors.quantization import ProductQuantizer, ScalarQuantizer
from repro.vectors.quantized_store import (
    QuantizationConfig,
    QuantizedStore,
    rerank_budget,
    resolve_quantization,
)
from repro.vectors.store import VectorStore

__all__ = [
    "METRICS",
    "DistanceComputer",
    "Metric",
    "ProductQuantizer",
    "QuantizationConfig",
    "QuantizedStore",
    "ScalarQuantizer",
    "VectorStore",
    "pairwise_distances",
    "rerank_budget",
    "resolve_metric",
    "resolve_quantization",
]
