"""Append-only float32 vector store backing every index in the library."""

from __future__ import annotations

import numpy as np

from repro.vectors.distance import DistanceComputer, Metric, resolve_metric


class VectorStore:
    """Growable, contiguous float32 matrix of database vectors.

    Indexes that support incremental insertion (HNSW, ACORN) append
    through :meth:`add`; batch constructions pass a prebuilt matrix.
    Capacity doubles amortized so repeated adds stay O(1).
    """

    def __init__(self, dim: int, metric: "Metric | str" = Metric.L2, capacity: int = 1024) -> None:
        if dim <= 0:
            raise ValueError(f"dim must be positive, got {dim}")
        self.dim = int(dim)
        self.metric = resolve_metric(metric)
        self._data = np.empty((max(int(capacity), 1), self.dim), dtype=np.float32)
        self._size = 0
        # Cosine norm cache: norms of rows [0, _norm_size) — extended
        # incrementally, so repeated computer() calls never re-norm the
        # whole matrix.  Rows are append-only, so cached norms stay valid.
        self._norms = np.empty(0, dtype=np.float32)
        self._norm_size = 0

    @classmethod
    def from_array(cls, vectors: np.ndarray, metric: "Metric | str" = Metric.L2) -> "VectorStore":
        """Build a store holding a copy of ``vectors`` (n, d)."""
        vectors = np.atleast_2d(np.asarray(vectors, dtype=np.float32))
        store = cls(vectors.shape[1], metric=metric, capacity=max(len(vectors), 1))
        store._data[: len(vectors)] = vectors
        store._size = len(vectors)
        return store

    def __len__(self) -> int:
        return self._size

    @property
    def vectors(self) -> np.ndarray:
        """Read-only view of the stored vectors, shape ``(len(self), dim)``."""
        view = self._data[: self._size]
        view.flags.writeable = False
        return view

    def get(self, node_id: int) -> np.ndarray:
        """Return the vector stored at ``node_id``."""
        if not 0 <= node_id < self._size:
            raise IndexError(f"vector id {node_id} out of range [0, {self._size})")
        return self._data[node_id]

    def add(self, vector: np.ndarray) -> int:
        """Append one vector; returns its id."""
        vector = np.asarray(vector, dtype=np.float32).reshape(-1)
        if vector.shape[0] != self.dim:
            raise ValueError(f"vector has dim {vector.shape[0]}, store has dim {self.dim}")
        if self._size == self._data.shape[0]:
            grown = np.empty((self._data.shape[0] * 2, self.dim), dtype=np.float32)
            grown[: self._size] = self._data[: self._size]
            self._data = grown
        self._data[self._size] = vector
        self._size += 1
        return self._size - 1

    def add_many(self, vectors: np.ndarray) -> np.ndarray:
        """Append a block of vectors; returns their ids, shape ``(n,)``.

        One grow-to-fit reallocation and one block copy instead of n
        :meth:`add` calls — the bulk-construction pipeline registers a
        whole dataset through this before its first wave.  Accepts a
        single 1-D vector (one id) and empty input (empty intp array).
        """
        arr = np.asarray(vectors, dtype=np.float32)
        if arr.size == 0:
            return np.empty(0, dtype=np.intp)
        arr = np.atleast_2d(arr)
        if arr.ndim != 2 or arr.shape[1] != self.dim:
            raise ValueError(
                f"vectors have shape {arr.shape}, store has dim {self.dim}"
            )
        needed = self._size + arr.shape[0]
        if needed > self._data.shape[0]:
            capacity = self._data.shape[0]
            while capacity < needed:
                capacity *= 2
            grown = np.empty((capacity, self.dim), dtype=np.float32)
            grown[: self._size] = self._data[: self._size]
            self._data = grown
        self._data[self._size : needed] = arr
        ids = np.arange(self._size, needed, dtype=np.intp)
        self._size = needed
        return ids

    def base_norms(self) -> np.ndarray | None:
        """Cached L2 norms of the stored rows (cosine metric only).

        Computed incrementally: only rows appended since the last call
        are normed, so per-:meth:`add` construction stays O(d) here
        instead of O(n·d).  Returns ``None`` for metrics that never
        touch norms.
        """
        if self.metric is not Metric.COSINE:
            return None
        if self._norm_size < self._size:
            fresh = np.linalg.norm(
                self._data[self._norm_size : self._size], axis=1
            )
            if self._norms.shape[0] < self._size:
                grown = np.empty(self._data.shape[0], dtype=fresh.dtype)
                grown[: self._norm_size] = self._norms[: self._norm_size]
                self._norms = grown
            self._norms[self._norm_size : self._size] = fresh
            self._norm_size = self._size
        return self._norms[: self._size]

    def computer(self) -> DistanceComputer:
        """A :class:`DistanceComputer` over the current contents.

        The computer snapshots the present size; vectors added later are
        not visible to it.  Indexes create one per build/search session.
        """
        return DistanceComputer(
            self._data[: self._size], metric=self.metric,
            base_norms=self.base_norms(),
        )

    def nbytes(self) -> int:
        """Bytes used by live vector payload (for Table 5 index sizing)."""
        return self._size * self.dim * self._data.itemsize
