"""Vector quantization: scalar (SQ8) and product (PQ) codecs.

The Milvus configurations the paper benchmarks include IVF-SQ8 and
IVF-PQ (§7.2) — inverted-file indexes whose in-cell vectors are stored
compressed and compared through approximate decoded distances.  This
module provides the two codecs as standalone substrates:

- :class:`ScalarQuantizer` (SQ8): per-dimension affine mapping to uint8
  (4x compression for float32, small distance distortion).
- :class:`ProductQuantizer` (PQ): the vector is split into subspaces,
  each encoded by the id of its nearest codeword from a k-means
  codebook (classic Jégou et al. PQ; much higher compression, larger
  distortion).

Both expose ``encode`` / ``decode`` plus asymmetric distance
computation (query in float32 against encoded base), which is what the
IVF variants use.
"""

from __future__ import annotations

import numpy as np

from repro.utils.rng import default_rng


def _validated_training(vectors: np.ndarray, codec: str) -> np.ndarray:
    """Coerce a training set to float32 and reject unusable input.

    A 1-D array is ambiguous (one vector or n scalar dims?), an empty
    set leaves no statistics to learn, and NaN/inf poison every learned
    scale or centroid silently — all three must fail loudly.
    """
    arr = np.asarray(vectors, dtype=np.float32)
    if arr.ndim != 2:
        raise ValueError(
            f"{codec} training vectors must be a 2-D (n, dim) array, "
            f"got shape {arr.shape}"
        )
    if arr.shape[0] == 0 or arr.shape[1] == 0:
        raise ValueError(
            f"{codec} needs a non-empty training set, got shape {arr.shape}"
        )
    if not np.isfinite(arr).all():
        raise ValueError(
            f"{codec} training vectors contain NaN or inf; clean the "
            "data before training the codec"
        )
    return arr


class ScalarQuantizer:
    """Per-dimension 8-bit affine quantization (SQ8)."""

    def __init__(self, training_vectors: np.ndarray) -> None:
        training_vectors = _validated_training(training_vectors, "SQ8")
        self.min = training_vectors.min(axis=0)
        span = training_vectors.max(axis=0) - self.min
        # Constant dimensions quantize to 0 with scale 1 (exactly
        # recoverable through the stored minimum).
        self.scale = np.where(span > 0, span / 255.0, 1.0).astype(np.float32)
        self.dim = training_vectors.shape[1]

    def encode(self, vectors: np.ndarray) -> np.ndarray:
        """Quantize float32 vectors to uint8 codes (n, dim)."""
        vectors = np.atleast_2d(np.asarray(vectors, dtype=np.float32))
        steps = np.rint((vectors - self.min) / self.scale)
        return np.clip(steps, 0, 255).astype(np.uint8)

    def decode(self, codes: np.ndarray) -> np.ndarray:
        """Reconstruct approximate float32 vectors from codes."""
        codes = np.atleast_2d(np.asarray(codes, dtype=np.uint8))
        return codes.astype(np.float32) * self.scale + self.min

    def distances(self, query: np.ndarray, codes: np.ndarray) -> np.ndarray:
        """Asymmetric squared-L2: exact query vs decoded base codes."""
        decoded = self.decode(codes)
        diff = decoded - np.asarray(query, dtype=np.float32)
        return np.einsum("ij,ij->i", diff, diff)

    def code_nbytes(self, count: int) -> int:
        """Storage for ``count`` encoded vectors."""
        return count * self.dim


class ProductQuantizer:
    """Product quantization with per-subspace k-means codebooks.

    Args:
        training_vectors: sample used to learn the codebooks.
        n_subspaces: how many contiguous slices the vector splits into
            (must divide the dimensionality).
        n_centroids: codewords per subspace (<= 256 so codes fit uint8).
    """

    def __init__(
        self,
        training_vectors: np.ndarray,
        n_subspaces: int = 8,
        n_centroids: int = 256,
        n_iter: int = 8,
        seed: int | np.random.Generator | None = 0,
    ) -> None:
        training_vectors = _validated_training(training_vectors, "PQ")
        n, dim = training_vectors.shape
        if dim % n_subspaces != 0:
            raise ValueError(
                f"n_subspaces={n_subspaces} must divide dim={dim}"
            )
        if not 1 <= n_centroids <= 256:
            raise ValueError("n_centroids must lie in [1, 256]")
        from repro.baselines.ivf import kmeans

        self.dim = dim
        self.n_subspaces = n_subspaces
        self.sub_dim = dim // n_subspaces
        rng = default_rng(seed)
        self.codebooks: list[np.ndarray] = []
        for sub in range(n_subspaces):
            block = training_vectors[:, sub * self.sub_dim:(sub + 1) * self.sub_dim]
            centroids, _ = kmeans(
                block, min(n_centroids, n), n_iter=n_iter,
                seed=rng,
            )
            self.codebooks.append(centroids)

    def encode(self, vectors: np.ndarray) -> np.ndarray:
        """Encode vectors to (n, n_subspaces) uint8 codeword ids."""
        vectors = np.atleast_2d(np.asarray(vectors, dtype=np.float32))
        codes = np.empty((vectors.shape[0], self.n_subspaces), dtype=np.uint8)
        for sub, codebook in enumerate(self.codebooks):
            block = vectors[:, sub * self.sub_dim:(sub + 1) * self.sub_dim]
            b_sq = np.einsum("ij,ij->i", block, block)
            c_sq = np.einsum("ij,ij->i", codebook, codebook)
            dists = b_sq[:, None] + c_sq[None, :] - 2.0 * (block @ codebook.T)
            codes[:, sub] = np.argmin(dists, axis=1)
        return codes

    def decode(self, codes: np.ndarray) -> np.ndarray:
        """Reconstruct approximate vectors from codeword ids."""
        codes = np.atleast_2d(np.asarray(codes, dtype=np.uint8))
        out = np.empty((codes.shape[0], self.dim), dtype=np.float32)
        for sub, codebook in enumerate(self.codebooks):
            out[:, sub * self.sub_dim:(sub + 1) * self.sub_dim] = (
                codebook[codes[:, sub]]
            )
        return out

    def lookup_table(self, query: np.ndarray) -> np.ndarray:
        """Per-query ADC table: squared-L2 from each codeword to ``query``.

        Shape ``(n_subspaces, n_centroids)``; row ``sub`` holds the
        distance contribution of every codeword in subspace ``sub``.
        Computing this once per query and gathering per candidate is
        what makes ADC cheap — reuse the table across a whole batch of
        ``distances`` calls for the same query.
        """
        query = np.asarray(query, dtype=np.float32).reshape(-1)
        table = np.empty(
            (self.n_subspaces, self.codebooks[0].shape[0]), dtype=np.float32
        )
        for sub, codebook in enumerate(self.codebooks):
            q_block = query[sub * self.sub_dim:(sub + 1) * self.sub_dim]
            diff = codebook - q_block
            table[sub] = np.einsum("ij,ij->i", diff, diff)
        return table

    def distances(
        self,
        query: np.ndarray,
        codes: np.ndarray,
        table: np.ndarray | None = None,
    ) -> np.ndarray:
        """Asymmetric squared-L2 via per-subspace lookup tables (ADC).

        Pass a precomputed ``lookup_table(query)`` as ``table`` to skip
        rebuilding it for every call with the same query.
        """
        codes = np.atleast_2d(np.asarray(codes, dtype=np.uint8))
        if table is None:
            table = self.lookup_table(query)
        total = np.zeros(codes.shape[0], dtype=np.float32)
        for sub in range(self.n_subspaces):
            total += table[sub][codes[:, sub]]
        return total

    def code_nbytes(self, count: int) -> int:
        """Storage for ``count`` encoded vectors."""
        return count * self.n_subspaces
