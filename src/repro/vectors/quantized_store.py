"""Quantized code mirror of a :class:`~repro.vectors.store.VectorStore`.

The traversal hot path is memory-bandwidth-bound: every graph hop
gathers full float32 rows just to rank candidates whose final distances
are recomputed exactly anyway.  This module keeps a contiguous uint8
code array (SQ8 or PQ) aligned row-for-row with the float store and
serves *asymmetric* distances from it — the query stays float32, the
base side is read as codes — so beam search touches 4x (SQ8) to
``dim/n_subspaces``x (PQ) less base memory per hop.

Distances are decode-free:

- **SQ8** expands ``||c·scale + min − q||²`` into a per-row constant
  (``row_sq``, precomputed at encode time), one uint8-gather GEMV
  against a per-query vector, and a per-query constant.  ``ip`` and
  ``cosine`` reduce to the same gather-GEMV with different constants.
- **PQ** builds one ADC lookup table per query
  (:meth:`~repro.vectors.quantization.ProductQuantizer.lookup_table`)
  and ranks candidates by a table gather — no float rows touched.

Quantized evaluations are counted on the computer's own ``count``
(surfaced as ``SearchResult.quantized_distances``), never on the exact
:class:`~repro.vectors.distance.DistanceComputer`, so the paper's
distance-computation measure keeps meaning "exact float32 evaluations".

The codes persist alongside the floats (see :mod:`repro.persistence`);
:func:`codes_checksum` fingerprints the code bytes so a corrupt archive
names the broken artifact instead of silently serving garbage ranks.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import math

import numpy as np

from repro.vectors.distance import Metric, resolve_metric
from repro.vectors.quantization import ProductQuantizer, ScalarQuantizer

QUANT_KINDS = ("sq8", "pq")

#: Default exact-rerank multiplier: the float32 tail re-scores
#: ``rerank_factor * k`` quantized candidates before the final top-k.
DEFAULT_RERANK_FACTOR = 3.0


@dataclasses.dataclass(frozen=True)
class QuantizationConfig:
    """How an index quantizes its traversal distances.

    Attributes:
        kind: ``"sq8"`` (per-dimension affine uint8) or ``"pq"``
            (product quantization with per-query ADC tables).
        rerank_factor: exact-rerank budget as a multiple of ``k``; the
            float32 tail re-scores ``max(k, ceil(rerank_factor * k))``
            candidates.  Must be >= 1.0 (the tail may never return
            unreranked distances).
        pq_subspaces: PQ subspace count (must divide ``dim``).
        pq_centroids: PQ codewords per subspace (<= 256).
        pq_iters: k-means iterations when training PQ codebooks.
        train_seed: codec training seed (PQ k-means).
    """

    kind: str = "sq8"
    rerank_factor: float = DEFAULT_RERANK_FACTOR
    pq_subspaces: int = 8
    pq_centroids: int = 256
    pq_iters: int = 8
    train_seed: int = 0

    def __post_init__(self) -> None:
        if self.kind not in QUANT_KINDS:
            raise ValueError(
                f"unknown quantization kind {self.kind!r}; "
                f"choose from {QUANT_KINDS}"
            )
        if self.rerank_factor < 1.0:
            raise ValueError(
                f"rerank_factor must be >= 1.0, got {self.rerank_factor}"
            )

    def to_json(self) -> str:
        """Serialize for the persistence layer."""
        return json.dumps(dataclasses.asdict(self), sort_keys=True)

    @classmethod
    def from_json(cls, payload: str) -> "QuantizationConfig":
        """Inverse of :meth:`to_json`."""
        return cls(**json.loads(payload))


def resolve_quantization(spec) -> QuantizationConfig | None:
    """Normalize a ``quantization=`` argument.

    Accepts None (float32 path, the default), a kind string
    (``"sq8"``/``"pq"``), a config dict, or a ready
    :class:`QuantizationConfig`.
    """
    if spec is None:
        return None
    if isinstance(spec, QuantizationConfig):
        return spec
    if isinstance(spec, str):
        return QuantizationConfig(kind=spec)
    if isinstance(spec, dict):
        return QuantizationConfig(**spec)
    raise TypeError(
        "quantization must be None, a kind string, a dict, or a "
        f"QuantizationConfig; got {type(spec).__name__}"
    )


def rerank_budget(k: int, rerank_factor: float) -> int:
    """Candidates the exact tail re-scores for one query."""
    return max(int(k), int(math.ceil(rerank_factor * k)))


def codes_checksum(codes: np.ndarray) -> str:
    """sha256 fingerprint of a code array's bytes (shape-sensitive)."""
    digest = hashlib.sha256()
    digest.update(str(codes.shape).encode())
    digest.update(np.ascontiguousarray(codes).tobytes())
    return digest.hexdigest()


class QuantizedStore:
    """Contiguous codes + per-metric auxiliaries for one vector store.

    Lifecycle: :meth:`train` fits the codec once (on the build-time
    vector set), then :meth:`sync` encodes any float rows added since —
    the codec itself stays frozen so already-stored codes never shift.
    """

    def __init__(
        self, config: QuantizationConfig, metric: "Metric | str"
    ) -> None:
        self.config = config
        self.metric = resolve_metric(metric)
        self.codec: ScalarQuantizer | ProductQuantizer | None = None
        self.codes: np.ndarray | None = None
        # Per-row auxiliaries (parallel to ``codes``):
        #   _row_sq   SQ8+L2: ||scale * c||² per row.
        #   _row_norm cosine: ||decoded row|| per row (either codec).
        self._row_sq: np.ndarray | None = None
        self._row_norm: np.ndarray | None = None

    def __len__(self) -> int:
        return 0 if self.codes is None else int(self.codes.shape[0])

    @property
    def kind(self) -> str:
        """The codec kind (``sq8`` or ``pq``)."""
        return self.config.kind

    @property
    def trained(self) -> bool:
        """Whether the codec has been fitted."""
        return self.codec is not None

    # ------------------------------------------------------------------
    # Training / encoding
    # ------------------------------------------------------------------

    def train(self, vectors: np.ndarray) -> None:
        """Fit the codec on ``vectors`` (idempotent once trained)."""
        if self.codec is not None:
            return
        vectors = np.asarray(vectors, dtype=np.float32)
        if self.config.kind == "sq8":
            self.codec = ScalarQuantizer(vectors)
        else:
            self.codec = ProductQuantizer(
                vectors,
                n_subspaces=min(self.config.pq_subspaces, vectors.shape[1]),
                n_centroids=min(self.config.pq_centroids,
                                max(vectors.shape[0], 1)),
                n_iter=self.config.pq_iters,
                seed=self.config.train_seed,
            )

    def sync(self, store) -> None:
        """Encode float rows added to ``store`` since the last sync.

        The codec must already be trained; appended rows are encoded
        with the *frozen* codec so existing codes stay byte-stable.
        """
        if self.codec is None:
            raise RuntimeError("QuantizedStore.sync before train()")
        total = len(store)
        have = len(self)
        if have >= total:
            return
        fresh = store.vectors[have:total]
        self._append(self.codec.encode(fresh))

    def _append(self, new_codes: np.ndarray) -> None:
        if self.codes is None:
            self.codes = new_codes
        else:
            self.codes = np.concatenate([self.codes, new_codes])
        decoded = self.codec.decode(new_codes)
        if self.config.kind == "sq8" and self.metric is Metric.L2:
            scaled = new_codes.astype(np.float32) * self.codec.scale
            row_sq = np.einsum("ij,ij->i", scaled, scaled)
            self._row_sq = (row_sq if self._row_sq is None
                            else np.concatenate([self._row_sq, row_sq]))
        if self.metric is Metric.COSINE:
            norms = np.linalg.norm(decoded, axis=1).astype(np.float32)
            self._row_norm = (norms if self._row_norm is None
                              else np.concatenate([self._row_norm, norms]))

    # ------------------------------------------------------------------
    # Distance computation
    # ------------------------------------------------------------------

    def computer(self) -> "QuantizedComputer":
        """A per-query asymmetric distance computer over current codes."""
        if self.codec is None or self.codes is None:
            raise RuntimeError("QuantizedStore has no codes; train + sync")
        return QuantizedComputer(self)

    def batched_distances(
        self, queries: np.ndarray, qidx: np.ndarray, ids: np.ndarray
    ) -> np.ndarray:
        """Quantized distances for (query, id) pairs in one pass.

        Mirrors :func:`repro.core.bulkbuild._batched_distances` — row
        ``t`` of the result is the asymmetric distance from
        ``queries[qidx[t]]`` to code row ``ids[t]`` — so the bulk
        builder's Phase-A GEMM rounds can run on codes unchanged.
        """
        queries = np.asarray(queries, dtype=np.float32)
        qidx = np.asarray(qidx)
        ids = np.asarray(ids)
        if ids.size == 0:
            return np.empty(0, dtype=np.float32)
        codec = self.codec
        if self.config.kind == "sq8":
            rows = self.codes[ids].astype(np.float32)
            if self.metric is Metric.L2:
                shifted = (queries - codec.min) * codec.scale
                q_sq = np.einsum("ij,ij->i", queries - codec.min,
                                 queries - codec.min)
                cross = np.einsum("ij,ij->i", rows, shifted[qidx])
                out = self._row_sq[ids] - 2.0 * cross + q_sq[qidx]
                return np.maximum(out, 0.0)
            w = queries * codec.scale
            dot = (np.einsum("ij,ij->i", rows, w[qidx])
                   + (queries @ codec.min)[qidx])
            if self.metric is Metric.INNER_PRODUCT:
                return -dot
            qn = np.linalg.norm(queries, axis=1)
            denom = np.maximum(self._row_norm[ids] * qn[qidx],
                               np.finfo(np.float32).tiny)
            return 1.0 - dot / denom
        # PQ: stack one ADC/dot table per query, gather per pair.
        sub_range = np.arange(codec.n_subspaces)
        codes = self.codes[ids]
        if self.metric is Metric.L2:
            tables = np.stack([codec.lookup_table(q) for q in queries])
            return tables[qidx[:, None], sub_range[None, :], codes].sum(axis=1)
        tables = np.stack([_pq_dot_table(codec, q) for q in queries])
        dot = tables[qidx[:, None], sub_range[None, :], codes].sum(axis=1)
        if self.metric is Metric.INNER_PRODUCT:
            return -dot
        qn = np.linalg.norm(queries, axis=1)
        denom = np.maximum(self._row_norm[ids] * qn[qidx],
                           np.finfo(np.float32).tiny)
        return 1.0 - dot / denom

    # ------------------------------------------------------------------
    # Introspection / persistence
    # ------------------------------------------------------------------

    def nbytes(self) -> int:
        """Bytes held by the code array (the auxiliary rows excluded)."""
        return 0 if self.codes is None else int(self.codes.nbytes)

    def checksum(self) -> str:
        """Fingerprint of the current code array."""
        if self.codes is None:
            raise RuntimeError("QuantizedStore has no codes to checksum")
        return codes_checksum(self.codes)

    def state_arrays(self) -> dict[str, np.ndarray]:
        """Codec + code arrays for the npz persistence payload.

        Auxiliary per-row arrays are recomputed on load (cheap and
        deterministic), so only the codec parameters and the codes
        themselves are shipped.
        """
        if self.codec is None or self.codes is None:
            raise RuntimeError("QuantizedStore has no codes to persist")
        out = {"quant_codes": self.codes}
        if self.config.kind == "sq8":
            out["quant_sq_min"] = self.codec.min
            out["quant_sq_scale"] = self.codec.scale
        else:
            out["quant_pq_codebooks"] = np.stack(self.codec.codebooks)
        return out

    @classmethod
    def from_state(
        cls,
        config: QuantizationConfig,
        metric: "Metric | str",
        arrays: dict[str, np.ndarray],
    ) -> "QuantizedStore":
        """Rebuild a store from :meth:`state_arrays` output."""
        qs = cls(config, metric)
        if config.kind == "sq8":
            codec = ScalarQuantizer.__new__(ScalarQuantizer)
            codec.min = np.asarray(arrays["quant_sq_min"], dtype=np.float32)
            codec.scale = np.asarray(arrays["quant_sq_scale"],
                                     dtype=np.float32)
            codec.dim = int(codec.min.shape[0])
        else:
            books = np.asarray(arrays["quant_pq_codebooks"], dtype=np.float32)
            codec = ProductQuantizer.__new__(ProductQuantizer)
            codec.n_subspaces = int(books.shape[0])
            codec.sub_dim = int(books.shape[2])
            codec.dim = codec.n_subspaces * codec.sub_dim
            codec.codebooks = [books[sub] for sub in range(books.shape[0])]
        qs.codec = codec
        codes = np.asarray(arrays["quant_codes"], dtype=np.uint8)
        if codes.size:
            qs._append(codes)
        return qs


def _pq_dot_table(codec: ProductQuantizer, query: np.ndarray) -> np.ndarray:
    """Per-subspace codeword-dot-query table (ip/cosine analogue of ADC)."""
    query = np.asarray(query, dtype=np.float32).reshape(-1)
    table = np.empty(
        (codec.n_subspaces, codec.codebooks[0].shape[0]), dtype=np.float32
    )
    for sub, codebook in enumerate(codec.codebooks):
        q_block = query[sub * codec.sub_dim:(sub + 1) * codec.sub_dim]
        table[sub] = codebook @ q_block
    return table


class QuantizedComputer:
    """Asymmetric distances from one query to stored codes, counted.

    Duck-types the slice of the :class:`DistanceComputer` protocol the
    quantized kernel needs (``set_query`` + ``distances``) and keeps its
    own evaluation counter — quantized evaluations are reported
    separately (``SearchResult.quantized_distances``) from exact
    float32 computations.
    """

    __slots__ = ("_store", "_codes", "_metric", "_kind", "count",
                 "_w", "_qconst", "_qnorm", "_table", "_sub_range")

    def __init__(self, store: QuantizedStore) -> None:
        self._store = store
        self._codes = store.codes
        self._metric = store.metric
        self._kind = store.config.kind
        self.count = 0
        self._w = None
        self._qconst = 0.0
        self._qnorm = 0.0
        self._table = None
        self._sub_range = None

    def set_query(self, query: np.ndarray) -> np.ndarray:
        """Precompute the per-query state; returns the float32 query."""
        query = np.asarray(query, dtype=np.float32).reshape(-1)
        codec = self._store.codec
        if self._kind == "sq8":
            if self._metric is Metric.L2:
                shifted = query - codec.min
                self._w = shifted * codec.scale
                self._qconst = float(shifted @ shifted)
            else:
                self._w = query * codec.scale
                self._qconst = float(codec.min @ query)
                self._qnorm = float(np.linalg.norm(query))
        else:
            if self._metric is Metric.L2:
                self._table = codec.lookup_table(query)
            else:
                self._table = _pq_dot_table(codec, query)
                self._qnorm = float(np.linalg.norm(query))
            self._sub_range = np.arange(codec.n_subspaces)
        return query

    def distances(self, ids: np.ndarray) -> np.ndarray:
        """Quantized distances to code rows ``ids`` (counted)."""
        ids = np.asarray(ids)
        self.count += int(ids.size)
        if ids.size == 0:
            return np.empty(0, dtype=np.float32)
        if self._kind == "sq8":
            rows = self._codes[ids].astype(np.float32)
            cross = rows @ self._w
            if self._metric is Metric.L2:
                out = self._store._row_sq[ids] - 2.0 * cross + self._qconst
                return np.maximum(out, 0.0)
            dot = cross + self._qconst
            if self._metric is Metric.INNER_PRODUCT:
                return -dot
            denom = np.maximum(self._store._row_norm[ids] * self._qnorm,
                               np.finfo(np.float32).tiny)
            return 1.0 - dot / denom
        gathered = self._table[self._sub_range, self._codes[ids]].sum(axis=1)
        if self._metric is Metric.L2:
            return gathered
        if self._metric is Metric.INNER_PRODUCT:
            return -gathered
        denom = np.maximum(self._store._row_norm[ids] * self._qnorm,
                           np.finfo(np.float32).tiny)
        return 1.0 - gathered / denom
