"""Distance metrics with exact computation counting.

All search structures in this library compare vectors through a
:class:`DistanceComputer`.  The computer is bound to one base dataset and
counts every query-to-base distance it evaluates, which gives us the
hardware-independent cost measure used throughout the paper (Table 3,
§3.2's "distance computations dominate search performance").

Distances are *rank-preserving* rather than true metrics where that is
cheaper: ``l2`` returns squared Euclidean distance and ``cosine`` returns
``1 - cos``.  Nearest-neighbor order is identical to the true metric.
"""

from __future__ import annotations

import enum
import threading

import numpy as np


class Metric(enum.Enum):
    """Supported vector comparison metrics."""

    L2 = "l2"
    INNER_PRODUCT = "ip"
    COSINE = "cosine"


METRICS = tuple(m.value for m in Metric)


def resolve_metric(metric: "Metric | str") -> Metric:
    """Normalize a metric name or enum member into a :class:`Metric`.

    Raises:
        ValueError: if ``metric`` is not one of ``l2``, ``ip``, ``cosine``.
    """
    if isinstance(metric, Metric):
        return metric
    try:
        return Metric(metric)
    except ValueError:
        raise ValueError(
            f"unknown metric {metric!r}; expected one of {METRICS}"
        ) from None


def _l2_sq(base: np.ndarray, query: np.ndarray) -> np.ndarray:
    diff = base - query
    return np.einsum("ij,ij->i", diff, diff)


def _neg_ip(base: np.ndarray, query: np.ndarray) -> np.ndarray:
    # Negated so that "smaller is closer" holds for every metric.
    return -(base @ query)


def _cosine_dist(base: np.ndarray, query: np.ndarray) -> np.ndarray:
    qn = np.linalg.norm(query)
    bn = np.linalg.norm(base, axis=1)
    denom = np.maximum(bn * qn, np.finfo(np.float32).tiny)
    return 1.0 - (base @ query) / denom


_KERNELS = {
    Metric.L2: _l2_sq,
    Metric.INNER_PRODUCT: _neg_ip,
    Metric.COSINE: _cosine_dist,
}


def pairwise_distances(
    base: np.ndarray, queries: np.ndarray, metric: "Metric | str" = Metric.L2
) -> np.ndarray:
    """Return the full ``(len(queries), len(base))`` distance matrix.

    Used by ground-truth computation and the pre-filter baseline, where a
    single vectorized pass over the candidate set is the whole algorithm.
    """
    metric = resolve_metric(metric)
    base = np.asarray(base, dtype=np.float32)
    queries = np.atleast_2d(np.asarray(queries, dtype=np.float32))
    if metric is Metric.L2:
        b_sq = np.einsum("ij,ij->i", base, base)
        q_sq = np.einsum("ij,ij->i", queries, queries)
        cross = queries @ base.T
        out = q_sq[:, None] + b_sq[None, :] - 2.0 * cross
        return np.maximum(out, 0.0)
    if metric is Metric.INNER_PRODUCT:
        return -(queries @ base.T)
    qn = np.linalg.norm(queries, axis=1)
    bn = np.linalg.norm(base, axis=1)
    denom = np.maximum(np.outer(qn, bn), np.finfo(np.float32).tiny)
    return 1.0 - (queries @ base.T) / denom


class _GlobalTally:
    """Process-wide, thread-safe running total of distance evaluations.

    Every :class:`DistanceComputer` reports its evaluations here in
    addition to its own per-computer count.  The tally is monotonic —
    per-computer :meth:`DistanceComputer.reset` calls do not rewind it —
    so concurrency tests can assert that the tally's delta across a
    workload equals the sum of per-query counts (a mismatch means a
    counter increment raced and was lost).
    """

    __slots__ = ("_lock", "_total")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._total = 0

    def add(self, n: int) -> None:
        """Atomically record ``n`` distance evaluations."""
        with self._lock:
            self._total += int(n)

    @property
    def total(self) -> int:
        """Total evaluations recorded since process start."""
        with self._lock:
            return self._total


GLOBAL_TALLY = _GlobalTally()
"""The process-wide distance-evaluation tally shared by all computers."""


class DistanceComputer:
    """Batched query-to-base distances over one dataset, with counting.

    One computer is bound to a base matrix; search code calls
    :meth:`distances_to` with node ids to get distances from the current
    query to those base vectors.  ``count`` accumulates the number of
    individual distance evaluations, which the evaluation harness reads
    to reproduce Table 3.

    Counting is thread-safe: increments go through a lock (and are
    mirrored into :data:`GLOBAL_TALLY`), so a computer shared by the
    concurrent batch engine never loses increments to races.

    Attributes:
        count: total distances computed since construction or last
            :meth:`reset`.
    """

    def __init__(self, base: np.ndarray, metric: "Metric | str" = Metric.L2) -> None:
        base = np.asarray(base, dtype=np.float32)
        if base.ndim != 2:
            raise ValueError(f"base must be 2-D, got shape {base.shape}")
        self.base = base
        self.metric = resolve_metric(metric)
        self._kernel = _KERNELS[self.metric]
        self._count_lock = threading.Lock()
        self._count = 0

    @property
    def count(self) -> int:
        """Distances evaluated since construction or last :meth:`reset`."""
        return self._count

    @count.setter
    def count(self, value: int) -> None:
        with self._count_lock:
            self._count = int(value)

    def add_count(self, n: int) -> None:
        """Thread-safely record ``n`` distance evaluations.

        Use this instead of ``computer.count += n`` (a racy
        read-modify-write) when accounting for evaluations performed
        outside the computer — e.g. quantized-code distances.
        """
        with self._count_lock:
            self._count += int(n)
        GLOBAL_TALLY.add(n)

    @property
    def dim(self) -> int:
        """Dimensionality of the base vectors."""
        return self.base.shape[1]

    def __len__(self) -> int:
        return self.base.shape[0]

    def reset(self) -> None:
        """Zero the distance-computation counter.

        Per-computer only: :data:`GLOBAL_TALLY` is monotonic and keeps
        its running total.
        """
        self.count = 0

    def set_query(self, query: np.ndarray) -> np.ndarray:
        """Validate and coerce ``query``; returns the float32 view."""
        query = np.asarray(query, dtype=np.float32).reshape(-1)
        if query.shape[0] != self.dim:
            raise ValueError(
                f"query has dim {query.shape[0]}, base has dim {self.dim}"
            )
        return query

    def distances_to(self, query: np.ndarray, ids: np.ndarray) -> np.ndarray:
        """Distances from ``query`` to base rows ``ids`` (counted)."""
        ids = np.asarray(ids, dtype=np.intp)
        self.add_count(ids.size)
        return self._kernel(self.base[ids], query)

    def distance_one(self, query: np.ndarray, node_id: int) -> float:
        """Distance from ``query`` to a single base row (counted)."""
        self.add_count(1)
        return float(self._kernel(self.base[node_id : node_id + 1], query)[0])

    def distances_to_all(self, query: np.ndarray) -> np.ndarray:
        """Distances from ``query`` to every base vector (counted)."""
        self.add_count(self.base.shape[0])
        return self._kernel(self.base, query)
