"""Distance metrics with exact computation counting.

All search structures in this library compare vectors through a
:class:`DistanceComputer`.  The computer is bound to one base dataset and
counts every query-to-base distance it evaluates, which gives us the
hardware-independent cost measure used throughout the paper (Table 3,
§3.2's "distance computations dominate search performance").

Distances are *rank-preserving* rather than true metrics where that is
cheaper: ``l2`` returns squared Euclidean distance and ``cosine`` returns
``1 - cos``.  Nearest-neighbor order is identical to the true metric.
"""

from __future__ import annotations

import enum
import threading

import numpy as np


class Metric(enum.Enum):
    """Supported vector comparison metrics."""

    L2 = "l2"
    INNER_PRODUCT = "ip"
    COSINE = "cosine"


METRICS = tuple(m.value for m in Metric)


def resolve_metric(metric: "Metric | str") -> Metric:
    """Normalize a metric name or enum member into a :class:`Metric`.

    Raises:
        ValueError: if ``metric`` is not one of ``l2``, ``ip``, ``cosine``.
    """
    if isinstance(metric, Metric):
        return metric
    try:
        return Metric(metric)
    except ValueError:
        raise ValueError(
            f"unknown metric {metric!r}; expected one of {METRICS}"
        ) from None


def _l2_sq(base: np.ndarray, query: np.ndarray) -> np.ndarray:
    diff = base - query
    return np.einsum("ij,ij->i", diff, diff)


def _neg_ip(base: np.ndarray, query: np.ndarray) -> np.ndarray:
    # Negated so that "smaller is closer" holds for every metric.
    return -(base @ query)


def _cosine_dist(base: np.ndarray, query: np.ndarray) -> np.ndarray:
    qn = np.linalg.norm(query)
    bn = np.linalg.norm(base, axis=1)
    denom = np.maximum(bn * qn, np.finfo(np.float32).tiny)
    return 1.0 - (base @ query) / denom


_KERNELS = {
    Metric.L2: _l2_sq,
    Metric.INNER_PRODUCT: _neg_ip,
    Metric.COSINE: _cosine_dist,
}


def pairwise_distances(
    base: np.ndarray, queries: np.ndarray, metric: "Metric | str" = Metric.L2
) -> np.ndarray:
    """Return the full ``(len(queries), len(base))`` distance matrix.

    Used by ground-truth computation and the pre-filter baseline, where a
    single vectorized pass over the candidate set is the whole algorithm.
    """
    metric = resolve_metric(metric)
    base = np.asarray(base, dtype=np.float32)
    queries = np.atleast_2d(np.asarray(queries, dtype=np.float32))
    if metric is Metric.L2:
        b_sq = np.einsum("ij,ij->i", base, base)
        q_sq = np.einsum("ij,ij->i", queries, queries)
        cross = queries @ base.T
        out = q_sq[:, None] + b_sq[None, :] - 2.0 * cross
        return np.maximum(out, 0.0)
    if metric is Metric.INNER_PRODUCT:
        return -(queries @ base.T)
    qn = np.linalg.norm(queries, axis=1)
    bn = np.linalg.norm(base, axis=1)
    denom = np.maximum(np.outer(qn, bn), np.finfo(np.float32).tiny)
    return 1.0 - (queries @ base.T) / denom


class _GlobalTally:
    """Process-wide, thread-safe running total of distance evaluations.

    Every :class:`DistanceComputer` reports its evaluations here in
    addition to its own per-computer count.  The tally is monotonic —
    per-computer :meth:`DistanceComputer.reset` calls do not rewind it —
    so concurrency tests can assert that the tally's delta across a
    workload equals the sum of per-query counts (a mismatch means a
    counter increment raced and was lost).
    """

    __slots__ = ("_lock", "_total")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._total = 0

    def add(self, n: int) -> None:
        """Atomically record ``n`` distance evaluations."""
        with self._lock:
            self._total += int(n)

    @property
    def total(self) -> int:
        """Total evaluations recorded since process start."""
        with self._lock:
            return self._total


GLOBAL_TALLY = _GlobalTally()
"""The process-wide distance-evaluation tally shared by all computers."""


def _cosine_from_norms(
    rows: np.ndarray, norms: np.ndarray, query: np.ndarray
) -> np.ndarray:
    """Cosine distance using precomputed base-row norms."""
    qn = np.linalg.norm(query)
    denom = np.maximum(norms * qn, np.finfo(np.float32).tiny)
    return 1.0 - (rows @ query) / denom


class DistanceComputer:
    """Batched query-to-base distances over one dataset, with counting.

    One computer is bound to a base matrix; search code calls
    :meth:`distances_to` with node ids to get distances from the current
    query to those base vectors.  ``count`` accumulates the number of
    individual distance evaluations, which the evaluation harness reads
    to reproduce Table 3.

    Counting is thread-safe: increments go through a lock (and are
    mirrored into :data:`GLOBAL_TALLY`), so a computer shared by the
    concurrent batch engine never loses increments to races.  A search
    path that owns its computer exclusively can instead switch to
    *deferred* counting (:meth:`defer_counts`): evaluations accumulate
    in a plain local integer and :meth:`flush_counts` settles them into
    ``count`` and :data:`GLOBAL_TALLY` once per query — two lock
    acquisitions per query instead of two per graph hop.

    For the cosine metric, base-vector norms are computed once at
    construction (or passed in precomputed by
    :class:`~repro.vectors.store.VectorStore`) instead of being
    recomputed on every :meth:`distances_to`/:meth:`distance_one` call.

    Attributes:
        count: total distances computed since construction or last
            :meth:`reset` (deferred-but-unflushed evaluations included).
    """

    def __init__(
        self,
        base: np.ndarray,
        metric: "Metric | str" = Metric.L2,
        base_norms: np.ndarray | None = None,
    ) -> None:
        base = np.asarray(base, dtype=np.float32)
        if base.ndim != 2:
            raise ValueError(f"base must be 2-D, got shape {base.shape}")
        self.base = base
        self.metric = resolve_metric(metric)
        self._kernel = _KERNELS[self.metric]
        if self.metric is Metric.COSINE:
            if base_norms is None:
                base_norms = np.linalg.norm(base, axis=1)
            elif base_norms.shape[0] != base.shape[0]:
                raise ValueError(
                    f"base_norms covers {base_norms.shape[0]} rows, base "
                    f"has {base.shape[0]}"
                )
            self._base_norms = base_norms
        else:
            self._base_norms = None
        self._count_lock = threading.Lock()
        self._count = 0
        self._deferred = False
        self._pending = 0

    @property
    def count(self) -> int:
        """Distances evaluated since construction or last :meth:`reset`."""
        return self._count + self._pending

    @count.setter
    def count(self, value: int) -> None:
        with self._count_lock:
            self._count = int(value)
            self._pending = 0

    def add_count(self, n: int) -> None:
        """Record ``n`` distance evaluations.

        Thread-safe by default (lock + :data:`GLOBAL_TALLY` mirror); in
        deferred mode the increment is a plain local addition settled by
        :meth:`flush_counts`.  Use this instead of ``computer.count +=
        n`` (a racy read-modify-write) when accounting for evaluations
        performed outside the computer — e.g. quantized-code distances.
        """
        if self._deferred:
            self._pending += int(n)
            return
        with self._count_lock:
            self._count += int(n)
        GLOBAL_TALLY.add(n)

    def defer_counts(self) -> None:
        """Switch to per-query local counting (see class docstring).

        Only valid while the computer is used by a single thread — the
        per-query computers the indices create qualify; a computer
        shared across engine workers does not.
        """
        self._deferred = True

    def flush_counts(self) -> int:
        """Settle deferred evaluations into ``count``/:data:`GLOBAL_TALLY`.

        Idempotent; returns the number of evaluations flushed.  Search
        paths call this exactly once per query, in a ``finally`` block,
        so the global tally stays exact even on error paths.
        """
        pending = self._pending
        if pending:
            self._pending = 0
            with self._count_lock:
                self._count += pending
            GLOBAL_TALLY.add(pending)
        return pending

    @property
    def dim(self) -> int:
        """Dimensionality of the base vectors."""
        return self.base.shape[1]

    def __len__(self) -> int:
        return self.base.shape[0]

    def reset(self) -> None:
        """Zero the distance-computation counter (pending included).

        Per-computer only: :data:`GLOBAL_TALLY` is monotonic and keeps
        its running total.
        """
        self.count = 0

    def set_query(self, query: np.ndarray) -> np.ndarray:
        """Validate and coerce ``query``; returns the float32 view."""
        query = np.asarray(query, dtype=np.float32).reshape(-1)
        if query.shape[0] != self.dim:
            raise ValueError(
                f"query has dim {query.shape[0]}, base has dim {self.dim}"
            )
        return query

    def distances_to(self, query: np.ndarray, ids: np.ndarray) -> np.ndarray:
        """Distances from ``query`` to base rows ``ids`` (counted)."""
        ids = np.asarray(ids, dtype=np.intp)
        self.add_count(ids.size)
        if self._base_norms is not None:
            return _cosine_from_norms(
                self.base[ids], self._base_norms[ids], query
            )
        return self._kernel(self.base[ids], query)

    def distance_one(self, query: np.ndarray, node_id: int) -> float:
        """Distance from ``query`` to a single base row (counted)."""
        self.add_count(1)
        row = self.base[node_id : node_id + 1]
        if self._base_norms is not None:
            return float(_cosine_from_norms(
                row, self._base_norms[node_id : node_id + 1], query
            )[0])
        return float(self._kernel(row, query)[0])

    def distances_to_all(self, query: np.ndarray) -> np.ndarray:
        """Distances from ``query`` to every base vector (counted)."""
        self.add_count(self.base.shape[0])
        if self._base_norms is not None:
            return _cosine_from_norms(self.base, self._base_norms, query)
        return self._kernel(self.base, query)
