"""Boolean composition of predicates: And / Or / Not."""

from __future__ import annotations

import numpy as np

from repro.attributes.table import AttributeTable
from repro.predicates.base import Predicate


class And(Predicate):
    """Conjunction of two or more predicates."""

    def __init__(self, *children: Predicate) -> None:
        if len(children) < 2:
            raise ValueError("And requires at least two children")
        self.children = tuple(children)

    def mask(self, table: AttributeTable) -> np.ndarray:
        out = self.children[0].mask(table).copy()
        for child in self.children[1:]:
            out &= child.mask(table)
        return out

    def matches(self, table: AttributeTable, entity_id: int) -> bool:
        return all(child.matches(table, entity_id) for child in self.children)

    def __repr__(self) -> str:
        return "And(" + ", ".join(repr(c) for c in self.children) + ")"


class Or(Predicate):
    """Disjunction of two or more predicates."""

    def __init__(self, *children: Predicate) -> None:
        if len(children) < 2:
            raise ValueError("Or requires at least two children")
        self.children = tuple(children)

    def mask(self, table: AttributeTable) -> np.ndarray:
        out = self.children[0].mask(table).copy()
        for child in self.children[1:]:
            out |= child.mask(table)
        return out

    def matches(self, table: AttributeTable, entity_id: int) -> bool:
        return any(child.matches(table, entity_id) for child in self.children)

    def __repr__(self) -> str:
        return "Or(" + ", ".join(repr(c) for c in self.children) + ")"


class Not(Predicate):
    """Negation of a predicate."""

    def __init__(self, child: Predicate) -> None:
        self.child = child

    def mask(self, table: AttributeTable) -> np.ndarray:
        return ~self.child.mask(table)

    def matches(self, table: AttributeTable, entity_id: int) -> bool:
        return not self.child.matches(table, entity_id)

    def __repr__(self) -> str:
        return f"Not({self.child!r})"
