"""Selectivity estimation for the ACORN router.

The paper's cost model (§5.2) routes a query to pre-filtering when its
*estimated* predicate selectivity falls below ``1/γ``.  The paper notes
estimation errors degrade only efficiency, never result quality — our
router preserves that property, and the sampling estimator here lets
tests exercise both kinds of misroute.

Three estimators are provided:

- :class:`ExactSelectivityEstimator` evaluates the full mask (what a
  system with precomputed filter bitmaps effectively has),
- :class:`SamplingSelectivityEstimator` evaluates the predicate on a
  fixed random sample of entities, the classical database approach when
  the predicate set is unbounded and masks cannot be precomputed, and
- :class:`HistogramSelectivityEstimator` answers scalar predicates from
  per-column equi-width histograms, falling back to sampling for other
  shapes (and for empty or all-categorical tables, which build no
  histograms at all).
"""

from __future__ import annotations

import abc

import numpy as np

from repro.attributes.table import AttributeTable
from repro.predicates.base import Predicate
from repro.utils.rng import default_rng


class SelectivityEstimator(abc.ABC):
    """Estimates the fraction of entities passing a predicate."""

    @abc.abstractmethod
    def estimate(self, predicate: Predicate) -> float:
        """Estimated selectivity in [0, 1]."""


class ExactSelectivityEstimator(SelectivityEstimator):
    """Exact selectivity via full mask evaluation."""

    def __init__(self, table: AttributeTable) -> None:
        self._table = table

    def estimate(self, predicate: Predicate) -> float:
        n = len(self._table)
        if n == 0:
            return 0.0
        return float(predicate.mask(self._table).sum()) / n


class HistogramSelectivityEstimator(SelectivityEstimator):
    """Classical equi-width-histogram estimation for scalar predicates.

    Databases estimate range/equality selectivity from per-column
    histograms rather than evaluating predicates; this estimator builds
    one histogram per int/float column and answers
    :class:`~repro.predicates.compare.Equals`, ``OneOf`` and ``Between``
    from bucket counts (uniformity assumed within a bucket).  Other
    predicate shapes fall back to the wrapped estimator (sampling by
    default), so it is a drop-in router companion.
    """

    def __init__(
        self,
        table: AttributeTable,
        n_buckets: int = 64,
        fallback: SelectivityEstimator | None = None,
        seed: int | np.random.Generator | None = 0,
    ) -> None:
        if n_buckets <= 0:
            raise ValueError(f"n_buckets must be positive, got {n_buckets}")
        from repro.attributes.table import ColumnKind

        self._table = table
        self._fallback = (
            fallback
            if fallback is not None
            else SamplingSelectivityEstimator(table, seed=seed)
        )
        self._histograms: dict[str, tuple[np.ndarray, np.ndarray]] = {}
        for name in table.column_names:
            if table.column_kind(name) in (ColumnKind.INT, ColumnKind.FLOAT):
                values = np.asarray(table.column(name), dtype=np.float64)
                if values.size == 0:
                    # An empty table has no distribution to summarize —
                    # np.histogram would silently invent a phantom
                    # [0, 1] domain.  Skip the column so predicates
                    # over it take the explicit fallback path below
                    # (the fallback estimator returns 0.0 on zero
                    # rows).
                    continue
                counts, edges = np.histogram(values, bins=n_buckets)
                self._histograms[name] = (counts.astype(np.float64), edges)
        # All-categorical (or empty) tables build no histograms at all:
        # every estimate then routes through the fallback estimator,
        # which handles any predicate shape.

    def _mass_between(self, column: str, low: float, high: float) -> float:
        counts, edges = self._histograms[column]
        total = counts.sum()
        if total == 0:
            return 0.0
        mass = 0.0
        for i in range(counts.shape[0]):
            left, right = edges[i], edges[i + 1]
            width = right - left
            overlap_left = max(left, low)
            overlap_right = min(right, high)
            if overlap_right < overlap_left:
                continue
            if width <= 0:
                mass += counts[i]
            else:
                mass += counts[i] * (overlap_right - overlap_left) / width
        return float(mass / total)

    def _point_estimate(self, column: str, value: float) -> float:
        """Selectivity of ``attr == value`` from the bucket containing it.

        Assumes unit-granular values (integers): the point claims
        ``min(1, 1/width)`` of its bucket's mass, the whole bucket when
        buckets are narrower than one unit.
        """
        counts, edges = self._histograms[column]
        total = counts.sum()
        if total == 0 or value < edges[0] or value > edges[-1]:
            return 0.0
        bucket = int(np.clip(np.searchsorted(edges, value, side="right") - 1,
                             0, counts.shape[0] - 1))
        width = edges[bucket + 1] - edges[bucket]
        fraction = 1.0 if width <= 1.0 else 1.0 / width
        return float(counts[bucket] * fraction / total)

    def estimate(self, predicate: Predicate) -> float:
        from repro.predicates.compare import Between, Equals, OneOf

        if isinstance(predicate, Between) and predicate.column in self._histograms:
            if predicate.low == predicate.high:
                return self._point_estimate(
                    predicate.column, float(predicate.low)
                )
            return self._mass_between(
                predicate.column, float(predicate.low), float(predicate.high)
            )
        if isinstance(predicate, Equals) and predicate.column in self._histograms:
            return self._point_estimate(predicate.column, float(predicate.value))
        if isinstance(predicate, OneOf) and predicate.column in self._histograms:
            return float(
                min(
                    1.0,
                    sum(
                        self.estimate(Equals(predicate.column, v))
                        for v in predicate.values
                    ),
                )
            )
        return self._fallback.estimate(predicate)


class SamplingSelectivityEstimator(SelectivityEstimator):
    """Selectivity estimated on a uniform sample of entity ids.

    The sample is drawn once at construction so repeated estimates are
    consistent, and the estimate's standard error is
    ``sqrt(s(1-s)/sample_size)``.
    """

    def __init__(
        self,
        table: AttributeTable,
        sample_size: int = 1000,
        seed: int | np.random.Generator | None = None,
    ) -> None:
        if sample_size <= 0:
            raise ValueError(f"sample_size must be positive, got {sample_size}")
        self._table = table
        n = len(table)
        rng = default_rng(seed)
        take = min(sample_size, n)
        self._sample = (
            rng.choice(n, size=take, replace=False) if take else np.empty(0, np.intp)
        )

    @property
    def sample_size(self) -> int:
        """Number of sampled entity ids."""
        return int(self._sample.shape[0])

    def estimate(self, predicate: Predicate) -> float:
        if self._sample.shape[0] == 0:
            return 0.0
        mask = predicate.mask(self._table)
        return float(mask[self._sample].mean())
