"""Scalar comparison predicates: equality, membership, ranges."""

from __future__ import annotations

from collections.abc import Iterable

import numpy as np

from repro.attributes.table import AttributeTable, ColumnKind
from repro.predicates.base import Predicate

_SCALAR_KINDS = (ColumnKind.INT, ColumnKind.FLOAT, ColumnKind.STRING)


def _scalar_column(table: AttributeTable, column: str) -> np.ndarray:
    kind = table.column_kind(column)
    if kind not in _SCALAR_KINDS:
        raise ValueError(
            f"column {column!r} is {kind.value}; comparison predicates "
            "require an int, float, or string column"
        )
    return table.column(column)


class Equals(Predicate):
    """``attr == value`` — the predicate of the SIFT1M/Paper benchmarks."""

    def __init__(self, column: str, value) -> None:
        self.column = column
        self.value = value

    def mask(self, table: AttributeTable) -> np.ndarray:
        return _scalar_column(table, self.column) == self.value

    def matches(self, table: AttributeTable, entity_id: int) -> bool:
        return bool(_scalar_column(table, self.column)[entity_id] == self.value)

    def __repr__(self) -> str:
        return f"Equals({self.column!r}, {self.value!r})"


class OneOf(Predicate):
    """``attr IN values`` over a scalar column."""

    def __init__(self, column: str, values: Iterable) -> None:
        self.column = column
        self.values = tuple(values)
        if not self.values:
            raise ValueError("OneOf requires at least one value")

    def mask(self, table: AttributeTable) -> np.ndarray:
        col = _scalar_column(table, self.column)
        return np.isin(col, np.asarray(self.values))

    def matches(self, table: AttributeTable, entity_id: int) -> bool:
        return _scalar_column(table, self.column)[entity_id] in self.values

    def __repr__(self) -> str:
        return f"OneOf({self.column!r}, {self.values!r})"


class Between(Predicate):
    """``low <= attr <= high`` — TripClick's publication-date filter.

    Both bounds are inclusive, matching the paper's
    ``between(y1, y2)`` operator (Table 2).
    """

    def __init__(self, column: str, low, high) -> None:
        if low > high:
            raise ValueError(f"Between bounds inverted: low={low!r} > high={high!r}")
        self.column = column
        self.low = low
        self.high = high

    def mask(self, table: AttributeTable) -> np.ndarray:
        col = _scalar_column(table, self.column)
        return (col >= self.low) & (col <= self.high)

    def matches(self, table: AttributeTable, entity_id: int) -> bool:
        value = _scalar_column(table, self.column)[entity_id]
        return bool(self.low <= value <= self.high)

    def __repr__(self) -> str:
        return f"Between({self.column!r}, {self.low!r}, {self.high!r})"
