"""Predicate engine for hybrid-search queries.

ACORN's headline property is that it is *predicate-agnostic*: the index
never needs to know the predicate set ahead of time, only how to ask
"does entity ``i`` pass predicate ``p``" at search time.  This package
provides the predicate algebra the paper's workloads use —

- ``Equals`` / ``OneOf``: the equality predicates of the SIFT1M and
  Paper benchmarks (predicate cardinality 12),
- ``Between``: TripClick publication-date ranges,
- ``ContainsAny``: TripClick clinical areas and LAION keyword lists,
- ``RegexMatch``: LAION caption regex workloads,
- ``And`` / ``Or`` / ``Not``: arbitrary boolean composition —

plus vectorized evaluation into boolean masks and the selectivity
estimators the ACORN router (paper §5.2's cost model) consumes.
"""

from repro.predicates.base import CompiledPredicate, Predicate, TruePredicate
from repro.predicates.boolean import And, Not, Or
from repro.predicates.compare import Between, Equals, OneOf
from repro.predicates.contains import ContainsAll, ContainsAny
from repro.predicates.regex import RegexMatch
from repro.predicates.selectivity import (
    ExactSelectivityEstimator,
    HistogramSelectivityEstimator,
    SamplingSelectivityEstimator,
    SelectivityEstimator,
)

__all__ = [
    "And",
    "Between",
    "CompiledPredicate",
    "ContainsAll",
    "ContainsAny",
    "Equals",
    "ExactSelectivityEstimator",
    "HistogramSelectivityEstimator",
    "Not",
    "OneOf",
    "Or",
    "Predicate",
    "RegexMatch",
    "SamplingSelectivityEstimator",
    "SelectivityEstimator",
    "TruePredicate",
]
