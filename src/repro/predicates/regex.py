"""Regex predicates over string columns.

The LAION workloads search image captions with regular expressions of
2-10 tokens (paper §7.1.2) — the canonical "unbounded predicate set"
that specialized indices cannot serve.  Evaluation compiles the pattern
once and scans the caption column; the resulting mask is cached per
query by :class:`~repro.predicates.base.CompiledPredicate`.
"""

from __future__ import annotations

import re

import numpy as np

from repro.attributes.table import AttributeTable, ColumnKind
from repro.predicates.base import Predicate


class RegexMatch(Predicate):
    """Entity passes when ``pattern`` matches anywhere in the string attr."""

    def __init__(self, column: str, pattern: str) -> None:
        self.column = column
        self.pattern = pattern
        try:
            self._compiled = re.compile(pattern)
        except re.error as exc:
            raise ValueError(f"invalid regex {pattern!r}: {exc}") from exc

    def mask(self, table: AttributeTable) -> np.ndarray:
        kind = table.column_kind(self.column)
        if kind is not ColumnKind.STRING:
            raise ValueError(
                f"column {self.column!r} is {kind.value}; regex predicates "
                "require a string column"
            )
        col = table.column(self.column)
        search = self._compiled.search
        return np.fromiter(
            (search(text) is not None for text in col), dtype=bool, count=len(col)
        )

    def matches(self, table: AttributeTable, entity_id: int) -> bool:
        return self._compiled.search(table.column(self.column)[entity_id]) is not None

    def __repr__(self) -> str:
        return f"RegexMatch({self.column!r}, {self.pattern!r})"
