"""Predicate interface and per-query compilation.

A :class:`Predicate` knows how to evaluate itself over an
:class:`~repro.attributes.table.AttributeTable`, producing a boolean
mask over all entities.  Index search compiles the predicate once per
query into a :class:`CompiledPredicate` — a cached mask with O(1)
per-node membership checks — because graph traversal asks "does node v
pass?" hundreds of times per query, and the paper's own C++
implementation likewise evaluates predicates via precomputed bitsets for
low-cardinality attribute domains (§7.2).
"""

from __future__ import annotations

import abc

import numpy as np

from repro.attributes.table import AttributeTable


class Predicate(abc.ABC):
    """A boolean condition over an entity's structured attributes."""

    @abc.abstractmethod
    def mask(self, table: AttributeTable) -> np.ndarray:
        """Boolean mask over all entities: ``mask[i]`` iff entity i passes."""

    def matches(self, table: AttributeTable, entity_id: int) -> bool:
        """Whether a single entity passes.

        Subclasses with a cheap row-wise check may override; the default
        evaluates the full mask, so callers doing repeated checks should
        use :meth:`compile` instead.
        """
        return bool(self.mask(table)[entity_id])

    def compile(self, table: AttributeTable) -> "CompiledPredicate":
        """Materialize this predicate over ``table`` for fast evaluation."""
        return CompiledPredicate(self, self.mask(table), table=table)

    def fingerprint(self) -> str:
        """Stable identity key for compiled-mask caching.

        Two predicates with equal fingerprints must produce identical
        masks over the same table; the batch engine's LRU cache keys on
        this.  The default derives the key from the class name and
        ``repr`` — every predicate in this library has a canonical repr
        that fully describes its parameters.  Subclasses whose repr is
        lossy must override.
        """
        return f"{type(self).__qualname__}:{self!r}"

    def __and__(self, other: "Predicate") -> "Predicate":
        from repro.predicates.boolean import And

        return And(self, other)

    def __or__(self, other: "Predicate") -> "Predicate":
        from repro.predicates.boolean import Or

        return Or(self, other)

    def __invert__(self) -> "Predicate":
        from repro.predicates.boolean import Not

        return Not(self)


class TruePredicate(Predicate):
    """The always-true predicate: hybrid search degenerates to ANN search."""

    def mask(self, table: AttributeTable) -> np.ndarray:
        return np.ones(len(table), dtype=bool)

    def matches(self, table: AttributeTable, entity_id: int) -> bool:
        return True

    def __repr__(self) -> str:
        return "TruePredicate()"


class CompiledPredicate:
    """A predicate materialized into a boolean mask over one table.

    Attributes:
        predicate: the source predicate.
        mask: boolean array, ``mask[i]`` iff entity ``i`` passes.
        table: the table the mask was materialized against, or None for
            ad-hoc masks (e.g. a predicate mask composed with a
            tombstone filter).  Consumers that may outlive the table a
            mask was compiled for — the engine's LRU cache, epoch
            snapshots whose base is swapped by compaction — validate
            with ``compiled.table is current_table``: two different
            tables of equal length must never share a mask.
    """

    __slots__ = ("predicate", "mask", "table", "_passing", "_count")

    def __init__(
        self,
        predicate: Predicate,
        mask: np.ndarray,
        table: AttributeTable | None = None,
    ) -> None:
        self.predicate = predicate
        self.mask = np.asarray(mask, dtype=bool)
        self.table = table
        self._passing: np.ndarray | None = None
        self._count = int(self.mask.sum())

    def __len__(self) -> int:
        return self.mask.shape[0]

    def passes(self, entity_id: int) -> bool:
        """O(1) membership check."""
        return bool(self.mask[entity_id])

    def passes_many(self, entity_ids: np.ndarray) -> np.ndarray:
        """Vectorized membership over an id array."""
        return self.mask[np.asarray(entity_ids, dtype=np.intp)]

    @property
    def passing_ids(self) -> np.ndarray:
        """Ids of all passing entities (computed lazily, cached)."""
        if self._passing is None:
            self._passing = np.flatnonzero(self.mask)
        return self._passing

    @property
    def cardinality(self) -> int:
        """Number of passing entities, ``|X_p|``."""
        return self._count

    @property
    def selectivity(self) -> float:
        """Exact selectivity ``s = |X_p| / n`` (paper §3.1)."""
        n = self.mask.shape[0]
        return self._count / n if n else 0.0

    def __repr__(self) -> str:
        return (
            f"CompiledPredicate({self.predicate!r}, "
            f"selectivity={self.selectivity:.4f})"
        )
