"""Keyword-list containment predicates.

``contains(y1 ∨ y2 ∨ …)`` is the operator TripClick's clinical-area
filters and LAION's keyword filters use (paper Table 2): an entity
passes when its keyword list shares at least one keyword with the query
list.  Evaluation is a posting-list union over the keyword column's
interned vocabulary (the bitset implementation noted in §7.2).
"""

from __future__ import annotations

from collections.abc import Iterable

import numpy as np

from repro.attributes.table import AttributeTable, ColumnKind
from repro.predicates.base import Predicate


def _keyword_column(table: AttributeTable, column: str):
    kind = table.column_kind(column)
    if kind is not ColumnKind.KEYWORDS:
        raise ValueError(
            f"column {column!r} is {kind.value}; contains predicates "
            "require a keywords column"
        )
    return table.column(column)


class ContainsAny(Predicate):
    """Entity passes if its list contains at least one query keyword."""

    def __init__(self, column: str, keywords: Iterable[str]) -> None:
        self.column = column
        self.keywords = tuple(keywords)
        if not self.keywords:
            raise ValueError("ContainsAny requires at least one keyword")

    def mask(self, table: AttributeTable) -> np.ndarray:
        return _keyword_column(table, self.column).mask_containing_any(self.keywords)

    def matches(self, table: AttributeTable, entity_id: int) -> bool:
        col = _keyword_column(table, self.column)
        tokens = {col.vocab.get(kw) for kw in self.keywords} - {None}
        lo, hi = col.offsets[entity_id], col.offsets[entity_id + 1]
        return bool(tokens.intersection(col.tokens[lo:hi].tolist()))

    def __repr__(self) -> str:
        return f"ContainsAny({self.column!r}, {self.keywords!r})"


class ContainsAll(Predicate):
    """Entity passes only if its list contains every query keyword."""

    def __init__(self, column: str, keywords: Iterable[str]) -> None:
        self.column = column
        self.keywords = tuple(keywords)
        if not self.keywords:
            raise ValueError("ContainsAll requires at least one keyword")

    def mask(self, table: AttributeTable) -> np.ndarray:
        col = _keyword_column(table, self.column)
        mask = np.ones(len(table), dtype=bool)
        for kw in self.keywords:
            kw_mask = np.zeros(len(table), dtype=bool)
            kw_mask[col.rows_containing(kw)] = True
            mask &= kw_mask
        return mask

    def __repr__(self) -> str:
        return f"ContainsAll({self.column!r}, {self.keywords!r})"
