"""Deterministic fault injection for chaos-testing the sharded index.

The substrate the resilience layer is verified against: a
:class:`FaultInjector` wraps each shard of a
:class:`~repro.shard.sharded.ShardedAcornIndex` in a
:class:`FaultyShard` decorator that perturbs ``search`` calls according
to a :class:`FaultPlan` — latency spikes (charged to the injector's
:class:`~repro.utils.clock.Clock`, so a
:class:`~repro.utils.clock.FakeClock` makes them wall-clock free),
raised exceptions, corrupt or truncated result payloads, and
flaky-then-recover schedules (any fault kind bounded to a call-index
window).  Everything is seeded: a plan plus a seed fully determines
which call of which shard misbehaves and how, regardless of thread
interleaving (per-shard call counters are lock-protected).

Faults raise :class:`ShardFault` (an ``Exception``); the injector never
raises ``BaseException`` subclasses on its own — ``KeyboardInterrupt``
and friends must keep propagating through the scatter-gather layer
untouched (see ``tests/shard/test_resilience.py``).
"""

from __future__ import annotations

import dataclasses
import threading

import numpy as np

from repro.utils.clock import Clock, SystemClock

FAULT_KINDS = ("latency", "error", "corrupt", "truncate")


class ShardFault(RuntimeError):
    """The exception an ``error`` fault raises inside a shard search."""


@dataclasses.dataclass(frozen=True)
class Fault:
    """One fault rule: what goes wrong on which calls of one shard.

    Attributes:
        kind: ``"latency"`` (sleep ``latency_s`` on the injector clock
            before searching), ``"error"`` (raise :class:`ShardFault`),
            ``"corrupt"`` (return a structurally invalid payload:
            out-of-range ids and a NaN distance), or ``"truncate"``
            (chop the distances array so ids/distances lengths
            disagree).
        latency_s: injected delay for ``"latency"`` faults.
        first_call: first per-shard call index (0-based) the rule
            applies to.
        last_call: last call index it applies to, inclusive; ``None``
            means forever.  A finite window models flaky-then-recover
            shards.
    """

    kind: str
    latency_s: float = 0.0
    first_call: int = 0
    last_call: int | None = None

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; choose from {FAULT_KINDS}"
            )
        if self.kind == "latency" and self.latency_s <= 0:
            raise ValueError("latency faults need latency_s > 0")

    def active(self, call_index: int) -> bool:
        """Whether this rule fires on the given per-shard call index."""
        if call_index < self.first_call:
            return False
        return self.last_call is None or call_index <= self.last_call

    def to_dict(self) -> dict:
        """JSON-serializable form (for bench records and manifests)."""
        return dataclasses.asdict(self)


@dataclasses.dataclass(frozen=True)
class FaultPlan:
    """A full chaos schedule: fault rules keyed by shard id.

    Attributes:
        faults: mapping of shard id to the tuple of rules applied (in
            order) to that shard's calls.  Shards absent from the
            mapping behave normally.
    """

    faults: dict[int, tuple[Fault, ...]]

    @property
    def faulty_shards(self) -> tuple[int, ...]:
        """Shard ids with at least one rule, ascending."""
        return tuple(sorted(s for s, rules in self.faults.items() if rules))

    def permanently_failing_shards(self) -> tuple[int, ...]:
        """Shards with an unbounded error/corrupt/truncate/latency rule.

        These are the shards a resilient gather can never extract a
        valid result from (assuming latency rules exceed the deadline),
        i.e. the complement of the *survivor* set the chaos suite
        computes ground truth over.
        """
        doomed = []
        for shard_id, rules in self.faults.items():
            if any(r.last_call is None for r in rules):
                doomed.append(shard_id)
        return tuple(sorted(doomed))

    def rules_for(self, shard_id: int, call_index: int) -> tuple[Fault, ...]:
        """The rules active for one call of one shard, in plan order."""
        return tuple(
            rule for rule in self.faults.get(shard_id, ())
            if rule.active(call_index)
        )

    @classmethod
    def seeded(
        cls,
        n_shards: int,
        failure_rate: float,
        seed: int = 0,
        kinds: tuple[str, ...] = ("error", "latency"),
        latency_s: float = 10.0,
        recover_after: int | None = None,
    ) -> "FaultPlan":
        """A random-but-reproducible plan failing a fixed shard subset.

        Args:
            n_shards: total shards in the target index.
            failure_rate: fraction of shards to fail; the plan fails
                exactly ``round(rate * n_shards)`` shards (at least one
                when the rate is positive), chosen by the seeded RNG.
            seed: RNG seed — same seed, same plan.
            kinds: fault kinds to cycle through across faulty shards.
            latency_s: delay assigned to ``"latency"`` rules (pick it
                above the resilient policy's deadline to force
                timeouts).
            recover_after: when given, every rule ends after this many
                calls (flaky-then-recover); ``None`` means permanent.
        """
        if not 0.0 <= failure_rate <= 1.0:
            raise ValueError(f"failure_rate must be in [0, 1], got {failure_rate}")
        n_faulty = int(round(failure_rate * n_shards))
        if failure_rate > 0.0:
            n_faulty = max(n_faulty, 1)
        rng = np.random.default_rng(seed)
        chosen = sorted(rng.choice(n_shards, size=n_faulty, replace=False))
        faults: dict[int, tuple[Fault, ...]] = {}
        for rank, shard_id in enumerate(chosen):
            kind = kinds[rank % len(kinds)]
            faults[int(shard_id)] = (Fault(
                kind=kind,
                latency_s=latency_s if kind == "latency" else 0.0,
                last_call=None if recover_after is None else recover_after - 1,
            ),)
        return cls(faults=faults)


class FaultInjector:
    """Applies a :class:`FaultPlan` to shard searches, deterministically.

    One injector instance owns the per-shard call counters and the
    seeded RNG stream used to fabricate corrupt payloads, so wrapping a
    shard set twice with the same plan/seed reproduces the exact same
    chaos.

    Args:
        plan: the fault schedule.
        clock: time source charged for latency faults; defaults to the
            real :class:`~repro.utils.clock.SystemClock` (tests pass a
            :class:`~repro.utils.clock.FakeClock` to stay wall-clock
            free).
        seed: seed for corrupt-payload fabrication.
    """

    def __init__(
        self, plan: FaultPlan, clock: Clock | None = None, seed: int = 0
    ) -> None:
        self.plan = plan
        self.clock = clock if clock is not None else SystemClock()
        self.seed = int(seed)
        self._lock = threading.Lock()
        self._calls: dict[int, int] = {}

    def wrap(self, shards: list) -> list:
        """Decorate a shard list; shard ids follow list positions."""
        return [FaultyShard(shard, self, shard_id)
                for shard_id, shard in enumerate(shards)]

    def calls_to(self, shard_id: int) -> int:
        """How many search calls shard ``shard_id`` has received."""
        with self._lock:
            return self._calls.get(shard_id, 0)

    def _next_call(self, shard_id: int) -> int:
        with self._lock:
            index = self._calls.get(shard_id, 0)
            self._calls[shard_id] = index + 1
            return index

    def perform(self, shard_id: int, inner, query, predicate, k, ef_search,
                **kwargs):
        """Run one shard search with this call's active faults applied."""
        call_index = self._next_call(shard_id)
        rules = self.plan.rules_for(shard_id, call_index)
        for rule in rules:
            if rule.kind == "latency":
                self.clock.sleep(rule.latency_s)
            elif rule.kind == "error":
                raise ShardFault(
                    f"injected error (shard {shard_id}, call {call_index})"
                )
        result = inner.search(query, predicate, k, ef_search=ef_search,
                              **kwargs)
        for rule in rules:
            if rule.kind == "corrupt":
                result = self._corrupt(result, shard_id, call_index, len(inner))
            elif rule.kind == "truncate":
                result = self._truncate(result)
        return result

    def _corrupt(self, result, shard_id: int, call_index: int, shard_len: int):
        """An out-of-range-id, NaN-distance mutation of ``result``."""
        rng = np.random.default_rng((self.seed, shard_id, call_index))
        n = max(len(result), 1)
        bad = dataclasses.replace(
            result,
            ids=shard_len + rng.integers(0, 1000, size=n).astype(np.intp),
            distances=np.full(n, np.nan, dtype=np.float32),
        )
        return bad

    def _truncate(self, result):
        """Chop distances so the payload's array lengths disagree."""
        return dataclasses.replace(
            result, distances=result.distances[: max(len(result) - 1, 0)]
        )


class FaultyShard:
    """Decorator around one shard index that routes searches through a
    :class:`FaultInjector`.

    Everything except ``search`` delegates to the wrapped shard, so a
    faulty shard drops into :class:`~repro.shard.sharded.ShardedAcornIndex`
    (constructor validation, router summaries, freezing, tombstones)
    unchanged.
    """

    def __init__(self, inner, injector: FaultInjector, shard_id: int) -> None:
        self.inner = inner
        self.injector = injector
        self.shard_id = int(shard_id)

    def search(self, query, predicate, k, ef_search: int = 64, **kwargs):
        """The wrapped search, perturbed per the injector's plan.

        Extra keyword arguments (e.g. a route planner's ``monitor``)
        pass through to the wrapped shard untouched.
        """
        return self.injector.perform(
            self.shard_id, self.inner, query, predicate, k, ef_search,
            **kwargs
        )

    def __len__(self) -> int:
        return len(self.inner)

    def __getattr__(self, name: str):
        return getattr(self.inner, name)
