"""Predicate-aware shard routing: provable prunes + effort scaling.

The router turns per-shard :class:`~repro.shard.summary.ShardSummary`
digests into a :class:`ShardPlan` for one query predicate.  Decisions
obey one hard invariant — **pruning is sound**: a shard is marked
``pruned`` only when the summary *proves* that no row of the shard can
pass the predicate (numeric range disjoint, exhaustive value counts
missing every probe value, keyword digest miss, boolean combinations
thereof).  Predicates the summaries cannot reason about (regexes, user
subclasses) always probe.  Estimation errors therefore degrade only
efficiency, never results — the same property the paper claims for its
selectivity-based routing (§5.2).

Beyond pruning, the plan scales each probed shard's ``ef_search`` by
estimated local selectivity (opt-in): shards that plausibly hold few
passing rows receive a smaller dynamic list, bounded below by
``max(k, min_ef)``.
"""

from __future__ import annotations

import dataclasses
import math

from repro.predicates.base import Predicate, TruePredicate
from repro.predicates.boolean import And, Not, Or
from repro.predicates.compare import Between, Equals, OneOf
from repro.predicates.contains import ContainsAll, ContainsAny
from repro.shard.summary import ShardSummary


@dataclasses.dataclass(frozen=True)
class ShardDecision:
    """The router's verdict for one shard of one query.

    Attributes:
        shard_id: which shard this decision covers.
        pruned: True when the shard is provably empty for the predicate
            and will not be probed.
        reason: human-readable justification (``"probe"`` when not
            pruned; a proof sketch such as ``"range[year] disjoint"``
            when pruned).
        est_selectivity: estimated local selectivity in [0, 1].
        ef_search: dynamic-list size to use when probing this shard.
    """

    shard_id: int
    pruned: bool
    reason: str
    est_selectivity: float
    ef_search: int


@dataclasses.dataclass
class ShardPlan:
    """One query's routing decisions, one per shard.

    The plan always covers every shard exactly once, so
    ``n_pruned + n_probed == n_shards`` — the accounting invariant the
    instrumentation (and its property test) leans on.
    """

    decisions: list[ShardDecision]

    @property
    def n_shards(self) -> int:
        """Total shards covered by the plan."""
        return len(self.decisions)

    @property
    def n_pruned(self) -> int:
        """Shards the router proved empty."""
        return sum(1 for d in self.decisions if d.pruned)

    @property
    def n_probed(self) -> int:
        """Shards that will execute a search."""
        return self.n_shards - self.n_pruned

    @property
    def probed(self) -> list[ShardDecision]:
        """Decisions for the shards that will be searched, in shard order."""
        return [d for d in self.decisions if not d.pruned]


class ShardRouter:
    """Plans scatter-gather execution from per-shard summaries.

    Args:
        summaries: one :class:`~repro.shard.summary.ShardSummary` per
            shard, in shard order.
        min_ef: lower bound for scaled per-shard ``ef_search`` (the
            floor is ``max(k, min_ef)``; ignored unless scaling is on).
    """

    def __init__(self, summaries: list[ShardSummary], min_ef: int = 16) -> None:
        self.summaries = list(summaries)
        self.min_ef = int(min_ef)

    # ------------------------------------------------------------------
    # Proofs (sound by construction)
    # ------------------------------------------------------------------

    def _prove_empty(self, s: ShardSummary, p: Predicate) -> str | None:
        """A reason string when no row of the shard can pass, else None."""
        if s.n_rows == 0:
            return "empty shard"
        if isinstance(p, TruePredicate):
            return None
        if isinstance(p, Equals):
            summary = s.numeric.get(p.column)
            if summary is not None and isinstance(p.value, (int, float)):
                value = float(p.value)
                if value < summary.min or value > summary.max:
                    return f"{p.column}={p.value!r} outside [min, max]"
                if (summary.value_counts is not None
                        and value not in summary.value_counts):
                    return f"{p.column}={p.value!r} absent from value counts"
            return None
        if isinstance(p, OneOf):
            if all(
                self._prove_empty(s, Equals(p.column, v)) for v in p.values
            ):
                return f"{p.column} IN {p.values!r} all absent"
            return None
        if isinstance(p, Between):
            summary = s.numeric.get(p.column)
            if summary is None:
                return None
            low, high = float(p.low), float(p.high)
            if high < summary.min or low > summary.max:
                return f"range[{p.column}] disjoint from [min, max]"
            if summary.value_counts is not None and not any(
                low <= value <= high for value in summary.value_counts
            ):
                return f"range[{p.column}] misses every counted value"
            return None
        if isinstance(p, ContainsAny):
            summary = s.keywords.get(p.column)
            if summary is not None and not any(
                summary.digest.might_contain(kw) for kw in p.keywords
            ):
                return f"no keyword of {p.keywords!r} in digest"
            return None
        if isinstance(p, ContainsAll):
            summary = s.keywords.get(p.column)
            if summary is not None:
                for kw in p.keywords:
                    if not summary.digest.might_contain(kw):
                        return f"required keyword {kw!r} absent from digest"
            return None
        if isinstance(p, And):
            for child in p.children:
                reason = self._prove_empty(s, child)
                if reason:
                    return reason
            return None
        if isinstance(p, Or):
            reasons = [self._prove_empty(s, child) for child in p.children]
            if all(reasons):
                return "; ".join(reasons)
            return None
        if isinstance(p, Not):
            if self._prove_full(s, p.child):
                return "negated predicate matches whole shard"
            return None
        return None  # unknown predicate shapes always probe

    def _prove_full(self, s: ShardSummary, p: Predicate) -> bool:
        """True when every row of the shard provably passes ``p``."""
        if s.n_rows == 0:
            return False
        if isinstance(p, TruePredicate):
            return True
        if isinstance(p, Between):
            summary = s.numeric.get(p.column)
            return (
                summary is not None
                and float(p.low) <= summary.min
                and summary.max <= float(p.high)
            )
        if isinstance(p, Equals):
            summary = s.numeric.get(p.column)
            return (
                summary is not None
                and isinstance(p.value, (int, float))
                and summary.value_counts is not None
                and summary.value_counts.get(float(p.value)) == s.n_rows
            )
        if isinstance(p, OneOf):
            summary = s.numeric.get(p.column)
            if summary is None or summary.value_counts is None:
                return False
            probe = {float(v) for v in p.values
                     if isinstance(v, (int, float))}
            covered = sum(
                count for value, count in summary.value_counts.items()
                if value in probe
            )
            return covered == s.n_rows
        if isinstance(p, And):
            return all(self._prove_full(s, child) for child in p.children)
        if isinstance(p, Or):
            return any(self._prove_full(s, child) for child in p.children)
        if isinstance(p, Not):
            return self._prove_empty(s, p.child) is not None
        return False

    # ------------------------------------------------------------------
    # Estimation (advisory only)
    # ------------------------------------------------------------------

    def estimate(self, shard_id: int, p: Predicate) -> float:
        """Estimated local selectivity of ``p`` on one shard, in [0, 1]."""
        return self._estimate(self.summaries[shard_id], p)

    def _estimate(self, s: ShardSummary, p: Predicate) -> float:
        if s.n_rows == 0 or self._prove_empty(s, p):
            return 0.0
        if self._prove_full(s, p):
            return 1.0
        if isinstance(p, Equals):
            summary = s.numeric.get(p.column)
            if summary is not None and isinstance(p.value, (int, float)):
                return summary.point_estimate(float(p.value))
            return 1.0
        if isinstance(p, OneOf):
            return min(1.0, sum(
                self._estimate(s, Equals(p.column, v)) for v in p.values
            ))
        if isinstance(p, Between):
            summary = s.numeric.get(p.column)
            if summary is not None:
                return summary.mass_between(float(p.low), float(p.high))
            return 1.0
        if isinstance(p, ContainsAny):
            summary = s.keywords.get(p.column)
            if summary is None:
                return 1.0
            present = sum(
                1 for kw in p.keywords if summary.digest.might_contain(kw)
            )
            return min(1.0, present * summary.mean_doc_frequency)
        if isinstance(p, ContainsAll):
            summary = s.keywords.get(p.column)
            if summary is None:
                return 1.0
            return min(
                (summary.mean_doc_frequency
                 if summary.digest.might_contain(kw) else 0.0)
                for kw in p.keywords
            )
        if isinstance(p, And):
            est = 1.0
            for child in p.children:
                est *= self._estimate(s, child)
            return est
        if isinstance(p, Or):
            return min(1.0, sum(self._estimate(s, c) for c in p.children))
        if isinstance(p, Not):
            return max(0.0, 1.0 - self._estimate(s, p.child))
        return 1.0  # regexes and unknown shapes: assume everything passes

    # ------------------------------------------------------------------
    # Planning
    # ------------------------------------------------------------------

    def plan(
        self,
        predicate: Predicate,
        k: int,
        ef_search: int,
        scale_ef: bool = False,
    ) -> ShardPlan:
        """Route one predicate across all shards.

        Args:
            predicate: the (raw) query predicate.
            k: neighbors requested — the absolute floor for scaled ef.
            ef_search: the caller's dynamic-list size; per-shard values
                never exceed it.
            scale_ef: when True, probed shards get
                ``ef · (local estimate / max estimate)`` bounded to
                ``[max(k, min_ef), ef]``; when False every probed shard
                uses ``ef_search`` unchanged (the exhaustive-equivalence
                mode).
        """
        verdicts: list[tuple[str | None, float]] = []
        for summary in self.summaries:
            reason = self._prove_empty(summary, predicate)
            est = 0.0 if reason else self._estimate(summary, predicate)
            verdicts.append((reason, est))

        max_est = max((est for reason, est in verdicts if reason is None),
                      default=0.0)
        floor = max(int(k), self.min_ef)
        decisions = []
        for shard_id, (reason, est) in enumerate(verdicts):
            if reason is not None:
                ef = 0
            elif scale_ef and max_est > 0.0:
                scaled = math.ceil(ef_search * est / max_est)
                ef = max(min(int(ef_search), scaled), min(floor, int(ef_search)))
            else:
                ef = int(ef_search)
            decisions.append(ShardDecision(
                shard_id=shard_id,
                pruned=reason is not None,
                reason=reason if reason is not None else "probe",
                est_selectivity=float(est),
                ef_search=ef,
            ))
        return ShardPlan(decisions=decisions)
