"""Sharded ACORN: partitioned indexes with predicate-aware routing.

The serving-scale layer above a single ACORN index: partition the base
vectors and their :class:`~repro.attributes.table.AttributeTable` across
N shards, build one frozen-CSR ACORN index per shard, and answer hybrid
queries by scatter-gather with a streaming top-k merge.  A
:class:`ShardRouter` consults per-shard attribute summaries (numeric
min/max, exact small-domain value counts, keyword Bloom digests,
equi-width histograms) to skip shards whose predicate mask is provably
empty and to scale per-shard search effort by estimated local
selectivity.  Pruning is *sound*: a shard is only skipped when no row in
it can pass the predicate, so sharded results match the per-shard
exhaustive union exactly.

Quickstart::

    from repro.shard import AttributeRangePartitioner, ShardedAcornIndex

    sharded = ShardedAcornIndex.build(
        vectors, table,
        partitioner=AttributeRangePartitioner("year", n_shards=4),
    )
    result = sharded.search(query, Between("year", 2001, 2004), k=10)
    result.shards_pruned, result.shards_probed   # routing visibility

With a :class:`ResiliencePolicy`, probed shards run under per-shard
deadlines, bounded retries, and circuit breakers; failed shards drop
out and the query returns a degraded partial top-k with exact
accounting (``shards_failed``, ``shards_timed_out``, ``degraded``,
``recall_ceiling``).  The deterministic chaos harness
(:class:`FaultPlan` / :class:`FaultInjector`) wraps any shard set with
seeded, wall-clock-free faults for testing.

See ``docs/sharding.md`` for partitioner choice, routing rules, merge
semantics, and the stats contract, and ``docs/resilience.md`` for the
failure model.
"""

from repro.shard.faults import (
    Fault,
    FaultInjector,
    FaultPlan,
    FaultyShard,
    ShardFault,
)
from repro.shard.partition import (
    AttributeRangePartitioner,
    HashPartitioner,
    Partitioner,
    ShardAssignment,
    partitioner_from_spec,
    subset_table,
)
from repro.shard.persistence import ShardLoadError, load_sharded, save_sharded
from repro.shard.resilience import (
    BreakerState,
    CircuitBreaker,
    ProbeOutcome,
    ResiliencePolicy,
    recall_ceiling,
    resilient_probe,
    validate_shard_result,
)
from repro.shard.router import ShardDecision, ShardPlan, ShardRouter
from repro.shard.sharded import (
    ShardedAcornIndex,
    ShardedSearchResult,
    merge_topk,
)
from repro.shard.summary import (
    KeywordDigest,
    KeywordSummary,
    NumericSummary,
    ShardSummary,
    summarize_table,
)

__all__ = [
    "AttributeRangePartitioner",
    "BreakerState",
    "CircuitBreaker",
    "Fault",
    "FaultInjector",
    "FaultPlan",
    "FaultyShard",
    "HashPartitioner",
    "KeywordDigest",
    "KeywordSummary",
    "NumericSummary",
    "Partitioner",
    "ProbeOutcome",
    "ResiliencePolicy",
    "ShardAssignment",
    "ShardDecision",
    "ShardFault",
    "ShardLoadError",
    "ShardPlan",
    "ShardRouter",
    "ShardSummary",
    "ShardedAcornIndex",
    "ShardedSearchResult",
    "load_sharded",
    "merge_topk",
    "partitioner_from_spec",
    "recall_ceiling",
    "resilient_probe",
    "save_sharded",
    "subset_table",
    "validate_shard_result",
]
