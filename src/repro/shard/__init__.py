"""Sharded ACORN: partitioned indexes with predicate-aware routing.

The serving-scale layer above a single ACORN index: partition the base
vectors and their :class:`~repro.attributes.table.AttributeTable` across
N shards, build one frozen-CSR ACORN index per shard, and answer hybrid
queries by scatter-gather with a streaming top-k merge.  A
:class:`ShardRouter` consults per-shard attribute summaries (numeric
min/max, exact small-domain value counts, keyword Bloom digests,
equi-width histograms) to skip shards whose predicate mask is provably
empty and to scale per-shard search effort by estimated local
selectivity.  Pruning is *sound*: a shard is only skipped when no row in
it can pass the predicate, so sharded results match the per-shard
exhaustive union exactly.

Quickstart::

    from repro.shard import AttributeRangePartitioner, ShardedAcornIndex

    sharded = ShardedAcornIndex.build(
        vectors, table,
        partitioner=AttributeRangePartitioner("year", n_shards=4),
    )
    result = sharded.search(query, Between("year", 2001, 2004), k=10)
    result.shards_pruned, result.shards_probed   # routing visibility

See ``docs/sharding.md`` for partitioner choice, routing rules, merge
semantics, and the stats contract.
"""

from repro.shard.partition import (
    AttributeRangePartitioner,
    HashPartitioner,
    Partitioner,
    ShardAssignment,
    partitioner_from_spec,
    subset_table,
)
from repro.shard.persistence import ShardLoadError, load_sharded, save_sharded
from repro.shard.router import ShardDecision, ShardPlan, ShardRouter
from repro.shard.sharded import (
    ShardedAcornIndex,
    ShardedSearchResult,
    merge_topk,
)
from repro.shard.summary import (
    KeywordDigest,
    KeywordSummary,
    NumericSummary,
    ShardSummary,
    summarize_table,
)

__all__ = [
    "AttributeRangePartitioner",
    "HashPartitioner",
    "KeywordDigest",
    "KeywordSummary",
    "NumericSummary",
    "Partitioner",
    "ShardAssignment",
    "ShardDecision",
    "ShardLoadError",
    "ShardPlan",
    "ShardRouter",
    "ShardSummary",
    "ShardedAcornIndex",
    "ShardedSearchResult",
    "load_sharded",
    "merge_topk",
    "partitioner_from_spec",
    "save_sharded",
    "subset_table",
]
