"""Per-shard attribute summaries consumed by the shard router.

A :class:`ShardSummary` is the small, query-independent digest of one
shard's :class:`~repro.attributes.table.AttributeTable` that lets the
router answer two questions without touching the shard:

- *can this predicate match anything here?* — answered soundly from
  numeric min/max, exhaustive small-domain value counts, and a keyword
  Bloom digest (false positives allowed, false negatives impossible, so
  a "no" is a proof);
- *roughly how selective is it locally?* — answered from equi-width
  histograms and keyword document frequencies, the same statistics
  machinery as :mod:`repro.predicates.selectivity`.

Summaries are JSON-serializable (:meth:`ShardSummary.to_dict`) so the
sharded-persistence manifest can carry them verbatim.
"""

from __future__ import annotations

import dataclasses
import hashlib

import numpy as np

from repro.attributes.table import AttributeTable, ColumnKind


class KeywordDigest:
    """Bloom-style bitset over a shard's keyword vocabulary.

    Membership is one-sided: :meth:`might_contain` never returns False
    for a keyword the shard holds (hashing is deterministic across
    processes — blake2b, not Python's salted ``hash``), so the router
    may prune on a miss.  A hit only means "possibly present".

    Args:
        bits: the digest bitset (bool array of power-of-two-free,
            positive length).
    """

    N_BITS = 2048
    N_HASHES = 2

    def __init__(self, bits: np.ndarray) -> None:
        self.bits = np.asarray(bits, dtype=bool)
        if self.bits.size == 0:
            raise ValueError("digest needs at least one bit")

    @staticmethod
    def _positions(keyword: str, n_bits: int) -> list[int]:
        raw = hashlib.blake2b(keyword.encode("utf-8"), digest_size=16).digest()
        return [
            int.from_bytes(raw[off : off + 8], "little") % n_bits
            for off in (0, 8)
        ][: KeywordDigest.N_HASHES]

    @classmethod
    def build(cls, keywords, n_bits: int = N_BITS) -> "KeywordDigest":
        """Digest an iterable of keywords into an ``n_bits``-wide filter."""
        bits = np.zeros(n_bits, dtype=bool)
        for keyword in keywords:
            bits[cls._positions(keyword, n_bits)] = True
        return cls(bits)

    def might_contain(self, keyword: str) -> bool:
        """False ⇒ provably absent; True ⇒ possibly present."""
        return bool(self.bits[self._positions(keyword, self.bits.size)].all())

    def to_hex(self) -> str:
        """The bitset packed into a hex string (for the manifest)."""
        return np.packbits(self.bits).tobytes().hex()

    @classmethod
    def from_hex(cls, hex_bits: str, n_bits: int) -> "KeywordDigest":
        """Rebuild a digest from :meth:`to_hex` output."""
        packed = np.frombuffer(bytes.fromhex(hex_bits), dtype=np.uint8)
        return cls(np.unpackbits(packed)[:n_bits].astype(bool))


@dataclasses.dataclass
class NumericSummary:
    """Digest of one int/float column within a shard.

    Attributes:
        min: smallest value present (``nan`` for an empty shard).
        max: largest value present (``nan`` for an empty shard).
        value_counts: exhaustive ``value -> count`` map when the shard's
            distinct-value count fits the budget, else None.  When
            present it is *complete*: a value absent from the map is
            provably absent from the shard.
        hist_counts: equi-width histogram bucket counts.
        hist_edges: the matching ``len(hist_counts) + 1`` bucket edges.
    """

    min: float
    max: float
    value_counts: dict[float, int] | None
    hist_counts: np.ndarray
    hist_edges: np.ndarray

    def mass_between(self, low: float, high: float) -> float:
        """Estimated fraction of rows with value in ``[low, high]``
        (uniformity assumed within a histogram bucket)."""
        total = self.hist_counts.sum()
        if total == 0:
            return 0.0
        if self.value_counts is not None:
            hits = sum(
                count for value, count in self.value_counts.items()
                if low <= value <= high
            )
            return float(hits) / float(total)
        mass = 0.0
        for i in range(self.hist_counts.shape[0]):
            left, right = self.hist_edges[i], self.hist_edges[i + 1]
            width = right - left
            lo, hi = max(left, low), min(right, high)
            if hi < lo:
                continue
            mass += self.hist_counts[i] * (1.0 if width <= 0 else (hi - lo) / width)
        return float(mass / total)

    def point_estimate(self, value: float) -> float:
        """Estimated selectivity of equality with ``value``."""
        total = self.hist_counts.sum()
        if total == 0:
            return 0.0
        if self.value_counts is not None:
            return float(self.value_counts.get(float(value), 0)) / float(total)
        if value < self.hist_edges[0] or value > self.hist_edges[-1]:
            return 0.0
        bucket = int(np.clip(
            np.searchsorted(self.hist_edges, value, side="right") - 1,
            0, self.hist_counts.shape[0] - 1,
        ))
        width = self.hist_edges[bucket + 1] - self.hist_edges[bucket]
        fraction = 1.0 if width <= 1.0 else 1.0 / width
        return float(self.hist_counts[bucket] * fraction / total)


@dataclasses.dataclass
class KeywordSummary:
    """Digest of one keywords column within a shard.

    Attributes:
        digest: Bloom bitset over the shard's keyword vocabulary.
        n_distinct: distinct keywords in the shard.
        mean_doc_frequency: mean fraction of shard rows containing a
            given present keyword — the router's per-keyword
            selectivity prior.
    """

    digest: KeywordDigest
    n_distinct: int
    mean_doc_frequency: float


@dataclasses.dataclass
class ShardSummary:
    """Everything the router knows about one shard without probing it.

    Attributes:
        n_rows: rows in the shard (0 ⇒ every predicate is empty here).
        numeric: per-column :class:`NumericSummary` for int/float
            columns.
        keywords: per-column :class:`KeywordSummary` for keywords
            columns.
    """

    n_rows: int
    numeric: dict[str, NumericSummary]
    keywords: dict[str, KeywordSummary]

    def to_dict(self) -> dict:
        """The summary as a JSON-serializable dict (manifest payload)."""
        return {
            "n_rows": self.n_rows,
            "numeric": {
                name: {
                    "min": s.min,
                    "max": s.max,
                    "value_counts": (
                        None if s.value_counts is None
                        else {repr(k): v for k, v in s.value_counts.items()}
                    ),
                    "hist_counts": s.hist_counts.tolist(),
                    "hist_edges": s.hist_edges.tolist(),
                }
                for name, s in self.numeric.items()
            },
            "keywords": {
                name: {
                    "digest": s.digest.to_hex(),
                    "n_bits": int(s.digest.bits.size),
                    "n_distinct": s.n_distinct,
                    "mean_doc_frequency": s.mean_doc_frequency,
                }
                for name, s in self.keywords.items()
            },
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "ShardSummary":
        """Rebuild a summary from :meth:`to_dict` output."""
        numeric = {
            name: NumericSummary(
                min=float(entry["min"]),
                max=float(entry["max"]),
                value_counts=(
                    None if entry["value_counts"] is None
                    else {float(k): int(v)
                          for k, v in entry["value_counts"].items()}
                ),
                hist_counts=np.asarray(entry["hist_counts"], dtype=np.float64),
                hist_edges=np.asarray(entry["hist_edges"], dtype=np.float64),
            )
            for name, entry in payload["numeric"].items()
        }
        keywords = {
            name: KeywordSummary(
                digest=KeywordDigest.from_hex(entry["digest"], entry["n_bits"]),
                n_distinct=int(entry["n_distinct"]),
                mean_doc_frequency=float(entry["mean_doc_frequency"]),
            )
            for name, entry in payload["keywords"].items()
        }
        return cls(n_rows=int(payload["n_rows"]), numeric=numeric,
                   keywords=keywords)


def summarize_table(
    table: AttributeTable,
    n_buckets: int = 32,
    max_counted_values: int = 64,
) -> ShardSummary:
    """Digest one (shard-local) attribute table into a :class:`ShardSummary`.

    Args:
        table: the shard's attribute table.
        n_buckets: equi-width histogram resolution for numeric columns.
        max_counted_values: keep exhaustive value counts for numeric
            columns with at most this many distinct values (exact
            equality pruning/estimation); larger domains fall back to
            the histogram alone.
    """
    numeric: dict[str, NumericSummary] = {}
    keywords: dict[str, KeywordSummary] = {}
    for name in table.column_names:
        kind = table.column_kind(name)
        if kind in (ColumnKind.INT, ColumnKind.FLOAT):
            values = np.asarray(table.column(name), dtype=np.float64)
            if values.size == 0:
                numeric[name] = NumericSummary(
                    min=float("nan"), max=float("nan"), value_counts={},
                    hist_counts=np.zeros(1), hist_edges=np.zeros(2),
                )
                continue
            uniques, counts = np.unique(values, return_counts=True)
            value_counts = (
                {float(u): int(c) for u, c in zip(uniques, counts)}
                if uniques.shape[0] <= max_counted_values else None
            )
            hist_counts, hist_edges = np.histogram(values, bins=n_buckets)
            numeric[name] = NumericSummary(
                min=float(values.min()), max=float(values.max()),
                value_counts=value_counts,
                hist_counts=hist_counts.astype(np.float64),
                hist_edges=hist_edges,
            )
        elif kind is ColumnKind.KEYWORDS:
            column = table.column(name)
            n_distinct = len(column.vocab)
            if len(table) and n_distinct:
                rows_per_keyword = column.tokens.shape[0] / n_distinct
                mean_df = min(1.0, rows_per_keyword / len(table))
            else:
                mean_df = 0.0
            keywords[name] = KeywordSummary(
                digest=KeywordDigest.build(column.vocab),
                n_distinct=n_distinct,
                mean_doc_frequency=mean_df,
            )
    return ShardSummary(n_rows=len(table), numeric=numeric, keywords=keywords)
