"""Fault-tolerant scatter-gather: deadlines, retries, circuit breakers.

A :class:`ResiliencePolicy` attached to a
:class:`~repro.shard.sharded.ShardedAcornIndex` changes the failure
semantics of its scatter-gather from *any shard error kills the query*
to *graceful degradation with exact accounting*:

- every shard probe runs under a per-attempt **deadline** measured on a
  pluggable :class:`~repro.utils.clock.Clock` (the chaos suite injects
  a :class:`~repro.utils.clock.FakeClock`, so no test ever really
  sleeps);
- failed attempts (exception, deadline violation, or a structurally
  invalid payload per :func:`validate_shard_result`) **retry** with
  exponential backoff up to a bounded budget;
- consecutive failures trip a per-shard **circuit breaker**
  (closed → open → half-open): an open breaker rejects probes outright
  until its reset window elapses, then a half-open breaker admits one
  trial probe whose outcome re-closes or re-opens it;
- shards that exhaust their budget are dropped from the merge and the
  query returns the **partial top-k over surviving shards**, with
  ``shards_failed`` / ``shards_timed_out`` / ``degraded`` and an
  estimated ``recall_ceiling`` (survivor share of the router's
  estimated passing rows) threaded through
  :class:`~repro.engine.instrumentation.QueryStats`.

Only ``Exception`` subclasses are ever folded into this accounting:
``KeyboardInterrupt`` / ``SystemExit`` and other ``BaseException``s
always propagate out of the gather (pinned by the chaos suite).
"""

from __future__ import annotations

import dataclasses
import enum
import threading

import numpy as np

from repro.utils.clock import Clock, SystemClock


class BreakerState(enum.Enum):
    """Circuit-breaker states, classic three-state machine."""

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"


class CircuitBreaker:
    """Per-shard failure latch with a clock-driven reset window.

    Closed: probes flow; each failure increments a consecutive-failure
    count and reaching ``failure_threshold`` opens the breaker.  Open:
    :meth:`allow` rejects until ``reset_timeout_s`` has elapsed on the
    clock, then the breaker goes half-open.  Half-open: exactly one
    trial probe is admitted; success closes the breaker, failure
    re-opens it (restarting the window).

    Thread-safe; all transitions happen under one lock.

    Args:
        failure_threshold: consecutive failures that open the breaker.
        reset_timeout_s: clock seconds an open breaker waits before
            admitting a half-open trial.
        clock: time source for the reset window.
    """

    def __init__(
        self,
        failure_threshold: int = 3,
        reset_timeout_s: float = 30.0,
        clock: Clock | None = None,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError(
                f"failure_threshold must be >= 1, got {failure_threshold}"
            )
        self.failure_threshold = int(failure_threshold)
        self.reset_timeout_s = float(reset_timeout_s)
        self.clock = clock if clock is not None else SystemClock()
        self._lock = threading.Lock()
        self._state = BreakerState.CLOSED
        self._failures = 0
        self._opened_at = 0.0
        self._trial_in_flight = False

    @property
    def state(self) -> BreakerState:
        """Current state, after applying any due open→half-open lapse."""
        with self._lock:
            self._lapse_locked()
            return self._state

    @property
    def consecutive_failures(self) -> int:
        """Failures since the last success (resets on success)."""
        with self._lock:
            return self._failures

    def _lapse_locked(self) -> None:
        if (self._state is BreakerState.OPEN
                and self.clock.monotonic() - self._opened_at
                >= self.reset_timeout_s):
            self._state = BreakerState.HALF_OPEN
            self._trial_in_flight = False

    def allow(self) -> bool:
        """Whether a probe may proceed right now.

        Half-open admits exactly one in-flight trial; concurrent
        callers beyond the trial are rejected until it resolves.
        """
        with self._lock:
            self._lapse_locked()
            if self._state is BreakerState.CLOSED:
                return True
            if self._state is BreakerState.HALF_OPEN:
                if self._trial_in_flight:
                    return False
                self._trial_in_flight = True
                return True
            return False

    def record_success(self) -> None:
        """Note a successful probe: closes the breaker, clears failures."""
        with self._lock:
            self._state = BreakerState.CLOSED
            self._failures = 0
            self._trial_in_flight = False

    def record_failure(self) -> None:
        """Note a failed probe; may open (or re-open) the breaker."""
        with self._lock:
            self._failures += 1
            if (self._state is BreakerState.HALF_OPEN
                    or self._failures >= self.failure_threshold):
                self._state = BreakerState.OPEN
                self._opened_at = self.clock.monotonic()
                self._trial_in_flight = False


@dataclasses.dataclass
class ResiliencePolicy:
    """Knobs governing fault-tolerant scatter-gather.

    Attributes:
        shard_deadline_s: per-attempt deadline in clock seconds; an
            attempt whose elapsed clock time exceeds it counts as timed
            out and its result is discarded.  ``None`` disables
            deadline accounting.
        max_retries: extra attempts after the first (0 = fail fast).
        backoff_base_s: clock sleep before the first retry.
        backoff_multiplier: factor applied to the backoff per retry.
        breaker_threshold: consecutive failures opening a shard's
            circuit breaker.
        breaker_reset_s: clock seconds an open breaker waits before
            half-opening.
        validate_results: reject structurally invalid shard payloads
            (out-of-range ids, NaN/unsorted distances, mismatched array
            lengths) as failures instead of merging garbage.
        clock: the time source for deadlines, backoff, and breakers.
    """

    shard_deadline_s: float | None = None
    max_retries: int = 1
    backoff_base_s: float = 0.01
    backoff_multiplier: float = 2.0
    breaker_threshold: int = 3
    breaker_reset_s: float = 30.0
    validate_results: bool = True
    clock: Clock = dataclasses.field(default_factory=SystemClock)

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.shard_deadline_s is not None and self.shard_deadline_s <= 0:
            raise ValueError("shard_deadline_s must be positive or None")

    def make_breakers(self, n_shards: int) -> list[CircuitBreaker]:
        """Fresh per-shard breakers sharing this policy's clock."""
        return [
            CircuitBreaker(
                failure_threshold=self.breaker_threshold,
                reset_timeout_s=self.breaker_reset_s,
                clock=self.clock,
            )
            for _ in range(n_shards)
        ]

    def backoff_s(self, retry_index: int) -> float:
        """Backoff before retry ``retry_index`` (0-based)."""
        return self.backoff_base_s * self.backoff_multiplier ** retry_index


def validate_shard_result(result, shard_len: int) -> str | None:
    """A reason string when a shard payload is structurally invalid.

    Checks the invariants every honest shard search satisfies: ids and
    distances the same length, ids within ``[0, shard_len)``, distances
    finite and non-decreasing.  Returns ``None`` for valid payloads.
    """
    ids = np.asarray(result.ids)
    distances = np.asarray(result.distances)
    if ids.shape[0] != distances.shape[0]:
        return (f"ids/distances length mismatch "
                f"({ids.shape[0]} vs {distances.shape[0]})")
    if ids.shape[0] == 0:
        return None
    if ids.min() < 0 or ids.max() >= shard_len:
        return f"ids outside [0, {shard_len})"
    if not np.all(np.isfinite(distances)):
        return "non-finite distances"
    if np.any(np.diff(distances) < 0):
        return "distances not sorted ascending"
    return None


@dataclasses.dataclass(frozen=True)
class ProbeOutcome:
    """What one shard probe produced under the resilience policy.

    Attributes:
        shard_id: the probed shard.
        status: ``"ok"``, ``"failed"`` (exception / invalid payload /
            breaker rejection), or ``"timed_out"`` (final attempt blew
            the deadline).
        result: the shard's :class:`~repro.hnsw.hnsw.SearchResult` when
            ``status == "ok"``, else ``None``.
        attempts: search attempts actually executed (0 when the
            breaker rejected the probe outright).
        failure: short human-readable reason for non-ok outcomes.
        elapsed_s: clock seconds consumed by the final attempt.
    """

    shard_id: int
    status: str
    result: object | None
    attempts: int
    failure: str | None
    elapsed_s: float

    @property
    def ok(self) -> bool:
        """Whether the probe yielded a mergeable result."""
        return self.status == "ok"


def resilient_probe(
    shard_id: int,
    search,
    shard_len: int,
    policy: ResiliencePolicy,
    breaker: CircuitBreaker,
) -> ProbeOutcome:
    """Run one shard search under deadline/retry/breaker discipline.

    Args:
        shard_id: which shard (for accounting only).
        search: zero-argument callable executing the local search.
        shard_len: shard size, for payload validation.
        policy: the governing :class:`ResiliencePolicy`.
        breaker: the shard's :class:`CircuitBreaker`.

    Only ``Exception`` is caught; ``BaseException`` subclasses
    (``KeyboardInterrupt``, ``SystemExit``) propagate to the caller —
    folding them into failure accounting would swallow interrupts.
    """
    clock = policy.clock
    attempts = 0
    last_status = "failed"
    last_failure: str | None = None
    elapsed = 0.0
    while attempts <= policy.max_retries:
        if not breaker.allow():
            if attempts == 0:
                return ProbeOutcome(
                    shard_id=shard_id, status="failed", result=None,
                    attempts=0, failure="circuit breaker open",
                    elapsed_s=0.0,
                )
            # Breaker opened mid-retry: stop burning the budget.
            break
        start = clock.monotonic()
        try:
            found = search()
        except Exception as exc:  # noqa: BLE001 — BaseException must escape
            elapsed = clock.monotonic() - start
            breaker.record_failure()
            last_status, last_failure = "failed", f"{type(exc).__name__}: {exc}"
        else:
            elapsed = clock.monotonic() - start
            deadline = policy.shard_deadline_s
            invalid = (validate_shard_result(found, shard_len)
                       if policy.validate_results else None)
            if deadline is not None and elapsed > deadline:
                breaker.record_failure()
                last_status = "timed_out"
                last_failure = (f"deadline exceeded "
                                f"({elapsed:.3f}s > {deadline:.3f}s)")
            elif invalid is not None:
                breaker.record_failure()
                last_status, last_failure = "failed", f"invalid payload: {invalid}"
            else:
                breaker.record_success()
                return ProbeOutcome(
                    shard_id=shard_id, status="ok", result=found,
                    attempts=attempts + 1, failure=None, elapsed_s=elapsed,
                )
        attempts += 1
        if attempts <= policy.max_retries:
            clock.sleep(policy.backoff_s(attempts - 1))
    return ProbeOutcome(
        shard_id=shard_id, status=last_status, result=None,
        attempts=attempts, failure=last_failure, elapsed_s=elapsed,
    )


def recall_ceiling(
    est_rows: list[float], ok_flags: list[bool]
) -> float:
    """Estimated upper bound on recall after shard failures.

    Args:
        est_rows: per probed shard, the router's estimate of passing
            rows there (``est_selectivity * n_rows``).
        ok_flags: per probed shard, whether its probe succeeded.

    Returns the surviving share of estimated passing rows, in [0, 1];
    1.0 when nothing was expected anywhere (the failure then provably
    cost nothing) or when every probe succeeded.
    """
    total = sum(est_rows)
    if total <= 0.0:
        return 1.0
    surviving = sum(e for e, ok in zip(est_rows, ok_flags) if ok)
    return max(0.0, min(1.0, surviving / total))
