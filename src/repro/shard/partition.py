"""Partitioners: deterministic row-to-shard assignment.

Two placement policies cover the classical trade-off:

- :class:`HashPartitioner` spreads rows uniformly (balanced shards, no
  routing leverage — every shard must be probed for every predicate);
- :class:`AttributeRangePartitioner` splits on a numeric column's value
  ranges (shards become selective for predicates on that column, which
  is what gives the :class:`~repro.shard.router.ShardRouter` provable
  prunes).

Both are pure functions of (row ids, attribute values): the same inputs
always produce the same :class:`ShardAssignment`, which persistence
relies on.  :func:`subset_table` carves the per-shard attribute tables
out of the global one, preserving column kinds.
"""

from __future__ import annotations

import abc
import dataclasses

import numpy as np

from repro.attributes.table import AttributeTable, ColumnKind


@dataclasses.dataclass
class ShardAssignment:
    """The materialized global-id ↔ (shard, local-id) mapping.

    Attributes:
        shard_of: int64 array, ``shard_of[g]`` is the shard owning
            global row ``g``.
        global_ids: one ascending int64 array per shard — local id
            ``j`` of shard ``s`` is global row ``global_ids[s][j]``.
            Ascending order means a single-shard assignment preserves
            the global insertion order exactly.
        local_of: int64 array, ``local_of[g]`` is row ``g``'s local id
            within its owning shard.
    """

    shard_of: np.ndarray
    global_ids: list[np.ndarray]
    local_of: np.ndarray

    @classmethod
    def from_shard_of(cls, shard_of: np.ndarray, n_shards: int) -> "ShardAssignment":
        """Build the full mapping from a per-row shard-id array."""
        shard_of = np.asarray(shard_of, dtype=np.int64)
        if shard_of.size and (shard_of.min() < 0 or shard_of.max() >= n_shards):
            raise ValueError(
                f"shard ids must lie in [0, {n_shards}), got "
                f"[{shard_of.min()}, {shard_of.max()}]"
            )
        global_ids = [
            np.flatnonzero(shard_of == s).astype(np.int64)
            for s in range(n_shards)
        ]
        local_of = np.zeros(shard_of.shape[0], dtype=np.int64)
        for gids in global_ids:
            local_of[gids] = np.arange(gids.shape[0], dtype=np.int64)
        return cls(shard_of=shard_of, global_ids=global_ids, local_of=local_of)

    @property
    def n_shards(self) -> int:
        """Number of shards in the assignment."""
        return len(self.global_ids)

    @property
    def n_rows(self) -> int:
        """Total rows across all shards."""
        return int(self.shard_of.shape[0])

    def to_local(self, global_id: int) -> tuple[int, int]:
        """Map a global row id to its ``(shard, local_id)`` pair."""
        if not 0 <= global_id < self.n_rows:
            raise IndexError(
                f"global id {global_id} out of range [0, {self.n_rows})"
            )
        return int(self.shard_of[global_id]), int(self.local_of[global_id])

    def to_global(self, shard: int, local_id: int) -> int:
        """Map a shard-local row id back to its global row id."""
        return int(self.global_ids[shard][local_id])


class Partitioner(abc.ABC):
    """Deterministic policy assigning every table row to one shard."""

    n_shards: int

    @abc.abstractmethod
    def assign(self, table: AttributeTable) -> np.ndarray:
        """Per-row shard ids (int64 array of length ``len(table)``)."""

    def partition(self, table: AttributeTable) -> ShardAssignment:
        """Assign every row and materialize the full id mapping."""
        return ShardAssignment.from_shard_of(self.assign(table), self.n_shards)

    @abc.abstractmethod
    def spec(self) -> dict:
        """JSON-serializable description, consumed by persistence."""


def _mix64(values: np.ndarray, seed: int) -> np.ndarray:
    """SplitMix64 finalizer over an int array (vectorized, wrapping)."""
    x = values.astype(np.uint64) + np.uint64((seed * 0x9E3779B97F4A7C15) & 0xFFFFFFFFFFFFFFFF)
    x ^= x >> np.uint64(30)
    x *= np.uint64(0xBF58476D1CE4E5B9)
    x ^= x >> np.uint64(27)
    x *= np.uint64(0x94D049BB133111EB)
    x ^= x >> np.uint64(31)
    return x


class HashPartitioner(Partitioner):
    """Uniform placement by a deterministic hash of the global row id.

    With ``n_shards=1`` every row lands on shard 0 in global order, so a
    single-shard index is graph-identical to the unsharded build — the
    anchor case of the equivalence suite.

    Args:
        n_shards: number of shards (positive).
        seed: hash salt; different seeds give different (still
            deterministic) placements.
    """

    def __init__(self, n_shards: int, seed: int = 0) -> None:
        if n_shards < 1:
            raise ValueError(f"n_shards must be positive, got {n_shards}")
        self.n_shards = int(n_shards)
        self.seed = int(seed)

    def assign(self, table: AttributeTable) -> np.ndarray:
        """Per-row shard ids (int64 array of length ``len(table)``)."""
        n = len(table)
        if self.n_shards == 1:
            return np.zeros(n, dtype=np.int64)
        hashed = _mix64(np.arange(n, dtype=np.int64), self.seed)
        return (hashed % np.uint64(self.n_shards)).astype(np.int64)

    def spec(self) -> dict:
        """JSON-serializable description, consumed by persistence."""
        return {"type": "hash", "n_shards": self.n_shards, "seed": self.seed}

    def __repr__(self) -> str:
        return f"HashPartitioner(n_shards={self.n_shards}, seed={self.seed})"


class AttributeRangePartitioner(Partitioner):
    """Range placement on a numeric column (the routing-friendly layout).

    Rows are assigned by ``searchsorted`` against ``n_shards - 1``
    interior boundaries: shard ``s`` holds rows whose value falls in
    ``(boundaries[s-1], boundaries[s]]``.  When no boundaries are given
    they are derived from the column's quantiles on first use (and then
    frozen, so :meth:`spec` round-trips the realized split).

    Args:
        column: name of an int/float column to split on.
        n_shards: number of shards; required unless ``boundaries`` is
            given.
        boundaries: explicit ascending interior boundaries
            (``len == n_shards - 1``); overrides the quantile split.
    """

    def __init__(
        self,
        column: str,
        n_shards: int | None = None,
        boundaries: list[float] | None = None,
    ) -> None:
        if boundaries is None and n_shards is None:
            raise ValueError("pass n_shards or explicit boundaries")
        if boundaries is not None:
            boundaries = [float(b) for b in boundaries]
            if sorted(boundaries) != boundaries:
                raise ValueError(f"boundaries must ascend, got {boundaries}")
            if n_shards is not None and n_shards != len(boundaries) + 1:
                raise ValueError(
                    f"{len(boundaries)} boundaries imply "
                    f"{len(boundaries) + 1} shards, got n_shards={n_shards}"
                )
            n_shards = len(boundaries) + 1
        if n_shards < 1:
            raise ValueError(f"n_shards must be positive, got {n_shards}")
        self.column = column
        self.n_shards = int(n_shards)
        self.boundaries = boundaries

    def _column_values(self, table: AttributeTable) -> np.ndarray:
        kind = table.column_kind(self.column)
        if kind not in (ColumnKind.INT, ColumnKind.FLOAT):
            raise ValueError(
                f"column {self.column!r} is {kind.value}; range partitioning "
                "requires an int or float column"
            )
        return np.asarray(table.column(self.column), dtype=np.float64)

    def assign(self, table: AttributeTable) -> np.ndarray:
        """Per-row shard ids (int64 array of length ``len(table)``)."""
        values = self._column_values(table)
        if self.boundaries is None:
            qs = np.linspace(0, 1, self.n_shards + 1)[1:-1]
            self.boundaries = [
                float(b) for b in np.quantile(values, qs)
            ] if values.size else [0.0] * (self.n_shards - 1)
        return np.searchsorted(
            np.asarray(self.boundaries, dtype=np.float64), values, side="left"
        ).astype(np.int64)

    def spec(self) -> dict:
        """JSON-serializable description, consumed by persistence."""
        return {
            "type": "attribute-range",
            "column": self.column,
            "n_shards": self.n_shards,
            "boundaries": self.boundaries,
        }

    def __repr__(self) -> str:
        return (
            f"AttributeRangePartitioner({self.column!r}, "
            f"n_shards={self.n_shards}, boundaries={self.boundaries})"
        )


def partitioner_from_spec(spec: dict) -> Partitioner:
    """Rebuild a partitioner from its :meth:`Partitioner.spec` dict."""
    kind = spec.get("type")
    if kind == "hash":
        return HashPartitioner(spec["n_shards"], seed=spec.get("seed", 0))
    if kind == "attribute-range":
        return AttributeRangePartitioner(
            spec["column"],
            n_shards=spec["n_shards"],
            boundaries=spec.get("boundaries"),
        )
    raise ValueError(f"unknown partitioner spec type {kind!r}")


def subset_table(table: AttributeTable, rows: np.ndarray) -> AttributeTable:
    """A new table holding ``rows`` of ``table``, columns and kinds kept.

    ``rows`` indexes the source table; the result's row ``j`` is the
    source's row ``rows[j]``.  Keyword columns are re-interned per
    subset (vocabularies shrink with the shard).
    """
    rows = np.asarray(rows, dtype=np.int64)
    out = AttributeTable(int(rows.shape[0]))
    for name in table.column_names:
        kind = table.column_kind(name)
        column = table.column(name)
        if kind is ColumnKind.INT:
            out.add_int_column(name, column[rows])
        elif kind is ColumnKind.FLOAT:
            out.add_float_column(name, column[rows])
        elif kind is ColumnKind.STRING:
            out.add_string_column(name, [column[i] for i in rows.tolist()])
        else:
            vocab = [None] * len(column.vocab)
            for word, token in column.vocab.items():
                vocab[token] = word
            offsets, tokens = column.offsets, column.tokens
            lists = [
                [vocab[t] for t in tokens[offsets[i] : offsets[i + 1]]]
                for i in rows.tolist()
            ]
            out.add_keywords_column(name, lists)
    return out
