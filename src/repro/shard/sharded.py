"""Sharded ACORN index: scatter-gather search with streaming top-k merge.

:class:`ShardedAcornIndex` partitions the base vectors and their
attribute table with a :class:`~repro.shard.partition.Partitioner`,
builds one ACORN index per shard (any variant: ACORN-γ, ACORN-1, or the
flat substrate), and answers hybrid queries shard-by-shard:

1. the query predicate is compiled once against the *global* table;
2. the :class:`~repro.shard.router.ShardRouter` prunes shards whose
   predicate mask is provably empty (and may scale per-shard
   ``ef_search`` by estimated local selectivity);
3. each probed shard searches its local predicate subgraph over its
   sliced mask;
4. per-shard results — already sorted by distance — are merged with a
   streaming k-way heap merge (:func:`merge_topk`) into the global
   top-k, mapping shard-local ids back to global ids.

Merge semantics: when every probed shard's search is exhaustive over
its passing rows (per-shard ``ef_search ≥`` shard size), the merge
yields exactly the global exact top-k — byte-identical to what the
unsharded index returns in its own exhaustive regime, which is the
contract the equivalence suite pins.  At lower effort each shard
contributes its usual graph-search approximation and the merge is
exact over whatever the shards returned.

The class plugs straight into the PR-1 batch engine: it exposes
``search``/``freeze``/``table``, returns
:class:`ShardedSearchResult` records whose ``shards_probed`` /
``shards_pruned`` counters flow into
:class:`~repro.engine.instrumentation.QueryStats`.
"""

from __future__ import annotations

import dataclasses
import hashlib
import heapq
from collections.abc import Callable, Iterable
from concurrent.futures import ThreadPoolExecutor

import numpy as np

from repro.attributes.table import AttributeTable
from repro.core.acorn import AcornIndex, AcornOneIndex
from repro.core.flat import FlatAcornIndex
from repro.core.params import AcornParams
from repro.engine.batching import BatchSearchMixin
from repro.hnsw.hnsw import SearchResult
from repro.predicates.base import CompiledPredicate, Predicate
from repro.shard.partition import (
    Partitioner,
    ShardAssignment,
    subset_table,
)
from repro.shard.resilience import (
    BreakerState,
    ResiliencePolicy,
    recall_ceiling,
    resilient_probe,
)
from repro.shard.router import ShardDecision, ShardPlan, ShardRouter
from repro.shard.summary import summarize_table
from repro.vectors.distance import Metric


@dataclasses.dataclass
class ShardedSearchResult(SearchResult):
    """A :class:`~repro.hnsw.hnsw.SearchResult` plus routing telemetry.

    Attributes:
        shards_probed: shards that executed a search for this query.
        shards_pruned: shards the router proved empty and skipped.
        shards_failed: probed shards that exhausted their retry budget
            on exceptions / invalid payloads / open circuit breakers
            (0 without a resilience policy — failures then propagate).
        shards_timed_out: probed shards whose final attempt exceeded
            the per-shard deadline; disjoint from ``shards_failed``.
        degraded: True when any probed shard failed or timed out, i.e.
            the result is a partial top-k over surviving shards.
        recall_ceiling: estimated upper bound on recall given the
            failures — the surviving share of the router's estimated
            passing rows across probed shards (1.0 when not degraded).
        per_shard: one dict per shard (plan order) with the decision
            and, for probed shards, the local search's counters plus
            resilience accounting (``status``/``attempts``/``failure``).
        route_chosen: with per-shard routing enabled, the most common
            route across probed shards (ties break toward pre-filter);
            ``""`` otherwise.
        route_reason: per-shard route tally string (``""`` when
            routing is off).
        fallback_triggered: True when any shard's monitored walk fell
            back to pre-filtering.
        estimator_error: mean signed per-shard selectivity-estimation
            error across probed shards (0.0 when routing is off).
    """

    shards_probed: int = 0
    shards_pruned: int = 0
    shards_failed: int = 0
    shards_timed_out: int = 0
    degraded: bool = False
    recall_ceiling: float = 1.0
    per_shard: tuple = ()
    route_chosen: str = ""
    route_reason: str = ""
    fallback_triggered: bool = False
    estimator_error: float = 0.0


def merge_topk(
    streams: Iterable[Iterable[tuple[float, int]]], k: int
) -> list[tuple[float, int]]:
    """Streaming k-way merge of per-shard ``(distance, id)`` streams.

    Each stream must already be sorted ascending (per-shard searches
    return sorted results); the merge walks all streams heap-wise and
    stops after ``k`` emissions, so no concatenation of full result
    lists is ever materialized.  Ties break on id, making the merged
    order deterministic regardless of shard enumeration order.
    """
    return list(heapq.merge(*streams))[:k] if k > 0 else []


def _default_build_shard(
    variant: str,
    params: AcornParams | None,
    metric,
    seed,
    acorn1_m: int,
    acorn1_ef_construction: int,
    n_workers: int = 1,
) -> Callable[[np.ndarray, AttributeTable], AcornIndex]:
    """The per-shard index factory for a named ACORN variant."""
    if variant == "acorn":
        return lambda vectors, table: AcornIndex.build(
            vectors, table, params=params, metric=metric, seed=seed,
            n_workers=n_workers,
        )
    if variant == "acorn1":
        return lambda vectors, table: AcornOneIndex.build(
            vectors, table, m=acorn1_m,
            ef_construction=acorn1_ef_construction, metric=metric, seed=seed,
            n_workers=n_workers,
        )
    if variant == "flat":
        return lambda vectors, table: FlatAcornIndex.build(
            vectors, table, params=params, metric=metric, seed=seed,
            n_workers=n_workers,
        )
    raise ValueError(
        f"unknown variant {variant!r}; choose acorn, acorn1, or flat"
    )


class ShardedAcornIndex(BatchSearchMixin):
    """N ACORN shards behind one predicate-aware scatter-gather front.

    Build with :meth:`build`; the constructor wires together
    already-built pieces (persistence uses it directly).

    Args:
        shards: one ACORN index per shard, aligned with ``assignment``.
        assignment: the global ↔ (shard, local) id mapping.
        partitioner: the policy that produced ``assignment`` (kept for
            the persistence manifest).
        table: the *global* attribute table; query predicates are
            compiled against it exactly as on an unsharded index.
        router: routing policy; defaults to a
            :class:`~repro.shard.router.ShardRouter` over fresh
            summaries of each shard's table.
        scale_ef: when True the router scales per-shard ``ef_search``
            by estimated local selectivity (efficiency mode); when
            False every probed shard uses the caller's ``ef_search``
            (the equivalence-preserving default).
        resilience: optional
            :class:`~repro.shard.resilience.ResiliencePolicy`.  Without
            one (the default), shard failures propagate and no
            deadline/retry/breaker machinery runs — the historical
            fail-fast semantics.  With one, probes run under per-shard
            deadlines with retry-and-backoff and per-shard circuit
            breakers, and queries degrade gracefully to a partial
            top-k over surviving shards with exact failure accounting.
        shard_workers: fan shard probes of a single query across this
            many threads (``None``/1 probes sequentially on the calling
            thread — the deterministic default the chaos suite relies
            on).  ``BaseException`` raised inside a probe always
            propagates, never folds into failure accounting.
        route_policy: per-shard query routing.  ``None`` (default)
            probes each shard's graph directly — the historical
            behavior.  ``"static"`` or ``"adaptive"`` wraps each shard
            in a :class:`~repro.routing.planner.RoutePlanner` of that
            policy, seeded with the shard router's summary-based local
            selectivity estimate as the prior; route telemetry
            surfaces on :class:`ShardedSearchResult` and in per-shard
            records.
        executor: probe fan-out mechanism.  ``"thread"`` (default)
            keeps the historical in-process probes (threaded when
            ``shard_workers > 1``); ``"sync"`` behaves identically
            (probes are already sequential at ``shard_workers <= 1``);
            ``"process"`` runs each probed shard's local search in a
            spawned worker over a zero-copy shared-memory arena of all
            shards (``docs/parallelism.md``).  Results are
            byte-identical across executors; the process path falls
            back to in-process probes — counted in
            ``process_fallbacks`` / ``last_fallback_reason`` — when
            shared memory is unavailable or the shards cannot be
            snapshotted (fault-injection wrappers, per-shard route
            planners).  Worker crashes surface as ordinary probe
            ``Exception``s, so the resilience policy's
            failed/degraded/recall-ceiling accounting applies to a
            dying worker process exactly as to a throwing shard.
        process_pool: a shared
            :class:`~repro.parallel.pool.ProcessPool`; ``None`` lazily
            creates one owned (and closed) by this index.
    """

    def __init__(
        self,
        shards: list[AcornIndex],
        assignment: ShardAssignment,
        partitioner: Partitioner,
        table: AttributeTable,
        router: ShardRouter | None = None,
        scale_ef: bool = False,
        resilience: ResiliencePolicy | None = None,
        shard_workers: int | None = None,
        route_policy: str | None = None,
        executor: str = "thread",
        process_pool=None,
    ) -> None:
        from repro.parallel import resolve_executor
        if len(shards) != assignment.n_shards:
            raise ValueError(
                f"{len(shards)} shard indexes but assignment has "
                f"{assignment.n_shards} shards"
            )
        for s, (shard, gids) in enumerate(zip(shards, assignment.global_ids)):
            if len(shard) != gids.shape[0]:
                raise ValueError(
                    f"shard {s} holds {len(shard)} vectors but assignment "
                    f"maps {gids.shape[0]} rows to it"
                )
        self.shards = shards
        self.assignment = assignment
        self.partitioner = partitioner
        self.table = table
        self.router = (
            router if router is not None
            else ShardRouter([summarize_table(s.table) for s in shards])
        )
        self.scale_ef = bool(scale_ef)
        self.resilience = resilience
        self.breakers = (
            resilience.make_breakers(len(shards))
            if resilience is not None else None
        )
        self.shard_workers = (
            1 if shard_workers is None else max(int(shard_workers), 1)
        )
        self.route_policy = route_policy
        self._shard_planners = None
        if route_policy is not None:
            from repro.routing.planner import RoutePlanner

            # One planner (and one private feedback store) per shard:
            # shard sizes differ, so observed costs must not mix.
            self._shard_planners = [
                RoutePlanner(shard, policy=route_policy)
                for shard in self.shards
            ]
        self._scatter_pool: ThreadPoolExecutor | None = None
        self.executor = resolve_executor(executor)
        self._proc_pool = process_pool
        self._own_proc_pool = process_pool is None
        self._arena_manager = None
        self._closed = False
        self.process_fallbacks = 0
        self.last_fallback_reason = ""

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def build(
        cls,
        vectors: np.ndarray,
        table: AttributeTable,
        partitioner: Partitioner,
        params: AcornParams | None = None,
        metric: "Metric | str" = Metric.L2,
        seed: int | np.random.Generator | None = None,
        variant: str = "acorn",
        acorn1_m: int = 32,
        acorn1_ef_construction: int = 40,
        build_shard: Callable[[np.ndarray, AttributeTable], AcornIndex] | None = None,
        scale_ef: bool = False,
        resilience: ResiliencePolicy | None = None,
        shard_workers: int | None = None,
        build_workers: int = 1,
        n_workers: int = 1,
        route_policy: str | None = None,
        executor: str = "thread",
        process_pool=None,
    ) -> "ShardedAcornIndex":
        """Partition ``vectors``/``table`` and build one index per shard.

        Args:
            vectors: (n, dim) float32 base vectors, aligned with
                ``table`` rows.
            table: global attribute table (must match ``vectors``
                exactly — sharding fixes the universe up front).
            partitioner: row-placement policy.
            params: ACORN-γ construction parameters (``acorn``/``flat``
                variants).
            metric: distance metric shared by all shards.
            seed: level-assignment seed, reused per shard so a
                single-shard build is graph-identical to the unsharded
                reference.
            variant: ``"acorn"`` (γ), ``"acorn1"``, or ``"flat"``.
            acorn1_m / acorn1_ef_construction: ACORN-1 build knobs.
            build_shard: optional ``(vectors, table) -> index`` factory
                overriding ``variant`` entirely.
            scale_ef: forwarded to the instance (see class docs).
            resilience: forwarded to the instance (see class docs).
            shard_workers: forwarded to the instance (see class docs).
            build_workers: shards built concurrently.  Shard inputs are
                disjoint and each build is self-contained, so any value
                produces shard-by-shard identical graphs; results are
                collected in shard order regardless of completion order.
            n_workers: per-shard construction parallelism, forwarded to
                the variant's ``build`` (ignored when ``build_shard`` is
                supplied).  1 keeps every shard on the sequential
                reference path.
            route_policy: forwarded to the instance (see class docs).
            executor: forwarded to the instance (see class docs).
            process_pool: forwarded to the instance (see class docs).
        """
        vectors = np.atleast_2d(np.asarray(vectors, dtype=np.float32))
        if len(table) != vectors.shape[0]:
            raise ValueError(
                f"table has {len(table)} rows but got {vectors.shape[0]} "
                "vectors; sharding requires a fully-aligned table"
            )
        if build_shard is None:
            build_shard = _default_build_shard(
                variant, params, metric, seed, acorn1_m,
                acorn1_ef_construction, n_workers=n_workers,
            )
        assignment = partitioner.partition(table)
        shard_inputs = [
            (vectors[gids], subset_table(table, gids))
            for gids in assignment.global_ids
        ]
        if build_workers > 1 and len(shard_inputs) > 1:
            with ThreadPoolExecutor(max_workers=build_workers) as pool:
                futures = [
                    pool.submit(build_shard, svecs, stable)
                    for svecs, stable in shard_inputs
                ]
                shards = [f.result() for f in futures]
        else:
            shards = [build_shard(v, t) for v, t in shard_inputs]
        return cls(
            shards=shards, assignment=assignment, partitioner=partitioner,
            table=table, scale_ef=scale_ef, resilience=resilience,
            shard_workers=shard_workers, route_policy=route_policy,
            executor=executor, process_pool=process_pool,
        )

    def with_faults(self, injector) -> "ShardedAcornIndex":
        """A chaos view of this index: same shards, decorated by
        ``injector`` (see :class:`~repro.shard.faults.FaultInjector`).

        The view shares the assignment, table, router, and policy
        configuration but gets fresh circuit breakers, so injected
        failures never poison the undecorated index's state.
        """
        return type(self)(
            shards=injector.wrap(self.shards),
            assignment=self.assignment,
            partitioner=self.partitioner,
            table=self.table,
            router=self.router,
            scale_ef=self.scale_ef,
            resilience=self.resilience,
            shard_workers=self.shard_workers,
            route_policy=self.route_policy,
            # Process probes cannot reach fault-injection wrappers (they
            # live outside the snapshot registry), so the chaos view
            # always probes in-process regardless of this executor.
            executor=self.executor,
        )

    def __len__(self) -> int:
        return self.assignment.n_rows

    @property
    def n_shards(self) -> int:
        """Number of shards."""
        return self.assignment.n_shards

    @property
    def metric(self) -> Metric:
        """The distance metric shared by every shard."""
        return self.shards[0].metric

    def freeze(self) -> None:
        """Freeze every shard's adjacency snapshot (batch-engine hook)."""
        for shard in self.shards:
            if len(shard):
                shard.freeze()

    def begin_batch(self) -> None:
        """Batch-engine hook: open a feedback batch on every shard
        planner (no-op without per-shard routing)."""
        if self._shard_planners is not None:
            for planner in self._shard_planners:
                planner.begin_batch()

    # ------------------------------------------------------------------
    # Lifecycle (worker pools and shared-memory arenas)
    # ------------------------------------------------------------------

    def close(self) -> None:
        """Shut the probe pools and shared-memory arenas down.

        Idempotent and teardown safe; after an explicit close,
        :meth:`search` raises ``RuntimeError`` (the arenas are
        unlinked — silently re-creating them would hide leaks).
        """
        self._closed = True
        pool = getattr(self, "_scatter_pool", None)
        if pool is not None:
            self._scatter_pool = None
            pool.shutdown(wait=True)
        proc_pool = getattr(self, "_proc_pool", None)
        if proc_pool is not None and getattr(self, "_own_proc_pool", False):
            self._proc_pool = None
            proc_pool.close()
        manager = getattr(self, "_arena_manager", None)
        if manager is not None:
            self._arena_manager = None
            manager.close()

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has run."""
        return self._closed

    def __enter__(self) -> "ShardedAcornIndex":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    def __del__(self) -> None:
        try:
            self.close()
        except Exception:
            pass

    def _scatter_executor(self) -> ThreadPoolExecutor:
        if self._scatter_pool is None:
            self._scatter_pool = ThreadPoolExecutor(
                max_workers=self.shard_workers,
                thread_name_prefix="repro-scatter",
            )
        return self._scatter_pool

    def _process_pool(self):
        """The probe process pool (lazily created when owned)."""
        if self._proc_pool is None:
            from repro.parallel import ProcessPool

            self._proc_pool = ProcessPool(max(self.shard_workers, 1))
            self._own_proc_pool = True
        return self._proc_pool

    def _remote_record(self):
        """The live arena record for process probes, or ``None``.

        ``None`` means this query probes in-process instead: the shards
        cannot be snapshotted (fault wrappers, route planners) or shared
        memory is unavailable.  Every ``None`` is counted.
        """
        from repro import parallel as par

        try:
            token = par.sharded_snapshot_token(self)
        except par.UnsupportedSearcher as exc:
            self.process_fallbacks += 1
            self.last_fallback_reason = f"unsupported searcher: {exc}"
            return None
        if not par.parallel_available():
            self.process_fallbacks += 1
            self.last_fallback_reason = "shared memory unavailable"
            return None
        if self._arena_manager is None:
            self._arena_manager = par.ArenaManager()
        manager = self._arena_manager
        record = manager.current
        if record is not None and record.token == token:
            return record
        old_token = record.token if record is not None else None
        spec, arrays = par.build_sharded_snapshot(self)
        record = manager.publish(
            token, arrays, spec, refs=par.sharded_snapshot_refs(self)
        )
        if old_token is not None and self._proc_pool is not None \
                and not self._proc_pool.closed:
            self._proc_pool.unpin_all(old_token)
        return record

    # ------------------------------------------------------------------
    # Search
    # ------------------------------------------------------------------

    def _compile(self, predicate: "Predicate | CompiledPredicate") -> CompiledPredicate:
        if isinstance(predicate, CompiledPredicate):
            if len(predicate) != len(self.table):
                raise ValueError(
                    f"compiled predicate covers {len(predicate)} entities, "
                    f"table has {len(self.table)}"
                )
            return predicate
        return predicate.compile(self.table)

    def plan(
        self, predicate: "Predicate | CompiledPredicate", k: int,
        ef_search: int = 64,
    ) -> ShardPlan:
        """The routing plan one query would execute (EXPLAIN-style)."""
        raw = (predicate.predicate
               if isinstance(predicate, CompiledPredicate) else predicate)
        return self.router.plan(raw, k=k, ef_search=ef_search,
                                scale_ef=self.scale_ef)

    def _probe_shard(
        self,
        decision: ShardDecision,
        compiled: CompiledPredicate,
        query: np.ndarray,
        k: int,
        remote=None,
    ) -> tuple[dict, object | None, np.ndarray]:
        """Execute one probed shard's local search.

        Returns ``(record, found, gids)`` where ``record`` is the
        per-shard telemetry dict, ``found`` is the local
        :class:`~repro.hnsw.hnsw.SearchResult` (``None`` when the shard
        had nothing to search or its probe failed under the resilience
        policy), and ``gids`` maps local ids back to global ids.

        With ``remote`` (an arena record from :meth:`_remote_record`),
        the local search runs in a pool worker over the shared-memory
        snapshot instead of in-process; a crashed worker raises
        :class:`~repro.parallel.pool.WorkerCrash` out of the closure,
        which the resilience machinery below treats like any probe
        exception.

        Exceptions from the shard propagate when no resilience policy
        is attached (fail-fast).  With a policy, ``Exception``s are
        absorbed into the record's ``status``/``failure`` accounting;
        ``BaseException`` (``KeyboardInterrupt``/``SystemExit``) always
        propagates regardless of policy.
        """
        record = {
            "shard": decision.shard_id,
            "pruned": decision.pruned,
            "reason": decision.reason,
            "est_selectivity": decision.est_selectivity,
            "ef_search": decision.ef_search,
            "distance_computations": 0,
            "hops": 0,
            "returned": 0,
            "status": "ok",
            "attempts": 0,
            "failure": None,
        }
        gids = self.assignment.global_ids[decision.shard_id]
        local_mask = compiled.mask[gids]
        if not local_mask.any():
            # Probed per the plan, but the materialized local mask is
            # empty — nothing to search, trivially successful.
            return record, None, gids
        shard = self.shards[decision.shard_id]
        local = CompiledPredicate(compiled.predicate, local_mask)

        if self._shard_planners is not None:
            planner = self._shard_planners[decision.shard_id]

            def run_search():
                """One planner-routed attempt (resilience closure).

                The shard router's summary-based local selectivity
                estimate rides along as the planner's prior.
                """
                return planner.search(
                    query, local, k, ef_search=decision.ef_search,
                    selectivity_hint=decision.est_selectivity,
                )
        elif remote is not None:
            pool = self._process_pool()
            token = remote.token
            pin = (token, {"manifest": remote.arena.manifest(),
                           "spec": remote.spec})
            mask_bytes = local_mask.tobytes()
            payload = {
                "token": token,
                "shard": decision.shard_id,
                "query": np.ascontiguousarray(query, dtype=np.float32),
                "k": k,
                "ef_search": decision.ef_search,
                "mask_digest": hashlib.sha1(mask_bytes).digest(),
                "masks": {hashlib.sha1(mask_bytes).digest(): mask_bytes},
            }
            worker_id = decision.shard_id % pool.num_workers

            def run_search():
                """One attempt in a pool worker (resilience closure)."""
                found, _elapsed = pool.call(
                    worker_id, "probe_shard", payload, pin=pin
                )
                return found
        else:
            def run_search():
                """One attempt of the local search (resilience closure)."""
                return shard.search(query, local, k,
                                    ef_search=decision.ef_search)

        if self.resilience is None:
            found = run_search()
            record["attempts"] = 1
        else:
            outcome = resilient_probe(
                decision.shard_id, run_search, len(shard),
                self.resilience, self.breakers[decision.shard_id],
            )
            record["status"] = outcome.status
            record["attempts"] = outcome.attempts
            record["failure"] = outcome.failure
            if not outcome.ok:
                return record, None, gids
            found = outcome.result
        record["distance_computations"] = int(found.distance_computations)
        record["hops"] = int(found.hops)
        record["returned"] = int(len(found))
        if self._shard_planners is not None:
            # Route telemetry only exists on planner-routed results;
            # the key set of default-path records stays pinned.
            record["route_chosen"] = str(getattr(found, "route_chosen", ""))
            record["route_reason"] = str(getattr(found, "route_reason", ""))
            record["fallback_triggered"] = bool(
                getattr(found, "fallback_triggered", False)
            )
            record["estimator_error"] = float(
                getattr(found, "estimator_error", 0.0)
            )
        return record, found, gids

    def search(
        self,
        query: np.ndarray,
        predicate: "Predicate | CompiledPredicate",
        k: int,
        ef_search: int = 64,
    ) -> ShardedSearchResult:
        """Scatter-gather hybrid search: global top-k passing entities.

        The predicate compiles once against the global table; the plan
        prunes provably-empty shards; each probed shard searches its
        local subgraph over the sliced mask (sequentially, or across
        ``shard_workers`` threads); sorted per-shard results merge
        streamingly into the global top-k.  Under a resilience policy,
        shards that fail past their retry budget are dropped and the
        result degrades to the survivors' partial top-k with exact
        ``shards_failed``/``shards_timed_out`` accounting.
        """
        if self._closed:
            raise RuntimeError(
                "ShardedAcornIndex is closed; close() released its "
                "probe pools and shared-memory arenas"
            )
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        compiled = self._compile(predicate)
        plan = self.plan(compiled, k=k, ef_search=ef_search)

        remote = None
        if self.executor == "process":
            remote = self._remote_record()
        if remote is not None:
            self._arena_manager.acquire(remote)
        try:
            probed = [d for d in plan.decisions if not d.pruned]
            if self.shard_workers > 1 and len(probed) > 1:
                # Futures fan-out: executor.map re-raises anything a
                # probe raised — including BaseException, which must
                # never be folded into failure accounting.  On the
                # process path the threads only block on worker pipes.
                probe_outcomes = list(self._scatter_executor().map(
                    lambda d: self._probe_shard(
                        d, compiled, query, k, remote=remote
                    ),
                    probed,
                ))
            else:
                probe_outcomes = [
                    self._probe_shard(d, compiled, query, k, remote=remote)
                    for d in probed
                ]
        finally:
            if remote is not None:
                self._arena_manager.release(remote)

        outcomes = {rec["shard"]: (rec, found, gids)
                    for rec, found, gids in probe_outcomes}
        streams = []
        total_comps = 0
        total_hops = 0
        total_visited = 0
        failed = 0
        timed_out = 0
        est_rows: list[float] = []
        ok_flags: list[bool] = []
        per_shard = []
        for decision in plan.decisions:
            if decision.pruned:
                per_shard.append({
                    "shard": decision.shard_id,
                    "pruned": True,
                    "reason": decision.reason,
                    "est_selectivity": decision.est_selectivity,
                    "ef_search": decision.ef_search,
                })
                continue
            record, found, gids = outcomes[decision.shard_id]
            per_shard.append(record)
            est_rows.append(
                decision.est_selectivity * len(self.shards[decision.shard_id])
            )
            ok_flags.append(record["status"] == "ok")
            if record["status"] == "failed":
                failed += 1
            elif record["status"] == "timed_out":
                timed_out += 1
            if found is not None:
                streams.append(zip(
                    found.distances.tolist(),
                    gids[found.ids].tolist(),
                ))
                total_comps += found.distance_computations
                total_hops += found.hops
                total_visited += found.visited_nodes

        degraded = (failed + timed_out) > 0
        merged = merge_topk(streams, k)
        route_chosen = ""
        route_reason = ""
        fallback_triggered = False
        estimator_error = 0.0
        if self._shard_planners is not None:
            routed = [r for r in per_shard if r.get("route_chosen")]
            if routed:
                from repro.routing.cost import ALL_ROUTES

                counts: dict[str, int] = {}
                errors: list[float] = []
                for rec in routed:
                    counts[rec["route_chosen"]] = (
                        counts.get(rec["route_chosen"], 0) + 1
                    )
                    errors.append(rec["estimator_error"])
                    fallback_triggered |= rec["fallback_triggered"]
                # Majority route across probed shards; ties break in
                # ALL_ROUTES order (pre-filter first).
                order = {r: i for i, r in enumerate(ALL_ROUTES)}
                route_chosen = max(
                    counts,
                    key=lambda r: (counts[r], -order.get(r, len(order))),
                )
                route_reason = "shards: " + ", ".join(
                    f"{r}x{counts[r]}"
                    for r in sorted(counts, key=lambda r: order.get(r, len(order)))
                )
                estimator_error = float(np.mean(errors))
        return ShardedSearchResult(
            ids=np.asarray([gid for _, gid in merged], dtype=np.intp),
            distances=np.asarray([d for d, _ in merged], dtype=np.float32),
            distance_computations=int(total_comps),
            hops=int(total_hops),
            visited_nodes=int(total_visited),
            shards_probed=plan.n_probed,
            shards_pruned=plan.n_pruned,
            shards_failed=int(failed),
            shards_timed_out=int(timed_out),
            degraded=degraded,
            recall_ceiling=(
                recall_ceiling(est_rows, ok_flags) if degraded else 1.0
            ),
            per_shard=tuple(per_shard),
            route_chosen=route_chosen,
            route_reason=route_reason,
            fallback_triggered=fallback_triggered,
            estimator_error=estimator_error,
        )

    # ``search_batch`` comes from BatchSearchMixin: batches run through
    # repro.engine and the shard counters surface in QueryStats.

    # ------------------------------------------------------------------
    # Deletion (tombstones route to the owning shard)
    # ------------------------------------------------------------------

    def mark_deleted(self, global_id: int) -> None:
        """Tombstone a global entity on its owning shard."""
        shard, local = self.assignment.to_local(global_id)
        self.shards[shard].mark_deleted(local)

    def unmark_deleted(self, global_id: int) -> None:
        """Remove a global entity's tombstone (no-op if absent)."""
        shard, local = self.assignment.to_local(global_id)
        self.shards[shard].unmark_deleted(local)

    def is_deleted(self, global_id: int) -> bool:
        """Whether a global entity is tombstoned."""
        shard, local = self.assignment.to_local(global_id)
        return self.shards[shard].is_deleted(local)

    @property
    def num_deleted(self) -> int:
        """Tombstoned entities across all shards."""
        return sum(shard.num_deleted for shard in self.shards)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def nbytes(self) -> int:
        """Total vector + adjacency footprint across shards."""
        return sum(shard.nbytes() for shard in self.shards)

    def breaker_states(self) -> list[str] | None:
        """Per-shard circuit-breaker state names (``None`` without a
        resilience policy)."""
        if self.breakers is None:
            return None
        return [breaker.state.value for breaker in self.breakers]

    def open_breaker_fraction(self) -> float:
        """Fraction of shard circuit breakers currently open (0.0
        without a resilience policy).

        The serving layer's breaker-aware load shedding reads this as
        its health signal: when the fraction crosses the configured
        threshold, new arrivals are rejected instead of queued against
        an index that can only answer degraded.
        """
        if self.breakers is None or not self.breakers:
            return 0.0
        open_count = sum(
            1 for breaker in self.breakers
            if breaker.state is BreakerState.OPEN
        )
        return open_count / len(self.breakers)

    def stats(self) -> dict:
        """Operator-facing build summary: shard sizes and per-shard stats."""
        return {
            "n_shards": self.n_shards,
            "num_vectors": len(self),
            "num_deleted": self.num_deleted,
            "partitioner": self.partitioner.spec(),
            "shard_sizes": [len(shard) for shard in self.shards],
            "breakers": self.breaker_states(),
            "shards": [shard.stats() for shard in self.shards],
        }
