"""Sharded index persistence: a manifest directory of per-shard archives.

Layout of a saved :class:`~repro.shard.sharded.ShardedAcornIndex`::

    <path>/
      manifest.json      # format version, partitioner spec, shard files
                         # + sha256 checksums, scale_ef, summaries
      assignment.npz     # the global -> shard row assignment
      table.npz          # the global attribute table
      shard_00000.npz    # one repro.persistence archive per shard
      shard_00001.npz
      ...

Every shard archive goes through :func:`repro.persistence.save_index`
unchanged, so a shard file is itself a loadable single index.  Loading
verifies the manifest version and each file's checksum; a corrupt or
missing piece raises :class:`ShardLoadError` naming the exact file
instead of yielding a partially-loaded index.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

import numpy as np

from repro.shard.partition import ShardAssignment, partitioner_from_spec
from repro.shard.router import ShardRouter
from repro.shard.sharded import ShardedAcornIndex
from repro.shard.summary import ShardSummary

_SHARD_FORMAT_VERSION = 1


class ShardLoadError(RuntimeError):
    """A sharded archive is incomplete or corrupt.

    Raised with the offending file's path in the message, so operators
    know exactly which piece to restore; the index is never partially
    constructed.
    """


def _sha256(path: Path) -> str:
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        for chunk in iter(lambda: handle.read(1 << 20), b""):
            digest.update(chunk)
    return digest.hexdigest()


def save_sharded(index: ShardedAcornIndex, path) -> None:
    """Serialize a sharded index into a manifest directory at ``path``."""
    from repro.persistence import _pack_table, save_index

    root = Path(path)
    root.mkdir(parents=True, exist_ok=True)

    shard_files = []
    for s, shard in enumerate(index.shards):
        name = f"shard_{s:05d}.npz"
        save_index(shard, root / name)
        shard_files.append(name)

    np.savez_compressed(
        root / "assignment.npz", shard_of=index.assignment.shard_of
    )
    table_payload: dict = {}
    _pack_table(index.table, table_payload)
    np.savez_compressed(root / "table.npz", **table_payload)

    checksums = {
        name: _sha256(root / name)
        for name in shard_files + ["assignment.npz", "table.npz"]
    }
    manifest = {
        "format": "repro-sharded-index",
        "format_version": _SHARD_FORMAT_VERSION,
        "n_shards": index.n_shards,
        "n_rows": len(index),
        "partitioner": index.partitioner.spec(),
        "scale_ef": index.scale_ef,
        "min_ef": index.router.min_ef,
        "shard_files": shard_files,
        "checksums": checksums,
        "summaries": [s.to_dict() for s in index.router.summaries],
    }
    (root / "manifest.json").write_text(json.dumps(manifest, indent=2) + "\n")


def _verified(root: Path, name: str, checksums: dict) -> Path:
    """The path of ``name``, existence- and checksum-verified."""
    target = root / name
    if not target.exists():
        raise ShardLoadError(
            f"sharded archive {root} is missing {name!r}; restore the file "
            "or re-save the index"
        )
    expected = checksums.get(name)
    if expected is not None and _sha256(target) != expected:
        raise ShardLoadError(
            f"checksum mismatch for {target}; the file is corrupt "
            f"(expected sha256 {expected[:12]}...)"
        )
    return target


def load_sharded(path) -> ShardedAcornIndex:
    """Restore a sharded index saved with :func:`save_sharded`.

    Raises:
        ShardLoadError: when the manifest is absent/invalid or any
            referenced file is missing or fails its checksum.
    """
    from repro.persistence import _unpack_table, load_index

    root = Path(path)
    manifest_path = root / "manifest.json"
    if not manifest_path.exists():
        raise ShardLoadError(f"no manifest.json under {root}")
    try:
        manifest = json.loads(manifest_path.read_text())
    except json.JSONDecodeError as exc:
        raise ShardLoadError(f"manifest {manifest_path} is corrupt: {exc}") from exc
    version = manifest.get("format_version")
    if version != _SHARD_FORMAT_VERSION:
        raise ShardLoadError(
            f"unsupported sharded format version {version!r} "
            f"(expected {_SHARD_FORMAT_VERSION})"
        )
    checksums = manifest.get("checksums", {})

    shards = [
        load_index(_verified(root, name, checksums))
        for name in manifest["shard_files"]
    ]
    with np.load(_verified(root, "assignment.npz", checksums)) as archive:
        shard_of = archive["shard_of"]
    assignment = ShardAssignment.from_shard_of(
        shard_of, int(manifest["n_shards"])
    )
    with np.load(
        _verified(root, "table.npz", checksums), allow_pickle=True
    ) as archive:
        table = _unpack_table(archive)

    router = ShardRouter(
        [ShardSummary.from_dict(s) for s in manifest["summaries"]],
        min_ef=int(manifest.get("min_ef", 16)),
    )
    return ShardedAcornIndex(
        shards=shards,
        assignment=assignment,
        partitioner=partitioner_from_spec(manifest["partitioner"]),
        table=table,
        router=router,
        scale_ef=bool(manifest.get("scale_ef", False)),
    )
