"""Spawn-safe persistent worker pool with warm arena pins.

A :class:`ProcessPool` owns N spawned worker processes, each with a
duplex pipe.  Workers start lazily and stay warm across batches; the
pool tracks which arena epochs each worker has pinned and prepends a
``pin`` op exactly once per (worker, epoch) — after that, dispatching a
chunk ships only query rows and mask bytes, never index data.

Failure model: a worker that dies mid-call (chaos ``die`` op, SIGKILL,
OOM) surfaces as :class:`WorkerCrash` — an ``Exception`` subclass so
the shard resilience layer folds it into breaker/degraded accounting
exactly like any other probe failure — and the dead slot respawns
lazily on its next use (``deaths``/``spawns`` counters record both
sides).  An op that *raises* inside a healthy worker comes back as
:class:`RemoteError` carrying the worker's traceback; the worker
survives.

Dispatch is ``spawn``-based (never ``fork``: a forked child would
inherit live locks and thread state from the parent's executors), and
every pipe is guarded by a per-worker lock so concurrent parent threads
— the engine's chunk fan-out, the scatter-gather's probe fan-out —
serialize cleanly per worker.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import signal
import threading
from concurrent.futures import ThreadPoolExecutor

from repro.parallel.worker import worker_main


class WorkerCrash(RuntimeError):
    """A worker process died before answering.

    Deliberately an ``Exception`` (not ``BaseException``): crashes must
    flow into :func:`~repro.shard.resilience.resilient_probe`'s failure
    accounting, where they degrade the query instead of killing it.
    """

    def __init__(self, worker_id: int, detail: str = "") -> None:
        self.worker_id = worker_id
        message = f"worker {worker_id} died"
        if detail:
            message += f" ({detail})"
        super().__init__(message)


class RemoteError(RuntimeError):
    """An op raised inside a (still healthy) worker.

    Carries the worker-side traceback text so the real failure is
    debuggable from the parent process.
    """

    def __init__(self, worker_id: int, remote_traceback: str) -> None:
        self.worker_id = worker_id
        self.remote_traceback = remote_traceback
        super().__init__(
            f"worker {worker_id} op failed; remote traceback:\n"
            f"{remote_traceback}"
        )


class _Worker:
    """One live worker process + its parent end of the pipe."""

    __slots__ = ("process", "conn", "pinned")

    def __init__(self, process, conn) -> None:
        self.process = process
        self.conn = conn
        self.pinned: set[str] = set()


class ProcessPool:
    """N persistent spawned workers, addressed by slot id.

    Args:
        num_workers: worker slots (processes spawn lazily per slot).
    """

    def __init__(self, num_workers: int) -> None:
        if num_workers < 1:
            raise ValueError(f"num_workers must be >= 1, got {num_workers}")
        self.num_workers = int(num_workers)
        self._ctx = mp.get_context("spawn")
        self._workers: list[_Worker | None] = [None] * self.num_workers
        self._locks = [threading.Lock() for _ in range(self.num_workers)]
        self._fanout: ThreadPoolExecutor | None = None
        self._state_lock = threading.Lock()
        self._closed = False
        self.spawns = 0
        self.deaths = 0

    # ------------------------------------------------------------------
    # Worker lifecycle
    # ------------------------------------------------------------------

    def _spawn(self, worker_id: int) -> _Worker:
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        process = self._ctx.Process(
            target=worker_main, args=(child_conn,),
            name=f"repro-worker-{worker_id}", daemon=True,
        )
        process.start()
        child_conn.close()
        with self._state_lock:
            self.spawns += 1
        return _Worker(process, parent_conn)

    def _ensure(self, worker_id: int) -> _Worker:
        worker = self._workers[worker_id]
        if worker is not None and worker.process.is_alive():
            return worker
        if worker is not None:
            self._reap(worker_id, worker)
        worker = self._spawn(worker_id)
        self._workers[worker_id] = worker
        return worker

    def _reap(self, worker_id: int, worker: _Worker) -> None:
        """Collect a dead worker: close pipe, join, count the death."""
        try:
            worker.conn.close()
        except Exception:
            pass
        try:
            worker.process.join(timeout=5)
        except Exception:
            pass
        self._workers[worker_id] = None
        with self._state_lock:
            self.deaths += 1

    # ------------------------------------------------------------------
    # Calls
    # ------------------------------------------------------------------

    def call(self, worker_id: int, op: str, payload=None, pin=None):
        """Run one op on one worker (serialized per worker).

        Args:
            worker_id: slot in ``[0, num_workers)``.
            op: worker op name.
            payload: picklable op payload.
            pin: optional ``(token, pin_payload)``; the pin op is
                prepended once per (worker, token) so warm workers skip
                straight to the query.

        Raises:
            WorkerCrash: the process died mid-call (slot respawns on
                next use).
            RemoteError: the op raised inside the worker.
        """
        if self._closed:
            raise RuntimeError("ProcessPool is closed")
        worker_id = int(worker_id) % self.num_workers
        with self._locks[worker_id]:
            worker = self._ensure(worker_id)
            try:
                if pin is not None:
                    token, pin_payload = pin
                    if token not in worker.pinned:
                        self._roundtrip(worker_id, worker, "pin",
                                        pin_payload)
                        worker.pinned.add(token)
                return self._roundtrip(worker_id, worker, op, payload)
            except (BrokenPipeError, EOFError, ConnectionResetError,
                    OSError) as exc:
                self._reap(worker_id, worker)
                raise WorkerCrash(worker_id, type(exc).__name__) from exc

    def _roundtrip(self, worker_id: int, worker: _Worker, op, payload):
        worker.conn.send((op, payload))
        status, value = worker.conn.recv()
        if status == "err":
            raise RemoteError(worker_id, value)
        return value

    def map_calls(self, calls):
        """Run ``(worker_id, op, payload, pin)`` tuples concurrently.

        Fans out over an internal thread pool (one thread per slot —
        the threads only block on pipe IO, the actual compute happens
        in the worker processes) and returns results in call order.
        Exceptions propagate to the caller exactly as :meth:`call`
        raises them.
        """
        calls = list(calls)
        if len(calls) <= 1:
            return [self.call(*entry) for entry in calls]
        if self._fanout is None:
            self._fanout = ThreadPoolExecutor(
                max_workers=self.num_workers,
                thread_name_prefix="repro-pool-io",
            )
        futures = [self._fanout.submit(self.call, *entry)
                   for entry in calls]
        return [future.result() for future in futures]

    def unpin_all(self, token: str) -> None:
        """Unpin a retired arena epoch from every live worker.

        Best-effort hygiene after an epoch swap: workers keep old
        mappings alive even after the parent unlinks the segment, so
        dropping them promptly bounds shared-memory residency at one
        epoch per worker.
        """
        for worker_id, worker in enumerate(self._workers):
            if worker is None or not worker.process.is_alive():
                continue
            if token in worker.pinned:
                try:
                    self.call(worker_id, "unpin", {"token": token})
                except Exception:
                    pass
                worker.pinned.discard(token)

    def broadcast(self, op: str, payload=None) -> list:
        """Run one op on every *live* slot (spawning none)."""
        out = []
        for worker_id, worker in enumerate(self._workers):
            if worker is not None and worker.process.is_alive():
                out.append(self.call(worker_id, op, payload))
        return out

    # ------------------------------------------------------------------
    # Introspection / chaos hooks
    # ------------------------------------------------------------------

    def worker_pids(self) -> dict[int, int]:
        """Live slot → pid map (empty slots omitted)."""
        return {
            worker_id: worker.process.pid
            for worker_id, worker in enumerate(self._workers)
            if worker is not None and worker.process.is_alive()
        }

    def kill_worker(self, worker_id: int) -> bool:
        """SIGKILL one worker (chaos hook); True if a process was hit.

        The death is *not* counted or reaped here — it surfaces (and
        respawns) through the next call's crash path, exactly like an
        organic death.
        """
        worker = self._workers[worker_id]
        if worker is None or not worker.process.is_alive():
            return False
        os.kill(worker.process.pid, signal.SIGKILL)
        worker.process.join(timeout=5)
        return True

    def stats(self) -> dict:
        """Pool health counters for telemetry and the chaos suite."""
        alive = sum(
            1 for worker in self._workers
            if worker is not None and worker.process.is_alive()
        )
        return {
            "num_workers": self.num_workers,
            "alive": alive,
            "spawns": self.spawns,
            "deaths": self.deaths,
        }

    # ------------------------------------------------------------------
    # Shutdown
    # ------------------------------------------------------------------

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has run."""
        return self._closed

    def close(self) -> None:
        """Stop every worker (idempotent, interpreter-teardown safe)."""
        if self._closed:
            return
        self._closed = True
        for worker_id, worker in enumerate(self._workers):
            if worker is None:
                continue
            self._workers[worker_id] = None
            try:
                if worker.process.is_alive():
                    worker.conn.send(("shutdown", None))
                    if worker.conn.poll(2):
                        worker.conn.recv()
            except Exception:
                pass
            try:
                worker.conn.close()
            except Exception:
                pass
            try:
                worker.process.join(timeout=5)
                if worker.process.is_alive():
                    worker.process.terminate()
                    worker.process.join(timeout=5)
            except Exception:
                pass
        fanout = self._fanout
        self._fanout = None
        if fanout is not None:
            fanout.shutdown(wait=True)

    def __enter__(self) -> "ProcessPool":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    def __del__(self) -> None:
        try:
            self.close()
        except Exception:
            pass
