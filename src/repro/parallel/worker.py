"""Worker-process entry point for the process-parallel executor.

Each worker is a spawned process holding one duplex pipe to the parent
pool.  It serves a tiny op loop: ``pin`` maps a published arena
(verifying sha256 stamps) and materializes real index objects over the
shared views; ``search_chunk`` / ``probe_shard`` run the library's own
``search`` methods over those objects; ``introspect`` answers the
zero-copy assertions the test suite makes *from inside the worker*.

Everything protocol-level is defensive: any ``Exception`` during an op
is caught and shipped back as a traceback string (the parent raises
:class:`~repro.parallel.pool.RemoteError`), so one bad query never
kills a warm worker.  Actual worker death (``die`` op, SIGKILL from a
chaos test, OOM) surfaces parent-side as a broken pipe →
:class:`~repro.parallel.pool.WorkerCrash`.
"""

from __future__ import annotations

import os
import time
import traceback

import numpy as np


class _Pin:
    """One pinned arena epoch inside a worker.

    Attributes:
        arena: the attached (verified) shared block.
        spec: the :class:`~repro.parallel.snapshot.IndexSpec` or
            :class:`~repro.parallel.snapshot.ShardedSpec`.
        searchers: lazily materialized index objects, keyed by shard id
            (``None`` for the unsharded searcher).
        masks: compiled-predicate cache keyed by mask digest, so a mask
            shipped once per chunk is reused across its queries.
    """

    __slots__ = ("arena", "spec", "searchers", "masks")

    def __init__(self, arena, spec) -> None:
        self.arena = arena
        self.spec = spec
        self.searchers: dict = {}
        self.masks: dict = {}


def _searcher(pin: _Pin, shard: int | None):
    """The pinned epoch's searcher (materialized on first use)."""
    from repro.parallel import snapshot as snap

    got = pin.searchers.get(shard)
    if got is None:
        views = pin.arena.views()
        if shard is None:
            got = snap.materialize(pin.spec, views)
        else:
            got = snap.materialize_shard(pin.spec, views, shard)
        pin.searchers[shard] = got
    return got


def _compiled_mask(pin: _Pin, digest: bytes, payload_masks: dict,
                   key_prefix=None):
    """Rebuild (and cache) a CompiledPredicate from shipped mask bytes."""
    from repro.predicates.base import CompiledPredicate

    key = (key_prefix, digest)
    got = pin.masks.get(key)
    if got is None:
        mask = np.frombuffer(payload_masks[digest], dtype=bool)
        got = CompiledPredicate(None, mask)
        if len(pin.masks) >= 32:
            pin.masks.pop(next(iter(pin.masks)))
        pin.masks[key] = got
    return got


def _op_pin(pins: dict, payload: dict):
    from repro.parallel.arena import attach_arena

    token = payload["manifest"]["token"]
    if token not in pins:
        arena = attach_arena(payload["manifest"], verify=True)
        pins[token] = _Pin(arena, payload["spec"])
    return {"pinned": token, "pid": os.getpid()}


def _op_unpin(pins: dict, payload: dict):
    pin = pins.pop(payload["token"], None)
    if pin is not None:
        pin.arena.close()
    return {"unpinned": payload["token"]}


def _op_search_chunk(pins: dict, payload: dict):
    pin = pins[payload["token"]]
    searcher = _searcher(pin, payload.get("shard"))
    queries = payload["queries"]
    k = payload["k"]
    ef = payload["ef_search"]
    masks = payload["masks"]
    out = []
    for row, digest in enumerate(payload["mask_digests"]):
        compiled = _compiled_mask(pin, digest, masks,
                                  key_prefix=payload.get("shard"))
        begin = time.perf_counter()
        result = searcher.search(queries[row], compiled, k, ef_search=ef)
        out.append((result, time.perf_counter() - begin))
    return out


def _op_probe_shard(pins: dict, payload: dict):
    pin = pins[payload["token"]]
    shard = payload["shard"]
    searcher = _searcher(pin, shard)
    compiled = _compiled_mask(pin, payload["mask_digest"],
                              payload["masks"], key_prefix=shard)
    begin = time.perf_counter()
    result = searcher.search(payload["query"], compiled, payload["k"],
                             ef_search=payload["ef_search"])
    return result, time.perf_counter() - begin


def _op_introspect(pins: dict, payload: dict):
    """Zero-copy evidence from inside the worker.

    For each requested searcher, reports whether its hot arrays share
    memory with the mapped arena buffer — the in-worker half of the
    buffer-identity assertions (the in-process half lives in
    ``tests/parallel/test_snapshot.py``).
    """
    pin = pins[payload["token"]]
    shard = payload.get("shard")
    searcher = _searcher(pin, shard)
    arena = pin.arena
    prefix = "" if shard is None else f"s{shard}."

    def shares(role: str, arr) -> bool:
        view = arena.view(role)
        if view.size == 0 and np.asarray(arr).size == 0:
            # np.shares_memory is False for empty arrays, but a
            # zero-byte payload (e.g. a single-node top level's edge
            # list) has nothing to copy — trivially shared.
            return True
        return bool(np.shares_memory(view, arr))

    report = {
        "pid": os.getpid(),
        "shm_name": arena.shm.name,
        "arena_nbytes": arena.nbytes,
        "vectors_shared": shares(prefix + "vectors",
                                 searcher.store._data),
        "csr_shared": all(
            shares(prefix + f"L{lev}.indices", level.indices)
            and shares(prefix + f"L{lev}.indptr", level.indptr)
            for lev, level in enumerate(searcher._frozen)
        ),
        "vectors_writeable": bool(
            searcher.store._data.flags.writeable
        ),
    }
    if searcher._quant is not None:
        report["codes_shared"] = shares(prefix + "quant.codes",
                                        searcher._quant.codes)
    return report


_OPS = {
    "pin": _op_pin,
    "unpin": _op_unpin,
    "search_chunk": _op_search_chunk,
    "probe_shard": _op_probe_shard,
    "introspect": _op_introspect,
}


def worker_main(conn) -> None:
    """The spawned worker's serve loop (module top level for spawn).

    Protocol: recv ``(op, payload)``; send ``("ok", value)`` or
    ``("err", traceback_text)``.  ``shutdown`` acknowledges then
    returns; ``die`` hard-exits without a reply (deterministic crash
    for the chaos suite and the respawn accounting tests).
    """
    pins: dict[str, _Pin] = {}
    die_next = False
    try:
        while True:
            try:
                op, payload = conn.recv()
            except (EOFError, OSError):
                break
            if op == "shutdown":
                conn.send(("ok", None))
                break
            if op == "die":
                os._exit(1)
            if op == "die_next":
                # Chaos hook: acknowledge now, then hard-exit while the
                # *next* op's caller is blocked on its reply — a
                # deterministic mid-call crash (kill_worker's SIGKILL is
                # healed by lazy respawn before any call notices).
                die_next = True
                conn.send(("ok", None))
                continue
            if die_next:
                os._exit(1)
            if op == "ping":
                conn.send(("ok", {"pid": os.getpid(),
                                  "pinned": sorted(pins)}))
                continue
            handler = _OPS.get(op)
            if handler is None:
                conn.send(("err", f"unknown op {op!r}"))
                continue
            try:
                conn.send(("ok", handler(pins, payload)))
            except Exception:
                conn.send(("err", traceback.format_exc()))
    finally:
        for pin in pins.values():
            try:
                pin.arena.close()
            except Exception:
                pass
        try:
            conn.close()
        except Exception:
            pass
